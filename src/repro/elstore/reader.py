"""Reading ``.elog`` event-log containers.

:class:`EventLogStore` is the lazy handle — open is O(header + TOC);
individual cases (groups) are read on demand with per-chunk CRC
verification, mirroring how the paper's implementation retrieves
per-case tables from its HDF5 file. :func:`read_event_log` materializes
the whole container into an in-memory
:class:`~repro.core.eventlog.EventLog`.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from pathlib import Path

import numpy as np

from repro._util.errors import StoreFormatError
from repro.core.eventlog import EventLog
from repro.core.frame import EventFrame, FramePools
from repro.elstore.schema import (
    CASE_COLUMNS,
    FORMAT_VERSION,
    HEADER_FMT,
    HEADER_SIZE,
    MAGIC,
    CaseMeta,
    ColumnMeta,
    POOL_NAMES,
)


class EventLogStore:
    """Open ``.elog`` container with lazy per-case access.

    This is the ``EventLogH5`` of the paper's Fig. 6 listing (aliased
    as such in :mod:`repro.st_inspector`): a pointer to the stored
    event-log from which cases can be pulled.
    """

    def __init__(self, path: str | os.PathLike[str]) -> None:
        self.path = Path(path)
        with open(self.path, "rb") as handle:
            header = handle.read(HEADER_SIZE)
            if len(header) < HEADER_SIZE:
                raise StoreFormatError(f"{self.path}: truncated header")
            magic, version, _reserved, toc_offset, toc_len = (
                struct.unpack(HEADER_FMT, header))
            if magic != MAGIC:
                raise StoreFormatError(
                    f"{self.path}: bad magic {magic!r} (not an .elog file)")
            if version != FORMAT_VERSION:
                raise StoreFormatError(
                    f"{self.path}: unsupported version {version} "
                    f"(expected {FORMAT_VERSION})")
            if toc_offset == 0:
                raise StoreFormatError(
                    f"{self.path}: missing TOC (writer not closed?)")
            handle.seek(toc_offset)
            raw = handle.read(toc_len)
            if len(raw) < toc_len:
                raise StoreFormatError(f"{self.path}: truncated TOC")
        try:
            toc = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise StoreFormatError(
                f"{self.path}: corrupt TOC: {exc}") from exc
        self.pools: dict[str, list[str]] = {
            name: list(toc["pools"].get(name, [])) for name in POOL_NAMES}
        self._cases: dict[str, CaseMeta] = {}
        for case_json in toc["cases"]:
            case = CaseMeta.from_json(case_json)
            self._cases[case.case_id] = case

    # -- metadata ----------------------------------------------------------

    def case_ids(self) -> list[str]:
        """Sorted case identifiers present in the container."""
        return sorted(self._cases)

    def stored_case_ids(self) -> list[str]:
        """Case identifiers in on-file (append) order.

        Streaming consumers that want to reproduce the container —
        e.g. an ``elog`` → ``elog`` repack — must iterate this order,
        not the sorted one, to keep bytes identical.
        """
        return list(self._cases)

    def case_meta(self, case_id: str) -> CaseMeta:
        """Metadata of one case (cid/host/rid/n_events/columns)."""
        try:
            return self._cases[case_id]
        except KeyError:
            raise StoreFormatError(
                f"{self.path}: no case {case_id!r}") from None

    @property
    def n_cases(self) -> int:
        return len(self._cases)

    @property
    def n_events(self) -> int:
        return sum(c.n_events for c in self._cases.values())

    # -- data ------------------------------------------------------------------

    def _read_column(self, handle, column: ColumnMeta) -> np.ndarray:
        pieces: list[bytes] = []
        for chunk in column.chunks:
            handle.seek(chunk.offset)
            raw = handle.read(chunk.nbytes)
            if len(raw) != chunk.nbytes:
                raise StoreFormatError(
                    f"{self.path}: truncated chunk in column "
                    f"{column.name!r}")
            if zlib.crc32(raw) != chunk.crc32:
                raise StoreFormatError(
                    f"{self.path}: CRC mismatch in column {column.name!r} "
                    f"at offset {chunk.offset}")
            pieces.append(raw)
        return np.frombuffer(b"".join(pieces), dtype=column.dtype).copy()

    def read_case(self, case_id: str,
                  columns: list[str] | None = None,
                  ) -> dict[str, np.ndarray]:
        """Read one case's columns (CRC-verified).

        ``columns`` projects to a subset — a columnar-store payoff:
        reading only ``start``/``dur`` for a timeline touches a third
        of the bytes of a full-row read.
        """
        case = self.case_meta(case_id)
        if columns is None:
            wanted = case.columns
        else:
            unknown = set(columns) - set(case.columns)
            if unknown:
                raise StoreFormatError(
                    f"{self.path}: unknown columns {sorted(unknown)}")
            wanted = {name: case.columns[name] for name in columns}
        with open(self.path, "rb") as handle:
            result = {name: self._read_column(handle, meta)
                      for name, meta in wanted.items()}
        for name, values in result.items():
            if len(values) != case.n_events:
                raise StoreFormatError(
                    f"{self.path}: column {name!r} of case {case_id!r} "
                    f"has {len(values)} values, expected {case.n_events}")
        return result

    def to_event_log(self, *, cids: set[str] | None = None) -> EventLog:
        """Materialize (a cid-subset of) the container as an EventLog."""
        pools = FramePools()
        # Pre-intern in stored order so codes match the file's pools and
        # the store's call/fp codes can be used verbatim.
        for call in self.pools["calls"]:
            pools.calls.intern(call)
        for fp in self.pools["paths"]:
            pools.paths.intern(fp)

        frames: list[EventFrame] = []
        for case_id in self.case_ids():
            case = self._cases[case_id]
            if cids is not None and case.cid not in cids:
                continue
            data = self.read_case(case_id)
            n = case.n_events
            case_code = pools.cases.intern(case.case_id)
            cid_code = pools.cids.intern(case.cid)
            host_code = pools.hosts.intern(case.host)
            columns = {
                "case": np.full(n, case_code, dtype=np.int32),
                "cid": np.full(n, cid_code, dtype=np.int32),
                "host": np.full(n, host_code, dtype=np.int32),
                "rid": np.full(n, case.rid, dtype=np.int64),
                "pid": data["pid"].astype(np.int64),
                "call": data["call"].astype(np.int32),
                "start": data["start"].astype(np.int64),
                "dur": data["dur"].astype(np.int64),
                "fp": data["fp"].astype(np.int32),
                "size": data["size"].astype(np.int64),
                "activity": np.full(n, -1, dtype=np.int32),
            }
            frames.append(EventFrame(pools, columns))
        if not frames:
            raise StoreFormatError(
                f"{self.path}: no cases"
                + (f" for cids {sorted(cids)}" if cids else ""))
        return EventLog(EventFrame.concat(frames))


def read_event_log(path: str | os.PathLike[str], *,
                   cids: set[str] | None = None) -> EventLog:
    """One-call load: open the container and materialize an EventLog."""
    return EventLogStore(path).to_event_log(cids=cids)

"""Writing ``.elog`` event-log containers.

:class:`EventLogWriter` streams cases into a single file: column data
is appended in bounded-size chunks as cases are added (O(chunk_size)
memory regardless of trace length), and the JSON table of contents is
written at close, after which the header is patched with its location.

The convenience :func:`write_event_log` serializes an in-memory
:class:`~repro.core.eventlog.EventLog` in one call.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro._util.errors import StoreFormatError
from repro.elstore.schema import (
    CASE_COLUMNS,
    FORMAT_VERSION,
    HEADER_FMT,
    HEADER_SIZE,
    MAGIC,
    CaseMeta,
    ChunkRef,
    ColumnMeta,
    POOL_NAMES,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.eventlog import EventLog
    from repro.strace.naming import TraceFileName
    from repro.strace.parser import ParsedRecord

#: Default chunk size in *values* per chunk (not bytes).
DEFAULT_CHUNK_VALUES = 65536


class EventLogWriter:
    """Streaming writer; use as a context manager.

    >>> with EventLogWriter(tmp / "log.elog") as writer:   # doctest: +SKIP
    ...     writer.add_case_records(name, records)
    """

    def __init__(self, path: str | os.PathLike[str], *,
                 chunk_values: int = DEFAULT_CHUNK_VALUES) -> None:
        if chunk_values < 1:
            raise StoreFormatError("chunk_values must be >= 1")
        self.path = Path(path)
        self.chunk_values = chunk_values
        self._handle = open(self.path, "wb")
        self._handle.write(struct.pack(
            HEADER_FMT, MAGIC, FORMAT_VERSION, 0, 0, 0))
        self._cases: list[CaseMeta] = []
        self._case_ids: set[str] = set()
        # File-global string pools, built as cases stream in.
        self._pools: dict[str, list[str]] = {n: [] for n in POOL_NAMES}
        self._pool_index: dict[str, dict[str, int]] = {
            n: {} for n in POOL_NAMES}
        self._closed = False

    # -- pool helpers -----------------------------------------------------

    def _intern(self, pool: str, value: str) -> int:
        index = self._pool_index[pool]
        code = index.get(value)
        if code is None:
            code = len(self._pools[pool])
            index[value] = code
            self._pools[pool].append(value)
        return code

    # -- chunk writing -----------------------------------------------------

    def _write_column(self, values: np.ndarray, dtype: str,
                      name: str) -> ColumnMeta:
        array = np.ascontiguousarray(values.astype(dtype))
        column = ColumnMeta(name=name, dtype=dtype)
        for chunk_start in range(0, len(array) or 1, self.chunk_values):
            chunk = array[chunk_start: chunk_start + self.chunk_values]
            raw = chunk.tobytes()
            offset = self._handle.tell()
            self._handle.write(raw)
            column.chunks.append(ChunkRef(
                offset=offset, nbytes=len(raw),
                crc32=zlib.crc32(raw)))
            if len(array) == 0:
                break
        return column

    # -- public API ----------------------------------------------------------

    def add_case_arrays(
        self,
        *,
        case_id: str,
        cid: str,
        host: str,
        rid: int,
        columns: dict[str, np.ndarray],
        call_strings: list[str],
        path_strings: list[str],
    ) -> None:
        """Add one case from raw column arrays.

        ``columns`` must contain every name in :data:`CASE_COLUMNS`;
        the ``call``/``fp`` columns hold codes into ``call_strings`` /
        ``path_strings`` (local to this call) which are re-encoded
        against the file-global pools. ``fp`` code -1 means "no path".
        """
        if self._closed:
            raise StoreFormatError("writer is closed")
        if case_id in self._case_ids:
            raise StoreFormatError(f"duplicate case {case_id!r}")
        missing = set(CASE_COLUMNS) - set(columns)
        if missing:
            raise StoreFormatError(f"missing columns: {sorted(missing)}")
        lengths = {len(v) for v in columns.values()}
        if len(lengths) > 1:
            raise StoreFormatError(f"ragged case columns: {lengths}")
        n_events = lengths.pop() if lengths else 0

        # Re-encode local string codes into file-global pools.
        call_map = np.array(
            [self._intern("calls", s) for s in call_strings] or [0],
            dtype=np.int32)
        path_map = np.array(
            [self._intern("paths", s) for s in path_strings] or [0],
            dtype=np.int32)
        call_codes = columns["call"].astype(np.int64)
        fp_codes = columns["fp"].astype(np.int64)
        if len(call_codes) and call_codes.max(initial=-1) >= len(call_strings):
            raise StoreFormatError("call code out of range of call_strings")
        if len(fp_codes) and fp_codes.max(initial=-1) >= len(path_strings):
            raise StoreFormatError("fp code out of range of path_strings")
        global_calls = np.where(
            call_codes >= 0, call_map[np.clip(call_codes, 0, None)],
            -1).astype(np.int32)
        global_fps = np.where(
            fp_codes >= 0, path_map[np.clip(fp_codes, 0, None)],
            -1).astype(np.int32)

        case = CaseMeta(
            case_id=case_id, cid=cid, host=host, rid=rid,
            n_events=n_events)
        self._intern("cases", case_id)
        self._intern("cids", cid)
        self._intern("hosts", host)
        encoded = dict(columns)
        encoded["call"] = global_calls
        encoded["fp"] = global_fps
        for name, dtype in CASE_COLUMNS.items():
            case.columns[name] = self._write_column(
                encoded[name], dtype, name)
        self._cases.append(case)
        self._case_ids.add(case_id)

    def add_case_records(self, name: "TraceFileName",
                         records: "list[ParsedRecord]") -> None:
        """Add one case from parsed strace records (reader output).

        Columnarization is shared with the parallel-ingest wire format
        (:func:`repro.ingest.parallel.case_to_columns`), so records
        stream into the store and across process pools identically.
        """
        from repro.ingest.parallel import case_to_columns
        from repro.strace.reader import TraceCase

        case = case_to_columns(TraceCase(name=name, records=records))
        self.add_case_arrays(
            case_id=name.case_id, cid=name.cid, host=name.host,
            rid=name.rid, columns=case.columns(),
            call_strings=case.calls, path_strings=case.paths)

    def close(self) -> None:
        """Write the TOC, patch the header, close the file."""
        if self._closed:
            return
        toc = {
            "version": FORMAT_VERSION,
            "pools": self._pools,
            "cases": [c.to_json() for c in self._cases],
        }
        raw = json.dumps(toc, separators=(",", ":")).encode("utf-8")
        toc_offset = self._handle.tell()
        self._handle.write(raw)
        self._handle.seek(0)
        self._handle.write(struct.pack(
            HEADER_FMT, MAGIC, FORMAT_VERSION, 0, toc_offset, len(raw)))
        self._handle.close()
        self._closed = True

    def __enter__(self) -> "EventLogWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:  # leave no half-written file behind on error
            self._handle.close()
            self._closed = True
            self.path.unlink(missing_ok=True)


def write_event_log(event_log: "EventLog",
                    path: str | os.PathLike[str], *,
                    chunk_values: int = DEFAULT_CHUNK_VALUES) -> Path:
    """Serialize an in-memory event-log to an ``.elog`` file.

    Cases are written in sorted case-id order; within each case, events
    keep their start-time order (the EventLog invariant).
    """
    frame = event_log.frame
    pools = frame.pools
    call_pool = list(pools.calls)
    path_pool = list(pools.paths)
    with EventLogWriter(path, chunk_values=chunk_values) as writer:
        for case_id, case_frame in event_log.iter_cases():
            cid_code = int(case_frame.column("cid")[0])
            host_code = int(case_frame.column("host")[0])
            writer.add_case_arrays(
                case_id=case_id,
                cid=pools.cids.decode(cid_code),
                host=pools.hosts.decode(host_code),
                rid=int(case_frame.column("rid")[0]),
                columns={
                    "pid": case_frame.column("pid"),
                    "call": case_frame.column("call"),
                    "start": case_frame.column("start"),
                    "dur": case_frame.column("dur"),
                    "fp": case_frame.column("fp"),
                    "size": case_frame.column("size"),
                },
                call_strings=call_pool,
                path_strings=path_pool,
            )
    return Path(path)

"""``.elog`` — the event-log container (HDF5 substitute).

The paper's implementation stores processed traces "in a single HDF5
file. Each processed trace file (i.e., each case) is stored in a
separate group within the HDF5 file as a table" whose columns are the
event attributes *pid, call, start, dur, fp, size*, sorted by start
timestamp (Sec. V, Implementation). h5py is not available in this
environment, so :mod:`repro.elstore` implements an equivalent
single-file columnar container with the same contract:

- one *group* (table) per case, identified by (cid, host, rid);
- per-case columns ``pid/call/start/dur/fp/size`` in start order;
- string columns dictionary-encoded against file-global pools;
- chunked column storage with per-chunk CRC32 integrity checks;
- O(1) open + per-case lazy reads via a JSON table of contents.

See DESIGN.md §2 for the substitution rationale.
"""

from repro.elstore.schema import (
    CASE_COLUMNS,
    FORMAT_VERSION,
    MAGIC,
    CaseMeta,
    ChunkRef,
    ColumnMeta,
)
from repro.elstore.writer import EventLogWriter, write_event_log
from repro.elstore.reader import EventLogStore, read_event_log
from repro.elstore.convert import convert_source, convert_strace_dir

__all__ = [
    "CASE_COLUMNS",
    "FORMAT_VERSION",
    "MAGIC",
    "CaseMeta",
    "ChunkRef",
    "ColumnMeta",
    "EventLogWriter",
    "write_event_log",
    "EventLogStore",
    "read_event_log",
    "convert_source",
    "convert_strace_dir",
]

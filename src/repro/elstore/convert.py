"""strace directory → ``.elog`` conversion.

The paper's pipeline: "after recording the traces ... the relevant data
from individual trace files are parsed and combined efficiently into a
suitable data format (such as a single HDF5 file)" (Sec. III, fn. 2).
:func:`convert_strace_dir` is that step — parse every
``<cid>_<host>_<rid>.st`` file and stream the cases into a single
container.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.strace.reader import read_trace_dir
from repro.elstore.writer import DEFAULT_CHUNK_VALUES, EventLogWriter


def convert_strace_dir(
    source_dir: str | os.PathLike[str],
    dest_path: str | os.PathLike[str],
    *,
    cids: set[str] | None = None,
    strict: bool = True,
    chunk_values: int = DEFAULT_CHUNK_VALUES,
) -> Path:
    """Parse a directory of strace files into one ``.elog`` container.

    Returns the destination path. Raises
    :class:`~repro._util.errors.TraceParseError` if any file fails to
    parse (the container is not left half-written — the writer removes
    the file on error).
    """
    cases = read_trace_dir(source_dir, cids=cids, strict=strict)
    with EventLogWriter(dest_path, chunk_values=chunk_values) as writer:
        for case in cases:
            writer.add_case_records(case.name, case.records)
    return Path(dest_path)

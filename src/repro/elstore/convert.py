"""strace directory → ``.elog`` conversion.

The paper's pipeline: "after recording the traces ... the relevant data
from individual trace files are parsed and combined efficiently into a
suitable data format (such as a single HDF5 file)" (Sec. III, fn. 2).
:func:`convert_strace_dir` is that step — parse every
``<cid>_<host>_<rid>.st`` file and stream the cases into a single
container.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.elstore.writer import DEFAULT_CHUNK_VALUES, EventLogWriter


def convert_strace_dir(
    source_dir: str | os.PathLike[str],
    dest_path: str | os.PathLike[str],
    *,
    cids: set[str] | None = None,
    strict: bool = True,
    recursive: bool = False,
    workers: int | None = None,
    chunk_values: int = DEFAULT_CHUNK_VALUES,
) -> Path:
    """Parse a directory of strace files into one ``.elog`` container.

    Parsing fans out over ``workers`` processes (``None`` auto-detects;
    see :mod:`repro.ingest`) which columnarize each case in place; the
    parent streams the columns into the container as they arrive, so
    memory stays O(case) and the written bytes are identical for every
    worker count (the store is append-ordered and discovery order is
    sorted). ``recursive`` descends into nested per-host trace layouts.

    Returns the destination path. Raises
    :class:`~repro._util.errors.TraceParseError` if any file fails to
    parse (the container is not left half-written — the writer removes
    the file on error).
    """
    from repro.ingest.parallel import iter_case_columns, resolve_workers
    from repro.strace.reader import discover_trace_files

    found = discover_trace_files(source_dir, cids=cids,
                                 recursive=recursive)
    count = resolve_workers(workers, len(found))
    with EventLogWriter(dest_path, chunk_values=chunk_values) as writer:
        for case in iter_case_columns(found, strict=strict,
                                      workers=count):
            writer.add_case_arrays(
                case_id=case.name.case_id,
                cid=case.name.cid,
                host=case.name.host,
                rid=case.name.rid,
                columns=case.columns(),
                call_strings=case.calls,
                path_strings=case.paths,
            )
    return Path(dest_path)

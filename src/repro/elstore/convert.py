"""Any trace source → ``.elog`` conversion.

The paper's pipeline: "after recording the traces ... the relevant data
from individual trace files are parsed and combined efficiently into a
suitable data format (such as a single HDF5 file)" (Sec. III, fn. 2).
:func:`convert_source` is that step generalized over the
:class:`~repro.sources.TraceSource` API: any source that can enumerate
cases streams into a single container — a strace directory, a CSV
dump, a simulated workload (``sim:ior?ranks=4``), or another ``.elog``
(re-packing). :func:`convert_strace_dir` keeps the strace-specific
signature as a thin wrapper.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import TYPE_CHECKING

from repro.elstore.writer import DEFAULT_CHUNK_VALUES, EventLogWriter

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sources import TraceSource


def convert_source(
    source: "TraceSource | str | os.PathLike[str]",
    dest_path: str | os.PathLike[str],
    *,
    cids: set[str] | None = None,
    strict: bool = True,
    recursive: bool = False,
    workers: int | None = None,
    chunk_values: int = DEFAULT_CHUNK_VALUES,
) -> Path:
    """Stream any trace source into one ``.elog`` container.

    ``source`` is a ready :class:`~repro.sources.TraceSource` or a
    spec resolved by :func:`~repro.sources.open_source` (scheme URI or
    bare path). Cases stream in the source's deterministic order —
    memory stays O(case), and for strace directories the written bytes
    are identical for every worker count (the store is append-ordered
    and discovery order is sorted).

    Returns the destination path. On any per-case error the container
    is not left half-written — the writer removes the file.
    """
    from repro._util.errors import SourceError
    from repro.sources.registry import resolve_source

    source = resolve_source(source, cids=cids, strict=strict,
                            recursive=recursive, workers=workers)
    # An in-place conversion (elog:x.elog → x.elog, csv → itself) would
    # truncate the input before the lazy case iterator reads it — and
    # the writer's error cleanup would then delete it. Refuse up front.
    source_path = getattr(source, "path", None)
    if (source_path is not None
            and Path(source_path).resolve() == Path(dest_path).resolve()):
        raise SourceError(
            f"convert destination {dest_path} is the source itself; "
            f"writing would destroy the input — choose a different "
            f"output path")
    with EventLogWriter(dest_path, chunk_values=chunk_values) as writer:
        for case in source.iter_cases():
            writer.add_case_arrays(
                case_id=case.name.case_id,
                cid=case.name.cid,
                host=case.name.host,
                rid=case.name.rid,
                columns=case.columns(),
                call_strings=case.calls,
                path_strings=case.paths,
            )
    return Path(dest_path)


def convert_strace_dir(
    source_dir: str | os.PathLike[str],
    dest_path: str | os.PathLike[str],
    *,
    cids: set[str] | None = None,
    strict: bool = True,
    recursive: bool = False,
    workers: int | None = None,
    chunk_values: int = DEFAULT_CHUNK_VALUES,
) -> Path:
    """Parse a directory of strace files into one ``.elog`` container.

    The strace-specific entry point; equivalent to
    ``convert_source(StraceDirSource(source_dir, ...), dest_path)``.
    Parsing fans out over ``workers`` processes (``None``
    auto-detects; see :mod:`repro.ingest`) which columnarize each case
    in place; the parent streams the columns into the container as
    they arrive. ``recursive`` descends into nested per-host layouts.
    """
    from repro.sources import StraceDirSource

    return convert_source(
        StraceDirSource(source_dir, cids=cids, strict=strict,
                        recursive=recursive, workers=workers),
        dest_path, chunk_values=chunk_values)

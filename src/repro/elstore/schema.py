"""On-disk schema of the ``.elog`` event-log container.

File layout (little-endian throughout)::

    +--------------------------------------------------+
    | header: MAGIC (8) | version u16 | reserved u16   |
    |         toc_offset u64 | toc_length u64          |
    +--------------------------------------------------+
    | chunk 0 bytes | chunk 1 bytes | ...              |  (column data)
    +--------------------------------------------------+
    | TOC: UTF-8 JSON                                  |
    +--------------------------------------------------+

The TOC describes every case (group) and its columns; each column is a
list of chunk references ``(offset, nbytes, crc32)``. String pools
(calls, paths, cases, cids, hosts) live in the TOC itself — they are
small (distinct strings only) and JSON keeps them debuggable with a hex
dump and ``jq``.

Why chunked: columns are written in bounded-size chunks so a writer
can stream arbitrarily long cases with O(chunk) memory, and a reader
can verify integrity incrementally. ``bench_ablation_store`` sweeps the
chunk size.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: File magic — identifies an elstore container, versioned separately.
MAGIC = b"ELOGSTOR"
#: Bumped on incompatible layout changes.
FORMAT_VERSION = 1
#: struct format of the fixed-size header (see module docstring).
HEADER_FMT = "<8sHHQQ"
HEADER_SIZE = 8 + 2 + 2 + 8 + 8

#: Per-case column schema: name -> numpy dtype string. These are the
#: event attributes of the paper's HDF5 tables; ``call`` and ``fp`` are
#: int32 codes into the file-global pools; missing fp/size/dur are -1.
CASE_COLUMNS: dict[str, str] = {
    "pid": "<i8",
    "call": "<i4",
    "start": "<i8",
    "dur": "<i8",
    "fp": "<i4",
    "size": "<i8",
}

#: Pool names serialized in the TOC.
POOL_NAMES = ("calls", "paths", "cases", "cids", "hosts")


@dataclass(frozen=True, slots=True)
class ChunkRef:
    """Location + checksum of one chunk of column data."""

    offset: int
    nbytes: int
    crc32: int

    def to_json(self) -> list[int]:
        return [self.offset, self.nbytes, self.crc32]

    @classmethod
    def from_json(cls, data: list[int]) -> "ChunkRef":
        return cls(offset=int(data[0]), nbytes=int(data[1]),
                   crc32=int(data[2]))


@dataclass(slots=True)
class ColumnMeta:
    """One column of one case: dtype + chunk list."""

    name: str
    dtype: str
    chunks: list[ChunkRef] = field(default_factory=list)

    @property
    def nbytes(self) -> int:
        return sum(c.nbytes for c in self.chunks)

    @property
    def n_values(self) -> int:
        return self.nbytes // np.dtype(self.dtype).itemsize

    def to_json(self) -> dict:
        return {"name": self.name, "dtype": self.dtype,
                "chunks": [c.to_json() for c in self.chunks]}

    @classmethod
    def from_json(cls, data: dict) -> "ColumnMeta":
        return cls(name=data["name"], dtype=data["dtype"],
                   chunks=[ChunkRef.from_json(c) for c in data["chunks"]])


@dataclass(slots=True)
class CaseMeta:
    """One case (HDF5-group equivalent) in the container."""

    case_id: str
    cid: str
    host: str
    rid: int
    n_events: int
    columns: dict[str, ColumnMeta] = field(default_factory=dict)

    def to_json(self) -> dict:
        return {
            "case_id": self.case_id,
            "cid": self.cid,
            "host": self.host,
            "rid": self.rid,
            "n_events": self.n_events,
            "columns": {n: c.to_json() for n, c in self.columns.items()},
        }

    @classmethod
    def from_json(cls, data: dict) -> "CaseMeta":
        return cls(
            case_id=data["case_id"],
            cid=data["cid"],
            host=data["host"],
            rid=int(data["rid"]),
            n_events=int(data["n_events"]),
            columns={n: ColumnMeta.from_json(c)
                     for n, c in data["columns"].items()},
        )

"""What one catalog entry holds: the :class:`RunRecord` value object.

A record bundles everything the store persists for one run — DFG,
statistics, fired alerts, metadata — plus the deterministic content
fingerprint. The fingerprint reuses the golden-test machinery's shape
(:func:`repro.ingest.summary.cases_summary`): the same compact,
JSON-stable summary dict golden regression tests pin, hashed. Two runs
over identical trace content get identical fingerprints no matter
which entry layer recorded them (batch ``report --catalog`` or a live
watcher's finalize), because the summary is derived purely from the
DFG and statistics — the quantities batch and live are already
bit-identical on.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro import __version__
from repro.core.dfg import DFG
from repro.core.statistics import IOStatistics

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.alerts.model import Alert
    from repro.core.eventlog import EventLog


def run_fingerprint(dfg: DFG, stats: IOStatistics, *,
                    n_events: int, n_cases: int, top: int = 5) -> str:
    """Deterministic content fingerprint of one run.

    The hashed dict mirrors the golden ingestion summary
    (:func:`~repro.ingest.summary.cases_summary`): event/case counts,
    DFG shape, the top activities by node frequency, and the Eq. 8
    duration denominator. Serialized with sorted keys and compact
    separators so the hash is stable across Python versions.
    """
    frequencies = sorted(
        ((activity, dfg.node_frequency(activity))
         for activity in dfg.activities()),
        key=lambda item: (-item[1], item[0]))
    summary = {
        "n_cases": n_cases,
        "n_events": n_events,
        "dfg": {
            "nodes": dfg.n_nodes,
            "edges": dfg.n_edges,
            "observations": dfg.total_observations(),
        },
        "top_activities": [[activity, freq]
                           for activity, freq in frequencies[:top]],
        "total_dur_us": stats.total_duration_us,
    }
    payload = json.dumps(summary, sort_keys=True,
                         separators=(",", ":")).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


@dataclass(frozen=True)
class RunRecord:
    """One run, ready to commit to a :class:`~repro.catalog.RunCatalog`.

    Build through :meth:`create` (computes the fingerprint) or
    :meth:`from_log` (derives DFG and statistics from a mapped
    event-log — the batch entry layer's path).
    """

    name: str
    source: str
    mapping: str
    levels: int
    dfg: DFG
    stats: IOStatistics
    n_events: int
    n_cases: int
    fingerprint: str
    alerts: "tuple[Alert, ...]" = ()
    window: int | None = None
    n_polls: int | None = None
    wall_span_s: float | None = None
    tool_version: str = field(default=__version__)

    @classmethod
    def create(cls, *, name: str, source: str, mapping: str,
               levels: int, dfg: DFG, stats: IOStatistics,
               n_events: int, n_cases: int,
               alerts: "tuple[Alert, ...] | list[Alert]" = (),
               window: int | None = None,
               n_polls: int | None = None,
               wall_span_s: float | None = None) -> "RunRecord":
        return cls(
            name=name, source=source, mapping=mapping, levels=levels,
            dfg=dfg, stats=stats, n_events=n_events, n_cases=n_cases,
            fingerprint=run_fingerprint(dfg, stats, n_events=n_events,
                                        n_cases=n_cases),
            alerts=tuple(alerts), window=window, n_polls=n_polls,
            wall_span_s=wall_span_s)

    @classmethod
    def from_log(cls, log: "EventLog", *, name: str, source: str,
                 mapping: str, levels: int,
                 alerts: "tuple[Alert, ...] | list[Alert]" = (),
                 wall_span_s: float | None = None) -> "RunRecord":
        """Derive a record from a mapped event-log (batch layer)."""
        return cls.create(
            name=name, source=source, mapping=mapping, levels=levels,
            dfg=DFG(log), stats=IOStatistics(log),
            n_events=log.n_events, n_cases=log.n_cases,
            alerts=alerts, wall_span_s=wall_span_s)

"""Cross-run analytics: the query layer behind ``st-inspector runs``.

Everything here reads a :class:`~repro.catalog.store.RunCatalog` and
renders either text (the fixed-width tables of
:mod:`repro.pipeline.report`) or plain-data payloads (the shared JSON
serializer of :mod:`repro.pipeline.serialize`) — list with metadata
filters, per-run show, DFG diff between any two cataloged runs via the
real :class:`~repro.core.diff.DFGDiff`, and per-metric trend tables
across a run history.
"""

from __future__ import annotations

from datetime import datetime, timezone
from typing import TYPE_CHECKING

from repro.core.diff import DFGDiff
from repro.pipeline.report import _table

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.catalog.store import RunCatalog, RunRow


def _when(recorded_at: float) -> str:
    """UTC render of a ``recorded_at`` stamp (stable across hosts)."""
    stamp = datetime.fromtimestamp(recorded_at, tz=timezone.utc)
    return stamp.strftime("%Y-%m-%d %H:%M:%SZ")


def runs_table(rows: "list[RunRow]") -> str:
    """The ``runs list`` table, oldest first."""
    if not rows:
        return "(no matching runs)\n"
    body = [[str(row.id), row.name, row.source, row.mapping,
             _when(row.recorded_at), str(row.n_events),
             str(row.n_cases), str(row.n_nodes), str(row.n_edges),
             row.fingerprint[:12]]
            for row in rows]
    headers = ["id", "name", "source", "mapping", "recorded (UTC)",
               "events", "cases", "nodes", "edges", "fingerprint"]
    return _table(headers, body) + "\n"


def show_run(catalog: "RunCatalog", row: "RunRow", *,
             top: int | None = None) -> str:
    """The ``runs show`` view: metadata, statistics table, alerts."""
    from repro.pipeline.report import activity_report

    window = row.window if row.window is not None else "unbounded"
    polls = row.n_polls if row.n_polls is not None else "-"
    span = (f"{row.wall_span_s:.1f} s"
            if row.wall_span_s is not None else "-")
    lines = [
        f"run {row.id}: {row.name}",
        f"  source:       {row.source}",
        f"  mapping:      {row.mapping} (levels={row.levels}, "
        f"window={window})",
        f"  recorded:     {_when(row.recorded_at)} by st-inspector "
        f"{row.tool_version}",
        f"  wall span:    {span} ({polls} polls)",
        f"  fingerprint:  {row.fingerprint}",
        f"  size:         {row.n_events} events, {row.n_cases} cases, "
        f"{row.n_nodes} nodes, {row.n_edges} edges",
        "",
        activity_report(catalog.statistics(row.id), top=top).rstrip(),
    ]
    alerts = catalog.alerts(row.id)
    lines.append("")
    lines.append(f"  fired alerts: {len(alerts)}")
    for alert in alerts:
        lines.append(f"    [poll {alert.n_poll}] {alert.rule}/"
                     f"{alert.kind}: {alert.message}")
    return "\n".join(lines) + "\n"


def diff_runs(catalog: "RunCatalog", green_ref: str, red_ref: str,
              ) -> "tuple[RunRow, RunRow, DFGDiff]":
    """Resolve two run references and build their :class:`DFGDiff`.

    Green is the first reference (matching the coloring convention:
    deltas read green minus red). The diff carries both runs' restored
    statistics, so activity-load deltas work exactly as in the batch
    ``diff`` subcommand.
    """
    green = catalog.resolve(green_ref)
    red = catalog.resolve(red_ref)
    diff = DFGDiff(catalog.dfg(green.id), catalog.dfg(red.id),
                   catalog.statistics(green.id),
                   catalog.statistics(red.id))
    return green, red, diff


def trend_payload(catalog: "RunCatalog", metric: str, *,
                  app: str | None = None, limit: int | None = None,
                  activity: str | None = None) -> dict:
    """Per-metric values across runs, oldest first.

    Rows are activities (the union over the selected runs), ordered by
    the newest run's value descending so the currently-heaviest
    activity leads; a run missing an activity contributes ``null``.
    """
    per_run = list(catalog.metric_rows(metric, app=app, limit=limit))
    runs = [{"id": row.id, "name": row.name,
             "recorded_at": row.recorded_at} for row, _ in per_run]
    activities: set[str] = set()
    for _, values in per_run:
        activities.update(values)
    if activity is not None:
        if activity not in activities:
            from repro.catalog.schema import CatalogError
            known = ", ".join(sorted(activities)[:8])
            raise CatalogError(
                f"activity {activity!r} appears in none of the "
                f"selected runs (known: {known})")
        activities = {activity}
    latest = per_run[-1][1] if per_run else {}

    def order(name: str):
        return (-latest.get(name, float("-inf")), name)

    series = [{"activity": name,
               "values": [values.get(name) for _, values in per_run]}
              for name in sorted(activities, key=order)]
    return {"metric": metric, "runs": runs, "activities": series}


def render_trend(payload: dict) -> str:
    """Text table for a :func:`trend_payload` result."""
    runs = payload["runs"]
    if not runs:
        return "(no matching runs)\n"
    headers = ["activity"] + [f"#{r['id']} {r['name']}" for r in runs]
    rows = []
    for entry in payload["activities"]:
        cells = [entry["activity"].replace("\n", " ")]
        for value in entry["values"]:
            if value is None:
                cells.append("-")
            elif float(value).is_integer():
                cells.append(str(int(value)))
            else:
                cells.append(f"{value:.4g}")
        rows.append(cells)
    title = f"trend of {payload['metric']} across {len(runs)} runs"
    return f"{title}\n{_table(headers, rows)}\n"

""":class:`RunCatalog` — record, restore, and query cataloged runs.

Writes are transactional (:func:`~repro.catalog.schema.write_transaction`
wraps every run insert in one ``BEGIN IMMEDIATE``), so ``runs list``
can never observe a half-written run; restores rebuild the exact
in-memory objects — :meth:`dfg` via :meth:`DFG.from_counts` and
:meth:`statistics` by refilling :class:`IOStatistics` with the stored
:class:`~repro.core.statistics.ActivityStats` rows, bit-identical to
what ``compute_statistics`` produced (SQLite ``REAL`` stores IEEE
doubles exactly; integers and booleans are lossless). The only thing a
restored :class:`IOStatistics` cannot answer is :meth:`timeline` —
per-event intervals are deliberately not cataloged.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from repro.alerts.model import Alert
from repro.catalog.record import RunRecord
from repro.catalog.schema import CatalogError, connect, write_transaction
from repro.core.dfg import DFG
from repro.core.statistics import ActivityStats, IOStatistics

_RUN_COLUMNS = ("id", "name", "source", "mapping", "levels", "window",
                "recorded_at", "wall_span_s", "tool_version",
                "fingerprint", "n_events", "n_cases", "n_polls",
                "total_dur_us", "n_nodes", "n_edges")


@dataclass(frozen=True)
class RunRow:
    """One ``runs`` row — the metadata of a cataloged run."""

    id: int
    name: str
    source: str
    mapping: str
    levels: int
    window: int | None
    recorded_at: float
    wall_span_s: float | None
    tool_version: str
    fingerprint: str
    n_events: int
    n_cases: int
    n_polls: int | None
    total_dur_us: int
    n_nodes: int
    n_edges: int

    def to_json(self) -> dict:
        """Plain-data form (the shared ``runs list --json`` shape)."""
        return {column: getattr(self, column)
                for column in _RUN_COLUMNS}


class RunCatalog:
    """A persistent catalog of runs in one SQLite file.

    ``RunCatalog(path)`` creates the file (and schema) if absent;
    ``RunCatalog(path, create=False)`` requires an existing catalog —
    the query layer's stance, so ``runs list typo.db`` fails with a
    clear message instead of leaving an empty database behind.
    Connections are per-operation: the object holds only the path, so
    one instance is safe to share across fleet jobs and lives.
    """

    def __init__(self, path: str | os.PathLike[str], *,
                 create: bool = True) -> None:
        self.path = Path(path)
        # Validate (and on create=True initialize) eagerly so a bad
        # catalog fails at configuration time, not mid-run.
        connect(self.path, create=create).close()

    # -- recording ---------------------------------------------------------

    def record_run(self, record: RunRecord, *,
                   clock=time.time) -> int:
        """Commit one run atomically; returns its catalog id.

        The insert order (run row, edges, nodes, stats, alerts) is
        covered by a single transaction: a crash after any step leaves
        the catalog exactly as before the call.
        """

        def work(conn) -> int:
            run_id = self._insert_run(conn, record, clock())
            self._insert_edges(conn, run_id, record)
            self._insert_nodes(conn, run_id, record)
            self._insert_stats(conn, run_id, record)
            self._insert_alerts(conn, run_id, record)
            return run_id

        return write_transaction(self.path, work)

    def _insert_run(self, conn, record: RunRecord,
                    recorded_at: float) -> int:
        cursor = conn.execute(
            "INSERT INTO runs (name, source, mapping, levels, window, "
            "recorded_at, wall_span_s, tool_version, fingerprint, "
            "n_events, n_cases, n_polls, total_dur_us, n_nodes, "
            "n_edges) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, "
            "?, ?)",
            (record.name, record.source, record.mapping, record.levels,
             record.window, recorded_at, record.wall_span_s,
             record.tool_version, record.fingerprint, record.n_events,
             record.n_cases, record.n_polls,
             record.stats.total_duration_us, record.dfg.n_nodes,
             record.dfg.n_edges))
        return int(cursor.lastrowid)

    def _insert_edges(self, conn, run_id: int,
                      record: RunRecord) -> None:
        conn.executemany(
            "INSERT INTO edges (run_id, src, dst, count) "
            "VALUES (?, ?, ?, ?)",
            ((run_id, src, dst, count)
             for (src, dst), count in sorted(record.dfg.edges().items())))

    def _insert_nodes(self, conn, run_id: int,
                      record: RunRecord) -> None:
        conn.executemany(
            "INSERT INTO nodes (run_id, activity, frequency) "
            "VALUES (?, ?, ?)",
            ((run_id, node, record.dfg.node_frequency(node))
             for node in sorted(record.dfg.nodes())))

    def _insert_stats(self, conn, run_id: int,
                      record: RunRecord) -> None:
        rows = (record.stats[activity]
                for activity in sorted(record.stats.activities()))
        conn.executemany(
            "INSERT INTO stats (run_id, activity, event_count, "
            "total_dur_us, relative_duration, total_bytes, "
            "has_transfers, process_data_rate, max_concurrency, ranks, "
            "cases, approximate) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, "
            "?, ?, ?)",
            ((run_id, s.activity, s.event_count, s.total_dur_us,
              s.relative_duration, s.total_bytes, int(s.has_transfers),
              s.process_data_rate, s.max_concurrency, s.ranks, s.cases,
              int(s.approximate)) for s in rows))

    def _insert_alerts(self, conn, run_id: int,
                       record: RunRecord) -> None:
        conn.executemany(
            "INSERT INTO alerts (run_id, seq, rule, kind, subject, "
            "message, value, threshold, n_poll, total_events) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            ((run_id, seq, a.rule, a.kind, a.subject, a.message,
              a.value, a.threshold, a.n_poll, a.total_events)
             for seq, a in enumerate(record.alerts)))

    # -- lookup ------------------------------------------------------------

    def _read(self):
        return connect(self.path, create=False)

    def list_runs(self, *, app: str | None = None,
                  source: str | None = None,
                  mapping: str | None = None,
                  limit: int | None = None) -> list[RunRow]:
        """Metadata rows, oldest first, with optional filters.

        ``app`` matches the run name exactly; ``source`` is a
        substring match on the recorded source URI; ``mapping``
        matches the mapping name exactly.
        """
        clauses, params = [], []
        if app is not None:
            clauses.append("name = ?")
            params.append(app)
        if source is not None:
            clauses.append("source LIKE ?")
            params.append(f"%{source}%")
        if mapping is not None:
            clauses.append("mapping = ?")
            params.append(mapping)
        where = f" WHERE {' AND '.join(clauses)}" if clauses else ""
        tail = ""
        if limit is not None:
            # Newest N, presented oldest-first like the full listing.
            tail = " ORDER BY id DESC LIMIT ?"
            params.append(limit)
        with self._read() as conn:
            rows = conn.execute(
                f"SELECT {', '.join(_RUN_COLUMNS)} FROM runs{where}"
                f"{tail or ' ORDER BY id'}", params).fetchall()
        result = [RunRow(*row) for row in rows]
        if limit is not None:
            result.reverse()
        return result

    def last_runs(self, k: int, *, app: str | None = None,
                  ) -> list[RunRow]:
        """The newest ``k`` (filtered) runs, newest first."""
        rows = self.list_runs(app=app, limit=k)
        return list(reversed(rows))

    def get_run(self, run_id: int) -> RunRow:
        with self._read() as conn:
            row = conn.execute(
                f"SELECT {', '.join(_RUN_COLUMNS)} FROM runs "
                f"WHERE id = ?", (run_id,)).fetchone()
        if row is None:
            raise CatalogError(
                f"no run {run_id} in catalog {self.path} "
                f"(ids: see `st-inspector runs list {self.path}`)")
        return RunRow(*row)

    def resolve(self, ref: str | int) -> RunRow:
        """A run reference: a numeric catalog id, or a run *name*
        (resolving to that app's newest run)."""
        text = str(ref)
        if text.isdigit():
            return self.get_run(int(text))
        newest = self.last_runs(1, app=text)
        if not newest:
            raise CatalogError(
                f"no run named {text!r} in catalog {self.path} "
                f"(names: {self._known_names()})")
        return newest[0]

    def _known_names(self) -> str:
        with self._read() as conn:
            names = [row[0] for row in conn.execute(
                "SELECT DISTINCT name FROM runs ORDER BY name "
                "LIMIT 8")]
        return ", ".join(names) if names else "(catalog is empty)"

    # -- restore -----------------------------------------------------------

    def dfg(self, run_id: int) -> DFG:
        """The run's exact DFG (edge counts + node frequencies)."""
        with self._read() as conn:
            edges = {(src, dst): int(count) for src, dst, count in
                     conn.execute("SELECT src, dst, count FROM edges "
                                  "WHERE run_id = ?", (run_id,))}
            freq = {activity: int(frequency) for activity, frequency in
                    conn.execute("SELECT activity, frequency FROM "
                                 "nodes WHERE run_id = ?", (run_id,))}
        if not freq:
            self.get_run(run_id)  # raises for an unknown id
        return DFG.from_counts(edges, freq)

    def statistics(self, run_id: int) -> IOStatistics:
        """The run's Sec. IV-B statistics, bit-identical to what was
        recorded (no timelines — those are not cataloged)."""
        row = self.get_run(run_id)
        stats: dict[str, ActivityStats] = {}
        with self._read() as conn:
            for (activity, event_count, total_dur_us,
                 relative_duration, total_bytes, has_transfers,
                 process_data_rate, max_concurrency, ranks, cases,
                 approximate) in conn.execute(
                     "SELECT activity, event_count, total_dur_us, "
                     "relative_duration, total_bytes, has_transfers, "
                     "process_data_rate, max_concurrency, ranks, "
                     "cases, approximate FROM stats WHERE run_id = ?",
                     (run_id,)):
                stats[activity] = ActivityStats(
                    activity=activity,
                    event_count=int(event_count),
                    total_dur_us=int(total_dur_us),
                    relative_duration=float(relative_duration),
                    total_bytes=int(total_bytes),
                    has_transfers=bool(has_transfers),
                    process_data_rate=(
                        None if process_data_rate is None
                        else float(process_data_rate)),
                    max_concurrency=int(max_concurrency),
                    ranks=int(ranks),
                    cases=int(cases),
                    approximate=bool(approximate))
        restored = IOStatistics()
        restored._stats = stats
        restored._total_dur_us = int(row.total_dur_us)
        return restored

    def alerts(self, run_id: int) -> list[Alert]:
        """The run's fired-alert history, in firing order."""
        with self._read() as conn:
            rows = conn.execute(
                "SELECT rule, kind, subject, message, value, "
                "threshold, n_poll, total_events FROM alerts "
                "WHERE run_id = ? ORDER BY seq", (run_id,)).fetchall()
        return [Alert(rule=rule, kind=kind, subject=subject,
                      message=message,
                      value=None if value is None else float(value),
                      threshold=(None if threshold is None
                                 else float(threshold)),
                      n_poll=int(n_poll),
                      total_events=int(total_events))
                for (rule, kind, subject, message, value, threshold,
                     n_poll, total_events) in rows]

    def metric_rows(self, metric: str, *, app: str | None = None,
                    limit: int | None = None,
                    ) -> Iterator[tuple[RunRow, dict[str, float]]]:
        """Per-run ``{activity: metric value}`` maps, oldest first —
        the raw material of the trend table."""
        from repro.core.statistics import METRIC_NAMES

        if metric not in METRIC_NAMES:
            raise CatalogError(
                f"unknown metric {metric!r} "
                f"(known: {', '.join(METRIC_NAMES)})")
        for row in self.list_runs(app=app, limit=limit):
            stats = self.statistics(row.id)
            yield row, {activity: stats.metric(activity, metric)
                        for activity in stats.activities()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RunCatalog({str(self.path)!r})"

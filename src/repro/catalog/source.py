"""``catalog:`` — mined baselines from run history.

``baseline = "catalog:cat.db?app=ior&agg=last"`` in a rules file makes
the alert baseline *come from the catalog* instead of a hand-picked
known-good run:

- ``agg=last`` (default) — the newest matching run's DFG + statistics,
  exactly as recorded;
- ``agg=union&k=K`` — the per-edge union over the last ``K`` matching
  runs (all matching runs when ``k`` is omitted): an edge is in the
  baseline if *any* of the K runs observed it, with the maximum
  observed count; node frequencies likewise per-node maxima; activity
  statistics from the most recent run containing each activity. Union
  baselines suppress new-edge alerts for anything seen recently, which
  is what a week of known-good history is for.

The seam is the rule engine's lazy baseline hook: an
:class:`~repro.sources.base.TraceSource` normally supplies a baseline
via ``event_log()``, but the catalog stores aggregates, not events —
so :class:`CatalogSource` exposes :meth:`baseline_pair` and the engine
duck-types on it. ``iter_cases`` therefore refuses with a pointer at
the right tools; passing ``catalog:`` to ``convert`` is a usage error,
not a silent empty log.

The cataloged runs' mapping must match the live watch's mapping (same
activity namespace, or the diff is meaningless); a mismatch raises at
baseline-build time with both names in the message.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, ClassVar, Iterator

from repro._util.errors import SourceError
from repro.catalog.schema import CatalogError
from repro.catalog.store import RunCatalog, RunRow
from repro.core.dfg import DFG
from repro.core.statistics import IOStatistics
from repro.sources.base import SourceOptions, TraceSource

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ingest.parallel import CaseColumns

_AGGREGATES = ("last", "union")


class CatalogSource(TraceSource):
    """Alert baselines mined from a :class:`RunCatalog`.

    Construction validates eagerly — the catalog must exist, be a
    supported version, and hold at least one matching run — so
    ``AlertEngine.validate()`` (and with it ``--rules`` parsing) fails
    at configuration time. :meth:`baseline_pair` re-queries at call
    time: by the moment a lazily-built baseline is first needed,
    sibling fleet jobs may have appended newer runs, and ``last``
    should mean *last*.
    """

    scheme: ClassVar[str] = "catalog"

    def __init__(self, path: str, *, app: str | None = None,
                 agg: str = "last", k: int | None = None) -> None:
        if agg not in _AGGREGATES:
            raise SourceError(
                f"catalog: unknown agg={agg!r} "
                f"(expected {' or '.join(_AGGREGATES)})")
        if k is not None and agg != "union":
            raise SourceError(
                "catalog: k=N only applies to agg=union "
                "(agg=last always takes the single newest run)")
        if k is not None and k < 1:
            raise SourceError(f"catalog: k must be >= 1, got {k}")
        self.catalog = RunCatalog(path, create=False)
        self.app = app
        self.agg = agg
        self.k = k
        if not self._matching(limit=1):
            raise CatalogError(
                f"catalog {path} holds no"
                f"{f' run named {app!r}' if app else ' runs'} to mine "
                f"a baseline from (record one first, then point "
                f"rules at it)")

    @classmethod
    def from_uri(cls, target: str, options: dict[str, str],
                 opts: SourceOptions) -> "CatalogSource":
        known = {"app", "agg", "k"}
        unknown = sorted(set(options) - known)
        if unknown:
            raise SourceError(
                f"catalog: unknown option(s) {unknown} "
                f"(known: {sorted(known)})")
        k: int | None = None
        if "k" in options:
            try:
                k = int(options["k"])
            except ValueError:
                raise SourceError(
                    f"catalog: k must be an integer, "
                    f"got {options['k']!r}") from None
        return cls(target, app=options.get("app"),
                   agg=options.get("agg", "last"), k=k)

    # -- TraceSource surface ------------------------------------------------

    def iter_cases(self) -> "Iterator[CaseColumns]":
        raise SourceError(
            f"{self.describe()} stores per-run aggregates (DFG + "
            f"statistics), not events — it cannot be converted or "
            f"re-ingested. Use it as an alert baseline "
            f"(baseline = \"catalog:...\") or query it with "
            f"`st-inspector runs list/show/diff/trend`.")

    def describe(self) -> str:
        detail = f"agg={self.agg}" + (f", k={self.k}" if self.k else "")
        if self.app:
            detail = f"app={self.app!r}, {detail}"
        return f"run catalog {self.catalog.path} ({detail})"

    # -- the baseline seam --------------------------------------------------

    def _matching(self, *, limit: int | None = None) -> list[RunRow]:
        return self.catalog.last_runs(
            limit if limit is not None else 10 ** 9, app=self.app)

    def baseline_pair(self, mapping) -> tuple[DFG, IOStatistics]:
        """Mine ``(DFG, IOStatistics)`` for the engine's baseline.

        ``mapping`` is the live engine's mapping object; every mined
        run must have been recorded under the same mapping name.
        """
        limit = 1 if self.agg == "last" else self.k
        rows = self._matching(limit=limit)
        if not rows:  # the catalog shrank since construction (rare)
            raise CatalogError(
                f"{self.describe()}: no matching runs left to mine")
        for row in rows:
            if row.mapping != mapping.name:
                raise CatalogError(
                    f"{self.describe()}: cataloged run {row.id} was "
                    f"recorded under mapping {row.mapping!r} but the "
                    f"live watch maps with {mapping.name!r} — baseline "
                    f"and watch must share one activity mapping")
        if self.agg == "last":
            newest = rows[0]
            return (self.catalog.dfg(newest.id),
                    self.catalog.statistics(newest.id))
        return self._union(rows)

    def _union(self, rows: list[RunRow]) -> tuple[DFG, IOStatistics]:
        """Per-edge union over ``rows`` (newest first)."""
        edges: dict[tuple[str, str], int] = {}
        freq: dict[str, int] = {}
        stats_by_activity: dict = {}
        for row in rows:  # newest first: first writer wins for stats
            dfg = self.catalog.dfg(row.id)
            for edge, count in dfg.edges().items():
                edges[edge] = max(edges.get(edge, 0), count)
            for node in dfg.nodes():
                frequency = dfg.node_frequency(node)
                freq[node] = max(freq.get(node, 0), frequency)
            run_stats = self.catalog.statistics(row.id)
            for activity in run_stats.activities():
                stats_by_activity.setdefault(activity,
                                             run_stats[activity])
        merged = IOStatistics()
        merged._stats = stats_by_activity
        merged._total_dur_us = rows[0].total_dur_us
        return DFG.from_counts(edges, freq), merged

"""Pre-compaction alert capture: :class:`AlertExportBuffer`.

:class:`~repro.alerts.engine.AlertEngine` bounds its in-memory history
at ``history_limit`` by folding the oldest alerts into per-identity
counts — full detail (message, value, poll number) is discarded. The
engine's ``export_hook`` fires with exactly those alerts *before* the
fold; this buffer is the hook's standard consumer. A watch job attaches
one per engine, and at finalize the buffer's contents plus the engine's
surviving ``history`` reconstruct the complete fired-alert sequence for
the catalog (ROADMAP item 5d). The hook is deliberately just a
callable: anything accepting ``list[Alert]`` (a JSONL appender, a
network forwarder) can stand in the same seam.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.alerts.model import Alert


class AlertExportBuffer:
    """Collects alerts the engine is about to compact away.

    Alerts arrive oldest-first (the engine compacts from the front of
    its history), so ``exported`` + the engine's remaining ``history``
    is the full firing sequence in chronological order.
    """

    def __init__(self) -> None:
        self.exported: "list[Alert]" = []

    def __call__(self, alerts: "Iterable[Alert]") -> None:
        self.exported.extend(alerts)

    def full_history(self, remaining: "Iterable[Alert]",
                     ) -> "tuple[Alert, ...]":
        """Exported detail followed by the still-live history."""
        return tuple(self.exported) + tuple(remaining)

    def __len__(self) -> int:
        return len(self.exported)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AlertExportBuffer(exported={len(self.exported)})"

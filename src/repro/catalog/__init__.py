"""Persistent run catalog with cross-run analytics and mined baselines.

Every other layer of the tool answers questions about *one* run (or a
pair, for diffs); the catalog answers longitudinal ones. One stdlib-
``sqlite3`` file persists, per run: the DFG edge list, the full
Sec. IV-B per-activity statistics vector, run metadata (source URI,
mapping, window, wall-clock span, tool version, a deterministic content
fingerprint), and the fired-alert history — recorded from any entry
layer (``convert``/``report --catalog``, a live watch's finalize, a
fleet job's ``catalog`` key) and queried from one (``st-inspector runs
list/show/diff/trend``).

On top of the store, the ``catalog:`` source scheme mines alert
baselines from history (``baseline = "catalog:cat.db?app=ior&agg=last"``
in a rules file): last run, or the per-edge union over the last K runs.

- :mod:`~repro.catalog.schema` — versioned SQLite layout, WAL +
  retry-on-busy transactional writes;
- :mod:`~repro.catalog.record` — the :class:`RunRecord` value object
  and the golden-shaped content fingerprint;
- :mod:`~repro.catalog.store` — :class:`RunCatalog`: record, restore
  (bit-identical statistics), query;
- :mod:`~repro.catalog.export` — :class:`AlertExportBuffer`, the
  standard consumer of the engine's pre-compaction export hook;
- :mod:`~repro.catalog.source` — :class:`CatalogSource`, the
  ``catalog:`` scheme and mined-baseline aggregation;
- :mod:`~repro.catalog.analytics` — the ``runs`` subcommand's
  list/show/diff/trend views.
"""

from repro.catalog.analytics import (
    diff_runs,
    render_trend,
    runs_table,
    show_run,
    trend_payload,
)
from repro.catalog.export import AlertExportBuffer
from repro.catalog.record import RunRecord, run_fingerprint
from repro.catalog.schema import (
    CATALOG_VERSION,
    LOADABLE_VERSIONS,
    CatalogError,
)
from repro.catalog.source import CatalogSource
from repro.catalog.store import RunCatalog, RunRow

__all__ = [
    "CATALOG_VERSION",
    "LOADABLE_VERSIONS",
    "AlertExportBuffer",
    "CatalogError",
    "CatalogSource",
    "RunCatalog",
    "RunRecord",
    "RunRow",
    "diff_runs",
    "render_trend",
    "run_fingerprint",
    "runs_table",
    "show_run",
    "trend_payload",
]

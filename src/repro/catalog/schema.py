"""The catalog's SQLite schema: versioned, WAL, multi-writer safe.

One ``.db`` file holds every recorded run. The layout is deliberately
relational rather than blob-shaped so ``runs list/trend`` stay one
``SELECT`` each:

- ``runs`` — one row of metadata per recorded run (source URI, mapping,
  window, wall-clock span, tool version, the deterministic content
  fingerprint, counts);
- ``edges`` / ``nodes`` — the DFG edge list with observation counts and
  the node frequencies (together they rebuild the exact
  :class:`~repro.core.dfg.DFG` via :meth:`DFG.from_counts`);
- ``stats`` — the full Sec. IV-B per-activity vector (every
  :data:`~repro.core.statistics.METRIC_NAMES` metric plus the
  ranks/cases/approximate fields of
  :class:`~repro.core.statistics.ActivityStats`). SQLite ``REAL`` is an
  IEEE-754 double, so floats round-trip bit-identically;
- ``alerts`` — the fired-alert history, full detail (what
  ``history_limit`` compaction would otherwise degrade to counts).

Versioning follows the checkpoint-sidecar discipline
(:mod:`repro.live.checkpoint`): ``PRAGMA user_version`` stamps every
catalog at creation, loadable versions are an explicit set, and an
unknown *newer* version is rejected with a :class:`CatalogError` — the
CLI maps it to exit 2, same as an unsupported sidecar.

Concurrency: the catalog is opened in WAL mode with a busy timeout, and
every write runs inside one ``BEGIN IMMEDIATE`` transaction retried on
``database is locked`` — several fleet jobs appending runs to one
shared catalog serialize cleanly, and a reader never observes a
half-written run.
"""

from __future__ import annotations

import os
import sqlite3
import time
from pathlib import Path

from repro._util.errors import ReproError

#: Schema version stamped into ``PRAGMA user_version`` at creation.
CATALOG_VERSION = 1

#: Versions this build can read. Mirrors the checkpoint sidecar's
#: ``_LOADABLE_VERSIONS``: an unknown (newer) stamp is rejected rather
#: than guessed at.
LOADABLE_VERSIONS = frozenset({CATALOG_VERSION})

#: Seconds SQLite itself waits on a locked database before raising.
_BUSY_TIMEOUT_S = 5.0

#: Extra retry loop on top of the busy timeout (fleet jobs committing
#: their runs at the same finalize instant).
_BUSY_RETRIES = 6
_BUSY_BACKOFF_S = 0.05

_SCHEMA_DDL = """
CREATE TABLE IF NOT EXISTS runs (
    id            INTEGER PRIMARY KEY AUTOINCREMENT,
    name          TEXT NOT NULL,
    source        TEXT NOT NULL,
    mapping       TEXT NOT NULL,
    levels        INTEGER NOT NULL,
    window        INTEGER,
    recorded_at   REAL NOT NULL,
    wall_span_s   REAL,
    tool_version  TEXT NOT NULL,
    fingerprint   TEXT NOT NULL,
    n_events      INTEGER NOT NULL,
    n_cases       INTEGER NOT NULL,
    n_polls       INTEGER,
    total_dur_us  INTEGER NOT NULL,
    n_nodes       INTEGER NOT NULL,
    n_edges       INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS edges (
    run_id  INTEGER NOT NULL REFERENCES runs(id) ON DELETE CASCADE,
    src     TEXT NOT NULL,
    dst     TEXT NOT NULL,
    count   INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS nodes (
    run_id     INTEGER NOT NULL REFERENCES runs(id) ON DELETE CASCADE,
    activity   TEXT NOT NULL,
    frequency  INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS stats (
    run_id             INTEGER NOT NULL
                       REFERENCES runs(id) ON DELETE CASCADE,
    activity           TEXT NOT NULL,
    event_count        INTEGER NOT NULL,
    total_dur_us       INTEGER NOT NULL,
    relative_duration  REAL NOT NULL,
    total_bytes        INTEGER NOT NULL,
    has_transfers      INTEGER NOT NULL,
    process_data_rate  REAL,
    max_concurrency    INTEGER NOT NULL,
    ranks              INTEGER NOT NULL,
    cases              INTEGER NOT NULL,
    approximate        INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS alerts (
    run_id        INTEGER NOT NULL REFERENCES runs(id) ON DELETE CASCADE,
    seq           INTEGER NOT NULL,
    rule          TEXT NOT NULL,
    kind          TEXT NOT NULL,
    subject       TEXT NOT NULL,
    message       TEXT NOT NULL,
    value         REAL,
    threshold     REAL,
    n_poll        INTEGER NOT NULL,
    total_events  INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_runs_name ON runs(name, id);
CREATE INDEX IF NOT EXISTS idx_edges_run ON edges(run_id);
CREATE INDEX IF NOT EXISTS idx_nodes_run ON nodes(run_id);
CREATE INDEX IF NOT EXISTS idx_stats_run ON stats(run_id);
CREATE INDEX IF NOT EXISTS idx_alerts_run ON alerts(run_id);
"""


class CatalogError(ReproError):
    """A run-catalog problem: missing file, foreign format, version
    mismatch, or an unresolvable run reference. The CLI maps it to
    exit 2 (a configuration error, like a malformed rules file)."""


def connect(path: str | os.PathLike[str], *,
            create: bool = False) -> sqlite3.Connection:
    """Open (and on ``create=True`` initialize) a catalog connection.

    Every open checks ``PRAGMA user_version``: a fresh file is stamped
    with :data:`CATALOG_VERSION`, a known version passes, an unknown —
    necessarily newer — version raises :class:`CatalogError` with the
    same shape of message the checkpoint loader uses. A SQLite file
    that carries tables but no version stamp is some *other* database,
    not a catalog, and is rejected too.
    """
    db = Path(path)
    if not create and not db.exists():
        raise CatalogError(
            f"no such run catalog: {db} (record a run first: "
            f"--catalog {db} on convert/report/watch, or a fleet "
            f"job's catalog key)")
    try:
        conn = sqlite3.connect(db, timeout=_BUSY_TIMEOUT_S)
    except sqlite3.Error as exc:  # pragma: no cover - unopenable path
        raise CatalogError(f"cannot open run catalog {db}: {exc}") from exc
    try:
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA foreign_keys=ON")
        conn.execute("PRAGMA synchronous=NORMAL")
        version = conn.execute("PRAGMA user_version").fetchone()[0]
        if version == 0:
            populated = conn.execute(
                "SELECT 1 FROM sqlite_master WHERE type='table' "
                "LIMIT 1").fetchone()
            if populated is not None:
                raise CatalogError(
                    f"{db} is a SQLite database but not a run catalog "
                    f"(it has tables yet no catalog version stamp)")
            if not create:
                raise CatalogError(
                    f"{db} is empty — not a run catalog (record a run "
                    f"first)")
            # IF NOT EXISTS keeps a two-writer initialization race
            # benign: both arrive at the same schema and stamp.
            conn.executescript(_SCHEMA_DDL)
            conn.execute(f"PRAGMA user_version = {CATALOG_VERSION}")
            conn.commit()
        elif version not in LOADABLE_VERSIONS:
            raise CatalogError(
                f"unsupported catalog version {version!r} in {db} "
                f"(this build writes {CATALOG_VERSION}) — the catalog "
                f"was written by a newer st-inspector; upgrade, or "
                f"point at a compatible catalog")
    except sqlite3.DatabaseError as exc:
        conn.close()
        raise CatalogError(
            f"{db} is not a run catalog: {exc}") from exc
    except BaseException:
        conn.close()
        raise
    return conn


def write_transaction(path: str | os.PathLike[str], work, *,
                      sleep=time.sleep):
    """Run ``work(conn)`` inside one immediate transaction, retrying on
    lock contention.

    ``BEGIN IMMEDIATE`` takes the write lock up front so the whole run
    insert is a single atomic unit: a crash (or a monkeypatched kill —
    the crash-consistency tests) anywhere between the first and the
    last ``INSERT`` rolls back to "run never happened"; readers under
    WAL keep seeing the previous committed state throughout. Retries
    cover sibling fleet jobs committing concurrently; anything other
    than lock contention propagates after a rollback.
    """
    last: sqlite3.OperationalError | None = None
    for attempt in range(_BUSY_RETRIES):
        conn = connect(path, create=True)
        try:
            conn.execute("BEGIN IMMEDIATE")
            result = work(conn)
            conn.commit()
            return result
        except sqlite3.OperationalError as exc:
            conn.rollback()
            message = str(exc).lower()
            if "locked" not in message and "busy" not in message:
                raise CatalogError(
                    f"catalog write to {path} failed: {exc}") from exc
            last = exc
        finally:
            conn.close()
        sleep(_BUSY_BACKOFF_S * (attempt + 1))
    raise CatalogError(
        f"catalog {path} stayed locked after {_BUSY_RETRIES} "
        f"attempts: {last}") from last

"""Reproduction of *Inspection of I/O Operations from System Call Traces
using Directly-Follows-Graph* (Sankaran, Zhukov, Frings, Bientinesi —
SC-W 2024, arXiv:2408.07378).

The library synthesizes I/O system-call traces into Directly-Follows
Graphs (DFGs) annotated with I/O statistics, and compares programs or
configurations via graph coloring. Subpackages:

- :mod:`repro.strace` — strace trace parsing (Sec. III).
- :mod:`repro.ingest` — the scale-out ingestion engine: streaming
  tokenization, process-pool fan-out (``workers=``), sharded DFG
  construction over the union algebra.
- :mod:`repro.sources` — the pluggable trace-source API: one registry
  (``open_source``) behind every entry point, with batch strace
  directories, ``.elog`` stores, CSV dumps and simulated workloads as
  first-class schemes (``strace:``, ``elog:``, ``csv:``, ``sim:``).
- :mod:`repro.elstore` — the single-file event-log container (the
  paper's HDF5 store, reimplemented; see DESIGN.md §2).
- :mod:`repro.core` — event-log formalism, DFG synthesis, statistics,
  coloring, rendering (Sec. IV).
- :mod:`repro.live` — incremental ingestion of *growing* trace
  directories: byte-offset tailing with carry-over merge state, an
  incrementally folded DFG, resumable checkpoints, and the
  ``st-inspector watch`` refresh loop.
- :mod:`repro.alerts` — live alerting over the refresh deltas:
  declarative threshold rules (new edges, weight/load ratios, Sec.
  IV-B metric bounds, sealing starvation) fired into pluggable sinks,
  with latches and history surviving checkpoint restarts.
- :mod:`repro.simulate` — discrete-event simulator of HPC I/O workloads
  (IOR, ``ls``) over a GPFS-like filesystem model, emitting authentic
  strace text (substitute for the paper's JUWELS testbed).
- :mod:`repro.pipeline` — end-to-end sessions, reports.
- :mod:`repro.st_inspector` — facade exposing the paper's exact Fig. 6
  API names.

Quickstart::

    from repro import EventLog, CallTopDirs, DFG, IOStatistics, DFGViewer
    log = EventLog.from_source("traces/")        # or "strace:traces/",
    #   "elog:run.elog", "csv:events.csv", "sim:ior?ranks=4" — every
    #   input goes through the same trace-source registry.
    log.apply_mapping_fn(CallTopDirs(levels=2))
    dfg = DFG(log)
    stats = IOStatistics(log)
    print(DFGViewer(dfg, stats).render("ascii"))

Migration note: the per-format constructors
``EventLog.from_strace_dir`` / ``EventLog.from_store`` (and their
``InspectionSession`` twins) are deprecated shims over
``from_source`` — same results, byte for byte; new code should pass a
path or scheme URI to ``from_source`` / ``open_source`` instead.
"""

from repro.alerts import (
    Alert,
    AlertEngine,
    NewEdgeRule,
    StatThresholdRule,
)
from repro.core import (
    DFG,
    ActivityLog,
    CallOnly,
    CallPath,
    CallPathTail,
    CallTopDirs,
    END_ACTIVITY,
    Event,
    EventFrame,
    EventLog,
    IOStatistics,
    Mapping,
    PartitionColoring,
    PartitionEL,
    PlainColoring,
    RegexMapping,
    RestrictedMapping,
    START_ACTIVITY,
    SiteVariables,
    StatisticsColoring,
    Style,
    mapping_from_callable,
)
from repro.core.render import (
    DFGViewer,
    render_ascii,
    render_dot,
    render_svg,
    render_timeline_ascii,
    render_timeline_svg,
)
from repro.elstore import (
    EventLogStore,
    convert_source,
    convert_strace_dir,
    read_event_log,
    write_event_log,
)
from repro.sources import (
    CsvLogSource,
    ElstoreSource,
    SimulationSource,
    StraceDirSource,
    TraceSource,
    UnsupportedSourceOptionWarning,
    open_source,
    register_source,
    registered_schemes,
)

__version__ = "1.1.0"

__all__ = [
    "Alert",
    "AlertEngine",
    "DFG",
    "ActivityLog",
    "CallOnly",
    "CallPath",
    "CallPathTail",
    "CallTopDirs",
    "END_ACTIVITY",
    "Event",
    "EventFrame",
    "EventLog",
    "IOStatistics",
    "Mapping",
    "NewEdgeRule",
    "PartitionColoring",
    "PartitionEL",
    "PlainColoring",
    "RegexMapping",
    "RestrictedMapping",
    "START_ACTIVITY",
    "SiteVariables",
    "StatThresholdRule",
    "StatisticsColoring",
    "Style",
    "mapping_from_callable",
    "DFGViewer",
    "render_ascii",
    "render_dot",
    "render_svg",
    "render_timeline_ascii",
    "render_timeline_svg",
    "EventLogStore",
    "convert_source",
    "convert_strace_dir",
    "read_event_log",
    "write_event_log",
    "CsvLogSource",
    "ElstoreSource",
    "SimulationSource",
    "StraceDirSource",
    "TraceSource",
    "UnsupportedSourceOptionWarning",
    "open_source",
    "register_source",
    "registered_schemes",
    "__version__",
]

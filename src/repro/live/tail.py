"""Following one growing trace file across polls.

A :class:`FileTail` is the live counterpart of
:class:`~repro.ingest.streaming.TokenStream`: instead of streaming a
finished file front to back, it resumes from a persisted byte offset on
every poll, consumes the newly appended bytes, and carries two pieces
of parse state forward so incremental parsing is indistinguishable from
batch parsing of the final file:

- the **line carry** — the bytes of a trailing line not yet terminated
  by a newline (strace appends whole lines, but a poll can race the
  write; a held-back trailing ``\\r`` may also pair with a ``\\n`` that
  arrives next poll);
- the **merge state** — the per-pid unfinished/resumed slot and the
  seal buffer of :class:`~repro.strace.resume.IncrementalMerger`, so a
  syscall whose two halves land in different polls merges exactly as
  Sec. III prescribes.

Byte-level decoding reuses the batch reader's diagnosis
(:func:`~repro.ingest.streaming.decode_trace_line`): undecodable bytes
raise under ``strict=True`` and are counted as U+FFFD replacements
otherwise. Line numbers are cumulative across polls, so parse errors
point at the same line batch parsing would name.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro._util.errors import TraceParseError
from repro.ingest.streaming import (
    _CHUNK_BYTES,
    _NEWLINE_BYTES_RE,
    decode_trace_line,
)
from repro.strace.naming import TraceFileName
from repro.strace.parser import ParsedRecord
from repro.strace.resume import IncrementalMerger
from repro.strace.tokenizer import Token, tokenize_line
from repro.telemetry.spans import NULL_TELEMETRY


class FileTail:
    """Incremental reader of one ``.st`` trace file.

    Attributes
    ----------
    path, name:
        The file and its (cid, host, rid) case identity.
    offset:
        Bytes consumed so far (everything before it is parsed or held
        in :attr:`carry`). Checkpoints persist this.
    merger:
        The carry-over merge state; its :attr:`~IncrementalMerger.stats`
        accumulate exactly the per-file diagnostics batch reading
        reports (including ``decode_replacements``).
    """

    __slots__ = ("path", "name", "strict", "default_pid", "offset",
                 "carry", "lineno", "merger", "finished", "telemetry")

    def __init__(self, path: str | os.PathLike[str],
                 name: TraceFileName | None = None, *,
                 strict: bool = True, default_pid: int = 0,
                 telemetry=None) -> None:
        from repro.strace.naming import parse_trace_filename

        self.path = Path(path)
        self.name = name or parse_trace_filename(self.path.name)
        self.strict = strict
        self.default_pid = default_pid
        self.offset = 0
        self.carry = b""
        self.lineno = 0
        self.merger = IncrementalMerger(path=str(self.path), strict=strict)
        self.finished = False
        self.telemetry = telemetry if telemetry is not None \
            else NULL_TELEMETRY

    # -- polling -----------------------------------------------------------

    def poll(self) -> list[ParsedRecord]:
        """Consume newly appended bytes; return newly *sealed* records.

        Sealed records are final — their position in the case's record
        sequence can no longer change — so callers fold them into the
        incremental DFG immediately. Records completed but still
        waiting behind an in-flight unfinished call stay buffered in
        the merger until a later poll (or :meth:`finish`) seals them.

        The appended region is consumed in bounded chunks (the batch
        reader's granularity), so pointing a fresh follower at a
        directory that already holds multi-GB files never materializes
        a whole file in memory.
        """
        if self.finished:
            raise TraceParseError(
                "poll() after finish()", path=str(self.path))
        try:
            size = os.path.getsize(self.path)
        except OSError as exc:
            raise TraceParseError(
                f"trace file vanished mid-follow: {exc}",
                path=str(self.path)) from exc
        if size < self.offset:
            raise TraceParseError(
                f"trace file shrank from {self.offset} to {size} bytes — "
                f"truncated or rotated under the follower",
                path=str(self.path))
        if size == self.offset:
            return []
        telemetry = self.telemetry
        records: list[ParsedRecord] = []
        with open(self.path, "rb") as handle:
            handle.seek(self.offset)
            remaining = size - self.offset
            while remaining:
                with telemetry.phase("tail"):
                    chunk = handle.read(min(_CHUNK_BYTES, remaining))
                if not chunk:
                    raise TraceParseError(
                        f"trace file shrank to {self.offset} bytes "
                        f"mid-read (expected {size}) — truncated or "
                        f"rotated under the follower",
                        path=str(self.path))
                remaining -= len(chunk)
                self.offset += len(chunk)
                with telemetry.phase("decode"):
                    tokens = self._split_lines(chunk)
                with telemetry.phase("seal"):
                    records.extend(self.merger.feed(tokens))
        return records

    def finish(self) -> list[ParsedRecord]:
        """End of growth: flush the carry, orphan in-flight calls, and
        seal every remaining record (batch EOF semantics)."""
        if self.finished:
            return []
        self.finished = True
        tokens: list[Token] = []
        carry = self.carry
        self.carry = b""
        if carry.endswith(b"\r"):  # lone '\r' at EOF terminates the line
            carry = carry[:-1]
        if carry:
            with self.telemetry.phase("decode"):
                token = self._tokenize(carry)
            if token is not None:
                tokens.append(token)
        with self.telemetry.phase("seal"):
            records = self.merger.feed(tokens) if tokens else []
            return records + self.merger.finish()

    # -- internals ---------------------------------------------------------

    def _split_lines(self, data: bytes) -> list[Token]:
        """Split appended bytes into tokens, updating the line carry.

        Mirrors the universal-newline splitting of the batch reader's
        ``_iter_raw_lines``: a trailing ``\\r`` is held back because the
        matching ``\\n`` may start the next poll's bytes.
        """
        data = self.carry + data
        if data.endswith(b"\r"):
            data, hold = data[:-1], b"\r"
        else:
            hold = b""
        pieces = _NEWLINE_BYTES_RE.split(data)
        self.carry = pieces.pop() + hold
        tokens: list[Token] = []
        for raw in pieces:
            token = self._tokenize(raw)
            if token is not None:
                tokens.append(token)
        return tokens

    def _tokenize(self, raw: bytes) -> Token | None:
        self.lineno += 1
        text, replaced = decode_trace_line(
            raw, strict=self.strict, path=str(self.path),
            lineno=self.lineno)
        self.merger.stats.decode_replacements += replaced
        if not text.strip():
            return None
        return tokenize_line(text, path=str(self.path), lineno=self.lineno,
                             default_pid=self.default_pid)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FileTail({str(self.path)!r}, offset={self.offset}, "
                f"pending={self.merger.n_pending})")

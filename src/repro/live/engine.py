"""The live ingestion engine: directory polls → standing EventLog/DFG.

:class:`LiveIngest` is the orchestrator of the live subsystem. Each
:meth:`~LiveIngest.poll`:

1. re-scans the trace directory (optionally recursively) for new
   ``<cid>_<host>_<rid>.st`` files, enforcing the same naming and
   duplicate-case rules as batch discovery;
2. lets every file's :class:`~repro.live.tail.FileTail` consume its
   newly appended bytes, which yields the records *sealed* by this
   poll — records whose final position in the case can no longer
   change (see :class:`~repro.strace.resume.IncrementalMerger`);
3. maps the sealed records to activities and folds them per case into
   an :class:`~repro.core.incremental.IncrementalDFG` — the union
   algebra of Sec. IV-A applied as a running fold.

The standing invariants (pinned by ``tests/test_live``):

* ``DFG(snapshot_log with mapping)`` equals :meth:`snapshot_dfg` after
  every poll — log and graph never disagree;
* after the directory stops growing, one last :meth:`poll` plus
  :meth:`finalize` make both equal one-shot batch ingestion of the
  final directory, byte for byte (frame columns, pools, merge stats).

Besides the graph, every sealed record is folded into a standing
:class:`~repro.core.statistics.StatsAccumulator`, so
:meth:`LiveIngest.statistics` yields the full-history per-activity
statistics (Sec. IV-B node annotations) at O(delta) — no rebuild of
the snapshot log per refresh.

Passing ``checkpoint=`` makes ingestion resumable across process
restarts: the sidecar persists every byte offset, line carry, merge
slot, the incremental graph *and* the statistics accumulators, so a
restarted watcher continues from where the killed one stopped instead
of re-parsing gigabytes. After a restart the graph and the statistics
carry the full history — records parsed by the previous process are
not kept (that is what ``.elog`` conversion is for), so
:meth:`snapshot_log` then covers this process's lifetime only, while
:meth:`snapshot_dfg` and :meth:`statistics` still equal batch.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterator

from repro._util.errors import ReproError, TraceParseError
from repro.core.dfg import DFG
from repro.core.diff import DFGDiff
from repro.core.event import Event
from repro.core.eventlog import EventLog
from repro.core.incremental import IncrementalDFG
from repro.core.mapping import CallTopDirs, Mapping, mapping_from_callable
from repro.core.statistics import IOStatistics, StatsAccumulator
from repro.live.tail import FileTail
from repro.strace.naming import TraceFileName
from repro.telemetry.spans import NULL_TELEMETRY
from repro.strace.parser import ParsedRecord
from repro.strace.reader import TraceCase, discover_trace_files

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.alerts import AlertEngine


@dataclass(slots=True)
class PollResult:
    """What one :meth:`LiveIngest.poll` observed."""

    #: 1-based poll sequence number (counts across checkpoint restarts).
    n_poll: int
    #: Case ids of files first seen by this poll, in path order.
    new_files: list[str] = field(default_factory=list)
    #: Records sealed by this poll, per case (cases with none omitted).
    sealed: dict[str, int] = field(default_factory=dict)
    #: Files tracked after the scan.
    n_files: int = 0
    #: Total records sealed so far (across restarts).
    total_events: int = 0
    #: Unfinished calls still awaiting their resumed half.
    n_pending: int = 0
    #: Completed records still buffered behind the seal watermark.
    n_buffered: int = 0
    #: Bytes consumed by this poll across all files. Can be non-zero
    #: with nothing sealed (bytes went into a line carry or behind an
    #: in-flight unfinished call) — follower state moved even though
    #: the graph did not, which matters for checkpointing.
    n_bytes: int = 0

    @property
    def n_sealed(self) -> int:
        """Records sealed by this poll across all cases."""
        return sum(self.sealed.values())

    @property
    def changed(self) -> bool:
        """Whether the *graph-visible* state moved (files or events)."""
        return bool(self.new_files or self.sealed)

    @property
    def state_moved(self) -> bool:
        """Whether *any* engine state moved, including carry-only
        progress — i.e. whether a checkpoint written before this poll
        is now stale."""
        return self.changed or bool(self.n_bytes)


class LiveIngest:
    """Maintain an always-current EventLog/DFG over a growing directory.

    Parameters
    ----------
    directory:
        The trace directory to follow. May start empty (unlike batch
        discovery, which treats that as an error).
    mapping:
        Event→activity mapping applied to sealed records before they
        enter the graph; defaults to the paper's f̂
        (:class:`~repro.core.mapping.CallTopDirs` with two levels).
    cids:
        Optional restriction to a subset of command identifiers.
    strict:
        Forwarded to decoding and the merger, as in batch ingestion.
    recursive:
        Descend into nested per-host subdirectories.
    add_endpoints:
        Wrap cases in ● / ■ (the batch default).
    keep_records:
        Keep every sealed :class:`ParsedRecord` in memory so
        :meth:`snapshot_log` / :meth:`cases` cover the full run (the
        default). ``False`` drops records once folded: memory shrinks
        to the graph, carry state and the compact statistics buffers
        (two ints + at most one float per event, no record objects),
        and :meth:`snapshot_log` stays empty — the same trade a
        checkpoint restart makes. :meth:`statistics` covers the full
        history either way.
    window:
        Optional cap (≥ 2) on the per-case interval buffers of the
        statistics accumulators — the bounded-memory mode for
        week-long watchers. Scalar statistics stay exact (and
        bit-identical to batch); once a buffer exceeds the cap it is
        coarsened and the activity's max concurrency / timeline are
        reported as approximate upper bounds
        (:class:`~repro.core.statistics.StatsAccumulator`).
    memory_budget:
        Alternative to ``window``: a byte budget for the interval
        buffers. After every poll the engine measures the buffers'
        actual footprint
        (:meth:`~repro.core.statistics.StatsAccumulator.approx_buffer_bytes`)
        and re-derives the per-buffer cap so the total stays within
        the budget — the cap shrinks as the watch accumulates cases
        instead of being a guessed constant. The floor is the minimum
        window of 2 intervals per buffer; below that the budget is
        best-effort. Mutually exclusive with ``window``.
    emit:
        Optional ``.elog`` destination: every sealed record is also
        journaled durably (``<emit>.journal``) so :meth:`pack_emit`
        can write the full event log of the run — byte-identical to
        batch conversion, surviving kill/restart cycles when combined
        with ``checkpoint`` (see :mod:`repro.live.emit`).
    compact_emit:
        Optional rolling-compaction threshold in journal bytes
        (requires ``emit`` and ``checkpoint``). After each checkpoint
        save, once the un-packed durable journal prefix exceeds this
        many bytes it is packed into the destination ``.elog`` and
        dropped from the journal
        (:meth:`~repro.live.emit.EmitJournal.compact`), keeping the
        journal's disk footprint O(threshold + recent) over a
        week-long watch instead of O(events).
    checkpoint:
        Optional sidecar path. If the file exists, the engine resumes
        from it; :meth:`save_checkpoint` rewrites it atomically.
    alerts:
        Optional :class:`~repro.alerts.AlertEngine` evaluated by the
        watch loop after every poll. Attached here (rather than at the
        loop) so checkpoints can persist its latch/history state:
        pass it *before* construction and a resumed sidecar restores
        the alert state into it — restarted watchers neither re-fire
        nor forget fired alerts.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` recording
        per-phase poll timings and pipeline counters (see
        :mod:`repro.telemetry`). Defaults to the shared no-op
        instance, so the uninstrumented hot path is unchanged.
        Attached here (like ``alerts``) so checkpoints can persist
        the monotonic counters: a resumed sidecar restores them as
        bases and scraped rates survive kill/restart.

    Unlike batch discovery, an empty (not-yet-populated) directory is
    a normal state for a watcher:

    >>> import tempfile
    >>> with tempfile.TemporaryDirectory() as empty:
    ...     engine = LiveIngest(empty)
    ...     result = engine.poll()
    >>> (result.n_poll, result.n_files, result.changed)
    (1, 0, False)
    >>> engine.snapshot_dfg().n_nodes
    0
    """

    def __init__(self, directory: str | os.PathLike[str], *,
                 mapping: "Mapping | Callable[[Event], str | None] | None"
                 = None,
                 cids: set[str] | None = None,
                 strict: bool = True,
                 recursive: bool = False,
                 add_endpoints: bool = True,
                 keep_records: bool = True,
                 window: int | None = None,
                 memory_budget: int | None = None,
                 emit: str | os.PathLike[str] | None = None,
                 compact_emit: int | None = None,
                 checkpoint: str | os.PathLike[str] | None = None,
                 alerts: "AlertEngine | None" = None,
                 telemetry=None) -> None:
        self.directory = Path(directory)
        self.mapping = mapping_from_callable(
            mapping if mapping is not None else CallTopDirs(levels=2))
        self.cids = set(cids) if cids is not None else None
        self.strict = strict
        self.recursive = recursive
        self.incremental = IncrementalDFG(add_endpoints=add_endpoints)
        if window is not None and window < 2:
            raise ReproError(
                f"window must be >= 2 intervals (got {window}); omit "
                f"it for exact unbounded statistics")
        if memory_budget is not None:
            if window is not None:
                raise ReproError(
                    "window and memory_budget are mutually exclusive: "
                    "a byte budget derives the window, a fixed window "
                    "ignores the budget — pass one or the other")
            if memory_budget < 1:
                raise ReproError(
                    f"memory_budget must be >= 1 byte, "
                    f"got {memory_budget}")
        self.memory_budget = memory_budget
        self.window = window
        self.stats = StatsAccumulator(window=window)
        self.keep_records = keep_records
        self.n_polls = 0
        self.total_events = 0
        #: True once state from a previous process was loaded — in that
        #: case :meth:`snapshot_log` covers this process only while the
        #: graph and statistics cover the full history.
        self.restored = False
        self._tails: dict[Path, FileTail] = {}
        self._case_paths: dict[str, Path] = {}
        self._records: dict[str, list[ParsedRecord]] = {}
        # Per-(call, fp) activity memo for call/fp-only mappings — the
        # live analogue of the batch broadcast in eventlog._apply_mapping.
        self._activity_memo: dict[tuple[str, str | None], str | None] = {}
        self.alerts = alerts
        self.telemetry = telemetry if telemetry is not None \
            else NULL_TELEMETRY
        # Alert state carried verbatim from a loaded sidecar when no
        # AlertEngine is attached this life, so a watch restarted
        # without --rules still re-saves (and never loses) the alert
        # history a previous life accumulated. Telemetry state gets
        # the same treatment for watches restarted with telemetry off.
        self._alert_state: dict | None = None
        self._telemetry_state: dict | None = None
        if emit is not None:
            from repro.live.emit import EmitJournal

            self.emit_journal: "EmitJournal | None" = EmitJournal(
                emit, telemetry=self.telemetry)
        else:
            self.emit_journal = None
        if compact_emit is not None:
            if compact_emit < 1:
                raise ReproError(
                    f"compact_emit must be >= 1 byte, got {compact_emit}")
            if self.emit_journal is None:
                raise ReproError(
                    "compact_emit without emit: there is no journal "
                    "to compact — pass emit=... (the CLI's --emit)")
            if checkpoint is None:
                raise ReproError(
                    "compact_emit requires checkpoint=...: compaction "
                    "only packs journal bytes a durable sidecar "
                    "already accounts for, so without checkpoints it "
                    "would never run")
        self.compact_emit = compact_emit
        self.checkpoint_path = Path(checkpoint) if checkpoint else None
        if self.checkpoint_path is not None \
                and self.checkpoint_path.exists():
            from repro.live.checkpoint import load_checkpoint

            load_checkpoint(self, self.checkpoint_path)
            self.restored = True
        elif self.emit_journal is not None:
            # A fresh watch owns its journal: a leftover journal (and
            # its compacted .elog prefix) from an earlier run would
            # pollute the pack with records this engine re-seals.
            self.emit_journal.reset()

    # -- discovery ---------------------------------------------------------

    def scan(self) -> list[tuple[Path, TraceFileName]]:
        """Current ``.st`` files in deterministic (sorted-path) order.

        Batch discovery's grammar and duplicate-case rules verbatim
        (it *is* :func:`~repro.strace.reader.discover_trace_files`),
        with the two live adjustments: an empty / not-yet-populated
        directory is a normal state for a watcher, and duplicate
        detection extends across polls via the followed-case map. A
        followed file vanishing from the scan is an error — its
        records cannot be un-folded.
        """
        found = discover_trace_files(
            self.directory, cids=self.cids, recursive=self.recursive,
            allow_empty=True, known_cases=self._case_paths)
        missing = set(self._tails) - {path for path, _ in found}
        if missing:
            raise TraceParseError(
                f"tracked trace file(s) disappeared: "
                f"{sorted(str(p) for p in missing)[:3]}")
        return found

    # -- polling -----------------------------------------------------------

    def poll(self) -> PollResult:
        """One incremental pass: discover, tail, map, fold."""
        telemetry = self.telemetry
        self.n_polls += 1
        result = PollResult(n_poll=self.n_polls)
        with telemetry.phase("scan"):
            found = self.scan()
        for path, name in found:
            tail = self._tail_for(path, name, result)
            before = tail.offset
            sealed = tail.poll()
            result.n_bytes += tail.offset - before
            if sealed:
                self._absorb(name, sealed)
                result.sealed[name.case_id] = len(sealed)
        self._adapt_window()
        self._fill_result(result)
        if telemetry.enabled:
            self._count_poll(result)
        return result

    def finalize(self) -> PollResult:
        """Treat the directory as finished: one last poll (files and
        bytes that appeared since the previous one are not lost), then
        flush carries, orphan in-flight unfinished calls (batch EOF
        semantics), and fold the remaining buffered records. After
        this, snapshots equal batch ingestion of the final directory.
        """
        telemetry = self.telemetry
        self.n_polls += 1
        result = PollResult(n_poll=self.n_polls)
        with telemetry.phase("scan"):
            found = self.scan()
        for path, name in found:
            tail = self._tail_for(path, name, result)
            if tail.finished:  # repeated finalize is a no-op per file
                continue
            before = tail.offset
            sealed = tail.poll() + tail.finish()
            result.n_bytes += tail.offset - before
            if sealed:
                self._absorb(name, sealed)
                result.sealed[name.case_id] = len(sealed)
        self._adapt_window()
        self._fill_result(result)
        if telemetry.enabled:
            telemetry.count("finalizes_total")
            self._count_poll(result)
        return result

    def _adapt_window(self) -> None:
        """Re-derive the interval-buffer cap from the byte budget.

        Runs after every poll when ``memory_budget`` is set: the
        per-entry cost is *measured* from the resident buffers, the
        budget is divided over the current buffer count, and the
        accumulators are re-capped in place (shrinking coarsens
        immediately). The cap floors at 2 intervals per buffer — the
        smallest window that still yields a concurrency bound.
        """
        if self.memory_budget is None:
            return
        entries = self.stats.n_buffered_intervals()
        n_buffers = self.stats.n_interval_buffers()
        if entries == 0 or n_buffers == 0:
            return
        per_entry = self.stats.approx_buffer_bytes() / entries
        target_entries = int(self.memory_budget / per_entry)
        window = max(2, target_entries // n_buffers)
        if window != self.window:
            self.stats.set_window(window)
            self.window = window

    def _tail_for(self, path: Path, name: TraceFileName,
                  result: PollResult) -> FileTail:
        """The follower of a discovered file, registering new ones."""
        tail = self._tails.get(path)
        if tail is None:
            tail = FileTail(path, name, strict=self.strict,
                            telemetry=self.telemetry)
            self._tails[path] = tail
            self._case_paths[name.case_id] = path
            result.new_files.append(name.case_id)
            self.telemetry.count("files_discovered_total")
        return tail

    def _fill_result(self, result: PollResult) -> None:
        result.n_files = len(self._tails)
        result.total_events = self.total_events
        result.n_pending = sum(t.merger.n_pending
                               for t in self._tails.values())
        result.n_buffered = sum(t.merger.n_buffered
                                for t in self._tails.values())

    def _count_poll(self, result: PollResult) -> None:
        """Pipeline counters/gauges for one completed poll (telemetry
        on only — the null facade never reaches this)."""
        telemetry = self.telemetry
        telemetry.count("polls_total")
        if result.n_sealed:
            telemetry.count("events_sealed_total", result.n_sealed)
        if result.n_bytes:
            telemetry.count("bytes_tailed_total", result.n_bytes)
        telemetry.gauge_set("files_tracked", result.n_files)

    def _absorb(self, name: TraceFileName, sealed: list[ParsedRecord],
                ) -> None:
        telemetry = self.telemetry
        case_id = name.case_id
        if self.keep_records:
            self._records.setdefault(case_id, []).extend(sealed)
        if self.emit_journal is not None:
            with telemetry.phase("emit"):
                self.emit_journal.append(name, sealed)
        self.total_events += len(sealed)
        rid = name.rid
        feed = self.stats.feed_event
        activities: list[str] = []
        with telemetry.phase("fold"):
            for record, activity in self._map_records(name, sealed):
                if activity is None:
                    continue
                activities.append(activity)
                feed(activity, case_id, rid=rid, start_us=record.start_us,
                     dur_us=record.dur_us, size=record.size)
            self.incremental.extend_case(case_id, activities)

    def _map_records(self, name: TraceFileName,
                     records: list[ParsedRecord],
                     ) -> Iterator[tuple[ParsedRecord, str | None]]:
        """Sealed records with their mapped activities (None=unmapped)."""
        mapping = self.mapping
        if mapping.uses_only_call_fp:
            memo = self._activity_memo
            for record in records:
                key = (record.call, record.fp)
                try:
                    activity = memo[key]
                except KeyError:
                    activity = memo[key] = mapping.map_call_fp(*key)
                yield record, activity
            return
        for record in records:
            yield record, mapping.map_event(Event(
                cid=name.cid, host=name.host, rid=name.rid,
                pid=record.pid, call=record.call, start=record.start_us,
                dur=record.dur_us, fp=record.fp, size=record.size))

    # -- snapshots ---------------------------------------------------------

    def snapshot_dfg(self) -> DFG:
        """Immutable copy of the standing graph (cheap, O(graph))."""
        return self.incremental.snapshot()

    def statistics(self) -> IOStatistics:
        """Full-history per-activity statistics (Sec. IV-B), assembled
        from the standing accumulators.

        Covers every record sealed since the watch began — across
        checkpoint restarts and regardless of ``keep_records`` — and
        equals batch ``IOStatistics`` of the final directory once
        growth stops (every field, including timelines and max
        concurrency; pinned by ``tests/test_live``). Cost is
        O(activities + events of activities touched since the last
        call): untouched activities reuse their cached scalars, while
        a touched activity re-runs its max-concurrency sweep over its
        full interval buffer (the recompute granularity the
        accumulator design trades for exactness — an always-hot
        activity therefore costs O(its history) per refresh, still
        far below rebuilding the whole snapshot log).
        """
        with self.telemetry.phase("stats"):
            return self.stats.statistics(case_order=self._case_order())

    def _case_order(self) -> list[str]:
        """Case ids in sorted-path order — the batch interning order of
        the final directory, which fixes cross-case statistics layout."""
        return [self._tails[path].name.case_id
                for path in sorted(self._tails)]

    def diff_since(self, baseline: DFG) -> DFGDiff:
        """Diff the standing graph against an earlier snapshot."""
        return self.incremental.diff_since(baseline)

    def watermark_ages(self) -> dict[str, int]:
        """Per-case sealing-starvation age in µs of *trace* time.

        An in-flight ``<unfinished ...>`` call holds every later
        completed record of its file behind the seal watermark; the
        age is how far the newest held-back record's start lies above
        the watermark (see
        :attr:`~repro.strace.resume.IncrementalMerger.watermark_age_us`).
        Only starving cases appear (age > 0); the result is empty for
        a healthy directory. One accessor feeds both the ``watch``
        status line and the ``watermark_age`` alerting rule, so the
        number a rule fires on is the number the operator sees.
        """
        ages: dict[str, int] = {}
        for path in sorted(self._tails):
            tail = self._tails[path]
            age = tail.merger.watermark_age_us
            if age > 0:
                ages[tail.name.case_id] = age
        return ages

    def cases(self) -> list[TraceCase]:
        """Parsed cases held in memory, in batch (sorted-path) order.

        One case per followed file — including files with no sealed
        record yet (empty traces, or everything dropped/orphaned):
        batch parsing interns those cases and reports their merge
        diagnostics too, and byte-identity covers them. Record lists
        are the sealed sequences, already in the final start-timestamp
        order batch parsing produces. Empty under
        ``keep_records=False``, where nothing is retained.
        """
        if not self.keep_records:
            return []
        result: list[TraceCase] = []
        for path in sorted(self._tails):
            tail = self._tails[path]
            records = self._records.get(tail.name.case_id, [])
            result.append(TraceCase(
                name=tail.name, records=list(records),
                merge_stats=tail.merger.stats, source=path))
        return result

    def snapshot_log(self) -> EventLog:
        """The unmapped EventLog of every record sealed so far.

        Built in batch interning order, so once the directory is final
        (and :meth:`finalize` ran) it is byte-identical to
        ``EventLog.from_source`` over the same directory. Note the
        log covers this process's lifetime — after a checkpoint
        restart, earlier records live only in the graph.
        """
        return EventLog.from_cases(self.cases())

    # -- checkpointing -----------------------------------------------------

    def save_checkpoint(self,
                        path: str | os.PathLike[str] | None = None) -> Path:
        """Atomically write the resumable state sidecar."""
        from repro.live.checkpoint import save_checkpoint

        target = Path(path) if path is not None else self.checkpoint_path
        if target is None:
            raise ReproError(
                "no checkpoint path: pass one here or at construction")
        with self.telemetry.phase("checkpoint"):
            saved = save_checkpoint(self, target)
        self.telemetry.count("checkpoint_saves_total")
        if (self.compact_emit is not None
                and self.emit_journal is not None
                and target == self.checkpoint_path):
            # The sidecar just recorded the journal's durable offset
            # (no appends happen between the save and here), so that
            # offset is a safe compaction bound: a restore from this
            # sidecar accounts for exactly the packed prefix.
            durable = self.emit_journal.sync()
            if durable - self.emit_journal.packed_offset \
                    >= self.compact_emit:
                with self.telemetry.phase("compact"):
                    self.emit_journal.compact(self, up_to=durable)
        return saved

    def pack_emit(self) -> Path:
        """Write the ``--emit`` destination ``.elog`` from the durable
        journal — the full run, across every life of this watch."""
        if self.emit_journal is None:
            raise ReproError(
                "no emit destination: construct with emit=... "
                "(the CLI's --emit)")
        return self.emit_journal.pack(self)

    def close(self) -> None:
        """Release held OS resources (the emit journal's append
        handle) and drain any background alert delivery. The engine
        object stays readable — statistics, snapshots — but must not
        ingest further. Idempotent; the fleet scheduler calls this
        before rebuilding a failed job so the replacement engine is
        the journal's only appender (and the only delivery worker)."""
        if self.emit_journal is not None:
            self.emit_journal.close()
        if self.alerts is not None:
            self.alerts.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"LiveIngest({str(self.directory)!r}, "
                f"{len(self._tails)} files, {self.total_events} events, "
                f"{self.incremental.n_edges} edges)")

"""Durable streaming emission: every sealed record survives restarts.

``watch --emit run.elog`` asks the live engine to keep the *full*
event log of a watched run — not just the graph and statistics the
checkpoint carries — so that after any number of kill/restart cycles
the run can be packed into an ``.elog`` byte-identical to batch
ingestion of the final directory.

The mechanism is a sidecar **journal** (``run.elog.journal``): an
append-only JSONL file gaining one line per ``(case, sealed batch)``
as records seal. Append-only is what makes it crash-safe to combine
with the checkpoint:

- :meth:`EmitJournal.sync` (flush + ``fsync``) runs *before* every
  checkpoint save, and the checkpoint records the synced byte offset —
  so the sidecar never claims records the journal does not durably
  hold;
- on restore, :meth:`EmitJournal.truncate_to` cuts the journal back to
  the checkpointed offset — bytes past it (records sealed after the
  last save, or a torn final line) describe trace bytes the restored
  engine will re-read and re-seal, so dropping them is exactly what
  prevents duplicates.

Packing (:meth:`EmitJournal.pack`) replays the journal per case and
streams the cases through
:meth:`~repro.elstore.writer.EventLogWriter.add_case_records` in
sorted-path order — the same columnarization
(:func:`~repro.ingest.parallel.case_to_columns`) and the same case
order as batch ``convert`` over the directory, which is what makes
the output *byte*-identical, global string pools included. Cases the
engine follows but that sealed nothing are packed empty, as batch
does.

Rolling compaction (:meth:`EmitJournal.compact`) keeps the journal's
disk footprint O(recent) over a week-long watch instead of O(events):
the *checkpointed* journal prefix is packed into the destination
``.elog`` (same pack path as above) and the journal is rewritten to
hold only the un-packed suffix, led by a **header line**::

    {"journal": 2, "base": B, "cases": {case_id: n_records}}

``base`` is the *logical* offset of the file's first post-header byte
— all offsets exchanged with the checkpoint stay logical (bytes ever
appended), so compaction never invalidates a sidecar. ``cases`` pins
how many leading records of each case in the ``.elog`` belong to the
packed prefix ``[0, base)``. That count is what makes every step
crash-safe: a kill after the ``.elog`` replace but before the journal
rewrite leaves an ``.elog`` holding *more* than the header claims, and
the next replay simply cuts each case back to the header's count — the
extra records are still in the journal and are replayed from there.
Per-case record lists grow append-only across prefix extensions, so
the cut is exact, never approximate.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import TYPE_CHECKING

from repro._util.errors import ReproError
from repro.strace.naming import TraceFileName
from repro.telemetry.spans import NULL_TELEMETRY

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.live.engine import LiveIngest
    from repro.strace.parser import ParsedRecord

#: Journal header format written by compaction (headerless = format 1).
JOURNAL_FORMAT = 2


def _fsync_handle(handle) -> None:
    """Durability seam: fsync an open file (fault-injection target)."""
    os.fsync(handle.fileno())


def _replace(source: Path, dest: Path) -> None:
    """Durability seam: atomic rename (fault-injection target)."""
    os.replace(source, dest)


def _fsync_directory(path: Path) -> None:
    """Durability seam: fsync a directory so a rename survives power
    loss (fault-injection target, independent of the checkpoint's)."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _records_from_columns(data: dict, pools: dict,
                          count: int) -> "list[ParsedRecord]":
    """First ``count`` stored rows of one case, as parsed records.

    Only the six column-backed fields matter downstream — packing
    (:func:`~repro.ingest.parallel.case_to_columns`) reads nothing
    else — so the fields the container does not store (retval, errno,
    requested, args) are reconstructed as absent.
    """
    from repro.strace.parser import ParsedRecord

    calls = pools["calls"]
    paths = pools["paths"]
    records: list[ParsedRecord] = []
    rows = zip(data["pid"][:count].tolist(),
               data["call"][:count].tolist(),
               data["start"][:count].tolist(),
               data["dur"][:count].tolist(),
               data["fp"][:count].tolist(),
               data["size"][:count].tolist())
    for pid, call, start, dur, fp, size in rows:
        records.append(ParsedRecord(
            pid=int(pid), start_us=int(start), call=calls[call],
            fp=None if fp < 0 else paths[fp],
            size=None if size < 0 else int(size),
            dur_us=None if dur < 0 else int(dur),
            retval=None, errno=None, requested=None, args=()))
    return records


class EmitJournal:
    """Append-only durable journal of sealed records + ``.elog`` pack.

    Construct with the *destination* ``.elog`` path; the journal lives
    next to it as ``<name>.journal`` and is deliberately kept after a
    successful pack — it is the source of truth for a future life of
    the same watch (delete both to start over). After compaction the
    ``.elog`` holds the packed prefix and the journal only the suffix;
    the two together still cover every sealed record.
    """

    def __init__(self, elog_path: str | os.PathLike[str], *,
                 telemetry=None) -> None:
        self.telemetry = telemetry if telemetry is not None \
            else NULL_TELEMETRY
        self.elog_path = Path(elog_path)
        self.journal_path = self.elog_path.with_name(
            self.elog_path.name + ".journal")
        parent = self.journal_path.parent
        if not parent.is_dir():
            raise ReproError(
                f"--emit {self.elog_path}: parent directory "
                f"{parent} does not exist")
        self._handle = None
        self._state_loaded = False
        self._base = 0
        self._header_len = 0
        self._packed_cases: dict[str, int] = {}

    # -- header state ------------------------------------------------------

    def _load_state(self) -> None:
        """Read the compaction header (if any) once, lazily."""
        if self._state_loaded:
            return
        self._base = 0
        self._header_len = 0
        self._packed_cases = {}
        if self.journal_path.exists():
            with open(self.journal_path, "rb") as handle:
                first = handle.readline()
            header = None
            if first:
                try:
                    header = json.loads(first)
                except (UnicodeDecodeError, json.JSONDecodeError):
                    header = None  # headerless (format-1) record line
            if isinstance(header, dict) and "journal" in header:
                if int(header["journal"]) != JOURNAL_FORMAT:
                    raise ReproError(
                        f"{self.journal_path}: unsupported journal "
                        f"format {header['journal']} (this build "
                        f"writes format {JOURNAL_FORMAT})")
                self._base = int(header["base"])
                self._header_len = len(first)
                self._packed_cases = {
                    str(case): int(count)
                    for case, count in header["cases"].items()}
        self._state_loaded = True

    @property
    def packed_offset(self) -> int:
        """Logical journal offset already packed into the ``.elog``."""
        self._load_state()
        return self._base

    def _physical_size(self) -> int:
        return self.journal_path.stat().st_size \
            if self.journal_path.exists() else 0

    # -- appending ---------------------------------------------------------

    def append(self, name: TraceFileName,
               records: "list[ParsedRecord]") -> None:
        """Journal one sealed batch of one case (buffered)."""
        from repro.live.checkpoint import _record_to_state

        if self._handle is None:
            self._load_state()
            self._handle = open(self.journal_path, "ab")
        line = json.dumps(
            {"cid": name.cid, "host": name.host, "rid": name.rid,
             "records": [_record_to_state(r) for r in records]},
            sort_keys=True, separators=(",", ":"))
        self._handle.write(line.encode("utf-8") + b"\n")

    def sync(self) -> int:
        """Flush + fsync; returns the durable *logical* byte offset.

        Called before every checkpoint save, so the offset the sidecar
        records is never ahead of what the disk holds. Logical offsets
        count every byte ever appended — compaction moves the physical
        file under them without renumbering.
        """
        self._load_state()
        if self._handle is None:
            physical = self._physical_size()
            self.telemetry.gauge_set("emit_journal_bytes", physical)
            return self._base + max(physical - self._header_len, 0)
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self.telemetry.count("journal_fsyncs_total")
        physical = self._handle.tell()
        self.telemetry.gauge_set("emit_journal_bytes", physical)
        return self._base + physical - self._header_len

    def truncate_to(self, offset: int) -> None:
        """Cut the journal back to a checkpointed offset (restore path).

        Records past the offset were sealed after the last checkpoint
        save — the restored engine's tails will re-read those trace
        bytes and re-journal them, so keeping the old lines would
        duplicate them in the pack. Also disposes of a torn final line
        from a crash mid-append.
        """
        if self._handle is not None:
            raise ReproError(
                "emit journal already open for append; truncate on "
                "restore must happen before the first append")
        self._load_state()
        physical = self._physical_size()
        current = self._base + max(physical - self._header_len, 0)
        if offset > current:
            raise ReproError(
                f"checkpoint claims {offset} durable emit-journal "
                f"bytes but {self.journal_path} holds {current} — the "
                f"journal was truncated or replaced behind the "
                f"checkpoint; delete both and re-watch")
        if offset < self._base:
            raise ReproError(
                f"checkpoint claims {offset} durable emit-journal "
                f"bytes but {self.journal_path} was already compacted "
                f"through {self._base} — the checkpoint is older than "
                f"the journal behind it; delete checkpoint, journal "
                f"and .elog and re-watch")
        if physical and offset < current:
            with open(self.journal_path, "r+b") as handle:
                handle.truncate(self._header_len + offset - self._base)

    def reset(self) -> None:
        """Start the journal over (fresh watch without a checkpoint).

        A leftover journal/compacted ``.elog`` pair describes a
        previous watch whose engine state is gone — replaying it would
        duplicate every record the fresh engine re-seals, so the
        journal is removed outright and the compaction base forgotten
        (a later pack overwrites the stale ``.elog``).
        """
        if self._handle is not None:
            raise ReproError(
                "emit journal already open for append; reset must "
                "happen before the first append")
        self.journal_path.unlink(missing_ok=True)
        self._state_loaded = True
        self._base = 0
        self._header_len = 0
        self._packed_cases = {}

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # -- packing -----------------------------------------------------------

    def _apply_line(self, cases: dict, raw: bytes) -> None:
        data = json.loads(raw)
        from repro.live.checkpoint import _record_from_state

        name = TraceFileName(cid=data["cid"], host=data["host"],
                             rid=int(data["rid"]))
        entry = cases.setdefault(name.case_id, (name, []))
        entry[1].extend(
            _record_from_state(r) for r in data["records"])

    def _read_packed(self) -> dict[str, tuple[TraceFileName,
                                              "list[ParsedRecord]"]]:
        """Replay the compacted prefix out of the destination ``.elog``.

        Each case is cut back to the header's record count: an
        ``.elog`` written by a compaction that died before the journal
        rewrite legitimately holds more, and those extra records are
        still in the journal — cutting is what keeps the two sources
        a partition instead of an overlap.
        """
        from repro.elstore.reader import EventLogStore

        self._load_state()
        cases: dict[str, tuple[TraceFileName, list]] = {}
        if self._base == 0:
            return cases
        if not self.elog_path.exists():
            raise ReproError(
                f"{self.journal_path} was compacted through "
                f"{self._base} but the packed {self.elog_path} is "
                f"missing — the packed prefix is unrecoverable; "
                f"delete the journal (and any checkpoint) and "
                f"re-watch")
        store = EventLogStore(self.elog_path)
        for case_id, count in self._packed_cases.items():
            if count <= 0:
                continue
            meta = store.case_meta(case_id)
            name = TraceFileName(cid=meta.cid, host=meta.host,
                                 rid=int(meta.rid))
            data = store.read_case(case_id)
            cases[case_id] = (
                name, _records_from_columns(data, store.pools, count))
        return cases

    def replay(self) -> dict[str, tuple[TraceFileName,
                                        "list[ParsedRecord]"]]:
        """case id -> (name, sealed records in sealed order).

        Packed prefix (from the ``.elog``) first, then the journal
        suffix — together every sealed record of every life, exactly
        once.
        """
        cases = self._read_packed()
        if self._handle is not None:
            self._handle.flush()
        if not self.journal_path.exists():
            return cases
        with open(self.journal_path, "rb") as handle:
            handle.seek(self._header_len)
            for line in handle:
                self._apply_line(cases, line)
        return cases

    def _write_elog(self, engine: "LiveIngest",
                    replayed: dict, *, dest: Path) -> dict[str, int]:
        """Stream ``replayed`` into ``dest`` durably (tmp → fsync →
        rename → dir fsync); returns per-case record counts written.

        Cases follow the engine's sorted-path order — batch ``convert``
        order — with any replayed case the engine no longer names
        (defensive: should not happen) appended after, so no sealed
        record is ever dropped by a rewrite.
        """
        from repro.elstore.writer import EventLogWriter

        counts: dict[str, int] = {}
        tmp = dest.with_name(dest.name + ".tmp")
        with EventLogWriter(tmp) as writer:
            for path in sorted(engine._tails):
                name = engine._tails[path].name
                _, records = replayed.get(name.case_id, (name, []))
                writer.add_case_records(name, records)
                counts[name.case_id] = len(records)
            for case_id in sorted(replayed):
                if case_id in counts:
                    continue
                name, records = replayed[case_id]
                writer.add_case_records(name, records)
                counts[case_id] = len(records)
        with open(tmp, "rb") as handle:
            _fsync_handle(handle)
        _replace(tmp, dest)
        _fsync_directory(dest.parent)
        return counts

    def pack(self, engine: "LiveIngest") -> Path:
        """Write the ``.elog`` from the journal — byte-identical to
        batch conversion of the directory in its current sealed state.

        ``engine`` supplies the followed files (for case order and for
        cases with nothing sealed); the records come from the packed
        prefix plus the journal suffix, so the pack covers every life
        of the watch, not just the current process. The write is
        atomic (tmp + rename): a kill mid-pack leaves the previous
        ``.elog`` — which a compacted journal depends on — untouched.
        """
        replayed = self.replay()
        self._write_elog(engine, replayed, dest=self.elog_path)
        return self.elog_path

    def compact(self, engine: "LiveIngest", *, up_to: int) -> bool:
        """Pack the journal prefix ``[0, up_to)`` into the ``.elog``
        and drop it from the journal; returns True if anything moved.

        ``up_to`` must be a *checkpointed* logical offset: the sidecar
        on disk must already account for every record in the prefix,
        otherwise a restore would re-seal records the journal no
        longer holds. Each step is individually durable, and the
        header's per-case counts make every intermediate state
        replayable (see module docstring), so a kill at any point
        leaves either the old or the new compaction level — never a
        torn one.
        """
        self._load_state()
        if up_to <= self._base:
            return False
        if self._handle is not None:
            self._handle.flush()
        physical_cut = self._header_len + (up_to - self._base)
        physical = self._physical_size()
        if physical_cut > physical:
            raise ReproError(
                f"compaction offset {up_to} is past the journal "
                f"({self._base + physical - self._header_len} logical "
                f"bytes) — compact only up to a checkpointed offset")
        replayed = self._read_packed()
        with open(self.journal_path, "rb") as handle:
            handle.seek(self._header_len)
            body = handle.read(physical_cut - self._header_len)
            remainder = handle.read()
        for line in body.splitlines():
            self._apply_line(replayed, line)
        counts = self._write_elog(engine, replayed,
                                  dest=self.elog_path)
        header = json.dumps(
            {"journal": JOURNAL_FORMAT, "base": up_to,
             "cases": counts},
            sort_keys=True, separators=(",", ":")).encode("utf-8") \
            + b"\n"
        tmp = self.journal_path.with_name(
            self.journal_path.name + ".tmp")
        with open(tmp, "wb") as handle:
            handle.write(header)
            handle.write(remainder)
            handle.flush()
            _fsync_handle(handle)
        self.close()  # reopened lazily at the next append
        _replace(tmp, self.journal_path)
        _fsync_directory(self.journal_path.parent)
        self._base = up_to
        self._header_len = len(header)
        self._packed_cases = counts
        self.telemetry.count("journal_compactions_total")
        self.telemetry.gauge_set(
            "emit_journal_bytes", len(header) + len(remainder))
        return True

"""Durable streaming emission: every sealed record survives restarts.

``watch --emit run.elog`` asks the live engine to keep the *full*
event log of a watched run — not just the graph and statistics the
checkpoint carries — so that after any number of kill/restart cycles
the run can be packed into an ``.elog`` byte-identical to batch
ingestion of the final directory.

The mechanism is a sidecar **journal** (``run.elog.journal``): an
append-only JSONL file gaining one line per ``(case, sealed batch)``
as records seal. Append-only is what makes it crash-safe to combine
with the checkpoint:

- :meth:`EmitJournal.sync` (flush + ``fsync``) runs *before* every
  checkpoint save, and the checkpoint records the synced byte offset —
  so the sidecar never claims records the journal does not durably
  hold;
- on restore, :meth:`EmitJournal.truncate_to` cuts the journal back to
  the checkpointed offset — bytes past it (records sealed after the
  last save, or a torn final line) describe trace bytes the restored
  engine will re-read and re-seal, so dropping them is exactly what
  prevents duplicates.

Packing (:meth:`EmitJournal.pack`) replays the journal per case and
streams the cases through
:meth:`~repro.elstore.writer.EventLogWriter.add_case_records` in
sorted-path order — the same columnarization
(:func:`~repro.ingest.parallel.case_to_columns`) and the same case
order as batch ``convert`` over the directory, which is what makes
the output *byte*-identical, global string pools included. Cases the
engine follows but that sealed nothing are packed empty, as batch
does.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import TYPE_CHECKING

from repro._util.errors import ReproError
from repro.strace.naming import TraceFileName
from repro.telemetry.spans import NULL_TELEMETRY

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.live.engine import LiveIngest
    from repro.strace.parser import ParsedRecord


class EmitJournal:
    """Append-only durable journal of sealed records + ``.elog`` pack.

    Construct with the *destination* ``.elog`` path; the journal lives
    next to it as ``<name>.journal`` and is deliberately kept after a
    successful pack — it is the source of truth for a future life of
    the same watch (delete both to start over).
    """

    def __init__(self, elog_path: str | os.PathLike[str], *,
                 telemetry=None) -> None:
        self.telemetry = telemetry if telemetry is not None \
            else NULL_TELEMETRY
        self.elog_path = Path(elog_path)
        self.journal_path = self.elog_path.with_name(
            self.elog_path.name + ".journal")
        parent = self.journal_path.parent
        if not parent.is_dir():
            raise ReproError(
                f"--emit {self.elog_path}: parent directory "
                f"{parent} does not exist")
        self._handle = None

    # -- appending ---------------------------------------------------------

    def append(self, name: TraceFileName,
               records: "list[ParsedRecord]") -> None:
        """Journal one sealed batch of one case (buffered)."""
        from repro.live.checkpoint import _record_to_state

        if self._handle is None:
            self._handle = open(self.journal_path, "ab")
        line = json.dumps(
            {"cid": name.cid, "host": name.host, "rid": name.rid,
             "records": [_record_to_state(r) for r in records]},
            sort_keys=True, separators=(",", ":"))
        self._handle.write(line.encode("utf-8") + b"\n")

    def sync(self) -> int:
        """Flush + fsync; returns the durable byte offset.

        Called before every checkpoint save, so the offset the sidecar
        records is never ahead of what the disk holds.
        """
        if self._handle is None:
            return self.journal_path.stat().st_size \
                if self.journal_path.exists() else 0
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self.telemetry.count("journal_fsyncs_total")
        return self._handle.tell()

    def truncate_to(self, offset: int) -> None:
        """Cut the journal back to a checkpointed offset (restore path).

        Records past the offset were sealed after the last checkpoint
        save — the restored engine's tails will re-read those trace
        bytes and re-journal them, so keeping the old lines would
        duplicate them in the pack. Also disposes of a torn final line
        from a crash mid-append.
        """
        if self._handle is not None:
            raise ReproError(
                "emit journal already open for append; truncate on "
                "restore must happen before the first append")
        current = self.journal_path.stat().st_size \
            if self.journal_path.exists() else 0
        if offset > current:
            raise ReproError(
                f"checkpoint claims {offset} durable emit-journal "
                f"bytes but {self.journal_path} holds {current} — the "
                f"journal was truncated or replaced behind the "
                f"checkpoint; delete both and re-watch")
        if current and offset < current:
            with open(self.journal_path, "r+b") as handle:
                handle.truncate(offset)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # -- packing -----------------------------------------------------------

    def replay(self) -> dict[str, tuple[TraceFileName,
                                        "list[ParsedRecord]"]]:
        """case id -> (name, sealed records in sealed order)."""
        from repro.live.checkpoint import _record_from_state

        cases: dict[str, tuple[TraceFileName, list]] = {}
        if self._handle is not None:
            self._handle.flush()
        if not self.journal_path.exists():
            return cases
        with open(self.journal_path, "rb") as handle:
            for line in handle:
                data = json.loads(line)
                name = TraceFileName(cid=data["cid"], host=data["host"],
                                     rid=int(data["rid"]))
                entry = cases.setdefault(name.case_id, (name, []))
                entry[1].extend(
                    _record_from_state(r) for r in data["records"])
        return cases

    def pack(self, engine: "LiveIngest") -> Path:
        """Write the ``.elog`` from the journal — byte-identical to
        batch conversion of the directory in its current sealed state.

        ``engine`` supplies the followed files (for case order and for
        cases with nothing sealed); the records come exclusively from
        the journal, so the pack covers every life of the watch, not
        just the current process.
        """
        from repro.elstore.writer import EventLogWriter

        replayed = self.replay()
        with EventLogWriter(self.elog_path) as writer:
            for path in sorted(engine._tails):
                name = engine._tails[path].name
                _, records = replayed.get(name.case_id, (name, []))
                writer.add_case_records(name, records)
        return self.elog_path

"""Live ingestion: tail growing trace directories into a standing DFG.

The batch pipeline is post-mortem — it parses a finished trace
directory in one shot. This subsystem makes the same directory a
*live* input: ``strace -f -tt -T -y -o traces/<cid>_<host>_<rid>.st``
on a running job produces files that grow and multiply, and
:class:`~repro.live.engine.LiveIngest` keeps an always-current
event-log and DFG over them with bounded per-poll cost. The invariant
everything here is built around: after any sequence of polls over a
directory that grew to final state D, the live log and graph equal
one-shot batch ingestion of D (pinned by randomized-schedule property
tests in ``tests/test_live/``).

Layering (bottom → top):

- :mod:`repro.live.tail` — :class:`~repro.live.tail.FileTail` follows
  one file from a byte offset, carrying the partial-last-line remainder
  and the unfinished/resumed merge state
  (:class:`~repro.strace.resume.IncrementalMerger`) between polls, so
  a syscall split across two polls merges exactly as in batch.
- :mod:`repro.live.engine` — :class:`~repro.live.engine.LiveIngest`
  polls the directory for new files and appended bytes, maps sealed
  records, and folds them into a
  :class:`~repro.core.incremental.IncrementalDFG` via the union
  algebra *and* into per-activity statistics accumulators
  (:class:`~repro.core.statistics.StatsAccumulator`), so
  :meth:`~repro.live.engine.LiveIngest.statistics` serves full-history
  Sec. IV-B node annotations at O(delta); snapshot/diff views reuse
  :mod:`repro.core.diff` and :mod:`repro.core.coloring`.
- :mod:`repro.live.checkpoint` — JSON sidecar serialization of the
  full follower + graph + statistics state, so a killed watcher
  restarts from the recorded byte offsets instead of re-parsing
  gigabytes, with statistics still covering the full run.
- :mod:`repro.live.watch` — the ``st-inspector watch`` refresh loop:
  periodic ASCII summary with change highlighting, an alert pane, and
  a sealing-starvation note in the status line.

Sitting on top (separate packages, wired in by the watch loop):
:mod:`repro.alerts` turns refresh deltas into *pages* — declarative
threshold rules (``watch --rules rules.toml``) whose latches and fired
history persist in the same checkpoint sidecar — and
:mod:`repro.telemetry` makes the watcher itself observable: per-phase
poll spans, a Prometheus-scrapeable metrics registry whose monotonic
counters also persist in the sidecar, and a ``/healthz`` verdict
(``watch --metrics-port``).
"""

from repro.live.tail import FileTail
from repro.live.engine import LiveIngest, PollResult
from repro.live.checkpoint import (
    CHECKPOINT_VERSION,
    load_checkpoint,
    save_checkpoint,
)
from repro.live.watch import WatchView, run_watch

__all__ = [
    "FileTail",
    "LiveIngest",
    "PollResult",
    "CHECKPOINT_VERSION",
    "load_checkpoint",
    "save_checkpoint",
    "WatchView",
    "run_watch",
]

"""The ``st-inspector watch`` refresh loop.

Periodically polls a :class:`~repro.live.engine.LiveIngest` and prints
a status block; whenever the graph moved, the block includes the
ASCII-rendered DFG (:mod:`repro.core.render.ascii`) with the elements
that changed since the previous refresh highlighted: the current and
previous snapshots act as the green/red halves of a
:class:`~repro.core.coloring.PartitionColoring` — new nodes/edges tag
``[G]``, vanished ones are reported by the numeric
:class:`~repro.core.diff.DFGDiff` summary (an edge *can* vanish live:
a case's closing ``(a, ■)`` edge moves when the case grows).

If the engine carries an :class:`~repro.alerts.AlertEngine`
(``LiveIngest(alerts=...)`` — the CLI's ``--rules``), the loop
evaluates it after every poll and the refresh block gains a
highlighted ``ALERTS`` pane listing what fired; the status line also
surfaces sealing starvation (per-file watermark age, the same
:meth:`~repro.live.engine.LiveIngest.watermark_ages` accessor the
``watermark_age`` rule reads).

The loop is dependency-injectable (``out``, ``sleep``) so tests drive
it without a terminal or a clock; the CLI passes the defaults.
"""

from __future__ import annotations

import os
import time
from typing import TYPE_CHECKING, Callable

from repro._util.errors import ReproError
from repro.core.coloring import PartitionColoring
from repro.core.dfg import DFG
from repro.core.diff import DFGDiff
from repro.core.render.ascii import render_ascii
from repro.live.engine import LiveIngest, PollResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.alerts import Alert


class WatchView:
    """Stateful renderer of watch refreshes (remembers the baseline)."""

    def __init__(self, engine: LiveIngest, *, show_dfg: bool = True,
                 show_stats: bool = True, top: int = 5) -> None:
        self.engine = engine
        self.show_dfg = show_dfg
        self.show_stats = show_stats
        self.top = top
        self._baseline: DFG | None = None

    def refresh(self, result: PollResult,
                alerts: "list[Alert] | None" = None) -> str:
        """Render one poll's outcome; advances the change baseline.

        ``alerts`` are the records fired by this refresh — rendered as
        a pane right under the status line, *before* the diff and the
        graph, so a paging condition is the first thing an operator
        scanning the refresh sees.
        """
        engine = self.engine
        lines = [self._status_line(result)]
        telemetry_row = self._telemetry_line()
        if telemetry_row:
            lines.append(telemetry_row)
        if alerts:
            lines.append(self._alerts_pane(alerts))
        if result.changed or self._baseline is None:
            current = engine.snapshot_dfg()
            if self._baseline is not None:
                diff = DFGDiff(current, self._baseline)
                lines.append(diff.report(top=self.top).rstrip("\n"))
            if self.show_dfg:
                lines.append(self._render_dfg(current).rstrip("\n"))
            self._baseline = current
        return "\n".join(lines) + "\n"

    def _status_line(self, result: PollResult) -> str:
        engine = self.engine
        news = (f" (+{len(result.new_files)} new: "
                f"{', '.join(result.new_files[:4])}"
                f"{', …' if len(result.new_files) > 4 else ''})"
                if result.new_files else "")
        return (f"poll {result.n_poll}: {result.n_files} files{news}, "
                f"{engine.incremental.n_cases} cases, "
                f"{result.total_events} events "
                f"(+{result.n_sealed} sealed, {result.n_pending} "
                f"in-flight, {result.n_buffered} buffered), "
                f"DFG {engine.incremental.n_nodes} nodes / "
                f"{engine.incremental.n_edges} edges"
                f"{self._starvation_note()}")

    def _starvation_note(self) -> str:
        """Sealing-starvation suffix: which files hold records back,
        and by how much trace time (the ROADMAP diagnostic — an
        unfinished call that never resumes parks everything behind
        it until finalize)."""
        ages = self.engine.watermark_ages()
        if not ages:
            return ""
        worst = max(ages, key=lambda case: (ages[case], case))
        return (f", sealing starved: {len(ages)} file(s), "
                f"worst {worst} at {ages[worst] / 1e6:.3f}s")

    def _telemetry_line(self) -> str:
        """One TELEMETRY row under the status line when the engine is
        instrumented: the completed poll's wall/CPU time, its heaviest
        phases, and the two tallies an operator wants at a glance
        (cadence overruns, sink failures). Empty — no row at all —
        when telemetry is off, keeping the uninstrumented rendering
        byte-identical."""
        telemetry = self.engine.telemetry
        span = telemetry.last_span
        if span is None:
            return ""
        top = ", ".join(f"{p.name} {p.wall_s * 1e3:.1f}ms"
                        for p in span.top_phases(3))
        registry = telemetry.registry
        overruns = registry.counter("poll_overruns_total").value
        failures = registry.counter_sum("sink_failures_total")
        extras = ""
        if overruns:
            extras += f", overruns {int(overruns)}"
        if failures:
            extras += f", sink failures {int(failures)}"
        return (f"  TELEMETRY: poll {span.wall_s * 1e3:.1f}ms wall / "
                f"{span.cpu_s * 1e3:.1f}ms cpu"
                + (f" [{top}]" if top else "") + extras)

    def _alerts_pane(self, alerts: "list[Alert]") -> str:
        total = (self.engine.alerts.n_fired
                 if self.engine.alerts is not None else len(alerts))
        header = (f"  ALERTS: {len(alerts)} fired this refresh "
                  f"({total} total)")
        body = [f"  {alert.render_line()}" for alert in alerts]
        return "\n".join([header, *body])

    def _render_dfg(self, current: DFG) -> str:
        """ASCII DFG with change highlighting.

        Statistics are assembled from the engine's standing
        accumulators (:meth:`~repro.live.engine.LiveIngest.statistics`)
        — O(delta) per refresh, full history even after checkpoint
        restarts, so the Load/DR labels always describe the same span
        of events as the graph they annotate.
        """
        stats = None
        if self.show_stats:
            computed = self.engine.statistics()
            if len(computed):
                stats = computed
        styler = (PartitionColoring(current, self._baseline, stats)
                  if self._baseline is not None else None)
        return render_ascii(current, stats, styler)


def run_watch(engine: LiveIngest, *,
              interval: float = 2.0,
              polls: int | None = None,
              show_dfg: bool = True,
              show_stats: bool = True,
              top: int = 5,
              metrics_port: int | None = None,
              metrics_log: str | os.PathLike[str] | None = None,
              spec=None,
              out: Callable[[str], None] = print,
              sleep: Callable[[float], None] = time.sleep,
              clock: Callable[[], float] = time.monotonic) -> int:
    """Poll → render → checkpoint → sleep, until stopped.

    ``polls`` bounds the number of refreshes (``1`` is the CLI's
    ``--once``); ``None`` runs until KeyboardInterrupt. When the
    engine carries an alert engine, it is evaluated after every poll —
    *before* the checkpoint save, so the sidecar always holds the
    latches of the alerts it has seen fire and a kill between the two
    can at worst replay one refresh of sink deliveries, never lose a
    latch that was persisted. The engine's
    checkpoint (when configured) is saved after every poll that moved
    any state — including carry-only progress with nothing sealed —
    so a kill at any point loses at most one interval of work, while
    idle intervals skip the sidecar rewrite entirely (it is still
    written once if it does not exist yet). The
    interrupt handler deliberately does NOT save: a ^C landing inside
    ``poll()`` can leave byte offsets advanced past records not yet
    folded into the graph, and persisting that torn state would
    silently break the restart-equals-batch guarantee — the last
    post-poll sidecar is always consistent. Returns a process exit
    code.

    Scheduling is against *deadlines*, not fixed post-work sleeps:
    each poll is due ``interval`` after the previous one was due
    (``next = max(now, next + interval)``), so the work of a refresh —
    parsing a burst of trace bytes, a slow sink — does not silently
    stretch the cadence. A poll that overruns its successor's deadline
    starts the successor immediately and re-anchors (no sleepless
    catch-up bursts). ``clock`` is the monotonic time source, paired
    with ``sleep`` for tests.

    When the engine was constructed with ``emit=`` the destination
    ``.elog`` is packed from the durable journal on *every* exit path
    (poll budget exhausted, ^C, or an exception escaping the loop), so
    the file on disk always reflects everything sealed up to the stop.

    Telemetry (engine constructed with ``telemetry=``): every loop
    iteration is one :class:`~repro.telemetry.PollSpan` covering poll,
    alert evaluation and the checkpoint save; the rendering phase is
    timed into the cumulative histograms but deliberately sits outside
    the span, so the TELEMETRY row describes the poll it belongs to.
    ``metrics_port`` serves ``/metrics`` + ``/healthz`` from a daemon
    thread for the life of the loop (``0`` binds an ephemeral port,
    announced via ``out``); ``metrics_log`` appends one JSON snapshot
    line per poll. Both require an instrumented engine. A poll whose
    work overran the interval logs a structured ``OVERRUN`` line —
    with the span's phase breakdown when telemetry is on — instead of
    silently re-anchoring the cadence.

    Since the :mod:`repro.fleet` refactor this function is a one-job
    fleet: the loop body lives in
    :meth:`~repro.fleet.job.WatchJob.poll_once`, the cadence in
    :class:`~repro.fleet.scheduler.FleetScheduler` (no view, no fault
    isolation — exceptions propagate to the caller). The emitted
    bytes are identical to the pre-refactor loop.
    """
    # Lazy: repro.fleet.job imports WatchView from this module.
    from repro.fleet.job import WatchJob
    from repro.fleet.scheduler import FleetScheduler

    telemetry = engine.telemetry
    if (metrics_port is not None or metrics_log is not None) \
            and not telemetry.enabled:
        raise ReproError(
            "metrics exposition needs an instrumented engine: "
            "construct LiveIngest(telemetry=Telemetry()) (the CLI "
            "does this for --metrics-port/--metrics-log)")
    server = None
    if metrics_port is not None:
        from repro.telemetry.exposition import MetricsServer

        server = MetricsServer(telemetry, metrics_port)
        out(f"serving metrics on http://{server.host}:{server.port}"
            f"/metrics (health: /healthz)")
    # A JobSpec (the CLI passes its own) rides along for finalize-time
    # policy the bare engine cannot carry — today the --catalog commit
    # (run name, catalog path, recorded window/mapping metadata).
    job = WatchJob(engine, interval=interval, polls=polls,
                   show_dfg=show_dfg, show_stats=show_stats, top=top,
                   metrics_log=metrics_log, spec=spec)
    scheduler = FleetScheduler([job], out=out, sleep=sleep,
                               clock=clock)
    try:
        return scheduler.run()
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        out(f"stopped after {job.completed} poll(s); "
            + (f"checkpoint as of the last completed poll: "
               f"{engine.checkpoint_path}"
               if engine.checkpoint_path is not None and job.completed
               else "no checkpoint written"))
        return 0
    finally:
        # Packs on *every* exit path — poll budget (already packed by
        # the scheduler; idempotent no-op here), ^C (after the stop
        # message), and an unexpected exception mid-watch: the durable
        # journal always reaches the destination .elog.
        packed = job.finalize()
        if packed is not None:
            out(f"emitted event log: {packed}")
        if server is not None:
            server.close()

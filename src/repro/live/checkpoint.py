"""JSON sidecar persistence for resumable live ingestion.

A checkpoint captures everything a restarted watcher needs to continue
*exactly* where the killed one stopped, without re-reading a single
already-parsed byte:

- per file: the byte offset, the undecoded line carry (base64 — it may
  end mid-UTF-8-sequence), the cumulative line number and merge
  diagnostics, the in-flight unfinished halves, and the
  completed-but-unsealed records of the merge buffer;
- the incremental graph: edge counts, node frequencies and each case's
  tail activity (:meth:`~repro.core.incremental.IncrementalDFG.to_state`);
- the statistics accumulators (since v2): per-activity counts, sums,
  rank sets, the exact-sum rate partials (v4; per-case rate lists
  before that) and the per-case interval buffers
  (:meth:`~repro.core.statistics.StatsAccumulator.to_state`), so a
  restarted watcher renders *full-history* node annotations instead of
  statistics covering only its own lifetime;
- the alert state (since v3): per-rule latch sets and the fired-alert
  history of an attached :class:`~repro.alerts.AlertEngine` — since
  v4 also per-subject cooldown timestamps and the compacted history
  counts — so a restarted watcher neither re-fires already-paged
  alerts nor forgets them (``LiveIngest(alerts=...)``);
- the durable emit-journal offset (since v4): how many
  ``--emit``-journal bytes were fsynced when this sidecar was saved,
  so a restore can cut the journal back to exactly the records the
  restored engine state accounts for (:mod:`repro.live.emit`);
- the telemetry snapshot (since v5): the monotonic counters and
  histogram totals of an attached :class:`~repro.telemetry.Telemetry`,
  restored as *bases* so scraped rates see a kill/restart as a flat
  spot, not a counter reset (``LiveIngest(telemetry=...)``);
- engine counters and the settings the state depends on (mapping name,
  recursiveness, strictness), which are checked on load — resuming a
  checkpoint under a different mapping would silently corrupt the
  graph, so it is an error instead.

Version history. **v1** (pre-statistics) is rejected with instructions
to delete and re-watch: silently resuming one would render
full-history graphs against current-process-only statistics — exactly
the gap v2 closed, and the missing state cannot be reconstructed from
the sidecar. **v2** (statistics, no alerts) and **v3** (alerts, O(n)
per-case rate buffers) are *upgraded in place*: alert state genuinely
starts empty on a pre-alerting sidecar, and v3's per-case rate lists
fold losslessly into v4's exact partial sums (the exact sum is
order-independent); the next save writes v4.

Durability. The sidecar is written atomically *and* durably: the temp
file is fsynced before ``os.replace`` and the directory is fsynced
after, so a crash or power loss at any point surfaces either the
previous complete sidecar or the new complete sidecar — never a torn
or empty one. A stale ``*.tmp`` from a kill between write and replace
is removed on the next load. File paths are stored relative to the
trace directory, so a checkpoint travels with the directory (e.g.
onto another node of the cluster).
"""

from __future__ import annotations

import base64
import dataclasses
import json
import os
from pathlib import Path
from typing import TYPE_CHECKING

from repro._util.errors import ReproError
from repro.core.incremental import IncrementalDFG
from repro.core.statistics import StatsAccumulator
from repro.live.tail import FileTail
from repro.strace.parser import ParsedRecord
from repro.strace.resume import MergeStats
from repro.strace.tokenizer import RecordKind, Token

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.live.engine import LiveIngest

#: Bump when the state layout changes; loaders reject other versions.
#: v2 added the statistics accumulators (full-history node annotations
#: across restarts); v3 added the alert state (rule latches + fired
#: history); v4 replaced per-case rate lists with exact-sum partials,
#: added cooldown timestamps + compacted alert history, and the
#: emit-journal offset; v5 added the telemetry snapshot (monotonic
#: counter/histogram bases, so scraped rates survive kill/restart);
#: v6 added the emit-journal *pack* offset — how much of the journal
#: was already compacted into the destination ``.elog`` when the
#: sidecar was saved, cross-checked against the journal's own header
#: on restore. v2–v5 sidecars still load — see :func:`restore_engine`.
CHECKPOINT_VERSION = 6

#: Versions :func:`restore_engine` can load. v2 lacks only the alert
#: state, which legitimately starts empty; v3–v5 lack only later
#: additions, all of which upgrade in place (a pre-v5 sidecar simply
#: has no telemetry history — counters start their base at zero,
#: which is what was true when it was written; a pre-v6 sidecar was
#: written before rolling compaction existed, so its pack offset is
#: legitimately zero).
_LOADABLE_VERSIONS = frozenset({2, 3, 4, 5, CHECKPOINT_VERSION})


def _record_to_state(record: ParsedRecord) -> dict:
    state = dataclasses.asdict(record)
    state["args"] = list(state["args"])
    return state


def _record_from_state(state: dict) -> ParsedRecord:
    return ParsedRecord(**{**state, "args": tuple(state["args"])})


def _tail_to_state(tail: FileTail, directory: Path) -> dict:
    return {
        "path": tail.path.relative_to(directory).as_posix(),
        "cid": tail.name.cid,
        "host": tail.name.host,
        "rid": tail.name.rid,
        "offset": tail.offset,
        "carry": base64.b64encode(tail.carry).decode("ascii"),
        "lineno": tail.lineno,
        "stats": dataclasses.asdict(tail.merger.stats),
        "pending": [{"pid": token.pid, "start_us": token.start_us,
                     "body": token.body}
                    for token in tail.merger.pending_tokens()],
        "buffer": [[seq, _record_to_state(record)]
                   for seq, record in tail.merger.buffered_records()],
        "next_seq": tail.merger.next_seq,
    }


def _tail_from_state(state: dict, directory: Path,
                     strict: bool) -> FileTail:
    from repro.strace.naming import TraceFileName

    path = directory / state["path"]
    name = TraceFileName(cid=state["cid"], host=state["host"],
                         rid=int(state["rid"]))
    tail = FileTail(path, name, strict=strict)
    tail.offset = int(state["offset"])
    tail.carry = base64.b64decode(state["carry"])
    tail.lineno = int(state["lineno"])
    tail.merger.restore(
        pending=[Token(pid=int(t["pid"]), start_us=int(t["start_us"]),
                       kind=RecordKind.UNFINISHED, body=t["body"])
                 for t in state["pending"]],
        buffered=[(int(seq), _record_from_state(record))
                  for seq, record in state["buffer"]],
        next_seq=int(state["next_seq"]),
        stats=MergeStats(**state["stats"]),
    )
    return tail


def engine_state(engine: "LiveIngest") -> dict:
    """The full resumable state of a :class:`LiveIngest`, as JSON data.

    When an emit journal is attached, it is fsynced *here* and the
    durable offset recorded — the sidecar must never account for
    records the journal does not durably hold (the restore path
    truncates the journal back to this offset).
    """
    emit_offset = (engine.emit_journal.sync()
                   if engine.emit_journal is not None else None)
    emit_packed = (engine.emit_journal.packed_offset
                   if engine.emit_journal is not None else None)
    return {
        "version": CHECKPOINT_VERSION,
        "mapping": engine.mapping.name,
        "recursive": engine.recursive,
        "strict": engine.strict,
        "cids": sorted(engine.cids) if engine.cids is not None else None,
        "window": engine.window,
        "n_polls": engine.n_polls,
        "total_events": engine.total_events,
        "emit_offset": emit_offset,
        "emit_packed": emit_packed,
        "files": [_tail_to_state(engine._tails[path], engine.directory)
                  for path in sorted(engine._tails)],
        "dfg": engine.incremental.to_state(),
        "stats": engine.stats.to_state(),
        "alerts": _alert_state(engine),
        "telemetry": _telemetry_state(engine),
    }


def _alert_state(engine: "LiveIngest") -> dict:
    """The alert state to persist: the attached engine's live state,
    or the stashed state of a previous life (a watch restarted without
    rules must not erase the alert history it cannot interpret), or
    the empty default."""
    from repro.alerts import empty_alert_state

    if engine.alerts is not None:
        return engine.alerts.to_state()
    if engine._alert_state is not None:
        return engine._alert_state
    return empty_alert_state()


def _telemetry_state(engine: "LiveIngest") -> dict | None:
    """The telemetry state to persist: the live snapshot when
    telemetry is on, the stashed previous-life state when it is off
    (a watch restarted without --metrics-* must not erase the counter
    history a previous life accumulated), else nothing."""
    if engine.telemetry.enabled:
        return engine.telemetry.to_state()
    return engine._telemetry_state


def restore_engine(engine: "LiveIngest", state: dict) -> None:
    """Load :func:`engine_state` output into a freshly built engine."""
    version = state.get("version")
    if version not in _LOADABLE_VERSIONS:
        hint = ""
        if version == 1:
            hint = (" — v1 sidecars predate persisted statistics and "
                    "cannot be upgraded in place; delete the sidecar "
                    "and re-watch the directory to rebuild it")
        raise ReproError(
            f"unsupported checkpoint version {version!r} "
            f"(this build writes {CHECKPOINT_VERSION}){hint}")
    current_cids = sorted(engine.cids) if engine.cids is not None else None
    for attribute, current in (("mapping", engine.mapping.name),
                               ("recursive", engine.recursive),
                               ("strict", engine.strict),
                               ("cids", current_cids)):
        if state[attribute] != current:
            raise ReproError(
                f"checkpoint was taken with {attribute}="
                f"{state[attribute]!r} but the engine runs with "
                f"{current!r} — resuming would corrupt the graph")
    engine.n_polls = int(state["n_polls"])
    engine.total_events = int(state["total_events"])
    engine.incremental = IncrementalDFG.from_state(state["dfg"])
    # Passing the engine's window also upgrades an unwindowed (or
    # pre-v4) sidecar in place: oversized buffers coarsen on load.
    engine.stats = StatsAccumulator.from_state(state["stats"],
                                               window=engine.window)
    if engine.emit_journal is not None:
        emit_offset = state.get("emit_offset")
        if emit_offset is None:
            if engine.total_events > 0:
                raise ReproError(
                    f"checkpoint accounts for {engine.total_events} "
                    f"sealed events that were never emit-journaled — "
                    f"--emit cannot reconstruct them; resume without "
                    f"--emit, or delete the checkpoint (and any stale "
                    f"journal) to re-watch from scratch")
            engine.emit_journal.truncate_to(0)
        else:
            # v6 cross-check: the journal's compaction base can only
            # be *ahead* of the sidecar (a compaction ran after this
            # save — its packed prefix is already durable in the
            # .elog, and the header's per-case counts keep replay
            # exact). A journal *behind* the sidecar's pack offset
            # means the journal/.elog pair was swapped for older
            # files, and the packed records the sidecar accounts for
            # may be gone.
            emit_packed = int(state.get("emit_packed") or 0)
            if engine.emit_journal.packed_offset < emit_packed:
                raise ReproError(
                    f"checkpoint says {emit_packed} emit-journal "
                    f"bytes were compacted into "
                    f"{engine.emit_journal.elog_path} but the journal "
                    f"header claims only "
                    f"{engine.emit_journal.packed_offset} — the "
                    f"journal was replaced behind the checkpoint; "
                    f"delete checkpoint, journal and .elog and "
                    f"re-watch")
            engine.emit_journal.truncate_to(int(emit_offset))
    # v2 → v3 upgrade in place: pre-alerting sidecars hold no alert
    # state, and empty is exactly what was true when they were written.
    from repro.alerts import empty_alert_state

    alert_state = state.get("alerts") or empty_alert_state()
    engine._alert_state = alert_state
    if engine.alerts is not None:
        engine.alerts.restore_state(alert_state)
    # v4 → v5 upgrade in place: pre-telemetry sidecars hold no
    # telemetry state; the bases legitimately start at zero.
    telemetry_state = state.get("telemetry")
    engine._telemetry_state = telemetry_state
    if engine.telemetry.enabled:
        engine.telemetry.restore_state(telemetry_state)
    for tail_state in state["files"]:
        tail = _tail_from_state(tail_state, engine.directory,
                                engine.strict)
        engine._tails[tail.path] = tail
        engine._case_paths[tail.name.case_id] = tail.path
        tail.telemetry = engine.telemetry


def save_checkpoint(engine: "LiveIngest",
                    path: str | os.PathLike[str]) -> Path:
    """Serialize the engine atomically *and durably* to ``path``.

    The temp file is fsynced before ``os.replace`` and the directory
    entry is fsynced after: a crash or power loss at any instant of
    this function leaves either the previous complete sidecar or the
    new complete one on disk — never a zero-length or torn file
    (``os.replace`` alone guarantees only name atomicity, not that the
    replacing *contents* reached the platter). Pinned by the
    crash-consistency tests in ``tests/test_live``.

    Cost: O(accumulated state), not O(delta) — each save rewrites the
    whole sidecar (compactly — no whitespace). The interval buffers
    dominate; bound them with ``LiveIngest(window=...)`` for week-long
    watches, and bound a chatty alert history with the rules file's
    ``history_limit``.
    """
    target = Path(path)
    payload = json.dumps(engine_state(engine), sort_keys=True,
                         separators=(",", ":"))
    temp = target.with_name(target.name + ".tmp")
    with open(temp, "w", encoding="utf-8") as handle:
        handle.write(payload)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temp, target)
    _fsync_directory(target.parent)
    return target


def _fsync_directory(directory: Path) -> None:
    """Flush a directory entry (the rename) to stable storage."""
    fd = os.open(directory, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def load_checkpoint(engine: "LiveIngest",
                    path: str | os.PathLike[str]) -> None:
    """Restore a fresh engine from a sidecar written by
    :func:`save_checkpoint`.

    A stale ``<name>.tmp`` next to the sidecar — a save killed between
    temp write and replace — is removed: it may be torn, and the
    sidecar proper is by construction the newest *complete* state.
    """
    target = Path(path)
    stale = target.with_name(target.name + ".tmp")
    stale.unlink(missing_ok=True)
    try:
        state = json.loads(target.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ReproError(f"corrupt checkpoint {path}: {exc}") from exc
    restore_engine(engine, state)

"""Columnar event storage on NumPy arrays.

The paper's reference implementation concatenates per-case tables into a
pandas ``DataFrame`` with one row per event (Fig. 6, step 1). pandas is
not among our substrate dependencies, so :class:`EventFrame` provides
the slice of DataFrame behaviour the methodology needs — column arrays,
boolean-mask selection, vectorized substring filtering, stable sorting,
group-by — implemented directly on NumPy per the HPC-Python guide
(vectorize; views, not copies; single-pass algorithms).

Design notes
------------
* String-valued columns (*call*, *fp*, *case*, *cid*, *host*, and the
  derived *activity*) are dictionary-encoded: the column stores ``int32``
  codes into shared :class:`~repro._util.strings.StringPool` instances.
  Substring filters — the paper's ``apply_fp_filter('/usr/lib')`` — are
  evaluated once per *distinct* string on the pool, then applied to the
  column with a vectorized ``isin`` (O(distinct · |s| + n) instead of
  O(n · |s|)).
* Missing values use sentinels: ``-1`` for missing codes, durations and
  sizes. The paper's events always carry start/dur; fp and size are
  optional (Sec. III).
* Selection (:meth:`EventFrame.select`) produces a new frame whose
  columns are fancy-indexed copies but whose pools are *shared*, so code
  semantics survive filtering and concatenation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

import numpy as np

from repro._util.errors import ReproError
from repro._util.strings import StringPool

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.core.event import Event
    from repro.strace.reader import TraceCase

#: Missing-value sentinel for code/size/duration columns.
MISSING = -1

#: Column names in canonical order (mirrors Eq. 1 plus the derived
#: *case* and *activity* columns of the paper's Fig. 6 DataFrame).
COLUMN_ORDER = (
    "case", "cid", "host", "rid", "pid",
    "call", "start", "dur", "fp", "size", "activity",
)

_CODE_COLUMNS = frozenset({"case", "cid", "host", "call", "fp", "activity"})
_INT_COLUMNS = frozenset({"rid", "pid", "start", "dur", "size"})


@dataclass
class FramePools:
    """The shared dictionaries backing string-valued columns."""

    cases: StringPool = field(default_factory=StringPool)
    cids: StringPool = field(default_factory=StringPool)
    hosts: StringPool = field(default_factory=StringPool)
    calls: StringPool = field(default_factory=StringPool)
    paths: StringPool = field(default_factory=StringPool)
    activities: StringPool = field(default_factory=StringPool)

    def pool_for(self, column: str) -> StringPool:
        """The pool encoding a given code column."""
        try:
            return {
                "case": self.cases,
                "cid": self.cids,
                "host": self.hosts,
                "call": self.calls,
                "fp": self.paths,
                "activity": self.activities,
            }[column]
        except KeyError:
            raise ReproError(f"{column!r} is not a string column") from None


class EventFrame:
    """A columnar table of events; the library's DataFrame substitute."""

    __slots__ = ("pools", "_columns")

    def __init__(self, pools: FramePools,
                 columns: dict[str, np.ndarray]) -> None:
        missing = set(COLUMN_ORDER) - set(columns)
        if missing:
            raise ReproError(f"missing columns: {sorted(missing)}")
        lengths = {name: len(col) for name, col in columns.items()}
        if len(set(lengths.values())) > 1:
            raise ReproError(f"ragged columns: {lengths}")
        self.pools = pools
        self._columns = columns

    # -- construction ------------------------------------------------------

    @classmethod
    def empty(cls, pools: FramePools | None = None) -> "EventFrame":
        """A zero-row frame (optionally sharing existing pools)."""
        pools = pools or FramePools()
        columns = {
            name: np.empty(
                0, dtype=np.int32 if name in _CODE_COLUMNS else np.int64)
            for name in COLUMN_ORDER
        }
        return cls(pools, columns)

    @classmethod
    def from_cases(cls, cases: "Iterable[TraceCase]",
                   pools: FramePools | None = None) -> "EventFrame":
        """Build a frame from parsed strace cases (reader output).

        Events inherit cid/host/rid from the trace-file name and keep
        per-record pid/call/start/dur/fp/size. Records within each case
        arrive already sorted by start timestamp (reader guarantee);
        cases are laid out contiguously.

        Implemented as columnarize-then-assemble on the parallel-ingest
        wire format (:mod:`repro.ingest.parallel`), so the sequential
        and fanned-out paths share one interning sequence by
        construction.
        """
        from repro.ingest.parallel import (
            case_to_columns,
            frame_from_case_columns,
        )

        return frame_from_case_columns(
            [case_to_columns(case) for case in cases], pools)

    # -- basic shape ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._columns["start"])

    @property
    def n_events(self) -> int:
        """Number of events (rows)."""
        return len(self)

    def column(self, name: str) -> np.ndarray:
        """Raw column array (codes for string columns). Do not mutate."""
        try:
            return self._columns[name]
        except KeyError:
            raise ReproError(f"unknown column {name!r}") from None

    def decoded(self, name: str) -> list[str | None]:
        """String column decoded through its pool (None for MISSING)."""
        codes = self.column(name)
        pool = self.pools.pool_for(name)
        return [None if c == MISSING else pool.decode(int(c)) for c in codes]

    # -- selection ------------------------------------------------------------

    def select(self, mask_or_index: np.ndarray) -> "EventFrame":
        """New frame with the masked/indexed rows; pools are shared."""
        columns = {name: col[mask_or_index]
                   for name, col in self._columns.items()}
        return EventFrame(self.pools, columns)

    def fp_contains(self, substring: str) -> np.ndarray:
        """Boolean mask: events whose file path contains ``substring``.

        This is the engine behind the paper's ``apply_fp_filter``.
        Events without a path never match.
        """
        matching = self.pools.paths.codes_containing(substring)
        return np.isin(self._columns["fp"], matching)

    def fp_matches(self, predicate: Callable[[str], bool]) -> np.ndarray:
        """Boolean mask from an arbitrary path predicate (pool-level)."""
        matching = self.pools.paths.codes_matching(predicate)
        return np.isin(self._columns["fp"], matching)

    def call_in(self, names: Iterable[str]) -> np.ndarray:
        """Boolean mask: events whose syscall is one of ``names``."""
        codes = [self.pools.calls.lookup(n) for n in names]
        wanted = np.array([c for c in codes if c is not None],
                          dtype=np.int32)
        return np.isin(self._columns["call"], wanted)

    def cid_in(self, cids: Iterable[str]) -> np.ndarray:
        """Boolean mask: events belonging to one of the given cids."""
        codes = [self.pools.cids.lookup(c) for c in cids]
        wanted = np.array([c for c in codes if c is not None],
                          dtype=np.int32)
        return np.isin(self._columns["cid"], wanted)

    def time_window(self, start_us: int, end_us: int) -> np.ndarray:
        """Boolean mask: events starting within [start_us, end_us)."""
        starts = self._columns["start"]
        return (starts >= start_us) & (starts < end_us)

    # -- ordering / grouping ---------------------------------------------------

    def sorted_within_cases(self) -> "EventFrame":
        """Stable-sort rows by (case, start): the paper's case order."""
        order = np.lexsort(
            (self._columns["start"], self._columns["case"]))
        return self.select(order)

    def case_slices(self) -> list[tuple[int, np.ndarray]]:
        """Group rows by case: list of (case_code, row_indices).

        Row indices within each group preserve frame order (stable),
        which after :meth:`sorted_within_cases` is start-time order —
        the event order that defines a case (Eq. 2).
        """
        case_codes = self._columns["case"]
        if len(case_codes) == 0:
            return []
        order = np.argsort(case_codes, kind="stable")
        sorted_codes = case_codes[order]
        boundaries = np.flatnonzero(np.diff(sorted_codes)) + 1
        groups = np.split(order, boundaries)
        return [(int(case_codes[g[0]]), g) for g in groups]

    def groupby_activity(self) -> list[tuple[int, np.ndarray]]:
        """Group rows by activity code, excluding unmapped rows.

        This powers the O(mn) statistics pass of Sec. V: one stable sort
        followed by boundary splitting.
        """
        activity = self._columns["activity"]
        mapped = np.flatnonzero(activity != MISSING)
        if mapped.size == 0:
            return []
        order = mapped[np.argsort(activity[mapped], kind="stable")]
        sorted_codes = activity[order]
        boundaries = np.flatnonzero(np.diff(sorted_codes)) + 1
        groups = np.split(order, boundaries)
        return [(int(activity[g[0]]), g) for g in groups]

    # -- concatenation -----------------------------------------------------------

    @classmethod
    def concat(cls, frames: "list[EventFrame]") -> "EventFrame":
        """Concatenate frames sharing the same pools object.

        Frames built against different pools must be re-encoded first
        (:meth:`reencoded`); requiring shared pools keeps concatenation
        O(n) with no string work.
        """
        if not frames:
            return cls.empty()
        pools = frames[0].pools
        for frame in frames[1:]:
            if frame.pools is not pools:
                raise ReproError(
                    "cannot concat frames with different pools; "
                    "use reencoded() first")
        columns = {
            name: np.concatenate([f._columns[name] for f in frames])
            for name in COLUMN_ORDER
        }
        return cls(pools, columns)

    def reencoded(self, pools: FramePools) -> "EventFrame":
        """Copy of this frame re-encoded against another pools object."""
        columns = dict(self._columns)
        for name in _CODE_COLUMNS:
            src_pool = self.pools.pool_for(name)
            dst_pool = pools.pool_for(name)
            old_codes = self._columns[name]
            # Build translation table once per distinct code.
            table = np.full(len(src_pool) + 1, MISSING, dtype=np.int32)
            for code in np.unique(old_codes):
                if code == MISSING:
                    continue
                table[code] = dst_pool.intern(src_pool.decode(int(code)))
            new_codes = np.where(
                old_codes == MISSING, np.int32(MISSING), table[old_codes])
            columns[name] = new_codes.astype(np.int32)
        return EventFrame(pools, columns)

    # -- activity column ------------------------------------------------------------

    def with_activity_codes(self, codes: np.ndarray) -> "EventFrame":
        """New frame with the given activity codes (same pools)."""
        if len(codes) != len(self):
            raise ReproError(
                f"activity codes length {len(codes)} != rows {len(self)}")
        columns = dict(self._columns)
        columns["activity"] = codes.astype(np.int32)
        return EventFrame(self.pools, columns)

    # -- row access --------------------------------------------------------------------

    def event(self, row: int) -> "Event":
        """Materialize one row as an :class:`~repro.core.event.Event`."""
        from repro.core.event import Event

        def _decode(col: str) -> str | None:
            code = int(self._columns[col][row])
            if code == MISSING:
                return None
            return self.pools.pool_for(col).decode(code)

        dur = int(self._columns["dur"][row])
        size = int(self._columns["size"][row])
        return Event(
            cid=_decode("cid") or "",
            host=_decode("host") or "",
            rid=int(self._columns["rid"][row]),
            pid=int(self._columns["pid"][row]),
            call=_decode("call") or "",
            start=int(self._columns["start"][row]),
            dur=dur if dur != MISSING else None,
            fp=_decode("fp"),
            size=size if size != MISSING else None,
        )

    def iter_events(self) -> "Iterator[Event]":
        """Iterate rows as :class:`Event` objects (used by mappings)."""
        for row in range(len(self)):
            yield self.event(row)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"EventFrame({len(self)} events, "
                f"{len(self.pools.cases)} cases, "
                f"{len(self.pools.paths)} paths)")

"""Event-log partitioning for partition-based coloring (Sec. IV-C).

Step (a) of the comparison technique: "From the event-log C, identify
two mutually exclusive subsets G and R". The paper's IOR experiment
partitions by *command identifier* (the run with MPI-IO vs the run
without); the general mechanism also supports arbitrary predicates
(e.g. by host, by rank parity, by time window).

Partitions are *case-level*: a case belongs wholly to G or wholly to R,
because traces — and therefore DFGs — are per-case sequences; splitting
a case between subsets would fabricate directly-follows relations that
never happened.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable

import numpy as np

from repro._util.errors import PartitionError
from repro.core.eventlog import EventLog

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.event import Event


def partition_by_cid(
    event_log: EventLog,
    green_cids: Iterable[str],
    red_cids: Iterable[str] | None = None,
) -> tuple[EventLog, EventLog]:
    """Split by command identifier: G = given cids, R = the rest.

    This realizes the paper's Eq. 18-style partitions (G = the MPI-IO
    run, R = the POSIX run). ``red_cids`` may be given explicitly to
    restrict R; cids in neither set are dropped (with a validity check
    that at least G and R are non-empty and disjoint).
    """
    green_set = set(green_cids)
    present = set(event_log.cids())
    unknown = green_set - present
    if unknown:
        raise PartitionError(
            f"green cids not present in the log: {sorted(unknown)}")
    if red_cids is None:
        red_set = present - green_set
    else:
        red_set = set(red_cids)
        if red_set & green_set:
            raise PartitionError(
                f"green and red cids overlap: {sorted(red_set & green_set)}")
        unknown = red_set - present
        if unknown:
            raise PartitionError(
                f"red cids not present in the log: {sorted(unknown)}")
    if not red_set:
        raise PartitionError(
            "red partition is empty; need at least two distinct cids")
    frame = event_log.frame
    green_log = event_log.filtered(frame.cid_in(green_set))
    red_log = event_log.filtered(frame.cid_in(red_set))
    return green_log, red_log


def partition_by_predicate(
    event_log: EventLog,
    case_predicate: Callable[[str], bool],
) -> tuple[EventLog, EventLog]:
    """Split by a predicate over *case ids* (e.g. ``lambda c:
    c.startswith('mpiio')``). True → green, False → red."""
    frame = event_log.frame
    pool = frame.pools.cases
    case_col = frame.column("case")
    green_codes = {code for code in np.unique(case_col)
                   if case_predicate(pool.decode(int(code)))}
    mask = np.isin(case_col,
                   np.array(sorted(green_codes), dtype=np.int32))
    if not mask.any() or mask.all():
        raise PartitionError(
            "predicate produced an empty partition "
            f"(green={int(mask.sum())} of {len(mask)} events)")
    return event_log.filtered(mask), event_log.filtered(~mask)


def PartitionEL(
    event_log: EventLog,
    green_cids: Iterable[str] | None = None,
    *,
    predicate: Callable[[str], bool] | None = None,
) -> tuple[EventLog, EventLog]:
    """The paper's ``PartitionEL`` (Fig. 6, step 5b).

    Called with no arguments beyond the log, it requires the log to
    contain exactly two cids and makes the lexicographically first one
    green — the deterministic counterpart of the paper's implicit
    split. Pass ``green_cids`` or ``predicate`` for explicit control.

    Returns ``(green_event_log, red_event_log)``.
    """
    if predicate is not None:
        if green_cids is not None:
            raise PartitionError("pass green_cids or predicate, not both")
        return partition_by_predicate(event_log, predicate)
    if green_cids is not None:
        return partition_by_cid(event_log, green_cids)
    cids = event_log.cids()
    if len(cids) != 2:
        raise PartitionError(
            f"implicit partition needs exactly two cids, log has {cids}; "
            f"pass green_cids= explicitly")
    return partition_by_cid(event_log, [cids[0]])

"""The Directly-Follows-Graph (Sec. IV-A).

Given an activity-log ``L_f(C)``, the DFG ``G[L_f(C)]`` has the
activities as nodes and an edge ``(a1, a2)`` iff some trace contains
``a1`` immediately before ``a2``; self-loops arise from repeated
activities (``read:/usr/lib`` three times in a row → a self-edge of
weight 2 per trace). Edge weights count how often the directly-follows
relation was observed — the numbers on the edges of Fig. 3.

Besides construction, this module provides the graph algebra that the
comparison technique of Sec. IV-C builds on: union (``G[L(Ca ∪ Cb)]``
equals ``G[L(Ca)] ∪ G[L(Cb)]`` with summed weights — a property our
hypothesis tests check), and exclusive-node/edge queries used by
partition coloring.

Construction is a single pass over the activity-log (O(n), as the paper
notes in Sec. V), with distinct traces processed once and weighted by
multiplicity.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Mapping as TMapping

import networkx as nx

from repro._util.errors import ReproError
from repro.core.activity import (
    END_ACTIVITY,
    SENTINELS,
    START_ACTIVITY,
    ActivityLog,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.eventlog import EventLog

Edge = tuple[str, str]


class DFG:
    """A Directly-Follows-Graph with observation-count edge weights.

    The constructor accepts an :class:`~repro.core.eventlog.EventLog`
    (with an applied mapping — this matches the paper's Fig. 6 step 3,
    ``dfg = DFG(event_log)``) or an
    :class:`~repro.core.activity.ActivityLog`.
    """

    __slots__ = ("_edges", "_node_freq")

    def __init__(self, source: "EventLog | ActivityLog | None" = None,
                 *, add_endpoints: bool = True) -> None:
        self._edges: dict[Edge, int] = {}
        self._node_freq: dict[str, int] = {}
        if source is None:
            return
        if isinstance(source, ActivityLog):
            activity_log = source
        else:
            activity_log = ActivityLog.from_event_log(
                source, add_endpoints=add_endpoints)
        self._edges = activity_log.directly_follows_counts()
        self._node_freq = activity_log.activity_frequencies()

    @classmethod
    def from_counts(cls, edges: TMapping[Edge, int],
                    node_freq: TMapping[str, int] | None = None) -> "DFG":
        """Build directly from edge counts (tests / deserialization).

        Node frequencies default to 0 for nodes only seen in edges.
        """
        dfg = cls()
        for (a1, a2), count in edges.items():
            if count <= 0:
                raise ReproError(
                    f"edge ({a1!r}, {a2!r}) has non-positive count {count}")
            dfg._edges[(a1, a2)] = int(count)
        freq = dict(node_freq or {})
        for a1, a2 in dfg._edges:
            freq.setdefault(a1, 0)
            freq.setdefault(a2, 0)
        dfg._node_freq = freq
        return dfg

    # -- structure queries ------------------------------------------------------

    def nodes(self) -> set[str]:
        """All nodes, sentinels included."""
        return set(self._node_freq)

    def activities(self) -> set[str]:
        """Nodes excluding the ● / ■ sentinels."""
        return set(self._node_freq) - SENTINELS

    def edges(self) -> dict[Edge, int]:
        """Copy of the ``{(a1, a2): count}`` edge map."""
        return dict(self._edges)

    def edge_count(self, a1: str, a2: str) -> int:
        """Observation count of edge (a1, a2); 0 if absent."""
        return self._edges.get((a1, a2), 0)

    def has_edge(self, a1: str, a2: str) -> bool:
        return (a1, a2) in self._edges

    def node_frequency(self, activity: str) -> int:
        """Occurrences of the activity across traces (|f⁻¹(a)| for real
        activities; the trace count for ● / ■)."""
        return self._node_freq.get(activity, 0)

    def successors(self, activity: str) -> dict[str, int]:
        """``{a2: count}`` for all edges leaving ``activity``."""
        return {a2: c for (a1, a2), c in self._edges.items()
                if a1 == activity}

    def predecessors(self, activity: str) -> dict[str, int]:
        """``{a1: count}`` for all edges entering ``activity``."""
        return {a1: c for (a1, a2), c in self._edges.items()
                if a2 == activity}

    def self_loops(self) -> dict[str, int]:
        """``{a: count}`` for all self-edges."""
        return {a1: c for (a1, a2), c in self._edges.items() if a1 == a2}

    @property
    def n_nodes(self) -> int:
        return len(self._node_freq)

    @property
    def n_edges(self) -> int:
        return len(self._edges)

    def total_observations(self) -> int:
        """Sum of all edge counts.

        For an endpoint-wrapped log this equals Σ over traces of
        (trace length + 1) — an invariant the property tests verify.
        """
        return sum(self._edges.values())

    # -- algebra ---------------------------------------------------------------------

    def union(self, other: "DFG") -> "DFG":
        """Merged graph with summed edge counts and node frequencies.

        Satisfies ``DFG(L1 ⊎ L2) == DFG(L1) | DFG(L2)``.
        """
        return DFG.union_all((self, other))

    def __or__(self, other: "DFG") -> "DFG":
        return self.union(other)

    @classmethod
    def union_all(cls, dfgs: "Iterable[DFG]") -> "DFG":
        """Fold any number of shard graphs into one (n-ary union).

        ``DFG.union_all(DFG(L(c)) for c in cases) == DFG(L(C))`` — the
        merge step of sharded ingestion (:mod:`repro.ingest.shards`).
        Accumulates in place, so folding k shards with e edges each is
        O(k·e) rather than the O(k²·e) of repeated binary union.
        """
        merged = cls()
        for dfg in dfgs:
            for edge, count in dfg._edges.items():
                merged._edges[edge] = merged._edges.get(edge, 0) + count
            for node, freq in dfg._node_freq.items():
                merged._node_freq[node] = \
                    merged._node_freq.get(node, 0) + freq
        return merged

    def exclusive_nodes(self, other: "DFG") -> set[str]:
        """Nodes present here but not in ``other`` (sentinels excluded —
        both graphs of a partition share ● / ■ by construction)."""
        return self.activities() - other.activities()

    def exclusive_edges(self, other: "DFG") -> set[Edge]:
        """Edges present here but absent from ``other``."""
        return set(self._edges) - set(other._edges)

    def shared_nodes(self, other: "DFG") -> set[str]:
        """Activities occurring in both graphs."""
        return self.activities() & other.activities()

    def shared_edges(self, other: "DFG") -> set[Edge]:
        """Edges occurring in both graphs."""
        return set(self._edges) & set(other._edges)

    # -- filtering (process-mining DFG simplification) ---------------------------------

    def filtered_by_count(self, min_count: int) -> "DFG":
        """Keep only edges observed at least ``min_count`` times.

        The standard process-mining simplification for hairball DFGs:
        rare transitions drop out, the dominant flow remains. Nodes
        that lose all their edges disappear; node frequencies are
        preserved for the survivors.
        """
        if min_count < 1:
            raise ReproError("min_count must be >= 1")
        kept = {edge: count for edge, count in self._edges.items()
                if count >= min_count}
        nodes = {a for edge in kept for a in edge}
        result = DFG()
        result._edges = kept
        result._node_freq = {node: self._node_freq.get(node, 0)
                             for node in nodes}
        return result

    def subgraph(self, nodes: "Iterable[str]") -> "DFG":
        """The induced sub-DFG on the given nodes (plus ● / ■ if
        present) — slicing the graph around suspect activities."""
        wanted = set(nodes) | (SENTINELS & set(self._node_freq))
        kept = {(a1, a2): count for (a1, a2), count
                in self._edges.items()
                if a1 in wanted and a2 in wanted}
        result = DFG()
        result._edges = kept
        result._node_freq = {node: self._node_freq[node]
                             for node in wanted
                             if node in self._node_freq}
        return result

    # -- export ----------------------------------------------------------------------------

    def to_networkx(self) -> nx.DiGraph:
        """Export as a networkx DiGraph (edge attr ``count``, node attr
        ``frequency``) for downstream graph analytics."""
        graph = nx.DiGraph()
        for node, freq in self._node_freq.items():
            graph.add_node(node, frequency=freq)
        for (a1, a2), count in self._edges.items():
            graph.add_edge(a1, a2, count=count)
        return graph

    def start_node(self) -> str:
        """The ● sentinel name (present iff built with endpoints)."""
        return START_ACTIVITY

    def end_node(self) -> str:
        """The ■ sentinel name."""
        return END_ACTIVITY

    # -- identity -----------------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DFG):
            return NotImplemented
        return (self._edges == other._edges
                and self._node_freq == other._node_freq)

    def __hash__(self) -> int:
        return hash(frozenset(self._edges.items()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DFG({self.n_nodes} nodes, {self.n_edges} edges)"

"""Incrementally maintained DFGs under per-case appends.

The paper's union algebra (Sec. IV-A) makes DFG construction not just
shardable but *incremental*: ``G[L(Ca ∪ Cb)] = G[L(Ca)] ∪ G[L(Cb)]``
with summed weights, so a delta of newly observed events folds into a
standing graph without a rebuild. For a *new* case the fold is the
union with the case's single-trace graph verbatim. For a *growing*
case — the live-monitoring situation, where a trace file gains events
while the application runs — the delta attaches at the case boundary:
with previous last activity ``p`` and appended activities
``a1 … ak``, the update removes the old closing edge ``(p, ■)``, adds
the chain ``(p, a1), (a1, a2), …``, and closes again with
``(ak, ■)``. Everything else in the graph is untouched, so the cost of
a poll is O(|delta|) — never O(|log|).

:class:`IncrementalDFG` maintains exactly that state and guarantees the
invariant the live subsystem is built on: after any sequence of
``extend_case`` calls that in total replay each case's activity
sequence in order, :meth:`snapshot` equals the batch-built
:class:`~repro.core.dfg.DFG` of the same log — pinned by hypothesis
property tests over randomized increment schedules.
"""

from __future__ import annotations

from typing import Iterable

from repro._util.errors import ReproError
from repro.core.activity import END_ACTIVITY, START_ACTIVITY
from repro.core.dfg import DFG, Edge
from repro.core.diff import DFGDiff


class IncrementalDFG:
    """A standing DFG that absorbs per-case activity deltas in O(delta).

    Parameters
    ----------
    add_endpoints:
        Wrap every case in the artificial ● / ■ sentinels, exactly like
        batch construction (the default everywhere in the library).
        With ``False`` the graph holds only real directly-follows
        pairs; single-activity cases then contribute a node but no
        edge, again matching :class:`~repro.core.activity.ActivityLog`.
    """

    __slots__ = ("add_endpoints", "_edges", "_node_freq", "_last")

    def __init__(self, *, add_endpoints: bool = True) -> None:
        self.add_endpoints = add_endpoints
        self._edges: dict[Edge, int] = {}
        self._node_freq: dict[str, int] = {}
        # case_id -> last activity of the case so far (● right after
        # registration of an endpoint-wrapped empty case; None for a
        # still-empty case without endpoints).
        self._last: dict[str, str | None] = {}

    # -- folding -----------------------------------------------------------

    def extend_case(self, case_id: str,
                    activities: Iterable[str]) -> None:
        """Fold newly observed activities of one case into the graph.

        Call this once per case per poll with the case's new *mapped*
        activities in event order (possibly empty — a case whose new
        events all fall outside the partial mapping still registers,
        contributing the ``⟨●, ■⟩`` trace until it gains a mapped
        event, just as in batch construction). Calls for different
        cases commute — the union algebra at work.
        """
        acts = list(activities)
        if self.add_endpoints:
            self._extend_with_endpoints(case_id, acts)
        else:
            self._extend_plain(case_id, acts)

    def _extend_with_endpoints(self, case_id: str,
                               acts: list[str]) -> None:
        last = self._last.get(case_id)
        if last is None:
            self._bump_node(START_ACTIVITY, 1)
            prev = START_ACTIVITY
        else:
            if not acts:
                return
            # Re-open the case: its old closing edge moves to the new
            # tail. This is the only subtraction incrementality needs.
            self._bump_edge((last, END_ACTIVITY), -1)
            self._bump_node(END_ACTIVITY, -1)
            prev = last
        for activity in acts:
            self._bump_edge((prev, activity), 1)
            self._bump_node(activity, 1)
            prev = activity
        self._bump_edge((prev, END_ACTIVITY), 1)
        self._bump_node(END_ACTIVITY, 1)
        self._last[case_id] = prev

    def _extend_plain(self, case_id: str, acts: list[str]) -> None:
        registered = case_id in self._last
        prev = self._last.get(case_id)
        for activity in acts:
            if prev is not None:
                self._bump_edge((prev, activity), 1)
            self._bump_node(activity, 1)
            prev = activity
        if acts or not registered:
            self._last[case_id] = prev

    def _bump_edge(self, edge: Edge, delta: int) -> None:
        count = self._edges.get(edge, 0) + delta
        if count < 0:
            raise ReproError(
                f"incremental DFG edge {edge!r} went negative — "
                f"extend_case replayed out of order")
        if count:
            self._edges[edge] = count
        else:
            self._edges.pop(edge, None)

    def _bump_node(self, activity: str, delta: int) -> None:
        count = self._node_freq.get(activity, 0) + delta
        if count < 0:
            raise ReproError(
                f"incremental DFG node {activity!r} frequency went "
                f"negative — extend_case replayed out of order")
        if count:
            self._node_freq[activity] = count
        else:
            self._node_freq.pop(activity, None)

    # -- views -------------------------------------------------------------

    def snapshot(self) -> DFG:
        """An immutable :class:`DFG` copy of the current graph.

        Equal to batch construction over the events folded so far; safe
        to keep as a baseline while the incremental graph keeps moving.
        """
        return DFG.from_counts(self._edges, self._node_freq)

    def diff_since(self, baseline: DFG) -> DFGDiff:
        """Structured diff current-minus-``baseline`` (green = now).

        ``baseline`` is typically the :meth:`snapshot` taken at the
        previous refresh; the diff's green-exclusive edges are exactly
        the directly-follows relations that appeared since.
        """
        return DFGDiff(self.snapshot(), baseline)

    def last_activity(self, case_id: str) -> str | None:
        """The current tail activity of a case (None if unknown)."""
        return self._last.get(case_id)

    @property
    def n_cases(self) -> int:
        """Cases folded so far."""
        return len(self._last)

    @property
    def n_nodes(self) -> int:
        return len(self._node_freq)

    @property
    def n_edges(self) -> int:
        return len(self._edges)

    def total_observations(self) -> int:
        """Sum of all edge counts (matches ``DFG.total_observations``)."""
        return sum(self._edges.values())

    # -- checkpoint state --------------------------------------------------

    def to_state(self) -> dict:
        """JSON-serializable state (live checkpoint sidecars)."""
        return {
            "add_endpoints": self.add_endpoints,
            "edges": [[a1, a2, count]
                      for (a1, a2), count in sorted(self._edges.items())],
            "node_freq": dict(sorted(self._node_freq.items())),
            "last": {case: last for case, last
                     in sorted(self._last.items())},
        }

    @classmethod
    def from_state(cls, state: dict) -> "IncrementalDFG":
        """Rebuild from :meth:`to_state` output."""
        graph = cls(add_endpoints=bool(state["add_endpoints"]))
        for a1, a2, count in state["edges"]:
            if count <= 0:
                raise ReproError(
                    f"checkpointed edge ({a1!r}, {a2!r}) has "
                    f"non-positive count {count}")
            graph._edges[(a1, a2)] = int(count)
        graph._node_freq = {str(node): int(freq)
                            for node, freq in state["node_freq"].items()}
        graph._last = {str(case): last
                       for case, last in state["last"].items()}
        return graph

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"IncrementalDFG({self.n_cases} cases, "
                f"{self.n_nodes} nodes, {self.n_edges} edges)")

"""Event-logs: sets of cases, with the paper's query interface (Sec. IV).

An :class:`EventLog` wraps a columnar :class:`~repro.core.frame.EventFrame`
holding every event of every case under consideration, and carries the
currently applied mapping. The interface mirrors the paper's Fig. 6
listing:

>>> event_log = EventLog.from_source("strace:traces/")  # doctest: +SKIP
>>> event_log.apply_fp_filter('/usr/lib')             # doctest: +SKIP
>>> event_log.apply_mapping_fn(f)                     # doctest: +SKIP

``apply_fp_filter`` / ``apply_mapping_fn`` mutate in place (returning
``self`` for chaining) exactly as the listing implies; the functional
variants :meth:`EventLog.filtered_fp` / :meth:`EventLog.with_mapping`
return new logs and are what the rest of the library uses internally.

The filter step is "a query ... applied to an event-log" (Sec. IV): it
restricts which events participate, while case identity (cid, host,
rid) is preserved so traces stay aligned to cases.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

import numpy as np

from repro._util.errors import MappingError, ReproError
from repro.core.event import Event
from repro.core.frame import MISSING, EventFrame, FramePools
from repro.core.mapping import Mapping, mapping_from_callable


class EventLog:
    """A set of cases ``C = {c1, ..., cn}`` (Eq. 3) over one frame."""

    def __init__(self, frame: EventFrame,
                 mapping: Mapping | None = None) -> None:
        self._frame = frame.sorted_within_cases()
        self._mapping = mapping

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_source(cls, source, *, cids: set[str] | None = None,
                    strict: bool = True, recursive: bool = False,
                    workers: int | None = None) -> "EventLog":
        """Load from any trace source — the one constructor.

        ``source`` is a ready :class:`~repro.sources.TraceSource`, or a
        spec string resolved by :func:`~repro.sources.open_source`:
        ``"strace:traces/"``, ``"elog:run.elog"``, ``"csv:log.csv"``,
        ``"sim:ior?ranks=4"``, or a bare path (autodetected). The
        keyword options are the common ingest knobs; sources that
        cannot honor a requested one warn
        (:class:`~repro.sources.UnsupportedSourceOptionWarning`) —
        e.g. ``workers`` only parallelizes directory parsing. A ready
        source already carries its own options, so combining one with
        these keywords raises instead of silently dropping them.

        >>> log = EventLog.from_source("sim:ls")
        >>> log.n_cases, log.n_events
        (6, 75)
        >>> log.cids()
        ['a', 'b']
        """
        from repro.sources.registry import resolve_source

        return resolve_source(source, cids=cids, strict=strict,
                              recursive=recursive,
                              workers=workers).event_log()

    @classmethod
    def from_strace_dir(cls, directory, *, cids: set[str] | None = None,
                        strict: bool = True, recursive: bool = False,
                        workers: int | None = None) -> "EventLog":
        """Read every ``<cid>_<host>_<rid>.st`` file in a directory.

        .. deprecated:: 1.1
           Use :meth:`from_source` (``EventLog.from_source(directory)``
           or ``"strace:<dir>"``); this shim delegates to
           :class:`~repro.sources.StraceDirSource` and produces a
           byte-identical log.

        ``workers`` fans per-file parsing out over a process pool
        (``None`` auto-detects, ``1`` forces the sequential path; the
        resulting log is identical either way — workers columnarize
        cases in place and only arrays cross the process boundary).
        ``recursive`` descends into nested per-host subdirectories.
        """
        import warnings

        warnings.warn(
            "EventLog.from_strace_dir is deprecated; use "
            "EventLog.from_source(...)", DeprecationWarning,
            stacklevel=2)
        from repro.sources import StraceDirSource

        return StraceDirSource(directory, cids=cids, strict=strict,
                               recursive=recursive,
                               workers=workers).event_log()

    @classmethod
    def from_cases(cls, cases, pools: FramePools | None = None) -> "EventLog":
        """Build from already-parsed :class:`TraceCase` objects."""
        return cls(EventFrame.from_cases(cases, pools=pools))

    @classmethod
    def from_store(cls, path) -> "EventLog":
        """Load from an ``.elog`` columnar container (see
        :mod:`repro.elstore`).

        .. deprecated:: 1.1
           Use :meth:`from_source` (``EventLog.from_source(path)`` or
           ``"elog:<path>"``).
        """
        import warnings

        warnings.warn(
            "EventLog.from_store is deprecated; use "
            "EventLog.from_source(...)", DeprecationWarning,
            stacklevel=2)
        from repro.elstore.reader import read_event_log

        return read_event_log(path)

    # -- shape / access ---------------------------------------------------------

    @property
    def frame(self) -> EventFrame:
        """The underlying columnar frame (shared, do not mutate)."""
        return self._frame

    @property
    def mapping(self) -> Mapping | None:
        """The applied mapping f, or None before ``apply_mapping_fn``."""
        return self._mapping

    @property
    def n_events(self) -> int:
        return len(self._frame)

    @property
    def n_cases(self) -> int:
        return len(self.case_ids())

    def case_ids(self) -> list[str]:
        """Sorted case labels present in the log (e.g. ``['a9042', ...]``)."""
        codes = np.unique(self._frame.column("case"))
        pool = self._frame.pools.cases
        return sorted(pool.decode(int(c)) for c in codes)

    def cids(self) -> list[str]:
        """Sorted distinct command identifiers in the log."""
        codes = np.unique(self._frame.column("cid"))
        pool = self._frame.pools.cids
        return sorted(pool.decode(int(c)) for c in codes)

    def hosts(self) -> list[str]:
        """Sorted distinct host names in the log."""
        codes = np.unique(self._frame.column("host"))
        pool = self._frame.pools.hosts
        return sorted(pool.decode(int(c)) for c in codes)

    def events(self) -> Iterator[Event]:
        """Iterate all events (case-major, start-time order)."""
        return self._frame.iter_events()

    def iter_cases(self) -> Iterator[tuple[str, EventFrame]]:
        """Yield ``(case_id, frame-of-that-case)`` in sorted case order."""
        pool = self._frame.pools.cases
        slices = sorted(self._frame.case_slices(),
                        key=lambda ci: pool.decode(ci[0]))
        for code, rows in slices:
            yield pool.decode(int(code)), self._frame.select(rows)

    # -- the paper's mutating API (Fig. 6) ------------------------------------------

    def apply_fp_filter(self, substring: str) -> "EventLog":
        """Keep only events whose file path contains ``substring``.

        Mutates this log (paper semantics); returns self for chaining.
        """
        self._frame = self._frame.select(self._frame.fp_contains(substring))
        if self._mapping is not None:
            # Codes survive selection; nothing to recompute.
            pass
        return self

    def apply_mapping_fn(self, fn: Mapping | Callable[[Event], str | None],
                         name: str | None = None) -> "EventLog":
        """Apply a mapping f : E ⇀ A_f, adding the activity column.

        Accepts a :class:`Mapping` or a bare callable (the paper's
        listing passes ``def f(event): ...``). Mutates; returns self.
        """
        mapping = mapping_from_callable(fn, name)
        self._frame = _apply_mapping(self._frame, mapping)
        self._mapping = mapping
        return self

    # -- functional variants -----------------------------------------------------------

    def filtered_fp(self, substring: str) -> "EventLog":
        """Non-mutating :meth:`apply_fp_filter`."""
        frame = self._frame.select(self._frame.fp_contains(substring))
        return EventLog(frame, self._mapping)

    def filtered(self, mask: np.ndarray) -> "EventLog":
        """New log with a boolean row mask applied to the frame."""
        if mask.dtype != bool or len(mask) != len(self._frame):
            raise ReproError("mask must be a boolean array over all rows")
        return EventLog(self._frame.select(mask), self._mapping)

    def filtered_calls(self, names: Iterable[str]) -> "EventLog":
        """New log keeping only the given syscall names."""
        return self.filtered(self._frame.call_in(names))

    def filtered_cids(self, cids: Iterable[str]) -> "EventLog":
        """New log keeping only events of the given command identifiers."""
        return self.filtered(self._frame.cid_in(cids))

    def with_mapping(self, fn: Mapping | Callable[[Event], str | None],
                     name: str | None = None) -> "EventLog":
        """Non-mutating :meth:`apply_mapping_fn`."""
        mapping = mapping_from_callable(fn, name)
        return EventLog(_apply_mapping(self._frame, mapping), mapping)

    # -- clock utilities --------------------------------------------------------------------

    def with_shifted_host_clocks(
            self, offsets_us: dict[str, int]) -> "EventLog":
        """New log with per-host constant clock offsets applied.

        The paper notes that unsynchronized clocks leave the DFG and
        all statistics except max-concurrency untouched (Sec. IV-B);
        this utility lets users *explore* that sensitivity — apply
        candidate skews and watch which mc values move. Hosts not in
        the mapping keep their clocks.
        """
        frame = self._frame
        pool = frame.pools.hosts
        starts = frame.column("start").copy()
        host_col = frame.column("host")
        for host, offset in offsets_us.items():
            code = pool.lookup(host)
            if code is None:
                continue
            starts[host_col == code] += offset
        columns = {name: frame.column(name) for name in
                   ("case", "cid", "host", "rid", "pid", "call",
                    "dur", "fp", "size", "activity")}
        columns["start"] = starts
        shifted = EventFrame(frame.pools, columns)
        return EventLog(shifted, self._mapping)

    # -- algebra --------------------------------------------------------------------------

    def union(self, other: "EventLog") -> "EventLog":
        """The union of two event-logs (Eq. 3: ``Cx = Ca ∪ Cb``).

        Case sets must be disjoint — an event-log is a *set* of cases,
        and the same case appearing twice would duplicate events.
        The mapping, if any, must agree (identical object) and is
        re-applied on the merged frame.
        """
        overlap = set(self.case_ids()) & set(other.case_ids())
        if overlap:
            raise ReproError(
                f"union of event-logs with overlapping cases: "
                f"{sorted(overlap)[:5]}")
        other_frame = other._frame
        if other_frame.pools is not self._frame.pools:
            other_frame = other_frame.reencoded(self._frame.pools)
        merged = EventFrame.concat([self._frame, other_frame])
        mapping = None
        if self._mapping is not None and self._mapping is other._mapping:
            mapping = self._mapping
        log = EventLog(merged, None)
        if mapping is not None:
            log.apply_mapping_fn(mapping)
        return log

    def __or__(self, other: "EventLog") -> "EventLog":
        return self.union(other)

    # -- reverse mapping -----------------------------------------------------------------

    def activity_code(self, activity: str) -> int | None:
        """Pool code of an activity name (None if never produced)."""
        return self._frame.pools.activities.lookup(activity)

    def events_of_activity(self, activity: str) -> EventFrame:
        """The sub-frame f⁻¹(a): all events mapped to ``activity``.

        Requires a mapping to have been applied.
        """
        self._require_mapping()
        code = self.activity_code(activity)
        if code is None:
            return self._frame.select(np.zeros(len(self._frame), dtype=bool))
        return self._frame.select(self._frame.column("activity") == code)

    def activities(self) -> list[str]:
        """Sorted distinct activities produced by the applied mapping."""
        self._require_mapping()
        codes = np.unique(self._frame.column("activity"))
        pool = self._frame.pools.activities
        return sorted(pool.decode(int(c)) for c in codes if c != MISSING)

    def _require_mapping(self) -> None:
        if self._mapping is None:
            raise MappingError(
                "no mapping applied; call apply_mapping_fn first")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mapped = (f", mapping={self._mapping.name!r}"
                  if self._mapping else "")
        return (f"EventLog({self.n_events} events, "
                f"{self.n_cases} cases{mapped})")


def _apply_mapping(frame: EventFrame, mapping: Mapping) -> EventFrame:
    """Compute activity codes for every row of ``frame``.

    Mappings that depend only on (call, fp) are evaluated once per
    distinct pair and broadcast with vectorized indexing; the general
    case falls back to the O(n) row-wise loop of the paper's Fig. 6
    (step 2b), which "is scalable as it is applied independently to
    each row".
    """
    pools = frame.pools
    n = len(frame)
    if n == 0:
        return frame.with_activity_codes(np.empty(0, dtype=np.int32))
    if mapping.uses_only_call_fp:
        call_codes = frame.column("call").astype(np.int64)
        fp_codes = frame.column("fp").astype(np.int64)
        stride = len(pools.paths) + 1
        keys = call_codes * stride + (fp_codes + 1)
        uniq, inverse = np.unique(keys, return_inverse=True)
        per_key = np.empty(len(uniq), dtype=np.int32)
        for i, key in enumerate(uniq):
            call = pools.calls.decode(int(key // stride))
            fp_code = int(key % stride) - 1
            fp = None if fp_code == MISSING else pools.paths.decode(fp_code)
            activity = mapping.map_call_fp(call, fp)
            per_key[i] = (MISSING if activity is None
                          else pools.activities.intern(activity))
        return frame.with_activity_codes(per_key[inverse])
    codes = np.empty(n, dtype=np.int32)
    for row, event in enumerate(frame.iter_events()):
        activity = mapping.map_event(event)
        codes[row] = (MISSING if activity is None
                      else pools.activities.intern(activity))
    return frame.with_activity_codes(codes)

"""The paper's primary contribution: event-log formalism → DFG synthesis.

This package implements Sec. IV of the paper end to end:

- :mod:`repro.core.frame` — columnar event storage (NumPy-backed
  substitute for the pandas DataFrame of the paper's Fig. 6 listing).
- :mod:`repro.core.event` — the event record
  ``e = [cid, host, rid, pid, call, start, dur, fp, size]`` (Eq. 1).
- :mod:`repro.core.eventlog` — cases and event-logs (Eq. 2-3) with the
  paper's ``apply_fp_filter`` / ``apply_mapping_fn`` query interface.
- :mod:`repro.core.mapping` — mappings ``f : E ⇀ A_f`` (Eq. 4) with the
  built-in f̂ (call + top-2 directories) and f̄ (site variables).
- :mod:`repro.core.activity` — activity traces σ_f(c) (Eq. 5) and
  activity-logs L_f(C) ∈ B(A_f*) with • / ■ sentinels.
- :mod:`repro.core.dfg` — Directly-Follows-Graph construction
  (Sec. IV-A) and graph algebra for comparisons.
- :mod:`repro.core.incremental` — the union algebra applied as a
  running fold: a standing DFG absorbing per-case deltas in O(delta)
  (the engine behind :mod:`repro.live`).
- :mod:`repro.core.statistics` — rd_f, b_f, dr̄_f, mc_f (Sec. IV-B).
- :mod:`repro.core.partition` — event-log partitioning (Sec. IV-C).
- :mod:`repro.core.coloring` — statistics- and partition-based stylers.
- :mod:`repro.core.render` — DOT / SVG / ASCII / timeline renderers.
"""

from repro.core.event import Event
from repro.core.frame import EventFrame, FramePools
from repro.core.eventlog import EventLog
from repro.core.mapping import (
    Mapping,
    CallTopDirs,
    CallPath,
    CallPathTail,
    CallOnly,
    SiteVariables,
    RegexMapping,
    RestrictedMapping,
    ComposedMapping,
    mapping_from_callable,
)
from repro.core.activity import START_ACTIVITY, END_ACTIVITY, ActivityLog
from repro.core.dfg import DFG
from repro.core.statistics import (
    ActivityStats,
    IOStatistics,
    StatsAccumulator,
)
from repro.core.partition import PartitionEL, partition_by_cid, partition_by_predicate
from repro.core.coloring import (
    Style,
    StatisticsColoring,
    PartitionColoring,
    PlainColoring,
)
from repro.core.diff import ActivityDelta, DFGDiff, EdgeDelta
from repro.core.incremental import IncrementalDFG
from repro.core.analysis import (
    bottleneck_activities,
    dominant_path,
    edge_probabilities,
    entropy_of_successors,
    find_cycles,
    reachable_activities,
    variant_coverage,
)

__all__ = [
    "Event",
    "EventFrame",
    "FramePools",
    "EventLog",
    "Mapping",
    "CallTopDirs",
    "CallPath",
    "CallPathTail",
    "CallOnly",
    "SiteVariables",
    "RegexMapping",
    "RestrictedMapping",
    "ComposedMapping",
    "mapping_from_callable",
    "START_ACTIVITY",
    "END_ACTIVITY",
    "ActivityLog",
    "DFG",
    "ActivityStats",
    "IOStatistics",
    "StatsAccumulator",
    "PartitionEL",
    "partition_by_cid",
    "partition_by_predicate",
    "Style",
    "StatisticsColoring",
    "PartitionColoring",
    "PlainColoring",
    "ActivityDelta",
    "DFGDiff",
    "EdgeDelta",
    "IncrementalDFG",
    "bottleneck_activities",
    "dominant_path",
    "edge_probabilities",
    "entropy_of_successors",
    "find_cycles",
    "reachable_activities",
    "variant_coverage",
]

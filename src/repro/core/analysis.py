"""Graph analytics over DFGs.

The DFG is a plain weighted digraph, so standard graph questions have
direct I/O interpretations:

- :func:`dominant_path` — the highest-probability walk ● → ■: "what
  does a typical case do, in order?"
- :func:`variant_coverage` — how many cases the k most frequent trace
  variants explain (process-mining's classic 80/20 check; a DFG of a
  log with low coverage at small k mixes heterogeneous behaviours and
  may deserve partitioning).
- :func:`find_cycles` — repeated-phase structure (segment loops in IOR
  show up as cycles through the write/read nodes).
- :func:`edge_probabilities` — outgoing-edge transition probabilities,
  turning the DFG into a Markov-chain view.
- :func:`bottleneck_activities` — activities ranked by share of total
  I/O time (rd_f), with cumulative share, for "where do I look first".

These helpers lean on networkx where a well-known algorithm exists
(simple cycles), and stay direct elsewhere.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

import networkx as nx

from repro.core.activity import END_ACTIVITY, START_ACTIVITY, ActivityLog
from repro.core.dfg import DFG, Edge
from repro.core.statistics import IOStatistics

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.eventlog import EventLog


def edge_probabilities(dfg: DFG) -> dict[Edge, float]:
    """P(next = a2 | current = a1) for every edge.

    Probabilities over each node's outgoing edges sum to 1 (■ has no
    outgoing edges).
    """
    totals: dict[str, int] = {}
    for (a1, _a2), count in dfg.edges().items():
        totals[a1] = totals.get(a1, 0) + count
    return {edge: count / totals[edge[0]]
            for edge, count in dfg.edges().items()}


def dominant_path(dfg: DFG, *, max_length: int = 200) -> list[str]:
    """The most probable ● → ■ walk (greedy on transition probability,
    avoiding node revisits so self-loops/cycles cannot trap it).

    Returns the node sequence including the sentinels; an empty list if
    the DFG has no start node.
    """
    if START_ACTIVITY not in dfg.nodes():
        return []
    probs = edge_probabilities(dfg)
    path = [START_ACTIVITY]
    visited = {START_ACTIVITY}
    current = START_ACTIVITY
    while current != END_ACTIVITY and len(path) < max_length:
        candidates = [
            (probs[(current, nxt)], nxt)
            for nxt in dfg.successors(current)
            if nxt not in visited or nxt == END_ACTIVITY
        ]
        if not candidates:
            break
        _, best = max(candidates, key=lambda pn: (pn[0], pn[1]))
        path.append(best)
        visited.add(best)
        current = best
    return path


def variant_coverage(log: ActivityLog | "EventLog",
                     k: int | None = None) -> list[tuple[int, float]]:
    """Cumulative case coverage of the k most frequent variants.

    Returns ``[(k, coverage_fraction), ...]`` for k = 1..K (or up to the
    given k). A log where ``coverage[0]`` is already high is homogeneous
    (the paper's ls example: one variant covers 100 %).
    """
    activity_log = _as_activity_log(log)
    total = activity_log.n_traces()
    if total == 0:
        return []
    coverage: list[tuple[int, float]] = []
    cumulative = 0
    for i, (_trace, multiplicity) in enumerate(
            activity_log.variants(), start=1):
        cumulative += multiplicity
        coverage.append((i, cumulative / total))
        if k is not None and i >= k:
            break
    return coverage


def find_cycles(dfg: DFG, *, max_cycles: int = 100) -> list[list[str]]:
    """Simple cycles through the DFG (self-loops excluded), shortest
    first — the repeated-phase structure of the traced program."""
    graph = dfg.to_networkx()
    graph.remove_edges_from([(a, a) for a in dfg.self_loops()])
    cycles = []
    for cycle in nx.simple_cycles(graph):
        cycles.append(cycle)
        if len(cycles) >= max_cycles:
            break
    return sorted(cycles, key=lambda c: (len(c), c))


def bottleneck_activities(
    stats: IOStatistics, *, threshold: float = 0.9,
) -> list[tuple[str, float, float]]:
    """Activities by descending rd_f with cumulative share, truncated
    once the cumulative share passes ``threshold``.

    The Fig. 8 reading in one call: for the SSF/FPP log this returns
    [(openat:$SCRATCH, 0.55, 0.55), (write:$SCRATCH, 0.43, 0.98)].
    """
    result = []
    cumulative = 0.0
    for activity in stats.activities():
        rd = stats[activity].relative_duration
        cumulative += rd
        result.append((activity, rd, cumulative))
        if cumulative >= threshold:
            break
    return result


def reachable_activities(dfg: DFG, origin: str) -> set[str]:
    """All activities reachable from ``origin`` by directly-follows
    edges (useful for slicing the graph under a suspect node)."""
    graph = dfg.to_networkx()
    if origin not in graph:
        return set()
    return set(nx.descendants(graph, origin))


def entropy_of_successors(dfg: DFG, activity: str) -> float:
    """Shannon entropy (bits) of the successor distribution of a node.

    0 = deterministic continuation; high entropy marks branch points
    where cases diverge (candidates for partition-based comparison).
    """
    successors = dfg.successors(activity)
    total = sum(successors.values())
    if total == 0:
        return 0.0
    entropy = 0.0
    for count in successors.values():
        p = count / total
        entropy -= p * math.log2(p)
    return entropy


def _as_activity_log(log: "ActivityLog | EventLog") -> ActivityLog:
    if isinstance(log, ActivityLog):
        return log
    return ActivityLog.from_event_log(log)

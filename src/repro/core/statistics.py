"""Activity statistics (Sec. IV-B): Load and DR node annotations.

For every activity ``a ∈ A_f`` occurring in an event-log ``C``:

- **relative duration** ``rd_f(a, C)`` (Eq. 6-8): the summed duration of
  the events in ``f⁻¹(a)`` divided by the summed duration over *all*
  activities — "the proportion of system time spent relative to the
  other activities";
- **total bytes moved** ``b_f(a, C)`` (Eq. 9): sum of the ``size``
  attribute (only read/write variants carry one);
- **process data rate** ``dr̄_f(a, C)`` (Eq. 11-13): the arithmetic mean
  over events of the per-event rate ``size/dur`` — the average
  per-process transfer speed;
- **max concurrency** ``mc_f(a, C)`` (Eq. 14-16): the largest number of
  simultaneously in-flight events of the activity, via the sweep-line
  of :func:`repro._util.intervals.max_concurrency`;
- plus **ranks** (distinct rids — the unexplained ``Ranks:`` annotation
  of Fig. 3c, see DESIGN.md §6), **cases**, and the raw counts.

The node labels in the paper's figures combine these as
``Load: rd (bytes)`` and ``DR: mc × rate`` (Eq. 10/17); the renderers
call :meth:`IOStatistics.load_label` / :meth:`IOStatistics.dr_label`
to produce exactly those strings.

Architecture: all statistics are folded through per-activity
:class:`ActivityAccumulator` objects managed by a
:class:`StatsAccumulator`. The accumulators absorb events one at a
time (:meth:`StatsAccumulator.feed_event` — what the live engine calls
at seal time) or a whole columnar frame at once
(:meth:`StatsAccumulator.feed_frame` — the vectorized batch pass), and
both roads produce *identical* :class:`IOStatistics` down to the float
bit patterns: the per-case event order is the same either way, so the
per-activity rate sequence — and with it NumPy's pairwise mean — is
reproduced exactly. This is what lets a live watcher render
full-history statistics at O(delta) per refresh and lets checkpoints
persist statistics across process restarts
(:mod:`repro.live.checkpoint`).

Complexity of the batch pass: one group-by on the activity column plus
columnar per-case slicing — the O(mn) of Sec. V, implemented as a
stable sort + split + vectorized column math so the Python-level cost
is O(m + cases), not O(mn). Derived per-activity scalars (max
concurrency, mean rate) are cached and recomputed only for activities
that received events since the last assembly — a touched activity
re-sweeps its own interval buffer, an untouched one costs O(1) — and
Eq. 15 timeline rows are materialized lazily from the append-only
per-case buffers, so the accumulators never hold a second O(events)
copy of the history.

Memory. Scalar state is O(activities): the Eq. 13 mean is folded
through exact non-overlapping partial sums (Shewchuk's algorithm, the
machinery behind :func:`math.fsum`), so the mean of the per-event
rates is bit-exact — the correctly rounded true sum divided by the
count — without buffering a float per event, and independent of the
order events were folded in. The only O(events) state left is the
per-case ``[start, end]`` interval buffers behind Eq. 15/16. Passing
``window=`` caps those: a per-case buffer exceeding the cap is
coarsened by merging adjacent intervals, which bounds watcher memory
for week-long runs at the price of *approximate* max concurrency and
timelines (flagged via :attr:`ActivityStats.approximate` and rendered
with a ``~``); every scalar statistic — counts, sums, relative
duration, the mean rate — stays exact and bit-identical to the
unwindowed computation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from repro._util.errors import ReproError
from repro._util.intervals import max_concurrency
from repro._util.sizes import format_bytes, format_rate
from repro.core.frame import MISSING

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.eventlog import EventLog
    from repro.core.frame import EventFrame


#: Every per-activity metric addressable by name through
#: :meth:`IOStatistics.metric` — the vocabulary of statistics-based
#: coloring and of the ``stat_threshold`` alerting rule
#: (:mod:`repro.alerts`). Keep in sync with the accessor below.
METRIC_NAMES: tuple[str, ...] = (
    "relative_duration",
    "total_bytes",
    "max_concurrency",
    "event_count",
    "process_data_rate",
)


@dataclass(frozen=True, slots=True)
class ActivityStats:
    """Computed statistics of one activity."""

    activity: str
    event_count: int
    total_dur_us: int
    relative_duration: float
    total_bytes: int
    has_transfers: bool
    process_data_rate: float | None  #: mean bytes/second, None w/o transfers
    max_concurrency: int
    ranks: int
    cases: int
    #: True when interval windowing coarsened this activity's history:
    #: ``max_concurrency`` (and the Eq. 15 timeline) are then computed
    #: over merged intervals — an upper bound, not the exact sweep.
    #: Scalar statistics are exact regardless.
    approximate: bool = False

    @property
    def load_label(self) -> str:
        """``Load:0.22 (14.98 KB)`` — Eq. 10 / Fig. 3 node line.

        Activities without transfer events (e.g. ``openat``) render the
        relative duration only, as in Fig. 8a.
        """
        base = f"Load:{self.relative_duration:.2f}"
        if self.has_transfers:
            return f"{base} ({format_bytes(self.total_bytes)})"
        return base

    @property
    def dr_label(self) -> str | None:
        """``DR: 2x10.15 MB/s`` — Eq. 17 / Fig. 3 node line.

        None for activities without a data rate (no transfer events).
        A windowed (coarsened) concurrency renders as ``DR: ~2x...`` —
        the rate is still exact, the multiplier is an upper bound.
        """
        if self.process_data_rate is None:
            return None
        marker = "~" if self.approximate else ""
        return (f"DR: {marker}{self.max_concurrency}x"
                f"{format_rate(self.process_data_rate)}")


def _exact_sum_step(partials: list[float], value: float) -> None:
    """Fold ``value`` into Shewchuk non-overlapping partial sums.

    The invariant: ``partials`` always sums — in *exact* real
    arithmetic — to the exact sum of every value folded so far (each
    two-float transform below is error-free). ``math.fsum(partials)``
    is therefore the correctly rounded true sum, identical no matter
    how the values were ordered or batched; that is what makes the
    Eq. 13 mean reproducible bit-for-bit across the batch, live, and
    checkpoint-restore roads while keeping O(1) state per activity.
    """
    i = 0
    for y in partials:
        if abs(value) < abs(y):
            value, y = y, value
        high = value + y
        low = y - (high - value)
        if low:
            partials[i] = low
            i += 1
        value = high
    partials[i:] = [value]


class ActivityAccumulator:
    """Running statistics of one activity, updatable per event.

    Scalar statistics (counts, duration and byte sums, rank/case sets,
    the exact-sum partials behind the Eq. 13 mean) are folded
    directly. Order-sensitive state — the Eq. 15 timeline feeding the
    Eq. 16 concurrency sweep — is kept *per case*: within a case,
    events arrive in their final start-timestamp order on both the
    batch and the live road, so assembling cases in a deterministic
    order reproduces the batch sequence exactly regardless of how
    polls interleaved the cases.

    The derived scalars (max concurrency, mean rate) are cached under
    a dirty flag: an activity untouched since the last assembly costs
    O(1) to re-render. Timelines are *not* duplicated into the cache —
    the per-case buffers stay the only O(events) state, and
    :meth:`timeline_snapshot` materializes labeled rows on demand.

    ``window`` caps each per-case interval buffer: a buffer growing
    past the cap is coarsened in place (adjacent intervals merged
    pairwise), after which :attr:`approximate` latches True — the
    concurrency sweep and the timeline then describe merged spans.
    """

    __slots__ = ("activity", "window", "event_count", "dur_sum",
                 "bytes_sum", "has_transfers", "approximate", "rids",
                 "rate_count", "_rate_partials", "_case_timelines",
                 "_dirty", "_view_key", "_view")

    def __init__(self, activity: str,
                 window: int | None = None) -> None:
        self.activity = activity
        self.window = window
        self.event_count = 0
        self.dur_sum = 0
        self.bytes_sum = 0
        self.has_transfers = False
        self.approximate = False
        self.rids: set[int] = set()
        #: Events contributing to the Eq. 13 mean (size and dur > 0).
        self.rate_count = 0
        #: Exact non-overlapping partial sums of the per-event rates
        #: (:func:`_exact_sum_step`): tiny, order-independent, and
        #: ``fsum`` of it is the correctly rounded true rate sum.
        self._rate_partials: list[float] = []
        #: case id -> [(start_us, end_us), ...] in sealed event order
        #: (coarsened in place once ``window`` is exceeded).
        self._case_timelines: dict[str, list[tuple[int, int]]] = {}
        self._dirty = True
        self._view_key: tuple[str, ...] = ()
        self._view: tuple[int, float | None] = (0, None)

    @property
    def case_ids(self) -> set[str]:
        """Cases holding at least one event of this activity."""
        return set(self._case_timelines)

    # -- folding -----------------------------------------------------------

    def add_event(self, case_id: str, *, rid: int, start_us: int,
                  dur_us: int | None, size: int | None) -> None:
        """Fold one event (live seal-time semantics: None = absent)."""
        self.event_count += 1
        end = start_us
        if dur_us is not None:
            self.dur_sum += dur_us
            end = start_us + dur_us
            if size is not None and dur_us > 0:
                _exact_sum_step(self._rate_partials,
                                size / (dur_us / 1e6))
                self.rate_count += 1
        if size is not None:
            self.has_transfers = True
            self.bytes_sum += size
        self.rids.add(rid)
        buffer = self._case_timelines.setdefault(case_id, [])
        buffer.append((start_us, end))
        if self.window is not None and len(buffer) > self.window:
            self._coarsen(buffer)
        self._dirty = True

    def add_case_chunk(self, case_id: str, *, rids: np.ndarray,
                       starts: np.ndarray, ends: np.ndarray,
                       durs: np.ndarray, sizes: np.ndarray) -> None:
        """Fold a columnar slice of one case's events (batch road).

        ``ends`` must already be ``start + dur`` with missing durations
        treated as zero; ``durs``/``sizes`` use the frame's ``MISSING``
        sentinel. Equivalent to calling :meth:`add_event` per row, but
        with all per-row work in NumPy/C.
        """
        self.event_count += int(len(starts))
        valid_dur = durs != MISSING
        self.dur_sum += int(durs[valid_dur].sum())
        transfer = sizes != MISSING
        if transfer.any():
            self.has_transfers = True
            self.bytes_sum += int(sizes[transfer].sum())
        rate_mask = transfer & valid_dur & (durs > 0)
        if rate_mask.any():
            rates = sizes[rate_mask] / (durs[rate_mask] / 1e6)
            for rate in rates.tolist():
                _exact_sum_step(self._rate_partials, rate)
            self.rate_count += int(rate_mask.sum())
        self.rids.update(map(int, np.unique(rids)))
        buffer = self._case_timelines.setdefault(case_id, [])
        buffer.extend(zip(starts.tolist(), ends.tolist()))
        if self.window is not None and len(buffer) > self.window:
            self._coarsen(buffer)
        self._dirty = True

    def _coarsen(self, buffer: list[tuple[int, int]]) -> None:
        """Merge adjacent intervals pairwise until the buffer fits the
        window again.

        Starts stay sorted (each merged interval keeps the earlier
        start) and every original interval lies inside some merged one,
        so the sweep over the coarse buffer can only over-count
        concurrency — windowed ``mc`` is an upper bound on the exact
        Eq. 16 value, never an under-report.
        """
        while len(buffer) > self.window:
            buffer[:] = [
                (buffer[i][0],
                 max(buffer[i][1], buffer[i + 1][1])
                 if i + 1 < len(buffer) else buffer[i][1])
                for i in range(0, len(buffer), 2)]
        self.approximate = True

    # -- assembled view ----------------------------------------------------

    def view(self, ordered_cases: tuple[str, ...],
             ) -> tuple[int, float | None]:
        """``(max_concurrency, mean_rate)`` with the activity's cases
        laid out in ``ordered_cases`` order.

        Cached: recomputed only when events arrived since the last call
        or the case order changed (insertions of *other* cases never
        reorder this activity's cases, so live case arrival keeps the
        cache warm).
        """
        if not self._dirty and self._view_key == ordered_cases:
            return self._view
        flat: list[tuple[int, int]] = []
        for case_id in ordered_cases:
            flat.extend(self._case_timelines[case_id])
        mc = max_concurrency(np.array(flat, dtype=np.float64))
        if self.rate_count:
            mean_rate: float | None = (
                math.fsum(self._rate_partials) / self.rate_count)
        else:
            mean_rate = None
        self._view = (mc, mean_rate)
        self._view_key = ordered_cases
        self._dirty = False
        return self._view

    def timeline_snapshot(self, ordered_cases: tuple[str, ...],
                          ) -> "Callable[[], list[tuple[str, int, int]]]":
        """A zero-cost handle materializing the Eq. 15 rows on demand.

        Captures ``(case, buffer, length)`` triples — the per-case
        buffers are append-only, so the prefix of ``length`` entries is
        immutable and the handle stays a faithful point-in-time
        snapshot even while the accumulator keeps absorbing events.
        Materialization costs O(activity events) but allocates only
        when somebody actually asks for the timeline (Fig. 5 plots);
        rendering node labels never does.
        """
        captured = [(case_id, buffer, len(buffer))
                    for case_id in ordered_cases
                    for buffer in (self._case_timelines[case_id],)]

        def materialize() -> list[tuple[str, int, int]]:
            return [(case_id, start, end)
                    for case_id, buffer, length in captured
                    for start, end in buffer[:length]]

        return materialize

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ActivityAccumulator({self.activity!r}, "
                f"{self.event_count} events, "
                f"{len(self._case_timelines)} cases)")


class StatsAccumulator:
    """Per-activity statistics folded incrementally — the engine behind
    both batch :meth:`IOStatistics.compute_statistics` and the live
    :meth:`~repro.live.engine.LiveIngest.statistics`.

    Feed events through :meth:`feed_event` (one sealed record at a
    time) or :meth:`feed_frame` (a whole columnar frame, vectorized);
    then :meth:`statistics` assembles an :class:`IOStatistics`. The
    two feeding roads commute with assembly: any split of the same
    events over any interleaving of cases yields identical statistics,
    because all cross-case state is either order-free (integer sums,
    sets) or reassembled in the caller-supplied case order.

    State round-trips through :meth:`to_state` / :meth:`from_state`
    for the live checkpoint sidecar (version ≥ 2).

    ``window`` (optional, ≥ 2) bounds the per-case interval buffers:
    buffers exceeding it are coarsened and the affected activities
    report ``approximate=True`` concurrency/timelines. Scalar
    statistics — counts, sums, the Eq. 13 mean rate — are unaffected:
    they are folded exactly regardless of windowing.
    """

    def __init__(self, window: int | None = None) -> None:
        if window is not None and window < 2:
            raise ValueError(
                f"window must be >= 2 intervals, got {window}")
        self.window = window
        self._activities: dict[str, ActivityAccumulator] = {}

    def __len__(self) -> int:
        return len(self._activities)

    @property
    def total_duration_us(self) -> int:
        """Denominator of Eq. 8 over everything folded so far."""
        return sum(acc.dur_sum for acc in self._activities.values())

    def n_buffered_intervals(self) -> int:
        """Interval entries held across all per-case buffers — the
        memory the ``window`` cap bounds, surfaced as the
        ``interval_buffer_entries`` telemetry gauge so an operator can
        watch residency against the cap instead of guessing."""
        return sum(len(buffer)
                   for acc in self._activities.values()
                   for buffer in acc._case_timelines.values())

    def n_interval_buffers(self) -> int:
        """Per-(activity, case) buffers currently held — the divisor
        an auto-window policy needs to turn a whole-accumulator byte
        budget into a per-buffer cap."""
        return sum(len(acc._case_timelines)
                   for acc in self._activities.values())

    def approx_buffer_bytes(self) -> int:
        """Measured footprint of the interval buffers, in bytes.

        Per-entry cost is sampled from an actual resident entry
        (container slot + tuple + its two ints) rather than assumed,
        so the ``--memory-budget`` policy tracks what this interpreter
        actually pays per interval. Sums, sets and partials are not
        counted — they are O(activities), not O(events).
        """
        import sys

        entries = self.n_buffered_intervals()
        if entries == 0:
            return 0
        sample: tuple[int, int] | None = None
        for acc in self._activities.values():
            for buffer in acc._case_timelines.values():
                if buffer:
                    sample = buffer[-1]
                    break
            if sample is not None:
                break
        per_entry = 8 + sys.getsizeof(sample) \
            + sum(sys.getsizeof(v) for v in sample)
        return entries * per_entry

    def set_window(self, window: int | None) -> None:
        """Re-cap the per-case interval buffers in place.

        Shrinking coarsens oversized buffers immediately (same pairwise
        merge as feed-time overflow); growing merely relaxes the cap —
        already-coarsened history stays coarse, which is why affected
        activities keep reporting ``approximate=True``. Scalar
        statistics are untouched either way.
        """
        if window is not None and window < 2:
            raise ValueError(
                f"window must be >= 2 intervals, got {window}")
        self.window = window
        for acc in self._activities.values():
            acc.window = window
            if window is None:
                continue
            for buffer in acc._case_timelines.values():
                if len(buffer) > window:
                    acc._coarsen(buffer)
                    acc._dirty = True

    def _accumulator(self, activity: str) -> ActivityAccumulator:
        acc = self._activities.get(activity)
        if acc is None:
            acc = self._activities[activity] = \
                ActivityAccumulator(activity, window=self.window)
        return acc

    # -- feeding -----------------------------------------------------------

    def feed_event(self, activity: str, case_id: str, *, rid: int,
                   start_us: int, dur_us: int | None,
                   size: int | None) -> None:
        """Fold one mapped event (the live engine's seal-time call)."""
        self._accumulator(activity).add_event(
            case_id, rid=rid, start_us=start_us, dur_us=dur_us,
            size=size)

    def feed_frame(self, frame: "EventFrame") -> "StatsAccumulator":
        """Fold every mapped row of a columnar frame, vectorized.

        One group-by on the activity column; within each group the
        rows are already case-major and start-sorted (the frame
        invariant), so per-case chunks are boundary splits. Ends are
        computed columnally and case codes decoded once per chunk —
        no per-row Python.
        """
        pools = frame.pools
        dur = frame.column("dur")
        size = frame.column("size")
        start = frame.column("start")
        rid = frame.column("rid")
        case = frame.column("case")
        for code, rows in frame.groupby_activity():
            acc = self._accumulator(pools.activities.decode(code))
            durs = dur[rows]
            sizes = size[rows]
            starts = start[rows]
            ends = starts + np.where(durs != MISSING, durs, 0)
            case_codes = case[rows]
            bounds = np.flatnonzero(np.diff(case_codes)) + 1
            edges = [0, *bounds.tolist(), len(rows)]
            for lo, hi in zip(edges, edges[1:]):
                acc.add_case_chunk(
                    pools.cases.decode(int(case_codes[lo])),
                    rids=rid[rows[lo:hi]],
                    starts=starts[lo:hi], ends=ends[lo:hi],
                    durs=durs[lo:hi], sizes=sizes[lo:hi])
        return self

    # -- assembly ----------------------------------------------------------

    def statistics(self, case_order: Sequence[str] | None = None,
                   ) -> "IOStatistics":
        """Assemble the folded state into an :class:`IOStatistics`.

        ``case_order`` fixes the cross-case layout of timelines and
        rate sequences (batch passes the frame's case interning order;
        the live engine passes its sorted-path order — identical for a
        directory that reached its final state). ``None`` falls back
        to lexicographic case-id order, which is deterministic but
        only matches batch for flat single-directory layouts.

        Cost: O(activities + events-of-touched-activities) — an
        activity that gained no events since the last assembly reuses
        its cached view.
        """
        if case_order is None:
            order_index: dict[str, int] = {}
        else:
            order_index = {case: i for i, case in enumerate(case_order)}
        total_dur = self.total_duration_us
        stats: dict[str, ActivityStats] = {}
        lazy: dict[str, Callable[[], list[tuple[str, int, int]]]] = {}
        for activity, acc in self._activities.items():
            ordered = tuple(sorted(
                acc._case_timelines,
                key=lambda c: (order_index[c], "") if c in order_index
                else (len(order_index), c)))
            mc, mean_rate = acc.view(ordered)
            stats[activity] = ActivityStats(
                activity=activity,
                event_count=acc.event_count,
                total_dur_us=acc.dur_sum,
                relative_duration=(acc.dur_sum / total_dur
                                   if total_dur > 0 else 0.0),
                total_bytes=acc.bytes_sum,
                has_transfers=acc.has_transfers,
                process_data_rate=mean_rate,
                max_concurrency=mc,
                ranks=len(acc.rids),
                cases=len(acc._case_timelines),
                approximate=acc.approximate,
            )
            lazy[activity] = acc.timeline_snapshot(ordered)
        result = IOStatistics()
        result._stats = stats
        result._lazy_timelines = lazy
        result._total_dur_us = total_dur
        return result

    # -- checkpoint state --------------------------------------------------

    def to_state(self) -> dict:
        """JSON-serializable state (live checkpoint sidecars, v2+).

        Floats (the exact-sum rate partials) are stored as JSON
        numbers — ``repr``-based serialization round-trips IEEE
        doubles exactly, so restored statistics stay bit-identical to
        an uninterrupted run. The partials replace the per-case rate
        lists older sidecars carried: O(1)-ish per activity instead of
        one float per transfer event.
        """
        return {
            "activities": {
                activity: {
                    "event_count": acc.event_count,
                    "dur_sum": acc.dur_sum,
                    "bytes_sum": acc.bytes_sum,
                    "has_transfers": acc.has_transfers,
                    "approximate": acc.approximate,
                    "rids": sorted(acc.rids),
                    "rate_count": acc.rate_count,
                    "rate_partials": list(acc._rate_partials),
                    "cases": {
                        case: {"timeline": [[s, e] for s, e in rows]}
                        for case, rows
                        in sorted(acc._case_timelines.items())
                    },
                }
                for activity, acc in sorted(self._activities.items())
            },
        }

    @classmethod
    def from_state(cls, state: dict,
                   window: int | None = None) -> "StatsAccumulator":
        """Rebuild from :meth:`to_state` output.

        Also accepts the pre-v4 sidecar layout (per-case ``rates``
        lists instead of ``rate_partials``): the legacy rates are
        folded into exact partials in sorted case order — lossless,
        because the exact sum is order-independent.
        """
        accumulator = cls(window=window)
        for activity, acc_state in state["activities"].items():
            acc = accumulator._accumulator(str(activity))
            acc.event_count = int(acc_state["event_count"])
            acc.dur_sum = int(acc_state["dur_sum"])
            acc.bytes_sum = int(acc_state["bytes_sum"])
            acc.has_transfers = bool(acc_state["has_transfers"])
            acc.approximate = bool(acc_state.get("approximate", False))
            acc.rids = {int(r) for r in acc_state["rids"]}
            if "rate_partials" in acc_state:
                acc.rate_count = int(acc_state["rate_count"])
                acc._rate_partials = [
                    float(p) for p in acc_state["rate_partials"]]
            for case, case_state in sorted(acc_state["cases"].items()):
                buffer = [(int(s), int(e))
                          for s, e in case_state["timeline"]]
                acc._case_timelines[str(case)] = buffer
                if window is not None and len(buffer) > window:
                    acc._coarsen(buffer)
                for rate in case_state.get("rates", ()):
                    _exact_sum_step(acc._rate_partials, float(rate))
                    acc.rate_count += 1
        return accumulator

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"StatsAccumulator({len(self._activities)} activities, "
                f"{sum(a.event_count for a in self._activities.values())}"
                f" events)")


class IOStatistics:
    """Per-activity statistics over an event-log (paper Fig. 6, step 4).

    Usage mirrors the paper's listing::

        stats = IOStatistics()
        stats.compute_statistics(event_log)

    or the one-step form ``IOStatistics(event_log)``. Instances are
    point-in-time results; the live subsystem assembles them from a
    standing :class:`StatsAccumulator` instead of recomputing.
    """

    def __init__(self, event_log: "EventLog | None" = None) -> None:
        self._stats: dict[str, ActivityStats] = {}
        #: Materialized Eq. 15 rows, filled on first access per
        #: activity from the snapshot handles below.
        self._timelines: dict[str, list[tuple[str, int, int]]] = {}
        self._lazy_timelines: dict[
            str, Callable[[], list[tuple[str, int, int]]]] = {}
        self._total_dur_us = 0
        if event_log is not None:
            self.compute_statistics(event_log)

    # -- computation ---------------------------------------------------------

    def compute_statistics(self, event_log: "EventLog") -> "IOStatistics":
        """Compute all statistics; replaces any previous results.

        Implemented as "feed the frame once" into a fresh
        :class:`StatsAccumulator` and assemble — the exact code path
        the live engine drives per sealed event, so batch and live
        statistics cannot drift apart.
        """
        event_log._require_mapping()
        frame = event_log.frame
        accumulator = StatsAccumulator().feed_frame(frame)
        pool = frame.pools.cases
        case_order = [pool.decode(code) for code in range(len(pool))]
        computed = accumulator.statistics(case_order=case_order)
        self._stats = computed._stats
        self._timelines = computed._timelines
        self._lazy_timelines = computed._lazy_timelines
        self._total_dur_us = computed._total_dur_us
        return self

    # -- access -------------------------------------------------------------------

    def activities(self) -> list[str]:
        """Activities with computed statistics, sorted by descending
        relative duration (the paper's notion of importance)."""
        return sorted(self._stats,
                      key=lambda a: (-self._stats[a].relative_duration, a))

    def __getitem__(self, activity: str) -> ActivityStats:
        try:
            return self._stats[activity]
        except KeyError:
            raise ReproError(
                f"no statistics for activity {activity!r}; "
                f"known: {sorted(self._stats)[:5]}...") from None

    def __contains__(self, activity: str) -> bool:
        return activity in self._stats

    def __len__(self) -> int:
        return len(self._stats)

    def get(self, activity: str) -> ActivityStats | None:
        """Stats for the activity or None (sentinel nodes have none)."""
        return self._stats.get(activity)

    @property
    def total_duration_us(self) -> int:
        """Denominator of Eq. 8: Σ_a Σ_{e ∈ f⁻¹(a)} dur(e)."""
        return self._total_dur_us

    def relative_duration(self, activity: str) -> float:
        """rd_f(a, C) — Eq. 8."""
        return self[activity].relative_duration

    def total_bytes(self, activity: str) -> int:
        """b_f(a, C) — Eq. 9."""
        return self[activity].total_bytes

    def process_data_rate(self, activity: str) -> float | None:
        """dr̄_f(a, C) in bytes/second — Eq. 13."""
        return self[activity].process_data_rate

    def max_concurrency_of(self, activity: str) -> int:
        """mc_f(a, C) — Eq. 16."""
        return self[activity].max_concurrency

    def timeline(self, activity: str) -> list[tuple[str, int, int]]:
        """The t_f(a, C) list (Eq. 15) as (case_id, start_us, end_us).

        This is the input to the Fig. 5 timeline plot. Rows are
        materialized from the accumulator snapshot on first access —
        node-label rendering never pays for them.
        """
        rows = self._timelines.get(activity)
        if rows is None:
            snapshot = self._lazy_timelines.get(activity)
            if snapshot is None:
                raise ReproError(
                    f"no timeline for activity {activity!r}")
            rows = self._timelines[activity] = snapshot()
        return list(rows)

    def metric(self, activity: str, name: str) -> float:
        """Numeric metric accessor used by statistics-based coloring."""
        stats = self[activity]
        if name == "relative_duration":
            return stats.relative_duration
        if name == "total_bytes":
            return float(stats.total_bytes)
        if name == "max_concurrency":
            return float(stats.max_concurrency)
        if name == "event_count":
            return float(stats.event_count)
        if name == "process_data_rate":
            # A 0.0 rate is a real measurement (a zero-byte transfer
            # with positive duration), distinct from "no transfers".
            return (0.0 if stats.process_data_rate is None
                    else stats.process_data_rate)
        raise ReproError(
            f"unknown metric {name!r} (known: {', '.join(METRIC_NAMES)})")

    def as_rows(self) -> list[dict]:
        """All stats as dict rows (report/CSV export)."""
        return [
            {
                "activity": s.activity,
                "events": s.event_count,
                "total_dur_us": s.total_dur_us,
                "relative_duration": s.relative_duration,
                "total_bytes": s.total_bytes,
                "process_data_rate": s.process_data_rate,
                "max_concurrency": s.max_concurrency,
                "ranks": s.ranks,
                "cases": s.cases,
            }
            for s in (self._stats[a] for a in self.activities())
        ]

"""Activity statistics (Sec. IV-B): Load and DR node annotations.

For every activity ``a ∈ A_f`` occurring in an event-log ``C``:

- **relative duration** ``rd_f(a, C)`` (Eq. 6-8): the summed duration of
  the events in ``f⁻¹(a)`` divided by the summed duration over *all*
  activities — "the proportion of system time spent relative to the
  other activities";
- **total bytes moved** ``b_f(a, C)`` (Eq. 9): sum of the ``size``
  attribute (only read/write variants carry one);
- **process data rate** ``dr̄_f(a, C)`` (Eq. 11-13): the arithmetic mean
  over events of the per-event rate ``size/dur`` — the average
  per-process transfer speed;
- **max concurrency** ``mc_f(a, C)`` (Eq. 14-16): the largest number of
  simultaneously in-flight events of the activity, via the sweep-line
  of :func:`repro._util.intervals.max_concurrency`;
- plus **ranks** (distinct rids — the unexplained ``Ranks:`` annotation
  of Fig. 3c, see DESIGN.md §6), **cases**, and the raw counts.

The node labels in the paper's figures combine these as
``Load: rd (bytes)`` and ``DR: mc × rate`` (Eq. 10/17); the renderers
call :meth:`IOStatistics.load_label` / :meth:`IOStatistics.dr_label`
to produce exactly those strings.

Complexity: one pass over the frame plus a group-by on the activity
column — the O(mn) of Sec. V, implemented as a stable sort + split so
the Python-level cost is O(m), not O(mn).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

import numpy as np

from repro._util.errors import ReproError
from repro._util.intervals import max_concurrency
from repro._util.sizes import format_bytes, format_rate
from repro.core.frame import MISSING

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.eventlog import EventLog


@dataclass(frozen=True, slots=True)
class ActivityStats:
    """Computed statistics of one activity."""

    activity: str
    event_count: int
    total_dur_us: int
    relative_duration: float
    total_bytes: int
    has_transfers: bool
    process_data_rate: float | None  #: mean bytes/second, None w/o transfers
    max_concurrency: int
    ranks: int
    cases: int

    @property
    def load_label(self) -> str:
        """``Load:0.22 (14.98 KB)`` — Eq. 10 / Fig. 3 node line.

        Activities without transfer events (e.g. ``openat``) render the
        relative duration only, as in Fig. 8a.
        """
        base = f"Load:{self.relative_duration:.2f}"
        if self.has_transfers:
            return f"{base} ({format_bytes(self.total_bytes)})"
        return base

    @property
    def dr_label(self) -> str | None:
        """``DR: 2x10.15 MB/s`` — Eq. 17 / Fig. 3 node line.

        None for activities without a data rate (no transfer events).
        """
        if self.process_data_rate is None:
            return None
        return (f"DR: {self.max_concurrency}x"
                f"{format_rate(self.process_data_rate)}")


class IOStatistics:
    """Per-activity statistics over an event-log (paper Fig. 6, step 4).

    Usage mirrors the paper's listing::

        stats = IOStatistics()
        stats.compute_statistics(event_log)

    or the one-step form ``IOStatistics(event_log)``.
    """

    def __init__(self, event_log: "EventLog | None" = None) -> None:
        self._stats: dict[str, ActivityStats] = {}
        self._timelines: dict[str, list[tuple[str, int, int]]] = {}
        self._total_dur_us = 0
        if event_log is not None:
            self.compute_statistics(event_log)

    # -- computation ---------------------------------------------------------

    def compute_statistics(self, event_log: "EventLog") -> "IOStatistics":
        """Compute all statistics; replaces any previous results."""
        event_log._require_mapping()
        frame = event_log.frame
        pools = frame.pools
        dur = frame.column("dur")
        size = frame.column("size")
        start = frame.column("start")
        rid = frame.column("rid")
        case = frame.column("case")

        groups = frame.groupby_activity()
        # Denominator of Eq. 8: total duration across all activities.
        total_dur = 0
        per_activity: list[tuple[str, np.ndarray]] = []
        for code, rows in groups:
            activity = pools.activities.decode(code)
            per_activity.append((activity, rows))
            durs = dur[rows]
            total_dur += int(durs[durs != MISSING].sum())
        self._total_dur_us = total_dur

        self._stats = {}
        self._timelines = {}
        for activity, rows in per_activity:
            durs = dur[rows]
            sizes = size[rows]
            starts = start[rows]
            valid_dur = durs != MISSING
            act_dur = int(durs[valid_dur].sum())
            has_transfers = bool((sizes != MISSING).any())
            total_bytes = int(sizes[sizes != MISSING].sum())
            # Eq. 11-13: mean of per-event size/dur over events that
            # have both; zero-duration events cannot contribute.
            rate_mask = (sizes != MISSING) & valid_dur & (durs > 0)
            if rate_mask.any():
                rates = sizes[rate_mask] / (durs[rate_mask] / 1e6)
                mean_rate: float | None = float(rates.mean())
            else:
                mean_rate = None
            # Eq. 14-16: intervals (start, start+dur); missing dur -> 0.
            ends = starts + np.where(valid_dur, durs, 0)
            intervals = np.stack(
                [starts.astype(np.float64), ends.astype(np.float64)],
                axis=1)
            mc = max_concurrency(intervals)
            self._stats[activity] = ActivityStats(
                activity=activity,
                event_count=int(len(rows)),
                total_dur_us=act_dur,
                relative_duration=(act_dur / total_dur
                                   if total_dur > 0 else 0.0),
                total_bytes=total_bytes,
                has_transfers=has_transfers,
                process_data_rate=mean_rate,
                max_concurrency=mc,
                ranks=int(np.unique(rid[rows]).size),
                cases=int(np.unique(case[rows]).size),
            )
            # Timeline rows for Fig. 5: (case_id, start, end) per event.
            case_pool = pools.cases
            self._timelines[activity] = [
                (case_pool.decode(int(case[r])), int(start[r]),
                 int(start[r]) + (int(dur[r]) if dur[r] != MISSING else 0))
                for r in rows
            ]
        return self

    # -- access -------------------------------------------------------------------

    def activities(self) -> list[str]:
        """Activities with computed statistics, sorted by descending
        relative duration (the paper's notion of importance)."""
        return sorted(self._stats,
                      key=lambda a: (-self._stats[a].relative_duration, a))

    def __getitem__(self, activity: str) -> ActivityStats:
        try:
            return self._stats[activity]
        except KeyError:
            raise ReproError(
                f"no statistics for activity {activity!r}; "
                f"known: {sorted(self._stats)[:5]}...") from None

    def __contains__(self, activity: str) -> bool:
        return activity in self._stats

    def __len__(self) -> int:
        return len(self._stats)

    def get(self, activity: str) -> ActivityStats | None:
        """Stats for the activity or None (sentinel nodes have none)."""
        return self._stats.get(activity)

    @property
    def total_duration_us(self) -> int:
        """Denominator of Eq. 8: Σ_a Σ_{e ∈ f⁻¹(a)} dur(e)."""
        return self._total_dur_us

    def relative_duration(self, activity: str) -> float:
        """rd_f(a, C) — Eq. 8."""
        return self[activity].relative_duration

    def total_bytes(self, activity: str) -> int:
        """b_f(a, C) — Eq. 9."""
        return self[activity].total_bytes

    def process_data_rate(self, activity: str) -> float | None:
        """dr̄_f(a, C) in bytes/second — Eq. 13."""
        return self[activity].process_data_rate

    def max_concurrency_of(self, activity: str) -> int:
        """mc_f(a, C) — Eq. 16."""
        return self[activity].max_concurrency

    def timeline(self, activity: str) -> list[tuple[str, int, int]]:
        """The t_f(a, C) list (Eq. 15) as (case_id, start_us, end_us).

        This is the input to the Fig. 5 timeline plot.
        """
        if activity not in self._timelines:
            raise ReproError(f"no timeline for activity {activity!r}")
        return list(self._timelines[activity])

    def metric(self, activity: str, name: str) -> float:
        """Numeric metric accessor used by statistics-based coloring."""
        stats = self[activity]
        if name == "relative_duration":
            return stats.relative_duration
        if name == "total_bytes":
            return float(stats.total_bytes)
        if name == "max_concurrency":
            return float(stats.max_concurrency)
        if name == "event_count":
            return float(stats.event_count)
        if name == "process_data_rate":
            return stats.process_data_rate or 0.0
        raise ReproError(f"unknown metric {name!r}")

    def as_rows(self) -> list[dict]:
        """All stats as dict rows (report/CSV export)."""
        return [
            {
                "activity": s.activity,
                "events": s.event_count,
                "total_dur_us": s.total_dur_us,
                "relative_duration": s.relative_duration,
                "total_bytes": s.total_bytes,
                "process_data_rate": s.process_data_rate,
                "max_concurrency": s.max_concurrency,
                "ranks": s.ranks,
                "cases": s.cases,
            }
            for s in (self._stats[a] for a in self.activities())
        ]

"""Layered (Sugiyama-style) layout for self-contained SVG rendering.

Graphviz is unavailable as a dependency, so the SVG renderer computes
its own coordinates. DFGs are usually shallow, mostly-forward graphs
rooted at the ● sentinel, which suits the classic three-phase layered
approach:

1. **Cycle handling** — DFGs may contain cycles (retry loops, repeated
   phases). A depth-first sweep from the start node marks back edges;
   layering treats them as reversed. Self-loops are excluded from the
   layout entirely (drawn as arcs on the node).
2. **Layer assignment** — longest-path layering from the roots: a node
   sits one layer below its deepest predecessor, so every forward edge
   points strictly downward.
3. **Crossing reduction** — a few barycenter sweeps order nodes within
   layers by the mean position of their neighbours.

Coordinates are then assigned on a regular grid, centering each layer
horizontally. The output is deliberately simple: the goal is readable,
deterministic diagrams, not Graphviz parity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.dfg import DFG, Edge


@dataclass(frozen=True, slots=True)
class NodeBox:
    """Placed node: center coordinates (abstract units)."""

    activity: str
    layer: int
    x: float
    y: float


@dataclass
class Layout:
    """Result of the layered layout."""

    boxes: dict[str, NodeBox]
    layers: list[list[str]]
    forward_edges: list[Edge]
    back_edges: list[Edge]
    self_loops: list[str]


def _acyclic_orientation(
    nodes: list[str], edges: list[Edge], roots: list[str],
) -> tuple[set[Edge], set[Edge]]:
    """Split edges into forward and back sets via iterative DFS."""
    adjacency: dict[str, list[str]] = {n: [] for n in nodes}
    for a1, a2 in edges:
        adjacency[a1].append(a2)
    for neighbours in adjacency.values():
        neighbours.sort()

    color: dict[str, int] = {n: 0 for n in nodes}  # 0 white 1 grey 2 black
    back: set[Edge] = set()
    order = roots + [n for n in sorted(nodes) if n not in roots]
    for root in order:
        if color[root] != 0:
            continue
        stack: list[tuple[str, int]] = [(root, 0)]
        color[root] = 1
        while stack:
            node, idx = stack[-1]
            if idx < len(adjacency[node]):
                stack[-1] = (node, idx + 1)
                nxt = adjacency[node][idx]
                if color[nxt] == 1:
                    back.add((node, nxt))
                elif color[nxt] == 0:
                    color[nxt] = 1
                    stack.append((nxt, 0))
            else:
                color[node] = 2
                stack.pop()
    forward = {e for e in edges if e not in back}
    return forward, back


def _longest_path_layers(
    nodes: list[str], forward: set[Edge], roots: list[str],
) -> dict[str, int]:
    """Layer = longest path length from any root (Kahn-style)."""
    preds: dict[str, list[str]] = {n: [] for n in nodes}
    succs: dict[str, list[str]] = {n: [] for n in nodes}
    indeg: dict[str, int] = {n: 0 for n in nodes}
    for a1, a2 in forward:
        succs[a1].append(a2)
        preds[a2].append(a1)
        indeg[a2] += 1
    layer: dict[str, int] = {n: 0 for n in nodes}
    queue = [n for n in sorted(nodes) if indeg[n] == 0]
    seen = 0
    while queue:
        node = queue.pop(0)
        seen += 1
        for nxt in sorted(succs[node]):
            layer[nxt] = max(layer[nxt], layer[node] + 1)
            indeg[nxt] -= 1
            if indeg[nxt] == 0:
                queue.append(nxt)
    # Cycles that survived (disconnected cyclic components) — break
    # deterministically by leaving their nodes at their current layers.
    return layer


def _barycenter_order(
    layers: list[list[str]], forward: set[Edge], sweeps: int = 4,
) -> list[list[str]]:
    """Reduce crossings by ordering each layer by neighbour means."""
    preds: dict[str, list[str]] = {}
    succs: dict[str, list[str]] = {}
    for a1, a2 in forward:
        succs.setdefault(a1, []).append(a2)
        preds.setdefault(a2, []).append(a1)

    position = {n: i for layer in layers for i, n in enumerate(layer)}

    def mean_pos(neigh: list[str], fallback: float) -> float:
        known = [position[n] for n in neigh if n in position]
        return sum(known) / len(known) if known else fallback

    for sweep in range(sweeps):
        downward = sweep % 2 == 0
        sequence = range(1, len(layers)) if downward \
            else range(len(layers) - 2, -1, -1)
        for li in sequence:
            neigh_map = preds if downward else succs
            layer = layers[li]
            keyed = sorted(
                layer,
                key=lambda n: (mean_pos(neigh_map.get(n, []),
                                        position[n]), n))
            layers[li] = keyed
            for i, n in enumerate(keyed):
                position[n] = i
    return layers


def layout_dfg(
    dfg: DFG,
    *,
    x_spacing: float = 1.0,
    y_spacing: float = 1.0,
) -> Layout:
    """Compute a layered layout for a DFG.

    Coordinates are abstract: node centers on a grid with the given
    spacings; renderers scale to pixels.
    """
    nodes = sorted(dfg.nodes())
    self_loops = sorted(a for (a, b) in dfg.edges() if a == b)
    plain_edges = [(a, b) for (a, b) in dfg.edges() if a != b]
    roots = [dfg.start_node()] if dfg.start_node() in set(nodes) else []

    forward, back = _acyclic_orientation(nodes, plain_edges, roots)
    # Back edges participate in layering reversed, keeping flow downward.
    layering_edges = forward | {(b, a) for (a, b) in back}
    layer_of = _longest_path_layers(nodes, layering_edges, roots)

    n_layers = (max(layer_of.values()) + 1) if layer_of else 0
    layers: list[list[str]] = [[] for _ in range(n_layers)]
    for node in nodes:
        layers[layer_of[node]].append(node)
    for layer in layers:
        layer.sort()
    layers = _barycenter_order(layers, layering_edges)

    max_width = max((len(layer) for layer in layers), default=0)
    boxes: dict[str, NodeBox] = {}
    for li, layer in enumerate(layers):
        offset = (max_width - len(layer)) / 2
        for i, node in enumerate(layer):
            boxes[node] = NodeBox(
                activity=node,
                layer=li,
                x=(offset + i) * x_spacing,
                y=li * y_spacing,
            )
    return Layout(
        boxes=boxes,
        layers=layers,
        forward_edges=sorted(forward),
        back_edges=sorted(back),
        self_loops=self_loops,
    )

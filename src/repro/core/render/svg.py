"""Self-contained SVG rendering of DFGs (no Graphviz required).

Combines the layered layout of :mod:`repro.core.render.layout` with the
shared label/styling machinery to emit standalone ``.svg`` documents:
rounded-rectangle nodes with the Fig. 3a label stack, count-labelled
edges with arrowheads, the ● / ■ sentinels as filled glyph shapes, and
self-loops as arcs on the node's right flank.
"""

from __future__ import annotations

from repro.core.activity import END_ACTIVITY, START_ACTIVITY
from repro.core.coloring import (
    DEFAULT_EDGE_STYLE,
    DEFAULT_NODE_STYLE,
    PlainColoring,
    Styler,
)
from repro.core.dfg import DFG
from repro.core.mapping import DEFAULT_SEPARATOR
from repro.core.render.labels import node_label_lines
from repro.core.render.layout import layout_dfg
from repro.core.statistics import IOStatistics

#: Geometry constants (pixels).
CHAR_W = 7.0          #: estimated monospace character advance
LINE_H = 14.0         #: text line height
PAD_X = 10.0          #: node horizontal padding
PAD_Y = 6.0           #: node vertical padding
MIN_NODE_W = 48.0
X_GAP = 46.0          #: horizontal gap between node slots
Y_GAP = 70.0          #: vertical gap between layers
MARGIN = 30.0
SENTINEL_R = 9.0      #: radius/half-size of ● / ■ glyph shapes


def _esc(text: str) -> str:
    return (text.replace("&", "&amp;").replace("<", "&lt;")
                .replace(">", "&gt;").replace('"', "&quot;"))


def render_svg(
    dfg: DFG,
    stats: IOStatistics | None = None,
    styler: Styler | None = None,
    *,
    show_ranks: bool = False,
    separator: str = DEFAULT_SEPARATOR,
    title: str | None = None,
) -> str:
    """Render a DFG to an SVG document string."""
    styler = styler or PlainColoring()

    # -- measure nodes ------------------------------------------------------
    labels: dict[str, list[str]] = {}
    sizes: dict[str, tuple[float, float]] = {}
    for activity in dfg.nodes():
        if activity in (START_ACTIVITY, END_ACTIVITY):
            labels[activity] = []
            sizes[activity] = (2 * SENTINEL_R, 2 * SENTINEL_R)
            continue
        lines = node_label_lines(activity, stats, show_ranks=show_ranks,
                                 separator=separator)
        labels[activity] = lines
        width = max(MIN_NODE_W,
                    max(len(line) for line in lines) * CHAR_W + 2 * PAD_X)
        height = len(lines) * LINE_H + 2 * PAD_Y
        sizes[activity] = (width, height)

    # -- place --------------------------------------------------------------
    layout = layout_dfg(dfg)
    slot_w = max((w for w, _ in sizes.values()), default=MIN_NODE_W) + X_GAP
    slot_h = max((h for _, h in sizes.values()), default=LINE_H) + Y_GAP
    centers: dict[str, tuple[float, float]] = {}
    for activity, box in layout.boxes.items():
        centers[activity] = (
            MARGIN + box.x * slot_w + slot_w / 2,
            MARGIN + box.y * slot_h + slot_h / 2,
        )
    width = MARGIN * 2 + slot_w * max(
        (len(layer) for layer in layout.layers), default=1)
    height = MARGIN * 2 + slot_h * max(len(layout.layers), 1)

    parts: list[str] = []
    parts.append(
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0f}" '
        f'height="{height:.0f}" viewBox="0 0 {width:.0f} {height:.0f}">')
    parts.append(
        '<defs><marker id="arrow" viewBox="0 0 10 10" refX="9" refY="5" '
        'markerWidth="7" markerHeight="7" orient="auto-start-reverse">'
        '<path d="M 0 0 L 10 5 L 0 10 z" fill="context-stroke"/>'
        "</marker></defs>")
    parts.append(f'<rect width="100%" height="100%" fill="#ffffff"/>')
    if title:
        parts.append(
            f'<text x="{MARGIN}" y="{MARGIN - 10:.0f}" '
            f'font-family="monospace" font-size="13" fill="#000000">'
            f"{_esc(title)}</text>")

    # -- edges (under nodes) ----------------------------------------------------
    edge_counts = dfg.edges()
    for a1, a2 in layout.forward_edges + layout.back_edges:
        count = edge_counts[(a1, a2)]
        style = styler.edge_style((a1, a2)).merged_over(DEFAULT_EDGE_STYLE)
        x1, y1 = centers[a1]
        x2, y2 = centers[a2]
        h1 = sizes[a1][1] / 2
        h2 = sizes[a2][1] / 2
        if y2 >= y1:
            sy, ty = y1 + h1, y2 - h2
        else:
            sy, ty = y1 - h1, y2 + h2
        midx, midy = (x1 + x2) / 2, (sy + ty) / 2
        parts.append(
            f'<path d="M {x1:.1f} {sy:.1f} C {x1:.1f} {midy:.1f}, '
            f'{x2:.1f} {midy:.1f}, {x2:.1f} {ty:.1f}" fill="none" '
            f'stroke="{style.color}" stroke-width='
            f'"{style.penwidth or 1.0:.1f}" marker-end="url(#arrow)"/>')
        parts.append(
            f'<text x="{midx + 4:.1f}" y="{midy - 3:.1f}" '
            f'font-family="monospace" font-size="10" '
            f'fill="{style.fontcolor}">{count}</text>')
    for activity in layout.self_loops:
        count = edge_counts[(activity, activity)]
        style = styler.edge_style(
            (activity, activity)).merged_over(DEFAULT_EDGE_STYLE)
        x, y = centers[activity]
        w, h = sizes[activity]
        rx = x + w / 2
        parts.append(
            f'<path d="M {rx:.1f} {y - h / 4:.1f} C {rx + 26:.1f} '
            f'{y - h / 2:.1f}, {rx + 26:.1f} {y + h / 2:.1f}, '
            f'{rx:.1f} {y + h / 4:.1f}" fill="none" '
            f'stroke="{style.color}" stroke-width='
            f'"{style.penwidth or 1.0:.1f}" marker-end="url(#arrow)"/>')
        parts.append(
            f'<text x="{rx + 28:.1f}" y="{y + 3:.1f}" '
            f'font-family="monospace" font-size="10" '
            f'fill="{style.fontcolor}">{count}</text>')

    # -- nodes ----------------------------------------------------------------
    for activity in sorted(dfg.nodes()):
        x, y = centers[activity]
        if activity == START_ACTIVITY:
            parts.append(
                f'<circle cx="{x:.1f}" cy="{y:.1f}" r="{SENTINEL_R}" '
                f'fill="#000000"/>')
            continue
        if activity == END_ACTIVITY:
            s = SENTINEL_R
            parts.append(
                f'<rect x="{x - s:.1f}" y="{y - s:.1f}" width="{2 * s}" '
                f'height="{2 * s}" fill="#000000"/>')
            continue
        w, h = sizes[activity]
        style = styler.node_style(activity).merged_over(DEFAULT_NODE_STYLE)
        parts.append(
            f'<rect x="{x - w / 2:.1f}" y="{y - h / 2:.1f}" '
            f'width="{w:.1f}" height="{h:.1f}" rx="6" '
            f'fill="{style.fill}" stroke="{style.color}" '
            f'stroke-width="{style.penwidth or 1.0:.1f}"/>')
        for i, line in enumerate(labels[activity]):
            ty = y - h / 2 + PAD_Y + (i + 0.8) * LINE_H
            parts.append(
                f'<text x="{x:.1f}" y="{ty:.1f}" text-anchor="middle" '
                f'font-family="monospace" font-size="11" '
                f'fill="{style.fontcolor}">{_esc(line)}</text>')

    parts.append("</svg>")
    return "\n".join(parts) + "\n"

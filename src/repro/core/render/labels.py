"""Node-label composition shared by all renderers.

Fig. 3a of the paper defines the node semantics::

    <CALL_NAME>
    <DIRECTORY_PATH>
    Load: <RELATIVE_DUR>/<BYTES_MOVED>
    DR: <MAX_CONC> x <PROCESS_DATA_RATE>

Activities produced by the built-in mappings are ``call:path`` strings
(the paper's Fig. 6 listing embeds a newline instead of the colon — we
split on the *first* separator so both spellings render identically).
Statistics lines come from
:class:`~repro.core.statistics.ActivityStats`; sentinel nodes (● / ■)
render as bare glyphs.
"""

from __future__ import annotations

from repro.core.activity import SENTINELS
from repro.core.mapping import DEFAULT_SEPARATOR
from repro.core.statistics import IOStatistics


def activity_label_lines(activity: str,
                         separator: str = DEFAULT_SEPARATOR) -> list[str]:
    """Split an activity into its call / path display lines.

    ``"read:/usr/lib"`` → ``["read", "/usr/lib"]``;
    ``"read\\n/usr/lib"`` → the same; activities without a separator
    (e.g. bare call names) stay single-line.
    """
    if activity in SENTINELS:
        return [activity]
    if "\n" in activity:
        head, _, tail = activity.partition("\n")
        return [head, tail] if tail else [head]
    head, sep, tail = activity.partition(separator)
    if sep and tail:
        return [head, tail]
    return [activity]


def node_label_lines(
    activity: str,
    stats: IOStatistics | None = None,
    *,
    show_ranks: bool = False,
    separator: str = DEFAULT_SEPARATOR,
) -> list[str]:
    """Full label for one node: activity lines + Load/DR stat lines.

    ``show_ranks`` adds the ``Ranks: N`` annotation seen in Fig. 3c
    (distinct rids behind the activity; see DESIGN.md §6 on the
    ambiguity of that figure element).
    """
    lines = activity_label_lines(activity, separator)
    if stats is None or activity in SENTINELS:
        return lines
    activity_stats = stats.get(activity)
    if activity_stats is None:
        return lines
    lines.append(activity_stats.load_label)
    dr = activity_stats.dr_label
    if dr is not None:
        lines.append(dr)
    if show_ranks:
        lines.append(f"Ranks: {activity_stats.ranks}")
    return lines

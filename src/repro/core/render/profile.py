"""Concurrency-profile plots: mc_f over time, not just its maximum.

Fig. 5 shows the raw event timeline; the max-concurrency statistic
(Eq. 16) compresses it to one number. The profile in between — how many
events of an activity are in flight at each instant — explains *where*
the maximum happens (e.g. the token-queue pile-up at the start of the
SSF write phase). Rendered as a step-function SVG or an ASCII
sparkline.
"""

from __future__ import annotations

from repro._util.intervals import concurrency_profile
from repro.core.render.timeline import TimelineRow

_SVG_W = 720
_SVG_H = 180
_MARGIN = 34

#: Eighth-block characters for the ASCII sparkline.
_SPARK = " ▁▂▃▄▅▆▇█"


def _intervals_of(rows: list[TimelineRow]) -> list[tuple[float, float]]:
    return [(float(start), float(end)) for _, start, end in rows]


def render_profile_svg(rows: list[TimelineRow], *,
                       activity: str = "", width: int = _SVG_W) -> str:
    """Step-function SVG of in-flight event count over time."""
    profile = concurrency_profile(_intervals_of(rows))
    if not profile:
        return ('<svg xmlns="http://www.w3.org/2000/svg" width="200" '
                'height="40"><text x="8" y="24" font-size="12">'
                "(empty profile)</text></svg>\n")
    t0 = profile[0][0]
    t1 = profile[-1][0]
    span = max(t1 - t0, 1.0)
    peak = max(count for _, count in profile) or 1
    plot_w = width - 2 * _MARGIN
    plot_h = _SVG_H - 2 * _MARGIN

    def x_of(t: float) -> float:
        return _MARGIN + plot_w * (t - t0) / span

    def y_of(count: int) -> float:
        return _SVG_H - _MARGIN - plot_h * count / peak

    # Build the step path.
    points: list[str] = [f"M {x_of(t0):.1f} {y_of(0):.1f}"]
    previous = 0
    for t, count in profile:
        points.append(f"L {x_of(t):.1f} {y_of(previous):.1f}")
        points.append(f"L {x_of(t):.1f} {y_of(count):.1f}")
        previous = count
    path = " ".join(points)

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{_SVG_H}" viewBox="0 0 {width} {_SVG_H}">',
        '<rect width="100%" height="100%" fill="#ffffff"/>',
    ]
    if activity:
        display = activity.replace("\n", " ")
        parts.append(
            f'<text x="{_MARGIN}" y="18" font-family="monospace" '
            f'font-size="12">concurrency: {display} '
            f"(peak {peak})</text>")
    parts.append(
        f'<path d="{path}" fill="none" stroke="#2171b5" '
        'stroke-width="1.5"/>')
    # Axes.
    parts.append(
        f'<line x1="{_MARGIN}" y1="{_SVG_H - _MARGIN}" '
        f'x2="{width - _MARGIN}" y2="{_SVG_H - _MARGIN}" '
        'stroke="#333333"/>')
    parts.append(
        f'<line x1="{_MARGIN}" y1="{_MARGIN}" x2="{_MARGIN}" '
        f'y2="{_SVG_H - _MARGIN}" stroke="#333333"/>')
    parts.append(
        f'<text x="{_MARGIN - 26}" y="{y_of(peak) + 4:.0f}" '
        f'font-family="monospace" font-size="10">{peak}</text>')
    span_ms = span / 1000
    parts.append(
        f'<text x="{width - _MARGIN - 64}" y="{_SVG_H - _MARGIN + 14}" '
        f'font-family="monospace" font-size="10">{span_ms:.2f} ms</text>')
    parts.append("</svg>")
    return "\n".join(parts) + "\n"


def render_profile_ascii(rows: list[TimelineRow], *,
                         activity: str = "", width: int = 72) -> str:
    """ASCII sparkline of in-flight event count over time.

    Each column shows the *maximum* concurrency within its time bucket
    so short spikes stay visible.
    """
    profile = concurrency_profile(_intervals_of(rows))
    header = (f"concurrency: {activity.replace(chr(10), ' ')}"
              if activity else "concurrency")
    if not profile:
        return header + "\n  (empty)\n"
    t0 = profile[0][0]
    t1 = profile[-1][0]
    span = max(t1 - t0, 1.0)
    peak = max(count for _, count in profile) or 1

    # Bucket-maximum sampling of the step function.
    buckets = [0] * width
    for i in range(len(profile)):
        t, count = profile[i]
        t_next = profile[i + 1][0] if i + 1 < len(profile) else t1
        b0 = min(int((t - t0) / span * width), width - 1)
        b1 = min(int((t_next - t0) / span * width), width - 1)
        for b in range(b0, b1 + 1):
            buckets[b] = max(buckets[b], count)

    cells = "".join(
        _SPARK[min(len(_SPARK) - 1,
                   round(c / peak * (len(_SPARK) - 1)))]
        for c in buckets)
    span_ms = span / 1000
    return (f"{header} (peak {peak})\n  |{cells}|\n"
            f"   0{'':{width - 10}}{span_ms:.2f} ms\n")

"""DFG and timeline renderers (DOT / SVG / ASCII).

Graphviz is not a dependency: :func:`render_dot` emits DOT *text* that
external tooling may consume, while :func:`render_svg` (via the layered
layout in :mod:`repro.core.render.layout`) and :func:`render_ascii` are
fully self-contained. :class:`DFGViewer` is the paper's Fig. 6 facade
over all three.
"""

from repro.core.render.ascii import render_ascii
from repro.core.render.dot import render_dot
from repro.core.render.labels import activity_label_lines, node_label_lines
from repro.core.render.layout import Layout, NodeBox, layout_dfg
from repro.core.palette import (
    BLUES,
    GREENS,
    GREEN_EDGE,
    GREEN_FILL,
    RED_EDGE,
    RED_FILL,
    pick_font_color,
    shade,
)
from repro.core.render.profile import (
    render_profile_ascii,
    render_profile_svg,
)
from repro.core.render.svg import render_svg
from repro.core.render.timeline import (
    render_timeline_ascii,
    render_timeline_svg,
)
from repro.core.render.viewer import DFGViewer

__all__ = [
    "render_ascii",
    "render_dot",
    "render_svg",
    "render_timeline_ascii",
    "render_timeline_svg",
    "render_profile_ascii",
    "render_profile_svg",
    "activity_label_lines",
    "node_label_lines",
    "Layout",
    "NodeBox",
    "layout_dfg",
    "BLUES",
    "GREENS",
    "GREEN_EDGE",
    "GREEN_FILL",
    "RED_EDGE",
    "RED_FILL",
    "pick_font_color",
    "shade",
    "DFGViewer",
]

"""Timeline plots of activity events (Fig. 5 of the paper).

Fig. 5 visualizes ``t_f̂("read:/usr/lib", Cb)``: one row per case, one
horizontal bar per event from start to end timestamp, with the maximum
vertical overlap being the max-concurrency statistic. Both an SVG and a
plain-text renderer are provided; they consume the
``IOStatistics.timeline(activity)`` rows.
"""

from __future__ import annotations

from collections import defaultdict

from repro._util.timefmt import micros_to_seconds

#: (case_id, start_us, end_us) — the IOStatistics.timeline row type.
TimelineRow = tuple[str, int, int]

_SVG_ROW_H = 26
_SVG_BAR_H = 12
_SVG_W = 720
_SVG_LABEL_W = 110
_SVG_MARGIN = 24


def _group_rows(rows: list[TimelineRow]) -> dict[str, list[tuple[int, int]]]:
    by_case: dict[str, list[tuple[int, int]]] = defaultdict(list)
    for case_id, start, end in rows:
        by_case[case_id].append((start, end))
    return dict(sorted(by_case.items()))


def render_timeline_svg(
    rows: list[TimelineRow],
    *,
    activity: str = "",
    width: int = _SVG_W,
) -> str:
    """Render timeline rows to a standalone SVG document."""
    by_case = _group_rows(rows)
    if not rows:
        return ('<svg xmlns="http://www.w3.org/2000/svg" width="200" '
                'height="40"><text x="8" y="24" font-size="12">'
                "(empty timeline)</text></svg>\n")
    t0 = min(start for _, start, _ in rows)
    t1 = max(end for _, _, end in rows)
    span = max(t1 - t0, 1)
    plot_w = width - _SVG_LABEL_W - 2 * _SVG_MARGIN
    height = _SVG_MARGIN * 2 + _SVG_ROW_H * len(by_case) + 22

    def x_of(t: int) -> float:
        return _SVG_LABEL_W + _SVG_MARGIN + plot_w * (t - t0) / span

    parts: list[str] = []
    parts.append(
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height:.0f}" viewBox="0 0 {width} {height:.0f}">')
    parts.append('<rect width="100%" height="100%" fill="#ffffff"/>')
    if activity:
        display = activity.replace("\n", " ")
        parts.append(
            f'<text x="{_SVG_MARGIN}" y="16" font-family="monospace" '
            f'font-size="12">timeline: {display}</text>')
    for i, (case_id, intervals) in enumerate(by_case.items()):
        y = _SVG_MARGIN + 10 + i * _SVG_ROW_H
        parts.append(
            f'<text x="{_SVG_MARGIN}" y="{y + _SVG_BAR_H - 1:.0f}" '
            f'font-family="monospace" font-size="11">{case_id}</text>')
        parts.append(
            f'<line x1="{_SVG_LABEL_W + _SVG_MARGIN}" y1='
            f'"{y + _SVG_BAR_H / 2:.0f}" x2="{width - _SVG_MARGIN}" '
            f'y2="{y + _SVG_BAR_H / 2:.0f}" stroke="#dddddd"/>')
        for start, end in intervals:
            x_start = x_of(start)
            bar_w = max(x_of(end) - x_start, 1.5)
            parts.append(
                f'<rect x="{x_start:.1f}" y="{y:.0f}" '
                f'width="{bar_w:.1f}" height="{_SVG_BAR_H}" '
                f'fill="#4292c6" stroke="#08519c" stroke-width="0.5"/>')
    # Axis with duration annotation (the paper's "0 .. 5 ms" style).
    axis_y = height - 14
    parts.append(
        f'<line x1="{_SVG_LABEL_W + _SVG_MARGIN}" y1="{axis_y:.0f}" '
        f'x2="{width - _SVG_MARGIN}" y2="{axis_y:.0f}" stroke="#333333"/>')
    span_ms = micros_to_seconds(span) * 1000
    parts.append(
        f'<text x="{_SVG_LABEL_W + _SVG_MARGIN}" y="{axis_y + 12:.0f}" '
        f'font-family="monospace" font-size="10">0</text>')
    parts.append(
        f'<text x="{width - _SVG_MARGIN - 60}" y="{axis_y + 12:.0f}" '
        f'font-family="monospace" font-size="10">{span_ms:.2f} ms</text>')
    parts.append("</svg>")
    return "\n".join(parts) + "\n"


def render_timeline_ascii(
    rows: list[TimelineRow],
    *,
    activity: str = "",
    width: int = 72,
) -> str:
    """Render timeline rows as fixed-width text.

    Each case is one line; ``█`` cells are instants with at least one
    in-flight event (bars shorter than a cell still print one ``█``).
    """
    by_case = _group_rows(rows)
    header = (f"timeline: {activity.replace(chr(10), ' ')}"
              if activity else "timeline")
    if not rows:
        return header + "\n  (empty)\n"
    t0 = min(start for _, start, _ in rows)
    t1 = max(end for _, _, end in rows)
    span = max(t1 - t0, 1)
    lines = [header]
    for case_id, intervals in by_case.items():
        cells = [" "] * width
        for start, end in intervals:
            c0 = int((start - t0) / span * (width - 1))
            c1 = max(int((end - t0) / span * (width - 1)), c0)
            for c in range(c0, c1 + 1):
                cells[c] = "█"
        lines.append(f"  {case_id:>10} |{''.join(cells)}|")
    span_ms = micros_to_seconds(span) * 1000
    lines.append(f"  {'':>10}  0{'':{width - 10}}{span_ms:.2f} ms")
    return "\n".join(lines) + "\n"

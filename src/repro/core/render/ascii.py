"""Terminal (plain-text) rendering of DFGs.

For quick inspection without an SVG viewer: a node table with the
Fig. 3a statistics lines, followed by the directly-follows edges sorted
by observation count. Partition coloring renders as ``[G]`` / ``[R]``
tags; statistics coloring as a bar of ``#`` proportional to the metric.
"""

from __future__ import annotations

from repro.core.activity import END_ACTIVITY, SENTINELS, START_ACTIVITY
from repro.core.coloring import PartitionColoring, StatisticsColoring, Styler
from repro.core.dfg import DFG
from repro.core.statistics import IOStatistics

_BAR_WIDTH = 20


def render_ascii(
    dfg: DFG,
    stats: IOStatistics | None = None,
    styler: Styler | None = None,
    *,
    show_ranks: bool = False,
) -> str:
    """Render a DFG as readable plain text."""
    lines: list[str] = []
    lines.append(f"DFG: {dfg.n_nodes} nodes, {dfg.n_edges} edges, "
                 f"{dfg.total_observations()} observations")
    lines.append("")
    lines.append("NODES")

    def tag(activity: str) -> str:
        if isinstance(styler, PartitionColoring):
            kind = styler.classify_node(activity)
            return {"green": "[G] ", "red": "[R] ", "shared": "    "}[kind]
        return ""

    def bar(activity: str) -> str:
        if isinstance(styler, StatisticsColoring) and stats is not None \
                and activity in stats:
            value = stats.metric(activity, styler.metric)
            peak = max(
                (stats.metric(a, styler.metric) for a in stats.activities()),
                default=0.0)
            filled = round(_BAR_WIDTH * value / peak) if peak > 0 else 0
            return " |" + "#" * filled + "." * (_BAR_WIDTH - filled) + "|"
        return ""

    ordering = sorted(
        dfg.nodes(),
        key=lambda a: (a != START_ACTIVITY, a == END_ACTIVITY,
                       -(stats[a].relative_duration
                         if stats is not None and a in stats else 0.0), a))
    for activity in ordering:
        if activity in SENTINELS:
            lines.append(f"  {tag(activity)}{activity}  "
                         f"(x{dfg.node_frequency(activity)})")
            continue
        suffix = ""
        if stats is not None and activity in stats:
            activity_stats = stats[activity]
            suffix = f"  {activity_stats.load_label}"
            if activity_stats.dr_label:
                suffix += f"  {activity_stats.dr_label}"
            if show_ranks:
                suffix += f"  Ranks: {activity_stats.ranks}"
        display = activity.replace("\n", " ")
        lines.append(f"  {tag(activity)}{display}"
                     f"  (x{dfg.node_frequency(activity)}){suffix}"
                     f"{bar(activity)}")

    lines.append("")
    lines.append("EDGES (count desc)")
    for (a1, a2), count in sorted(
            dfg.edges().items(), key=lambda kv: (-kv[1], kv[0])):
        edge_tag = ""
        if isinstance(styler, PartitionColoring):
            kind = styler.classify_edge((a1, a2))
            edge_tag = {"green": "[G] ", "red": "[R] ",
                        "shared": "    "}[kind]
        display1 = a1.replace("\n", " ")
        display2 = a2.replace("\n", " ")
        lines.append(f"  {edge_tag}{display1} -[{count}]-> {display2}")
    return "\n".join(lines) + "\n"

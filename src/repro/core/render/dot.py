"""Graphviz DOT emission for DFGs.

The paper renders its figures with Graphviz; this emitter produces DOT
text that, piped through ``dot -Tpdf``, reproduces the Fig. 3/8/9 style:
box nodes with multi-line labels (call, path, ``Load:``, ``DR:``),
edge labels with observation counts, a filled circle for ● and a filled
square for ■. Output is deterministic (nodes and edges sorted) so tests
can assert on exact text.

Graphviz itself is *not* a dependency — the emitter only writes text;
the self-contained rendering path is :mod:`repro.core.render.svg`.
"""

from __future__ import annotations

import math

from repro.core.activity import END_ACTIVITY, START_ACTIVITY
from repro.core.coloring import (
    DEFAULT_EDGE_STYLE,
    DEFAULT_NODE_STYLE,
    PlainColoring,
    Styler,
)
from repro.core.dfg import DFG
from repro.core.mapping import DEFAULT_SEPARATOR
from repro.core.render.labels import node_label_lines
from repro.core.statistics import IOStatistics


def _escape(text: str) -> str:
    """Escape a string for use inside a double-quoted DOT literal."""
    return (text.replace("\\", "\\\\")
                .replace('"', '\\"')
                .replace("\n", "\\n"))


def _node_id(activity: str) -> str:
    """Stable DOT identifier for an activity (quoted literal)."""
    return f'"{_escape(activity)}"'


def render_dot(
    dfg: DFG,
    stats: IOStatistics | None = None,
    styler: Styler | None = None,
    *,
    graph_name: str = "DFG",
    rankdir: str = "TB",
    show_ranks: bool = False,
    separator: str = DEFAULT_SEPARATOR,
    scale_edge_width: bool = False,
) -> str:
    """Render a DFG (optionally with statistics and a styler) to DOT.

    Parameters mirror the figures: ``rankdir="TB"`` gives the paper's
    top-to-bottom flow; ``show_ranks`` adds the Fig. 3c ``Ranks:``
    lines. ``scale_edge_width`` thickens edges logarithmically with
    their observation count so heavy relations pop visually (an
    explicit styler's penwidth wins over the scaling).
    """
    styler = styler or PlainColoring()
    max_count = max(dfg.edges().values(), default=1)

    def scaled_width(count: int) -> float:
        if max_count <= 1:
            return 1.0
        return 1.0 + 2.5 * math.log1p(count) / math.log1p(max_count)
    out: list[str] = []
    out.append(f"digraph {graph_name} {{")
    out.append(f"  rankdir={rankdir};")
    out.append('  node [shape=box, style="rounded,filled", '
               'fontname="Helvetica", fontsize=10];')
    out.append('  edge [fontname="Helvetica", fontsize=9];')

    for activity in sorted(dfg.nodes()):
        style = styler.node_style(activity).merged_over(DEFAULT_NODE_STYLE)
        attrs: list[str] = []
        if activity == START_ACTIVITY:
            attrs = ['shape=circle', 'label=""', 'width=0.25',
                     'style=filled', 'fillcolor="#000000"']
        elif activity == END_ACTIVITY:
            attrs = ['shape=square', 'label=""', 'width=0.22',
                     'style=filled', 'fillcolor="#000000"']
        else:
            label = "\n".join(node_label_lines(
                activity, stats, show_ranks=show_ranks,
                separator=separator))
            attrs.append(f'label="{_escape(label)}"')
            attrs.append(f'fillcolor="{style.fill}"')
            attrs.append(f'color="{style.color}"')
            attrs.append(f'fontcolor="{style.fontcolor}"')
            if style.penwidth is not None:
                attrs.append(f'penwidth={style.penwidth:g}')
        out.append(f"  {_node_id(activity)} [{', '.join(attrs)}];")

    for (a1, a2), count in sorted(dfg.edges().items()):
        style = styler.edge_style((a1, a2)).merged_over(DEFAULT_EDGE_STYLE)
        attrs = [f'label="{count}"',
                 f'color="{style.color}"',
                 f'fontcolor="{style.fontcolor}"']
        penwidth = style.penwidth
        if scale_edge_width and (penwidth is None or penwidth == 1.0):
            penwidth = scaled_width(count)
        if penwidth is not None:
            attrs.append(f'penwidth={penwidth:g}')
        out.append(
            f"  {_node_id(a1)} -> {_node_id(a2)} [{', '.join(attrs)}];")

    out.append("}")
    return "\n".join(out) + "\n"

"""The paper's ``DFGViewer`` (Fig. 6, step 5).

``DFGViewer(dfg, styler=StatisticsColoring(stats)).render()`` produces
the styled graph. Our viewer supports three output formats — ``dot``
(Graphviz text, as the paper's implementation emits), ``svg``
(self-contained, no Graphviz needed) and ``ascii`` (terminals) — and
can write straight to a file.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro._util.errors import RenderError
from repro.core.coloring import Styler
from repro.core.dfg import DFG
from repro.core.render.ascii import render_ascii
from repro.core.render.dot import render_dot
from repro.core.render.svg import render_svg
from repro.core.statistics import IOStatistics

_FORMATS = ("dot", "svg", "ascii")


class DFGViewer:
    """Bundle a DFG with statistics and a styler; render on demand."""

    def __init__(
        self,
        dfg: DFG,
        stats: IOStatistics | None = None,
        styler: Styler | None = None,
        *,
        show_ranks: bool = False,
        title: str | None = None,
    ) -> None:
        self.dfg = dfg
        # The paper's listing passes stats into the styler; stylers that
        # carry stats (StatisticsColoring/PartitionColoring) share them
        # with the viewer automatically so labels get Load/DR lines.
        if stats is None and styler is not None:
            stats = getattr(styler, "stats", None)
        self.stats = stats
        self.styler = styler
        self.show_ranks = show_ranks
        self.title = title

    def render(self, fmt: str = "dot") -> str:
        """Render to the requested format and return the document text."""
        if fmt not in _FORMATS:
            raise RenderError(
                f"unknown format {fmt!r}; expected one of {_FORMATS}")
        if fmt == "dot":
            return render_dot(self.dfg, self.stats, self.styler,
                              show_ranks=self.show_ranks)
        if fmt == "svg":
            return render_svg(self.dfg, self.stats, self.styler,
                              show_ranks=self.show_ranks, title=self.title)
        return render_ascii(self.dfg, self.stats, self.styler,
                            show_ranks=self.show_ranks)

    def save(self, path: str | os.PathLike[str],
             fmt: str | None = None) -> Path:
        """Render and write to ``path``; format inferred from suffix
        when not given (``.dot``/``.gv`` → dot, ``.svg`` → svg,
        ``.txt`` → ascii)."""
        file_path = Path(path)
        if fmt is None:
            suffix = file_path.suffix.lower()
            fmt = {".dot": "dot", ".gv": "dot", ".svg": "svg",
                   ".txt": "ascii"}.get(suffix)
            if fmt is None:
                raise RenderError(
                    f"cannot infer format from suffix {suffix!r}; "
                    f"pass fmt=")
        file_path.write_text(self.render(fmt), encoding="utf-8")
        return file_path

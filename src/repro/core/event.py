"""The event record of Eq. 1.

    e = [cid, host, rid, pid, call, start, dur, fp, size]

Events are what mapping functions ``f : E ⇀ A_f`` receive. The paper's
reference implementation hands mappings a ``pandas.Series`` accessed as
``event['fp']`` (Fig. 6, step 2a); :class:`Event` supports both that
item-style access and attribute access, so the paper's listing runs
against this library unchanged.

Uniqueness (Sec. IV): "no two events are exactly the same" — the paper
discusses that omitting ``-f`` can collapse two physical calls into one
identical tuple, which is undesired. :meth:`Event.identity` exposes the
full attribute tuple so logs can be audited for violations
(:func:`check_event_uniqueness`).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, fields
from typing import Iterable


@dataclass(frozen=True, slots=True)
class Event:
    """One I/O system-call event.

    Attributes
    ----------
    cid:
        Command identifier (from the trace-file name).
    host:
        Host machine name (from the trace-file name).
    rid:
        Launching (MPI) process identifier (from the trace-file name).
    pid:
        Identifier of the process that executed the call (``-f``).
    call:
        System-call name, e.g. ``"read"``.
    start:
        Start wall-clock in microseconds since midnight (``-tt``).
    dur:
        Duration in microseconds (``-T``); None if unrecorded.
    fp:
        Accessed file path (``-y``); None if the call carries none.
    size:
        Bytes actually transferred — return value, parsed "only for the
        variants of read and write system calls" (Sec. III item 6).
    """

    cid: str
    host: str
    rid: int
    pid: int
    call: str
    start: int
    dur: int | None
    fp: str | None
    size: int | None

    def __getitem__(self, key: str):
        """pandas-Series-style access: ``event['fp']``."""
        try:
            return getattr(self, key)
        except AttributeError:
            raise KeyError(key) from None

    def keys(self) -> tuple[str, ...]:
        """Attribute names, in Eq. 1 order."""
        return tuple(f.name for f in fields(self))

    def identity(self) -> tuple:
        """The full attribute tuple; equal tuples mean duplicate events."""
        return (self.cid, self.host, self.rid, self.pid, self.call,
                self.start, self.dur, self.fp, self.size)

    @property
    def end(self) -> int | None:
        """``start + dur`` (Eq. 14), or None when dur is unrecorded."""
        if self.dur is None:
            return None
        return self.start + self.dur

    @property
    def data_rate(self) -> float | None:
        """Per-event data rate ``size / dur`` in bytes/second (Eq. 11).

        None when size or duration is unavailable or the duration is
        zero (strace microsecond resolution can round tiny calls to 0;
        those cannot contribute a finite rate).
        """
        if self.size is None or self.dur is None or self.dur == 0:
            return None
        return self.size / (self.dur / 1e6)

    @property
    def case_id(self) -> str:
        """Paper-style case label: cid followed by rid, e.g. ``a9042``."""
        return f"{self.cid}{self.rid}"


def check_event_uniqueness(events: Iterable[Event]) -> list[tuple]:
    """Return identity tuples that occur more than once.

    An empty result certifies the log satisfies the paper's "no two
    events are exactly the same" requirement; a non-empty result most
    commonly indicates traces recorded without ``-f`` (Sec. IV's
    example of how duplicates arise).
    """
    counts = Counter(e.identity() for e in events)
    return [identity for identity, n in counts.items() if n > 1]

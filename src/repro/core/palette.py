"""Color palettes for DFG rendering.

The paper shades nodes in blues ("higher the value of rd_f, the darker
the shade of blue") and uses green/red for partition coloring. The blue
ramp below is the ColorBrewer *Blues* sequential scheme, the de-facto
standard for this kind of quantitative shading.
"""

from __future__ import annotations

#: Sequential blues, light → dark (ColorBrewer Blues-9).
BLUES: list[str] = [
    "#f7fbff", "#deebf7", "#c6dbef", "#9ecae1", "#6baed6",
    "#4292c6", "#2171b5", "#08519c", "#08306b",
]

#: Sequential greens, light → dark (available for byte-based shading).
GREENS: list[str] = [
    "#f7fcf5", "#e5f5e0", "#c7e9c0", "#a1d99b", "#74c476",
    "#41ab5d", "#238b45", "#006d2c", "#00441b",
]

#: Partition coloring fills/strokes (Sec. IV-C green/red).
GREEN_FILL = "#a1d99b"
GREEN_EDGE = "#1a7a1a"
RED_FILL = "#fc9272"
RED_EDGE = "#b30000"


def _hex_to_rgb(color: str) -> tuple[int, int, int]:
    color = color.lstrip("#")
    return (int(color[0:2], 16), int(color[2:4], 16), int(color[4:6], 16))


def _rgb_to_hex(rgb: tuple[float, float, float]) -> str:
    return "#{:02x}{:02x}{:02x}".format(
        *(max(0, min(255, round(c))) for c in rgb))


def shade(palette: list[str], t: float) -> str:
    """Continuous shade from a discrete ramp: t ∈ [0, 1] → hex color.

    Linear interpolation between adjacent palette stops; t is clamped.

    >>> shade(["#000000", "#ffffff"], 0.5)
    '#808080'
    """
    if not palette:
        raise ValueError("palette must not be empty")
    if len(palette) == 1:
        return palette[0]
    t = max(0.0, min(1.0, t))
    position = t * (len(palette) - 1)
    low = int(position)
    high = min(low + 1, len(palette) - 1)
    frac = position - low
    rgb_low = _hex_to_rgb(palette[low])
    rgb_high = _hex_to_rgb(palette[high])
    blended = tuple(
        (1 - frac) * lo + frac * hi for lo, hi in zip(rgb_low, rgb_high))
    return _rgb_to_hex(blended)  # type: ignore[arg-type]


def relative_luminance(color: str) -> float:
    """WCAG relative luminance of an sRGB hex color (0=black, 1=white)."""
    def channel(c: int) -> float:
        s = c / 255
        return s / 12.92 if s <= 0.03928 else ((s + 0.055) / 1.055) ** 2.4

    r, g, b = (_hex_to_rgb(color))
    return 0.2126 * channel(r) + 0.7152 * channel(g) + 0.0722 * channel(b)


def pick_font_color(fill: str) -> str:
    """Black on light fills, white on dark fills."""
    return "#000000" if relative_luminance(fill) > 0.35 else "#ffffff"

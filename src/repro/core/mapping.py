"""Mappings ``f : E ⇀ A_f`` from events to activities (Sec. IV).

A mapping is a *partial* function: an event maps to at most one activity
and may map to none, in which case the event is excluded from the
activity-log — "not all e ∈ E are required to have a mapping". The
reverse image ``f⁻¹(a)`` (the events behind an activity) is what the
statistics of Sec. IV-B aggregate over.

Built-in mappings reproduce the paper's:

- :class:`CallTopDirs` — the paper's f̂ (Eq. 4): syscall name plus the
  file path truncated to at most the top two directory levels
  (``read(… /usr/lib/x86_64-linux-gnu/libc.so.6)`` → ``read:/usr/lib``).
- :class:`CallPathTail` — syscall plus the *last* k path components,
  the file-level view used in Fig. 4
  (``read:x86_64-linux-gnu/libselinux.so.1``).
- :class:`SiteVariables` — the paper's f̄ (Sec. V): "abstracts the file
  paths based on site-specific variable" — path prefixes become labels
  like ``$SCRATCH``, ``$HOME``, ``$SOFTWARE``, ``Node Local``,
  optionally keeping directory levels below the variable (Fig. 8b shows
  ``$SCRATCH/ssf`` vs ``$SCRATCH/fpp``).
- :class:`RestrictedMapping` — the f₁ construction: "maps an event to
  an activity only if the file path contains the sub-string /usr/lib".

Performance: mappings that depend only on (call, fp) declare
``uses_only_call_fp = True``, letting the event-log evaluate them once
per *distinct* (call, fp) pair and broadcast via vectorized indexing —
the O(n) row-wise application of Fig. 6 drops to O(distinct pairs) of
Python-level work. ``bench_ablation_interning`` measures the win.
"""

from __future__ import annotations

import re
from abc import ABC, abstractmethod
from typing import Callable

from repro._util.errors import MappingError
from repro.core.event import Event

#: Separator between the call and path parts of built-in activity names.
#: The paper's prose writes ``read:/usr/lib``; its Fig. 6 listing uses a
#: newline (so the two parts render as separate label lines). We default
#: to ``:`` and let the renderer split for display.
DEFAULT_SEPARATOR = ":"


class Mapping(ABC):
    """Base class for event → activity mappings."""

    #: Human-readable mapping name (shows up in reports).
    name: str = "mapping"

    #: True iff the result depends only on (call, fp) — enables the
    #: distinct-pair fast path in EventLog.apply_mapping.
    uses_only_call_fp: bool = False

    @abstractmethod
    def map_event(self, event: Event) -> str | None:
        """Activity for ``event``, or None to exclude it (partiality)."""

    def map_call_fp(self, call: str, fp: str | None) -> str | None:
        """Fast path for call/fp-only mappings; others raise."""
        raise MappingError(
            f"{type(self).__name__} does not support the call/fp fast path")

    def __call__(self, event: Event) -> str | None:
        return self.map_event(event)

    def restricted_to_fp(self, substring: str) -> "RestrictedMapping":
        """Derive the paper's f₁-style restriction of this mapping."""
        return RestrictedMapping(self, fp_substring=substring)


def truncate_topdirs(fp: str, levels: int) -> str:
    """Truncate a path to its top ``levels`` components (paper Eq. 4).

    >>> truncate_topdirs("/usr/lib/x86_64-linux-gnu/libc.so.6", 2)
    '/usr/lib'
    >>> truncate_topdirs("/proc/filesystems", 2)
    '/proc/filesystems'
    >>> truncate_topdirs("test.0", 2)
    'test.0'
    """
    if levels < 1:
        raise ValueError("levels must be >= 1")
    if fp.startswith("/"):
        parts = fp.split("/")  # leading '' + components
        kept = parts[1: 1 + levels]
        return "/" + "/".join(kept)
    parts = fp.split("/")
    return "/".join(parts[:levels])


def path_tail(fp: str, levels: int) -> str:
    """The last ``levels`` components of a path (Fig. 4 node style).

    >>> path_tail("/usr/lib/x86_64-linux-gnu/libselinux.so.1", 2)
    'x86_64-linux-gnu/libselinux.so.1'
    """
    if levels < 1:
        raise ValueError("levels must be >= 1")
    parts = [p for p in fp.split("/") if p]
    return "/".join(parts[-levels:])


class CallTopDirs(Mapping):
    """The paper's f̂: ``call`` + path truncated to top-k directories.

    Events without a file path are excluded (mapped to None) — f̂ is
    partial exactly as Eq. 4 implies.
    """

    uses_only_call_fp = True

    def __init__(self, levels: int = 2,
                 separator: str = DEFAULT_SEPARATOR) -> None:
        if levels < 1:
            raise ValueError("levels must be >= 1")
        self.levels = levels
        self.separator = separator
        self.name = f"call+top{levels}dirs"

    def map_call_fp(self, call: str, fp: str | None) -> str | None:
        if fp is None:
            return None
        return f"{call}{self.separator}{truncate_topdirs(fp, self.levels)}"

    def map_event(self, event: Event) -> str | None:
        return self.map_call_fp(event.call, event.fp)


class CallPathTail(Mapping):
    """``call`` + last-k path components: the file-level view of Fig. 4."""

    uses_only_call_fp = True

    def __init__(self, levels: int = 2,
                 separator: str = DEFAULT_SEPARATOR) -> None:
        if levels < 1:
            raise ValueError("levels must be >= 1")
        self.levels = levels
        self.separator = separator
        self.name = f"call+tail{levels}"

    def map_call_fp(self, call: str, fp: str | None) -> str | None:
        if fp is None:
            return None
        return f"{call}{self.separator}{path_tail(fp, self.levels)}"

    def map_event(self, event: Event) -> str | None:
        return self.map_call_fp(event.call, event.fp)


class CallPath(Mapping):
    """``call`` + the full untruncated path (finest path granularity)."""

    uses_only_call_fp = True

    def __init__(self, separator: str = DEFAULT_SEPARATOR) -> None:
        self.separator = separator
        self.name = "call+path"

    def map_call_fp(self, call: str, fp: str | None) -> str | None:
        if fp is None:
            return None
        return f"{call}{self.separator}{fp}"

    def map_event(self, event: Event) -> str | None:
        return self.map_call_fp(event.call, event.fp)


class CallOnly(Mapping):
    """Just the syscall name; total (maps events without paths too)."""

    uses_only_call_fp = True
    name = "call"

    def map_call_fp(self, call: str, fp: str | None) -> str | None:
        return call

    def map_event(self, event: Event) -> str | None:
        return event.call


class SiteVariables(Mapping):
    """The paper's f̄: abstract path prefixes into site variables.

    Parameters
    ----------
    variables:
        ``{label: prefix-or-prefixes}`` — e.g. ``{"$SCRATCH":
        "/p/scratch", "$HOME": "/p/home", "$SOFTWARE": "/p/software",
        "Node Local": ("/dev/shm", "/tmp")}``. Longest-prefix wins, so
        nested prefixes behave intuitively regardless of dict order.
    extra_levels:
        Directory levels kept *below* the variable: 0 gives
        ``write:$SCRATCH`` (Fig. 8a); 1 gives ``write:$SCRATCH/ssf``
        (Fig. 8b).
    unmatched:
        Policy for paths under no known prefix: ``"topdirs"`` falls back
        to f̂-style truncation, ``"exclude"`` makes the mapping partial
        there, ``"keep"`` uses the raw path.
    """

    uses_only_call_fp = True

    def __init__(
        self,
        variables: dict[str, "str | tuple[str, ...] | list[str]"],
        *,
        extra_levels: int = 0,
        unmatched: str = "topdirs",
        topdirs_levels: int = 2,
        separator: str = DEFAULT_SEPARATOR,
    ) -> None:
        if unmatched not in ("topdirs", "exclude", "keep"):
            raise ValueError(f"bad unmatched policy: {unmatched!r}")
        if extra_levels < 0:
            raise ValueError("extra_levels must be >= 0")
        pairs: list[tuple[str, str]] = []
        for label, prefixes in variables.items():
            if isinstance(prefixes, str):
                prefixes = (prefixes,)
            for prefix in prefixes:
                pairs.append((prefix.rstrip("/"), label))
        # Longest prefix first so "/p/scratch/ssd" beats "/p/scratch".
        self._prefixes = sorted(
            pairs, key=lambda pl: len(pl[0]), reverse=True)
        self.extra_levels = extra_levels
        self.unmatched = unmatched
        self.topdirs_levels = topdirs_levels
        self.separator = separator
        self.name = f"site-variables[{','.join(variables)}]"

    def _abstract(self, fp: str) -> str | None:
        for prefix, label in self._prefixes:
            if fp == prefix or fp.startswith(prefix + "/"):
                if self.extra_levels == 0:
                    return label
                below = fp[len(prefix):].strip("/")
                kept = [p for p in below.split("/") if p][: self.extra_levels]
                return label + ("/" + "/".join(kept) if kept else "")
        if self.unmatched == "topdirs":
            return truncate_topdirs(fp, self.topdirs_levels)
        if self.unmatched == "keep":
            return fp
        return None

    def map_call_fp(self, call: str, fp: str | None) -> str | None:
        if fp is None:
            return None
        abstracted = self._abstract(fp)
        if abstracted is None:
            return None
        return f"{call}{self.separator}{abstracted}"

    def map_event(self, event: Event) -> str | None:
        return self.map_call_fp(event.call, event.fp)


class RegexMapping(Mapping):
    """Activity from a regex over the path, e.g. grouping by extension.

    ``template`` is a ``str.format`` template receiving ``call`` and the
    regex's named/positional groups (``g1``…): non-matching paths are
    excluded.
    """

    uses_only_call_fp = True

    def __init__(self, pattern: str, template: str,
                 *, name: str | None = None) -> None:
        self._regex = re.compile(pattern)
        self._template = template
        self.name = name or f"regex[{pattern}]"

    def map_call_fp(self, call: str, fp: str | None) -> str | None:
        if fp is None:
            return None
        match = self._regex.search(fp)
        if match is None:
            return None
        groups = {f"g{i}": g for i, g in
                  enumerate(match.groups(), start=1)}
        groups.update(match.groupdict())
        try:
            return self._template.format(call=call, **groups)
        except (KeyError, IndexError) as exc:
            raise MappingError(
                f"template {self._template!r} references missing "
                f"group: {exc}") from exc

    def map_event(self, event: Event) -> str | None:
        return self.map_call_fp(event.call, event.fp)


class RestrictedMapping(Mapping):
    """Make any mapping partial on a path condition (the paper's f₁).

    "define a mapping f₁ such that it maps an event to an activity only
    if the file path contains the sub-string /usr/lib" (Sec. IV-A).
    """

    def __init__(self, inner: Mapping, *,
                 fp_substring: str | None = None,
                 predicate: Callable[[Event], bool] | None = None) -> None:
        if (fp_substring is None) == (predicate is None):
            raise MappingError(
                "provide exactly one of fp_substring / predicate")
        self.inner = inner
        self.fp_substring = fp_substring
        self._predicate = predicate
        self.uses_only_call_fp = (
            inner.uses_only_call_fp and fp_substring is not None)
        self.name = (f"{inner.name}|fp~{fp_substring}"
                     if fp_substring is not None
                     else f"{inner.name}|predicate")

    def map_call_fp(self, call: str, fp: str | None) -> str | None:
        if not self.uses_only_call_fp:
            raise MappingError(
                "predicate-restricted mapping has no call/fp fast path")
        if fp is None or self.fp_substring not in fp:
            return None
        return self.inner.map_call_fp(call, fp)

    def map_event(self, event: Event) -> str | None:
        if self.fp_substring is not None:
            if event.fp is None or self.fp_substring not in event.fp:
                return None
        elif not self._predicate(event):
            return None
        return self.inner.map_event(event)


class ComposedMapping(Mapping):
    """First-match-wins chain of partial mappings.

    Partial mappings compose naturally: try each in order, take the
    first non-None activity. This builds layered views — e.g. "site
    variables for the parallel filesystem, full paths for /etc, drop
    everything else":

    >>> f = ComposedMapping([
    ...     RestrictedMapping(SiteVariables({"$S": "/p/scratch"},
    ...                       unmatched="exclude"),
    ...                       fp_substring="/p/scratch"),
    ...     RestrictedMapping(CallPath(), fp_substring="/etc"),
    ... ])
    """

    def __init__(self, mappings: "list[Mapping]",
                 name: str | None = None) -> None:
        if not mappings:
            raise MappingError("ComposedMapping needs at least one "
                               "inner mapping")
        self.mappings = list(mappings)
        self.uses_only_call_fp = all(
            m.uses_only_call_fp for m in self.mappings)
        self.name = name or "|".join(m.name for m in self.mappings)

    def map_call_fp(self, call: str, fp: str | None) -> str | None:
        if not self.uses_only_call_fp:
            raise MappingError(
                "composed mapping contains event-level members; "
                "no call/fp fast path")
        for mapping in self.mappings:
            activity = mapping.map_call_fp(call, fp)
            if activity is not None:
                return activity
        return None

    def map_event(self, event: Event) -> str | None:
        for mapping in self.mappings:
            activity = mapping.map_event(event)
            if activity is not None:
                return activity
        return None


class _CallableMapping(Mapping):
    """Adapter for plain callables (the paper's user-defined ``f``)."""

    def __init__(self, fn: Callable[[Event], str | None],
                 name: str | None = None) -> None:
        self._fn = fn
        self.name = name or getattr(fn, "__name__", "custom")

    def map_event(self, event: Event) -> str | None:
        result = self._fn(event)
        if result is not None and not isinstance(result, str):
            raise MappingError(
                f"mapping {self.name!r} returned {type(result).__name__}, "
                f"expected str or None")
        return result


def mapping_from_callable(
    fn: Callable[[Event], str | None] | Mapping,
    name: str | None = None,
) -> Mapping:
    """Coerce a user function (or pass through a Mapping) to a Mapping.

    This is what ``EventLog.apply_mapping_fn`` calls, so the paper's
    Fig. 6 listing — which passes a bare ``def f(event): ...`` — works
    as printed.
    """
    if isinstance(fn, Mapping):
        return fn
    if not callable(fn):
        raise MappingError(f"not a mapping or callable: {fn!r}")
    return _CallableMapping(fn, name)

"""Graph coloring strategies (Sec. IV-C).

Two strategies, exactly as the paper defines them:

1. **Statistics-based** (:class:`StatisticsColoring`): nodes shaded by a
   statistic — "the higher the value of rd_f, the darker the shade of
   blue" (Fig. 3b/3c/8). Any metric exposed by
   :meth:`~repro.core.statistics.IOStatistics.metric` can drive the
   shading.
2. **Partition-based** (:class:`PartitionColoring`): given the DFGs of
   two mutually exclusive sub-logs G and R, color nodes/edges exclusive
   to G green, exclusive to R red, and leave shared elements uncolored
   (Fig. 3d / Fig. 9).

A coloring is a *styler*: a pair of functions from node / edge to
:class:`Style`. Renderers (DOT/SVG/ASCII) consume stylers, so coloring
logic stays independent of output format.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from repro._util.errors import ReproError
from repro.core.activity import SENTINELS
from repro.core.dfg import DFG, Edge
from repro.core.palette import (
    BLUES,
    GREEN_EDGE,
    GREEN_FILL,
    RED_EDGE,
    RED_FILL,
    pick_font_color,
    shade,
)
from repro.core.statistics import IOStatistics


@dataclass(frozen=True, slots=True)
class Style:
    """Visual attributes for one node or edge (format-agnostic)."""

    fill: str | None = None        #: node background (hex)
    color: str | None = None       #: border / edge stroke (hex)
    fontcolor: str | None = None   #: label text color (hex)
    penwidth: float | None = None  #: border / edge width

    def merged_over(self, base: "Style") -> "Style":
        """This style with unset attributes inherited from ``base``."""
        return Style(
            fill=self.fill if self.fill is not None else base.fill,
            color=self.color if self.color is not None else base.color,
            fontcolor=(self.fontcolor if self.fontcolor is not None
                       else base.fontcolor),
            penwidth=(self.penwidth if self.penwidth is not None
                      else base.penwidth),
        )


#: Style applied when a styler has no opinion.
DEFAULT_NODE_STYLE = Style(fill="#ffffff", color="#333333",
                           fontcolor="#000000", penwidth=1.0)
DEFAULT_EDGE_STYLE = Style(color="#555555", fontcolor="#333333",
                           penwidth=1.0)


class Styler(Protocol):
    """Anything that can style DFG nodes and edges."""

    def node_style(self, activity: str) -> Style: ...

    def edge_style(self, edge: Edge) -> Style: ...


class PlainColoring:
    """No coloring: every node/edge gets the defaults."""

    def node_style(self, activity: str) -> Style:
        return DEFAULT_NODE_STYLE

    def edge_style(self, edge: Edge) -> Style:
        return DEFAULT_EDGE_STYLE


class StatisticsColoring:
    """Shade nodes by a statistic (default: relative duration).

    Values are normalized by the maximum across activities so the
    heaviest activity gets the darkest shade; the font flips to white
    on dark fills for readability.
    """

    def __init__(self, stats: IOStatistics,
                 metric: str = "relative_duration",
                 palette: list[str] = BLUES) -> None:
        self.stats = stats
        self.metric = metric
        self.palette = palette
        values = [stats.metric(a, metric) for a in stats.activities()]
        self._max = max(values) if values else 0.0

    def node_style(self, activity: str) -> Style:
        if activity in SENTINELS or activity not in self.stats:
            return DEFAULT_NODE_STYLE
        value = self.stats.metric(activity, self.metric)
        t = value / self._max if self._max > 0 else 0.0
        fill = shade(self.palette, t)
        return Style(fill=fill, color="#333333",
                     fontcolor=pick_font_color(fill), penwidth=1.0)

    def edge_style(self, edge: Edge) -> Style:
        return DEFAULT_EDGE_STYLE


class PartitionColoring:
    """Green/red coloring from two partition DFGs (Sec. IV-C, Fig. 9).

    Parameters
    ----------
    green_dfg, red_dfg:
        DFGs built from the two mutually exclusive event-log subsets.
    stats:
        Optional; accepted for signature compatibility with the paper's
        Fig. 6 listing (``PartitionColoring(green_dfg, red_dfg, stats)``)
        — the statistics themselves are rendered by the viewer, not the
        styler.
    """

    def __init__(self, green_dfg: DFG, red_dfg: DFG,
                 stats: IOStatistics | None = None) -> None:
        self.green_dfg = green_dfg
        self.red_dfg = red_dfg
        self.stats = stats
        self._green_nodes = green_dfg.exclusive_nodes(red_dfg)
        self._red_nodes = red_dfg.exclusive_nodes(green_dfg)
        self._green_edges = green_dfg.exclusive_edges(red_dfg)
        self._red_edges = red_dfg.exclusive_edges(green_dfg)

    def classify_node(self, activity: str) -> str:
        """``'green'`` / ``'red'`` / ``'shared'`` for reports."""
        if activity in self._green_nodes:
            return "green"
        if activity in self._red_nodes:
            return "red"
        return "shared"

    def classify_edge(self, edge: Edge) -> str:
        if edge in self._green_edges:
            return "green"
        if edge in self._red_edges:
            return "red"
        return "shared"

    def node_style(self, activity: str) -> Style:
        kind = self.classify_node(activity)
        if kind == "green":
            return Style(fill=GREEN_FILL, color=GREEN_EDGE,
                         fontcolor="#000000", penwidth=1.4)
        if kind == "red":
            return Style(fill=RED_FILL, color=RED_EDGE,
                         fontcolor="#000000", penwidth=1.4)
        return DEFAULT_NODE_STYLE

    def edge_style(self, edge: Edge) -> Style:
        kind = self.classify_edge(edge)
        if kind == "green":
            return Style(color=GREEN_EDGE, fontcolor=GREEN_EDGE,
                         penwidth=1.6)
        if kind == "red":
            return Style(color=RED_EDGE, fontcolor=RED_EDGE, penwidth=1.6)
        return DEFAULT_EDGE_STYLE

    def summary(self) -> dict[str, list]:
        """Exclusive/shared element listing for textual reports."""
        return {
            "green_nodes": sorted(self._green_nodes),
            "red_nodes": sorted(self._red_nodes),
            "green_edges": sorted(self._green_edges),
            "red_edges": sorted(self._red_edges),
            "shared_nodes": sorted(
                self.green_dfg.shared_nodes(self.red_dfg)),
            "shared_edges": sorted(
                self.green_dfg.shared_edges(self.red_dfg)),
        }

"""Quantitative DFG comparison beyond green/red coloring.

Partition coloring (Sec. IV-C) shows *which* elements are exclusive to
one run; it deliberately leaves shared elements uncolored. For shared
elements the interesting question is *how much they changed* — edge
counts, loads, rates. :class:`DFGDiff` computes exactly that, giving
the comparison workflow a numeric companion to the colored graph:

>>> diff = DFGDiff.between(green_log, red_log)      # doctest: +SKIP
>>> diff.edge_deltas()[:3]                          # doctest: +SKIP
>>> print(diff.report())                            # doctest: +SKIP

All deltas are reported green-minus-red, matching the coloring's
orientation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.activity import SENTINELS
from repro.core.dfg import DFG, Edge
from repro.core.statistics import IOStatistics

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.eventlog import EventLog


@dataclass(frozen=True, slots=True)
class EdgeDelta:
    """Observation-count change of one directly-follows relation."""

    edge: Edge
    green_count: int
    red_count: int

    @property
    def delta(self) -> int:
        return self.green_count - self.red_count

    @property
    def status(self) -> str:
        if self.red_count == 0:
            return "green-only"
        if self.green_count == 0:
            return "red-only"
        return "shared"


@dataclass(frozen=True, slots=True)
class ActivityDelta:
    """Per-activity statistic changes between the two sub-logs."""

    activity: str
    green_events: int
    red_events: int
    green_rd: float
    red_rd: float
    green_bytes: int
    red_bytes: int
    green_rate: float | None
    red_rate: float | None

    @property
    def event_delta(self) -> int:
        return self.green_events - self.red_events

    @property
    def rd_delta(self) -> float:
        return self.green_rd - self.red_rd

    @property
    def rate_ratio(self) -> float | None:
        """green/red process-data-rate ratio (None if either absent)."""
        if not self.green_rate or not self.red_rate:
            return None
        return self.green_rate / self.red_rate


class DFGDiff:
    """The structured difference of two event-log halves."""

    def __init__(self, green_dfg: DFG, red_dfg: DFG,
                 green_stats: IOStatistics | None = None,
                 red_stats: IOStatistics | None = None) -> None:
        self.green_dfg = green_dfg
        self.red_dfg = red_dfg
        self.green_stats = green_stats
        self.red_stats = red_stats

    @classmethod
    def between(cls, green_log: "EventLog",
                red_log: "EventLog") -> "DFGDiff":
        """Build the diff from two mapped event-logs (e.g. the output
        of :func:`~repro.core.partition.PartitionEL`)."""
        return cls(DFG(green_log), DFG(red_log),
                   IOStatistics(green_log), IOStatistics(red_log))

    # -- structure --------------------------------------------------------

    def edge_deltas(self) -> list[EdgeDelta]:
        """Every edge of either graph, largest |delta| first."""
        edges = set(self.green_dfg.edges()) | set(self.red_dfg.edges())
        deltas = [
            EdgeDelta(edge=edge,
                      green_count=self.green_dfg.edge_count(*edge),
                      red_count=self.red_dfg.edge_count(*edge))
            for edge in edges
        ]
        deltas.sort(key=lambda d: (-abs(d.delta), d.edge))
        return deltas

    def activity_deltas(self) -> list[ActivityDelta]:
        """Per-activity stat changes, largest |rd delta| first.

        Requires statistics (use :meth:`between`); raises otherwise.
        """
        if self.green_stats is None or self.red_stats is None:
            raise ValueError("DFGDiff built without statistics; "
                             "use DFGDiff.between(...)")
        activities = (self.green_dfg.activities()
                      | self.red_dfg.activities()) - SENTINELS

        def stat(stats: IOStatistics, activity: str):
            return stats.get(activity)

        deltas = []
        for activity in activities:
            green = stat(self.green_stats, activity)
            red = stat(self.red_stats, activity)
            deltas.append(ActivityDelta(
                activity=activity,
                green_events=green.event_count if green else 0,
                red_events=red.event_count if red else 0,
                green_rd=green.relative_duration if green else 0.0,
                red_rd=red.relative_duration if red else 0.0,
                green_bytes=green.total_bytes if green else 0,
                red_bytes=red.total_bytes if red else 0,
                green_rate=green.process_data_rate if green else None,
                red_rate=red.process_data_rate if red else None,
            ))
        deltas.sort(key=lambda d: (-abs(d.rd_delta), d.activity))
        return deltas

    def added_edges(self) -> list[Edge]:
        """Green-exclusive edges, sorted — for ``diff_since(baseline)``
        diffs (green = now) these are exactly the directly-follows
        relations that appeared since the baseline snapshot.
        """
        return sorted(set(self.green_dfg.edges())
                      - set(self.red_dfg.edges()))

    def vanished_edges(self) -> list[Edge]:
        """Red-exclusive edges, sorted — relations present in the
        baseline but gone from the current graph (live, only a case's
        closing ``(a, ■)`` edge can vanish: it moves when the case
        grows)."""
        return sorted(set(self.red_dfg.edges())
                      - set(self.green_dfg.edges()))

    # -- scalar summaries ---------------------------------------------------------

    def jaccard_nodes(self) -> float:
        """Node-set similarity in [0, 1] (1 = identical activity sets)."""
        green = self.green_dfg.activities()
        red = self.red_dfg.activities()
        union = green | red
        if not union:
            return 1.0
        return len(green & red) / len(union)

    def jaccard_edges(self) -> float:
        """Edge-set similarity in [0, 1]."""
        green = set(self.green_dfg.edges())
        red = set(self.red_dfg.edges())
        union = green | red
        if not union:
            return 1.0
        return len(green & red) / len(union)

    def total_count_delta(self) -> int:
        """Difference in total directly-follows observations."""
        return (self.green_dfg.total_observations()
                - self.red_dfg.total_observations())

    # -- report ---------------------------------------------------------------------

    def report(self, *, top: int = 10) -> str:
        """Human-readable diff summary."""
        lines = ["DFG DIFF (green - red)"]
        lines.append(
            f"  node similarity (Jaccard): {self.jaccard_nodes():.2f}; "
            f"edge similarity: {self.jaccard_edges():.2f}; "
            f"observation delta: {self.total_count_delta():+d}")
        lines.append(f"  top edge deltas:")
        for delta in self.edge_deltas()[:top]:
            a1, a2 = delta.edge
            display = (f"{a1} -> {a2}").replace("\n", " ")
            lines.append(
                f"    {delta.delta:+7d}  [{delta.status:>10s}] {display} "
                f"({delta.green_count} vs {delta.red_count})")
        if self.green_stats is not None and self.red_stats is not None:
            lines.append("  top activity load deltas:")
            for delta in self.activity_deltas()[:top]:
                rate = (f", rate x{delta.rate_ratio:.2f}"
                        if delta.rate_ratio else "")
                lines.append(
                    f"    {delta.rd_delta:+.3f}  "
                    f"{delta.activity.replace(chr(10), ' ')} "
                    f"(events {delta.green_events} vs "
                    f"{delta.red_events}{rate})")
        return "\n".join(lines) + "\n"

"""Activity traces and activity-logs (Eq. 5 and the multiset B(A_f*)).

For a mapping f and a case c, the *trace* is the sequence of activities
of c's mapped events in start-time order: ``σ_f(c) = ⟨f(e1), ...⟩``.
The *activity-log* ``L_f(C)`` is the multiset of traces over all cases —
cases with identical traces collapse into one element with a
multiplicity, exactly like the paper's ``L_f̂(Ca) = {⟨•, read:/usr/lib,
...⟩³}`` where all three ``ls`` ranks produced the same trace.

Following the paper, every trace is wrapped in an artificial start
(``●``) and end (``■``) activity before DFG construction, so the DFG
shows where cases begin and end.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator

import numpy as np

from repro._util.multiset import Bag
from repro.core.frame import MISSING

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.eventlog import EventLog

#: The artificial start activity (the paper's ``•`` bullet, rendered as
#: a filled circle in its figures).
START_ACTIVITY = "●"
#: The artificial end activity (the paper's ``■``).
END_ACTIVITY = "■"

#: Both sentinels, for membership tests.
SENTINELS = frozenset({START_ACTIVITY, END_ACTIVITY})

Trace = tuple[str, ...]


class ActivityLog:
    """The multiset of activity traces ``L_f(C) ∈ B(A_f*)``.

    Construct via :meth:`from_event_log` (requires an applied mapping)
    or directly from trace tuples (useful in tests and for synthetic
    logs).
    """

    def __init__(self, traces: Bag[Trace] | Iterable[Trace],
                 *, case_traces: dict[str, Trace] | None = None) -> None:
        self._traces: Bag[Trace] = (
            traces if isinstance(traces, Bag) else Bag(traces))
        #: Per-case trace (case_id -> trace), kept when built from an
        #: event-log; lets callers relate variants back to cases.
        self.case_traces = case_traces or {}

    @classmethod
    def from_event_log(cls, event_log: "EventLog",
                       *, add_endpoints: bool = True) -> "ActivityLog":
        """Build L_f(C) from an event-log with an applied mapping.

        Unmapped events (f is partial) are skipped. A case in which no
        event maps still contributes the empty trace — wrapped as
        ``⟨●, ■⟩`` when ``add_endpoints`` — so the DFG records that the
        case ran without touching any mapped activity.
        """
        event_log._require_mapping()
        frame = event_log.frame
        pool = frame.pools.activities
        case_pool = frame.pools.cases
        activity_col = frame.column("activity")
        case_traces: dict[str, Trace] = {}
        traces: list[Trace] = []
        for case_code, rows in frame.case_slices():
            codes = activity_col[rows]
            codes = codes[codes != MISSING]
            body = tuple(pool.decode(int(c)) for c in codes)
            if add_endpoints:
                trace: Trace = (START_ACTIVITY, *body, END_ACTIVITY)
            else:
                trace = body
            traces.append(trace)
            case_traces[case_pool.decode(int(case_code))] = trace
        return cls(Bag(traces), case_traces=case_traces)

    # -- multiset access ---------------------------------------------------

    @property
    def traces(self) -> Bag[Trace]:
        """The underlying multiset of traces."""
        return self._traces

    def variants(self) -> list[tuple[Trace, int]]:
        """Distinct traces with multiplicities, most frequent first.

        The paper's ``{⟨a,a,b⟩², ⟨a,c⟩}`` notation, as data.
        """
        return sorted(self._traces.items(),
                      key=lambda tm: (-tm[1], tm[0]))

    def n_traces(self) -> int:
        """Total number of traces counting multiplicity (= #cases)."""
        return self._traces.total()

    def n_variants(self) -> int:
        """Number of *distinct* traces."""
        return len(self._traces)

    def activities(self) -> set[str]:
        """All activities occurring in any trace, excluding sentinels."""
        result: set[str] = set()
        for trace, _ in self._traces.items():
            result.update(trace)
        return result - SENTINELS

    # -- directly-follows ----------------------------------------------------

    def directly_follows_counts(self) -> dict[tuple[str, str], int]:
        """Count every directly-follows pair across the multiset.

        The single O(n) pass of Sec. V: one iteration through the
        activity-log; consecutive pairs within each distinct trace are
        weighted by the trace's multiplicity.
        """
        counts: dict[tuple[str, str], int] = {}
        for trace, multiplicity in self._traces.items():
            for a1, a2 in zip(trace, trace[1:]):
                key = (a1, a2)
                counts[key] = counts.get(key, 0) + multiplicity
        return counts

    def activity_frequencies(self) -> dict[str, int]:
        """Occurrences of each activity across all traces (with
        multiplicity), sentinels included."""
        freq: dict[str, int] = {}
        for trace, multiplicity in self._traces.items():
            for activity in trace:
                freq[activity] = freq.get(activity, 0) + multiplicity
        return freq

    # -- algebra ------------------------------------------------------------------

    def union(self, other: "ActivityLog") -> "ActivityLog":
        """Multiset union: ``L(Ca) ⊎ L(Cb)`` (the paper's L(Cx))."""
        merged_cases = dict(self.case_traces)
        merged_cases.update(other.case_traces)
        return ActivityLog(self._traces + other._traces,
                           case_traces=merged_cases)

    def __add__(self, other: "ActivityLog") -> "ActivityLog":
        return self.union(other)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ActivityLog):
            return NotImplemented
        return self._traces == other._traces

    def __hash__(self) -> int:
        return hash(self._traces)

    def __iter__(self) -> Iterator[Trace]:
        return iter(self._traces)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ActivityLog({self.n_traces()} traces, "
                f"{self.n_variants()} variants, "
                f"{len(self.activities())} activities)")

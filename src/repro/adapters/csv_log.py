"""Deprecated location of the CSV event-log adapter.

The adapter was promoted into the trace-source API as
:mod:`repro.sources.csv_log` (``open_source("csv:events.csv")``); this
module re-exports its names so existing imports keep working.
"""

from __future__ import annotations

import warnings

from repro.sources.csv_log import (  # noqa: F401 - re-exports
    CSV_COLUMNS,
    CsvLogSource,
    read_csv_log,
    write_csv_log,
)

warnings.warn(
    "repro.adapters.csv_log moved to repro.sources.csv_log "
    "(see also open_source('csv:...'))",
    DeprecationWarning, stacklevel=2)

__all__ = ["CSV_COLUMNS", "CsvLogSource", "read_csv_log",
           "write_csv_log"]

"""Alternative event-log inputs (beyond strace).

Sec. II of the paper: "The methodology by itself does not depend on
strace and can be applied over data instrumented by one of the other
existing tools." These adapters make that claim concrete: any tool that
can dump events with the Eq. 1 attributes can feed the pipeline.

- :mod:`repro.adapters.csv_log` — delimited text with the columns
  ``cid,host,rid,pid,call,start,dur,fp,size`` (the lingua franca every
  tracing tool can export to).
"""

from repro.adapters.csv_log import (
    CSV_COLUMNS,
    read_csv_log,
    write_csv_log,
)

__all__ = ["CSV_COLUMNS", "read_csv_log", "write_csv_log"]

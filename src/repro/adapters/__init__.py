"""Deprecated: alternative event-log inputs moved to
:mod:`repro.sources`.

Sec. II of the paper: "The methodology by itself does not depend on
strace and can be applied over data instrumented by one of the other
existing tools." That claim is now carried by the
:class:`~repro.sources.TraceSource` API — the CSV adapter lives at
:mod:`repro.sources.csv_log` and is reachable from every entry point
via ``open_source("csv:events.csv")``. This package re-exports the
old names for compatibility and warns on use.
"""

from __future__ import annotations

import warnings

_MOVED = {"CSV_COLUMNS", "read_csv_log", "write_csv_log"}

__all__ = sorted(_MOVED)


def __getattr__(name: str):
    if name in _MOVED:
        warnings.warn(
            f"repro.adapters.{name} moved to repro.sources "
            f"(see also open_source('csv:...'))",
            DeprecationWarning, stacklevel=2)
        import repro.sources.csv_log as _csv_log

        return getattr(_csv_log, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")

"""Merging of ``<unfinished ...>`` / ``<... resumed>`` record pairs.

When a traced process blocks inside a syscall while another traced
process produces records, strace splits the blocked call across two
lines (Fig. 2c of the paper)::

    77423  16:56:40.452431 read(3</usr/lib/...>, <unfinished ...>
    ...
    77423  16:56:40.452660 <... read resumed> ..., 405) = 404 <0.000223>

Per Sec. III: "The unfinished and the resumed records are matched using
the pid, and merged into a single record" — the merged record keeps the
*start* timestamp of the unfinished half and the *duration* and return
value from the resumed half. A single pid can have at most one call in
flight (one kernel thread = one syscall at a time), so a per-pid slot is
sufficient; we additionally check the syscall names agree, which guards
against trace corruption.

Interrupted calls — those whose return clause carries ``ERESTARTSYS`` —
are dropped, again per Sec. III ("we ignore these calls"). Signal
delivery (``--- SIGx ---``) and exit (``+++ exited +++``) records are
skipped here; the reader records their counts for diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro._util.errors import TraceParseError
from repro.strace.parser import ParsedRecord, parse_body
from repro.strace.tokenizer import (
    RecordKind,
    Token,
    resumed_call_name,
    unfinished_call_name,
)

#: errno names treated as "interrupted; strace will restart" — the paper
#: names ERESTARTSYS; the kernel family has four members.
RESTART_ERRNOS = frozenset({
    "ERESTARTSYS",
    "ERESTARTNOINTR",
    "ERESTARTNOHAND",
    "ERESTART_RESTARTBLOCK",
})


@dataclass
class MergeStats:
    """Bookkeeping from a merge pass (exposed for tests/diagnostics)."""

    merged_pairs: int = 0
    dropped_restarts: int = 0
    skipped_signals: int = 0
    skipped_exits: int = 0
    orphan_unfinished: int = 0
    orphan_resumed: int = 0
    #: Undecodable bytes replaced with U+FFFD while reading the file
    #: (filled in by the reader; only non-zero under ``strict=False``).
    decode_replacements: int = 0


def _is_restart(record: ParsedRecord) -> bool:
    return record.errno in RESTART_ERRNOS


class IncrementalMerger:
    """Stateful unfinished/resumed merger, consumable in arbitrary slices.

    The live follower (:mod:`repro.live`) sees a trace file a few lines
    at a time, so the merge state — the per-pid in-flight slot — must
    survive between feeds. This class carries it, and additionally
    solves an ordering problem batch merging hides: a merged record
    sits at its *unfinished* (start) position, which precedes records
    already produced from lines between the two halves. Emitting those
    intermediate records eagerly would put them ahead of a record that
    still belongs before them.

    The merger therefore *seals* records with a watermark: a completed
    record leaves the internal buffer only once its start timestamp is
    at or below every in-flight unfinished call's start — at that point
    no future merge can sort ahead of it (strace writes plain lines in
    timestamp order; any inversion would have forced a split, which is
    represented in the pending map). Sealed output across feeds is
    exactly the sorted record list batch merging produces: ties on
    start timestamp break by completion order, matching the stable
    sort of :func:`merge_unfinished` — which is now a thin wrapper
    around one feed + finish.

    Parameters mirror :func:`merge_unfinished`; :attr:`stats` is
    updated in place as tokens arrive.
    """

    __slots__ = ("path", "strict", "stats", "_pending", "_buffer", "_seq")

    def __init__(self, *, path: str | None = None,
                 strict: bool = True) -> None:
        self.path = path
        self.strict = strict
        self.stats = MergeStats()
        # pid -> (token, call name) for the in-flight unfinished record.
        self._pending: dict[int, tuple[Token, str]] = {}
        # Completed but unsealed records: (start_us, completion seq,
        # record). The seq is the batch completion index, so sealing in
        # (start, seq) order reproduces the batch stable sort exactly.
        self._buffer: list[tuple[int, int, ParsedRecord]] = []
        self._seq = 0

    # -- introspection (live status displays) -----------------------------

    @property
    def n_pending(self) -> int:
        """In-flight unfinished calls awaiting their resumed half."""
        return len(self._pending)

    @property
    def n_buffered(self) -> int:
        """Completed records still held behind the seal watermark."""
        return len(self._buffer)

    @property
    def watermark_age_us(self) -> int:
        """How far (in trace time, µs) sealing lags behind parsing.

        Sealing starvation: an in-flight ``<unfinished ...>`` call
        holds every later completed record of its file behind the seal
        watermark until its resumed half arrives (or EOF orphans it).
        The age is the span between the newest buffered record's start
        and the watermark — ``0`` when nothing is held back. Computed
        from the pending/buffer state alone, so it is a pure function
        of the bytes consumed so far and survives checkpoint
        round-trips unchanged. Surfaced per file by
        :meth:`~repro.live.engine.LiveIngest.watermark_ages` for the
        watch status line and the ``watermark_age`` alerting rule.
        """
        if not self._pending or not self._buffer:
            return 0
        horizon = min(token.start_us
                      for token, _ in self._pending.values())
        return max(start for start, _, _ in self._buffer) - horizon

    def pending_tokens(self) -> list[Token]:
        """The unfinished halves currently in flight (for checkpoints)."""
        return [token for token, _ in self._pending.values()]

    def buffered_records(self) -> list[tuple[int, ParsedRecord]]:
        """``(completion_seq, record)`` of unsealed records (for
        checkpoints), in completion order."""
        return sorted(((seq, record)
                       for _, seq, record in self._buffer))

    # -- checkpoint restore ------------------------------------------------

    def restore(self, *, pending: Iterable[Token],
                buffered: Iterable[tuple[int, ParsedRecord]],
                next_seq: int, stats: MergeStats) -> None:
        """Reload carry-over state saved by a live checkpoint."""
        self._pending = {token.pid: (token, unfinished_call_name(token.body))
                         for token in pending}
        self._buffer = [(record.start_us, seq, record)
                        for seq, record in buffered]
        self._seq = next_seq
        self.stats = stats

    @property
    def next_seq(self) -> int:
        """The completion index the next record will get."""
        return self._seq

    # -- the merge ---------------------------------------------------------

    def feed(self, tokens: Iterable[Token]) -> list[ParsedRecord]:
        """Consume tokens and return the records sealed by them.

        Sealed records are final: their position in the overall record
        sequence can no longer change, so callers may fold them into
        downstream incremental structures immediately.
        """
        for token in tokens:
            self._consume(token)
        return self._drain()

    def finish(self) -> list[ParsedRecord]:
        """End of input: orphan in-flight calls, seal everything left."""
        self.stats.orphan_unfinished += len(self._pending)
        self._pending.clear()
        return self._drain()

    def _consume(self, token: Token) -> None:
        stats = self.stats
        if token.kind is RecordKind.SIGNAL:
            stats.skipped_signals += 1
            return
        if token.kind is RecordKind.EXIT:
            stats.skipped_exits += 1
            # An exit while a call is pending orphans it.
            if token.pid in self._pending:
                del self._pending[token.pid]
                stats.orphan_unfinished += 1
            return
        if token.kind is RecordKind.UNFINISHED:
            if token.pid in self._pending:
                raise TraceParseError(
                    f"pid {token.pid} has two in-flight unfinished calls",
                    path=self.path)
            self._pending[token.pid] = (
                token, unfinished_call_name(token.body))
            return
        if token.kind is RecordKind.RESUMED:
            entry = self._pending.pop(token.pid, None)
            call = resumed_call_name(token.body)
            if entry is None:
                if self.strict:
                    raise TraceParseError(
                        f"resumed {call!r} for pid {token.pid} without a "
                        f"matching unfinished record", path=self.path)
                stats.orphan_resumed += 1
                return
            head_token, head_call = entry
            if head_call != call:
                raise TraceParseError(
                    f"pid {token.pid}: unfinished {head_call!r} resumed as "
                    f"{call!r}", path=self.path)
            body = _join_bodies(head_token.body, token.body, call)
            record = parse_body(head_token.pid, head_token.start_us, body,
                                path=self.path)
            if _is_restart(record):
                stats.dropped_restarts += 1
            else:
                stats.merged_pairs += 1
                self._complete(record)
            return
        # Plain complete syscall record.
        record = parse_body(token.pid, token.start_us, token.body,
                            path=self.path)
        if _is_restart(record):
            stats.dropped_restarts += 1
        else:
            self._complete(record)

    def _complete(self, record: ParsedRecord) -> None:
        self._buffer.append((record.start_us, self._seq, record))
        self._seq += 1

    def _drain(self) -> list[ParsedRecord]:
        if not self._buffer:
            return []
        if self._pending:
            horizon = min(token.start_us
                          for token, _ in self._pending.values())
            sealed = [entry for entry in self._buffer
                      if entry[0] <= horizon]
            if not sealed:
                return []
            self._buffer = [entry for entry in self._buffer
                            if entry[0] > horizon]
        else:
            sealed = self._buffer
            self._buffer = []
        sealed.sort()
        return [record for _, _, record in sealed]


def merge_unfinished(
    tokens: Iterable[Token],
    *,
    path: str | None = None,
    strict: bool = True,
) -> tuple[list[ParsedRecord], MergeStats]:
    """Merge unfinished/resumed pairs and parse all syscall records.

    Parameters
    ----------
    tokens:
        Tokenized lines of *one* trace file, in file order. Any
        iterable works — in particular a lazy
        :class:`~repro.ingest.streaming.TokenStream`, so the full token
        list of a file never needs to exist in memory.
    path:
        For error messages.
    strict:
        If True, orphan resumed records (no matching unfinished) raise
        :class:`TraceParseError`; if False they are counted and skipped.
        Orphan unfinished records at EOF (process killed mid-call) are
        always skipped-and-counted — strace genuinely produces those.

    Returns
    -------
    (records, stats):
        Parsed records in start-timestamp order of their *initiating*
        line, and merge statistics.
    """
    merger = IncrementalMerger(path=path, strict=strict)
    records = merger.feed(tokens)
    records += merger.finish()
    # Stable sort by start time: sealed output is already sorted for
    # timestamp-ordered input; this restores the documented order for
    # token lists assembled out of file order (tests, synthetic input).
    records.sort(key=lambda r: r.start_us)
    return records, merger.stats


def _join_bodies(unfinished_body: str, resumed_body: str, call: str) -> str:
    """Splice the two halves back into one parseable syscall body.

    ``read(3</x>, <unfinished ...>`` + ``<... read resumed> ..., 405) =
    404 <0.000223>`` → ``read(3</x>,  ..., 405) = 404 <0.000223>``.
    """
    head = unfinished_body[: -len("<unfinished ...>")]
    marker = "resumed>"
    idx = resumed_body.index(marker)
    tail = resumed_body[idx + len(marker):]
    return head + tail.lstrip(" ") if head.endswith(" ") else head + tail

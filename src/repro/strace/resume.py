"""Merging of ``<unfinished ...>`` / ``<... resumed>`` record pairs.

When a traced process blocks inside a syscall while another traced
process produces records, strace splits the blocked call across two
lines (Fig. 2c of the paper)::

    77423  16:56:40.452431 read(3</usr/lib/...>, <unfinished ...>
    ...
    77423  16:56:40.452660 <... read resumed> ..., 405) = 404 <0.000223>

Per Sec. III: "The unfinished and the resumed records are matched using
the pid, and merged into a single record" — the merged record keeps the
*start* timestamp of the unfinished half and the *duration* and return
value from the resumed half. A single pid can have at most one call in
flight (one kernel thread = one syscall at a time), so a per-pid slot is
sufficient; we additionally check the syscall names agree, which guards
against trace corruption.

Interrupted calls — those whose return clause carries ``ERESTARTSYS`` —
are dropped, again per Sec. III ("we ignore these calls"). Signal
delivery (``--- SIGx ---``) and exit (``+++ exited +++``) records are
skipped here; the reader records their counts for diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro._util.errors import TraceParseError
from repro.strace.parser import ParsedRecord, parse_body
from repro.strace.tokenizer import (
    RecordKind,
    Token,
    resumed_call_name,
    unfinished_call_name,
)

#: errno names treated as "interrupted; strace will restart" — the paper
#: names ERESTARTSYS; the kernel family has four members.
RESTART_ERRNOS = frozenset({
    "ERESTARTSYS",
    "ERESTARTNOINTR",
    "ERESTARTNOHAND",
    "ERESTART_RESTARTBLOCK",
})


@dataclass
class MergeStats:
    """Bookkeeping from a merge pass (exposed for tests/diagnostics)."""

    merged_pairs: int = 0
    dropped_restarts: int = 0
    skipped_signals: int = 0
    skipped_exits: int = 0
    orphan_unfinished: int = 0
    orphan_resumed: int = 0
    #: Undecodable bytes replaced with U+FFFD while reading the file
    #: (filled in by the reader; only non-zero under ``strict=False``).
    decode_replacements: int = 0


def _is_restart(record: ParsedRecord) -> bool:
    return record.errno in RESTART_ERRNOS


def merge_unfinished(
    tokens: Iterable[Token],
    *,
    path: str | None = None,
    strict: bool = True,
) -> tuple[list[ParsedRecord], MergeStats]:
    """Merge unfinished/resumed pairs and parse all syscall records.

    Parameters
    ----------
    tokens:
        Tokenized lines of *one* trace file, in file order. Any
        iterable works — in particular a lazy
        :class:`~repro.ingest.streaming.TokenStream`, so the full token
        list of a file never needs to exist in memory.
    path:
        For error messages.
    strict:
        If True, orphan resumed records (no matching unfinished) raise
        :class:`TraceParseError`; if False they are counted and skipped.
        Orphan unfinished records at EOF (process killed mid-call) are
        always skipped-and-counted — strace genuinely produces those.

    Returns
    -------
    (records, stats):
        Parsed records in start-timestamp order of their *initiating*
        line, and merge statistics.
    """
    records: list[ParsedRecord] = []
    stats = MergeStats()
    # pid -> (token, call name) for the in-flight unfinished record.
    pending: dict[int, tuple[Token, str]] = {}

    for token in tokens:
        if token.kind is RecordKind.SIGNAL:
            stats.skipped_signals += 1
            continue
        if token.kind is RecordKind.EXIT:
            stats.skipped_exits += 1
            # An exit while a call is pending orphans it.
            if token.pid in pending:
                del pending[token.pid]
                stats.orphan_unfinished += 1
            continue
        if token.kind is RecordKind.UNFINISHED:
            if token.pid in pending:
                raise TraceParseError(
                    f"pid {token.pid} has two in-flight unfinished calls",
                    path=path)
            pending[token.pid] = (token, unfinished_call_name(token.body))
            continue
        if token.kind is RecordKind.RESUMED:
            entry = pending.pop(token.pid, None)
            call = resumed_call_name(token.body)
            if entry is None:
                if strict:
                    raise TraceParseError(
                        f"resumed {call!r} for pid {token.pid} without a "
                        f"matching unfinished record", path=path)
                stats.orphan_resumed += 1
                continue
            head_token, head_call = entry
            if head_call != call:
                raise TraceParseError(
                    f"pid {token.pid}: unfinished {head_call!r} resumed as "
                    f"{call!r}", path=path)
            body = _join_bodies(head_token.body, token.body, call)
            record = parse_body(head_token.pid, head_token.start_us, body,
                                path=path)
            if _is_restart(record):
                stats.dropped_restarts += 1
            else:
                stats.merged_pairs += 1
                records.append(record)
            continue
        # Plain complete syscall record.
        record = parse_body(token.pid, token.start_us, token.body, path=path)
        if _is_restart(record):
            stats.dropped_restarts += 1
        else:
            records.append(record)

    stats.orphan_unfinished += len(pending)
    # Stable sort by start time: merged records were appended at their
    # *resumed* position but must sit at their start position, matching
    # the paper's case definition (events ordered by start timestamp).
    records.sort(key=lambda r: r.start_us)
    return records, stats


def _join_bodies(unfinished_body: str, resumed_body: str, call: str) -> str:
    """Splice the two halves back into one parseable syscall body.

    ``read(3</x>, <unfinished ...>`` + ``<... read resumed> ..., 405) =
    404 <0.000223>`` → ``read(3</x>,  ..., 405) = 404 <0.000223>``.
    """
    head = unfinished_body[: -len("<unfinished ...>")]
    marker = "resumed>"
    idx = resumed_body.index(marker)
    tail = resumed_body[idx + len(marker):]
    return head + tail.lstrip(" ") if head.endswith(" ") else head + tail

"""Argument-level parsing of strace syscall records.

Turns a classified syscall body (see :mod:`repro.strace.tokenizer`) into
a :class:`ParsedRecord` carrying the event attributes of Sec. III:

- **call** — the syscall name;
- **fp** — the accessed file path, recovered from the ``-y`` descriptor
  annotation (``3</etc/passwd>``) on the appropriate argument, or from
  the annotated *return value* for ``open``/``openat`` (strace annotates
  the descriptor it returns), or from a quoted path argument as a
  fallback when ``-y`` was not used;
- **size** — the transfer size, i.e. the return value, "parsed only for
  the variants of read and write system calls" (Sec. III item 6);
- **dur_us** — the ``-T`` duration;
- plus the raw return value, errno name, and the requested byte count
  (the last integer argument of transfer calls, which the paper notes
  "may differ from the actual number of bytes transferred").

The argument scanner is quote- and bracket-aware: strace argument lists
contain C strings with escapes (``"total 40\\n"``, possibly abbreviated
as ``"total 4"...``), struct/array literals (``{st_mode=...}``,
``[{iov_base=...}]``) and the ``fd</path>`` annotations themselves, so a
naive ``split(',')`` is wrong. A character scan tracking quote state and
``([{<`` nesting finds top-level commas and the closing parenthesis.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro._util.errors import TraceParseError
from repro._util.timefmt import parse_duration
from repro.strace.syscalls import PathSource, spec_for
from repro.strace.tokenizer import RecordKind, Token, tokenize_line

_OPENERS = {"(": ")", "[": "]", "{": "}", "<": ">"}
_CLOSERS = {v: k for k, v in _OPENERS.items()}

_FD_ANNOT_RE = re.compile(r"^(\d+)<(.*)>$", re.DOTALL)
_RET_RE = re.compile(
    r"""^=\s+
        (?P<val>-?\d+|\?|0x[0-9a-fA-F]+)          # numeric / ? / hex
        (?:<(?P<retpath>[^>]*)>)?                  # -y annotation on fds
        (?:\s+(?P<errno>[A-Z][A-Z0-9_]+)\s+\([^)]*\))?  # ENOENT (No such..)
        (?:\s+\((?P<flagdesc>[^)]*)\))?            # e.g. (Timeout)
        \s*
        (?:(?P<dur><\d+\.\d{6}>))?                 # -T duration
        \s*$""",
    re.VERBOSE,
)


@dataclass(frozen=True, slots=True)
class ParsedRecord:
    """One fully parsed syscall record (possibly a merged resumed pair).

    ``fp`` is ``None`` when the call carries no path (or ``-y`` was off
    and no quoted path argument exists); ``size`` is ``None`` for calls
    that are not read/write variants or that failed.
    """

    pid: int
    start_us: int
    call: str
    fp: str | None
    size: int | None
    dur_us: int | None
    retval: int | None
    errno: str | None
    requested: int | None
    args: tuple[str, ...]

    @property
    def ok(self) -> bool:
        """True iff the call did not return an error."""
        return self.errno is None


def split_args(text: str, *, path: str | None = None,
               lineno: int | None = None) -> tuple[list[str], int]:
    """Split ``text`` (starting right after the opening ``(``) into
    top-level arguments.

    Returns ``(args, end_index)`` where ``end_index`` points at the
    closing ``)`` in ``text``. Quote-aware (double quotes, backslash
    escapes) and bracket-aware (``()[]{}<>``).
    """
    args: list[str] = []
    depth = 0
    in_string = False
    escaped = False
    current_start = 0
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if in_string:
            if escaped:
                escaped = False
            elif ch == "\\":
                escaped = True
            elif ch == '"':
                in_string = False
            i += 1
            continue
        if ch == '"':
            in_string = True
            i += 1
            continue
        if ch in _OPENERS:
            depth += 1
            i += 1
            continue
        if ch in _CLOSERS:
            if ch == ")" and depth == 0:
                arg = text[current_start:i].strip()
                if arg:
                    args.append(arg)
                return args, i
            depth -= 1
            if depth < 0:
                raise TraceParseError(
                    f"unbalanced {ch!r} in argument list: {text[:80]!r}",
                    path=path, lineno=lineno)
            i += 1
            continue
        if ch == "," and depth == 0:
            args.append(text[current_start:i].strip())
            current_start = i + 1
        i += 1
    raise TraceParseError(
        f"unterminated argument list: {text[:80]!r}",
        path=path, lineno=lineno)


def _parse_retval(text: str) -> tuple[int | None, str | None, str | None,
                                      int | None]:
    """Parse the ``= RET ... <dur>`` tail.

    Returns ``(retval, ret_path, errno, dur_us)``.
    """
    match = _RET_RE.match(text.strip())
    if match is None:
        raise TraceParseError(f"unparseable return clause: {text[:80]!r}")
    raw = match.group("val")
    if raw == "?":
        retval: int | None = None
    elif raw.startswith("0x"):
        retval = int(raw, 16)
    else:
        retval = int(raw)
    ret_path = match.group("retpath")
    errno = match.group("errno")
    dur_text = match.group("dur")
    dur_us = parse_duration(dur_text) if dur_text else None
    return retval, ret_path, errno, dur_us


def _strip_quotes(arg: str) -> str | None:
    """Unquote a C-string argument; None if it is not a quoted string.

    Handles strace's abbreviation suffix (``"abc"...``). Escapes are
    resolved for the common cases (\\n, \\t, \\", \\\\ and octal).
    """
    if not arg.startswith('"'):
        return None
    end = arg.rfind('"')
    if end == 0:
        return None
    inner = arg[1:end]
    return (
        inner.replace("\\\\", "\x00")
        .replace('\\"', '"')
        .replace("\\n", "\n")
        .replace("\\t", "\t")
        .replace("\x00", "\\")
    )


def _extract_fp(call: str, args: tuple[str, ...],
                ret_path: str | None) -> str | None:
    """Recover the ``fp`` attribute per the syscall's :class:`PathSource`."""
    spec = spec_for(call)
    source = spec.path_source
    if source is PathSource.NONE:
        return None
    if source is PathSource.RET_FD:
        if ret_path:
            return ret_path
        # Fallback without -y: first quoted argument is the path
        # (openat's arg 0 is AT_FDCWD / a dirfd).
        for arg in args:
            quoted = _strip_quotes(arg)
            if quoted is not None:
                return quoted
        return None
    if source is PathSource.PATH_ARG:
        if spec.path_arg_index < len(args):
            return _strip_quotes(args[spec.path_arg_index])
        return None
    # FD_ARG
    if spec.path_arg_index < len(args):
        match = _FD_ANNOT_RE.match(args[spec.path_arg_index])
        if match:
            return match.group(2)
    return None


def _extract_requested(call: str, args: tuple[str, ...]) -> int | None:
    """Requested byte count from the count argument of a transfer call
    (``read(fd, buf, 832)`` → 832; ``pread64(fd, buf, 832, off)`` →
    832, not the offset). Vectored variants carry no flat count."""
    spec = spec_for(call)
    if spec.requested_arg_index is None:
        return None
    if spec.requested_arg_index < len(args):
        arg = args[spec.requested_arg_index]
        if re.fullmatch(r"\d+", arg):
            return int(arg)
    return None


def parse_body(pid: int, start_us: int, body: str, *,
               path: str | None = None,
               lineno: int | None = None) -> ParsedRecord:
    """Parse a complete syscall body (``name(args) = ret <dur>``)."""
    match = re.match(r"^([a-zA-Z_][a-zA-Z0-9_]*)\(", body)
    if match is None:
        raise TraceParseError(
            f"not a syscall body: {body[:80]!r}", path=path, lineno=lineno)
    call = match.group(1)
    rest = body[match.end():]
    arg_list, close_idx = split_args(rest, path=path, lineno=lineno)
    tail = rest[close_idx + 1:].strip()
    try:
        retval, ret_path, errno, dur_us = _parse_retval(tail)
    except TraceParseError as exc:
        raise TraceParseError(
            str(exc), path=path, lineno=lineno, line=body) from exc
    args = tuple(arg_list)
    spec = spec_for(call)
    size = None
    if spec.returns_size and retval is not None and retval >= 0 \
            and errno is None:
        size = retval
    return ParsedRecord(
        pid=pid,
        start_us=start_us,
        call=call,
        fp=_extract_fp(call, args, ret_path),
        size=size,
        dur_us=dur_us,
        retval=retval,
        errno=errno,
        requested=_extract_requested(call, args),
        args=args,
    )


def parse_line(line: str, *, path: str | None = None,
               lineno: int | None = None) -> ParsedRecord | None:
    """Tokenize + parse one line; returns ``None`` for non-syscall records.

    Convenience for tests and one-off use. Production reading goes
    through :mod:`repro.strace.reader`, which also performs
    unfinished/resumed merging across lines.
    """
    token = tokenize_line(line, path=path, lineno=lineno)
    if token.kind is not RecordKind.SYSCALL:
        return None
    return parse_body(token.pid, token.start_us, token.body,
                      path=path, lineno=lineno)

"""Line-level tokenizer for strace output.

A physical line of strace output (with ``-f -tt -T -y``, written to a
file via ``-o`` so the pid column is always present) has the shape::

    <pid>  <HH:MM:SS.ffffff> <body>

where *body* is one of five record kinds:

==============  ====================================================
kind            example body
==============  ====================================================
SYSCALL         ``read(3</etc/passwd>, ..., 4096) = 1612 <0.000037>``
UNFINISHED      ``read(3</usr/lib/libc.so.6>, <unfinished ...>``
RESUMED         ``<... read resumed> ..., 405) = 404 <0.000223>``
SIGNAL          ``--- SIGCHLD {si_signo=SIGCHLD, ...} ---``
EXIT            ``+++ exited with 0 +++`` / ``+++ killed by SIGKILL +++``
==============  ====================================================

The tokenizer only splits and classifies; argument-level parsing happens
in :mod:`repro.strace.parser`. Keeping the stages separate lets the
unfinished/resumed merger (:mod:`repro.strace.resume`) operate on
classified-but-unparsed bodies, mirroring how the paper describes the
merge as a pre-processing step on records (Sec. III).
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass

from repro._util.errors import TraceParseError
from repro._util.timefmt import parse_wallclock


class RecordKind(enum.Enum):
    """Classification of a tokenized strace line."""

    SYSCALL = "syscall"
    UNFINISHED = "unfinished"
    RESUMED = "resumed"
    SIGNAL = "signal"
    EXIT = "exit"


@dataclass(frozen=True, slots=True)
class Token:
    """A classified strace line, still textual below the header level.

    Attributes
    ----------
    pid:
        Process id from the leading column.
    start_us:
        Wall-clock timestamp in microseconds since midnight (``-tt``).
    kind:
        The :class:`RecordKind`.
    body:
        Everything after the timestamp, with the classification markers
        intact (the parser strips them).
    """

    pid: int
    start_us: int
    kind: RecordKind
    body: str


#: ``-tt`` wall clock (HH:MM:SS.ffffff) or ``-ttt`` epoch seconds
#: (1700000000.123456). The pid column is optional: strace without
#: ``-f``/``-o`` on a single process omits it.
_HEADER_RE = re.compile(
    r"^(?:(?P<pid>\d+)\s+)?"
    r"(?P<ts>\d{2}:\d{2}:\d{2}\.\d{6}|\d{9,12}\.\d{6})\s+"
    r"(?P<body>.*)$"
)
_RESUMED_RE = re.compile(r"^<\.\.\.\s+\S+\s+resumed>")
_SYSCALL_START_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*\(")


def _parse_timestamp(text: str) -> int:
    """µs from either stamp format. Epoch stamps (``-ttt``) stay as
    µs-since-epoch — all downstream arithmetic is on differences, so
    the two origins coexist (but must not be mixed within one log)."""
    if ":" in text:
        return parse_wallclock(text)
    seconds, _, micros = text.partition(".")
    return int(seconds) * 1_000_000 + int(micros)


def tokenize_line(
    line: str,
    *,
    path: str | None = None,
    lineno: int | None = None,
    default_pid: int = 0,
) -> Token:
    """Split one strace line into a classified :class:`Token`.

    ``default_pid`` is used for pid-less traces (strace of a single
    process without ``-f``); the paper warns that such traces can
    violate event uniqueness (Sec. IV) — use
    :func:`repro.core.event.check_event_uniqueness` on them.

    Raises
    ------
    TraceParseError
        If the line has no timestamp header or an unrecognizable body.
        Blank lines must be filtered by the caller (the reader does) —
        they are an error here so bugs surface early.
    """
    match = _HEADER_RE.match(line.rstrip("\n"))
    if match is None:
        raise TraceParseError(
            f"missing pid/timestamp header: {line[:80]!r}",
            path=path, lineno=lineno, line=line)
    pid_text = match.group("pid")
    pid = int(pid_text) if pid_text is not None else default_pid
    try:
        start_us = _parse_timestamp(match.group("ts"))
    except ValueError as exc:  # width enforced by regex; range may not be
        raise TraceParseError(
            str(exc), path=path, lineno=lineno, line=line) from exc
    body = match.group("body")

    if body.startswith("+++"):
        kind = RecordKind.EXIT
    elif body.startswith("---"):
        kind = RecordKind.SIGNAL
    elif _RESUMED_RE.match(body):
        kind = RecordKind.RESUMED
    elif body.endswith("<unfinished ...>"):
        kind = RecordKind.UNFINISHED
    elif _SYSCALL_START_RE.match(body):
        kind = RecordKind.SYSCALL
    else:
        raise TraceParseError(
            f"unrecognized record body: {body[:80]!r}",
            path=path, lineno=lineno, line=line)
    return Token(pid=pid, start_us=start_us, kind=kind, body=body)


def resumed_call_name(body: str) -> str:
    """Extract the syscall name from a RESUMED body.

    >>> resumed_call_name("<... read resumed> ..., 405) = 404 <0.000223>")
    'read'
    """
    match = re.match(r"^<\.\.\.\s+(\S+)\s+resumed>", body)
    if match is None:
        raise TraceParseError(f"not a resumed record: {body[:80]!r}")
    return match.group(1)


def unfinished_call_name(body: str) -> str:
    """Extract the syscall name from an UNFINISHED body.

    >>> unfinished_call_name("read(3</x>, <unfinished ...>")
    'read'
    """
    match = _SYSCALL_START_RE.match(body)
    if match is None:
        raise TraceParseError(f"not an unfinished record: {body[:80]!r}")
    return match.group(0)[:-1]  # drop the '('

"""Reading trace files and directories into per-case record lists.

A *case* in the paper is "the group of events in each trace file"
(Sec. IV), identified by (cid, host, rid) from the file name. The reader
produces one :class:`TraceCase` per file: tokenize every line, merge
unfinished/resumed pairs, drop ERESTARTSYS records, and keep the result
sorted by start timestamp — the exact preprocessing Sec. III prescribes
before events enter the event-log formalism.

Since the ingestion engine landed (:mod:`repro.ingest`), both steps
stream: :func:`read_trace_file` pipes a lazy
:class:`~repro.ingest.streaming.TokenStream` straight into
:func:`~repro.strace.resume.merge_unfinished`, so the full token list
of a file never exists in memory, and :func:`read_trace_dir` can fan
the per-file work out over a process pool (``workers=``) — safe because
cases are independent by construction and the resulting case list is
ordered by file path either way.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, field
from pathlib import Path

from repro._util.errors import TraceParseError
from repro.strace.naming import TRACE_SUFFIX, TraceFileName, parse_trace_filename
from repro.strace.parser import ParsedRecord
from repro.strace.resume import MergeStats, merge_unfinished


@dataclass(slots=True)
class TraceCase:
    """All parsed records of one trace file, i.e. one case.

    Attributes
    ----------
    name:
        The (cid, host, rid) identity from the file name.
    records:
        Parsed records sorted by start timestamp.
    merge_stats:
        Diagnostics from the unfinished/resumed merge pass (plus the
        reader's undecodable-byte count).
    source:
        The file the case was read from (None for synthetic cases).
    """

    name: TraceFileName
    records: list[ParsedRecord]
    merge_stats: MergeStats = field(default_factory=MergeStats)
    source: Path | None = None

    @property
    def case_id(self) -> str:
        """Paper-style label, e.g. ``a9042``."""
        return self.name.case_id

    def __len__(self) -> int:
        return len(self.records)


def read_trace_file(
    path: str | os.PathLike[str],
    *,
    name: TraceFileName | None = None,
    strict: bool = True,
) -> TraceCase:
    """Read and fully parse one ``.st`` trace file, streaming.

    Parameters
    ----------
    path:
        The trace file. Its basename must follow the Fig. 1 naming
        convention unless ``name`` is supplied explicitly.
    name:
        Override the (cid, host, rid) identity (useful for files named
        outside the convention).
    strict:
        Governs both the unfinished/resumed merger (orphan *resumed*
        records raise when True) and byte-level decoding: undecodable
        bytes raise when True, and are replaced with U+FFFD, counted in
        ``merge_stats.decode_replacements`` and warned about when
        False.
    """
    # Imported here, not at module top: repro.ingest.streaming pulls in
    # the tokenizer, whose package __init__ imports this module.
    from repro.ingest.streaming import TokenStream

    file_path = Path(path)
    if name is None:
        name = parse_trace_filename(file_path.name)
    stream = TokenStream(file_path, strict=strict)
    records, stats = merge_unfinished(
        stream, path=str(file_path), strict=strict)
    stats.decode_replacements = stream.decode_replacements
    if stats.decode_replacements:
        warnings.warn(
            f"{file_path}: replaced {stats.decode_replacements} "
            f"undecodable byte(s) with U+FFFD — the trace is corrupt "
            f"or not UTF-8",
            stacklevel=2)
    return TraceCase(name=name, records=records, merge_stats=stats,
                     source=file_path)


def discover_trace_files(
    directory: str | os.PathLike[str],
    *,
    cids: set[str] | None = None,
    recursive: bool = False,
    allow_empty: bool = False,
    known_cases: dict[str, Path] | None = None,
) -> list[tuple[Path, TraceFileName]]:
    """Find every ``*.st`` file in a directory, deterministically.

    Files are returned sorted by path, so ingestion order — and with it
    the case layout of every downstream frame — is reproducible
    regardless of filesystem enumeration order or worker scheduling.
    ``recursive=True`` descends into nested per-host subdirectories
    (e.g. ``traces/<host>/<cid>_<host>_<rid>.st``); case identity still
    comes from the basename alone, and a duplicate case id across
    subdirectories is an error rather than a silent event merge.

    The live follower (:meth:`repro.live.engine.LiveIngest.scan`)
    shares this grammar via two knobs batch callers never set:
    ``allow_empty`` makes a directory with no matching files a normal
    result (a watcher may start before traces appear), and
    ``known_cases`` (case id → path) extends duplicate detection
    across polls — a newly discovered file colliding with a case
    already followed from a *different* path is an error.

    Raises
    ------
    TraceParseError
        If the directory does not exist, contains no matching trace
        files (unless ``allow_empty``), or two files map to the same
        case.
    """
    dir_path = Path(directory)
    if not dir_path.is_dir():
        raise TraceParseError(f"not a directory: {dir_path}")
    if recursive:
        entries = sorted(dir_path.rglob(f"*{TRACE_SUFFIX}"))
    else:
        entries = sorted(dir_path.iterdir())
    found: list[tuple[Path, TraceFileName]] = []
    seen: dict[str, Path] = {}
    for entry in entries:
        if entry.suffix != TRACE_SUFFIX or not entry.is_file():
            continue
        name = parse_trace_filename(entry.name)
        if cids is not None and name.cid not in cids:
            continue
        previous = seen.get(name.case_id)
        if previous is None and known_cases is not None:
            tracked = known_cases.get(name.case_id)
            if tracked is not None and tracked != entry:
                previous = tracked
        if previous is not None:
            raise TraceParseError(
                f"duplicate case {name.case_id!r}: {previous} and {entry}")
        seen[name.case_id] = entry
        found.append((entry, name))
    if not found and not allow_empty:
        raise TraceParseError(
            f"no {TRACE_SUFFIX} trace files found in {dir_path}"
            + (f" for cids {sorted(cids)}" if cids else ""))
    return found


def read_trace_dir(
    directory: str | os.PathLike[str],
    *,
    cids: set[str] | None = None,
    strict: bool = True,
    recursive: bool = False,
    workers: int | None = None,
) -> list[TraceCase]:
    """Read every ``*.st`` file in a directory into cases.

    Files are discovered in sorted order for determinism. ``cids``
    optionally restricts to a subset of command identifiers — e.g.
    ``{"a"}`` reads only the ``ls`` run of the paper's Fig. 1 example.
    ``recursive`` descends into nested subdirectories (per-host trace
    layouts).

    ``workers`` parses files concurrently on a process pool: ``None``
    auto-detects from the available CPUs, ``1`` forces the exact
    sequential path. Cases are independent per the paper's definition,
    and results are returned in the same sorted-path order either way,
    so the parallel path is observably identical to the sequential one
    (a property the ingest test suite pins down).

    Raises
    ------
    TraceParseError
        If the directory contains no matching trace files, or any file
        fails to parse.
    """
    found = discover_trace_files(directory, cids=cids, recursive=recursive)
    from repro.ingest.parallel import read_cases, resolve_workers

    return read_cases(found, strict=strict,
                      workers=resolve_workers(workers, len(found)))

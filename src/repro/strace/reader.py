"""Reading trace files and directories into per-case record lists.

A *case* in the paper is "the group of events in each trace file"
(Sec. IV), identified by (cid, host, rid) from the file name. The reader
produces one :class:`TraceCase` per file: tokenize every line, merge
unfinished/resumed pairs, drop ERESTARTSYS records, and keep the result
sorted by start timestamp — the exact preprocessing Sec. III prescribes
before events enter the event-log formalism.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path

from repro._util.errors import TraceParseError
from repro.strace.naming import TRACE_SUFFIX, TraceFileName, parse_trace_filename
from repro.strace.parser import ParsedRecord
from repro.strace.resume import MergeStats, merge_unfinished
from repro.strace.tokenizer import Token, tokenize_line


@dataclass(slots=True)
class TraceCase:
    """All parsed records of one trace file, i.e. one case.

    Attributes
    ----------
    name:
        The (cid, host, rid) identity from the file name.
    records:
        Parsed records sorted by start timestamp.
    merge_stats:
        Diagnostics from the unfinished/resumed merge pass.
    source:
        The file the case was read from (None for synthetic cases).
    """

    name: TraceFileName
    records: list[ParsedRecord]
    merge_stats: MergeStats = field(default_factory=MergeStats)
    source: Path | None = None

    @property
    def case_id(self) -> str:
        """Paper-style label, e.g. ``a9042``."""
        return self.name.case_id

    def __len__(self) -> int:
        return len(self.records)


def read_trace_file(
    path: str | os.PathLike[str],
    *,
    name: TraceFileName | None = None,
    strict: bool = True,
) -> TraceCase:
    """Read and fully parse one ``.st`` trace file.

    Parameters
    ----------
    path:
        The trace file. Its basename must follow the Fig. 1 naming
        convention unless ``name`` is supplied explicitly.
    name:
        Override the (cid, host, rid) identity (useful for files named
        outside the convention).
    strict:
        Forwarded to the unfinished/resumed merger: orphan *resumed*
        records raise when True.
    """
    file_path = Path(path)
    if name is None:
        name = parse_trace_filename(file_path.name)
    tokens: list[Token] = []
    with open(file_path, "r", encoding="utf-8", errors="replace") as handle:
        for lineno, line in enumerate(handle, start=1):
            if not line.strip():
                continue
            tokens.append(
                tokenize_line(line, path=str(file_path), lineno=lineno))
    records, stats = merge_unfinished(
        tokens, path=str(file_path), strict=strict)
    return TraceCase(name=name, records=records, merge_stats=stats,
                     source=file_path)


def read_trace_dir(
    directory: str | os.PathLike[str],
    *,
    cids: set[str] | None = None,
    strict: bool = True,
) -> list[TraceCase]:
    """Read every ``*.st`` file in a directory into cases.

    Files are discovered in sorted order for determinism. ``cids``
    optionally restricts to a subset of command identifiers — e.g.
    ``{"a"}`` reads only the ``ls`` run of the paper's Fig. 1 example.

    Raises
    ------
    TraceParseError
        If the directory contains no matching trace files, or any file
        fails to parse.
    """
    dir_path = Path(directory)
    if not dir_path.is_dir():
        raise TraceParseError(f"not a directory: {dir_path}")
    cases: list[TraceCase] = []
    for entry in sorted(dir_path.iterdir()):
        if entry.suffix != TRACE_SUFFIX or not entry.is_file():
            continue
        name = parse_trace_filename(entry.name)
        if cids is not None and name.cid not in cids:
            continue
        cases.append(read_trace_file(entry, name=name, strict=strict))
    if not cases:
        raise TraceParseError(
            f"no {TRACE_SUFFIX} trace files found in {dir_path}"
            + (f" for cids {sorted(cids)}" if cids else ""))
    return cases

"""Trace-file naming convention of Fig. 1.

Each MPI process records its own trace file via
``strace -o <cid>_$(hostname)_$$.st``; the name encodes the three
case-identifying attributes the paper infers "from the name of the
trace file" (Sec. IV):

- **cid** — command identifier (``a`` for ``ls``, ``b`` for ``ls -l``
  in the paper's example);
- **host** — the machine name;
- **rid** — the launching process's id (``$$``), distinct from the pid
  *inside* the trace when the launcher forks the traced command.

Hostnames may themselves contain ``_`` on real systems, and cids are
free-form labels, so the grammar is anchored at both ends: the *first*
``_`` terminates the cid and the *last* ``_`` starts the rid. This is
exactly invertible for cids without underscores (which Fig. 1 uses).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro._util.errors import TraceParseError

#: File suffix used throughout the paper's examples.
TRACE_SUFFIX = ".st"

_NAME_RE = re.compile(
    r"^(?P<cid>[^_]+)_(?P<host>.+)_(?P<rid>\d+)\.st$"
)


@dataclass(frozen=True, slots=True, order=True)
class TraceFileName:
    """Decomposed trace-file name — the case identity (cid, host, rid)."""

    cid: str
    host: str
    rid: int

    @property
    def case_id(self) -> str:
        """Readable case label used in reports, e.g. ``a9042``.

        Matches the paper's notation (Eq. 3: ``Ca = {a9042, ...}``).
        """
        return f"{self.cid}{self.rid}"

    def filename(self) -> str:
        """Render back to ``<cid>_<host>_<rid>.st``."""
        return format_trace_filename(self.cid, self.host, self.rid)


def format_trace_filename(cid: str, host: str, rid: int) -> str:
    """Compose a trace filename per the Fig. 1 convention.

    >>> format_trace_filename("a", "host1", 9042)
    'a_host1_9042.st'
    """
    if not cid or "_" in cid:
        raise ValueError(f"cid must be non-empty and contain no '_': {cid!r}")
    if not host:
        raise ValueError("host must be non-empty")
    if rid < 0:
        raise ValueError(f"rid must be non-negative: {rid}")
    return f"{cid}_{host}_{rid}{TRACE_SUFFIX}"


def parse_trace_filename(name: str) -> TraceFileName:
    """Parse ``a_host1_9042.st`` → TraceFileName(cid='a', host='host1',
    rid=9042). Accepts full paths (only the basename is inspected).

    >>> parse_trace_filename("b_host1_9157.st").case_id
    'b9157'
    """
    base = name.rsplit("/", 1)[-1]
    match = _NAME_RE.match(base)
    if match is None:
        raise TraceParseError(
            f"trace filename does not follow <cid>_<host>_<rid>.st: {base!r}")
    return TraceFileName(
        cid=match.group("cid"),
        host=match.group("host"),
        rid=int(match.group("rid")),
    )

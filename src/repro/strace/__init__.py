"""strace trace-record substrate (Sec. III of the paper).

This subpackage turns raw ``strace`` output — recorded with
``strace -f -e <calls> -tt -T -y -o <cid>_<host>_<rid>.st`` — into
structured records carrying exactly the event attributes the paper
parses: *pid*, *call*, *start*, *dur*, *fp*, *size*, with the file-level
attributes *cid*, *host*, *rid* recovered from the trace-file name.

Layering (bottom → top):

- :mod:`repro.strace.syscalls` — catalog of I/O system calls: which
  argument carries the ``fd</path>`` annotation, which calls report a
  transfer size, read/write classification.
- :mod:`repro.strace.tokenizer` — splits a physical line into pid,
  timestamp and body, and classifies the record kind (syscall,
  unfinished, resumed, signal, exit).
- :mod:`repro.strace.parser` — parses a syscall body into name, argument
  list, file path, return value and duration, quote/paren-aware.
- :mod:`repro.strace.resume` — merges ``<unfinished ...>`` with
  ``<... resumed>`` partners (matched by pid, per the paper) and drops
  ``ERESTARTSYS``-interrupted calls.
- :mod:`repro.strace.naming` — the ``<cid>_<host>_<rid>.st`` trace-file
  naming convention of Fig. 1.
- :mod:`repro.strace.reader` — reads files/directories into
  per-case record lists ready for event-log construction. Reading
  streams (one line in memory at a time, via
  :mod:`repro.ingest.streaming`) and directories can be parsed on a
  process pool (``workers=``, via :mod:`repro.ingest.parallel`).
"""

from repro.strace.syscalls import (
    SyscallSpec,
    SyscallFamily,
    SYSCALL_CATALOG,
    DEFAULT_IO_CALLS,
    is_transfer_call,
    transfer_direction,
    spec_for,
)
from repro.strace.tokenizer import RecordKind, Token, tokenize_line
from repro.strace.parser import ParsedRecord, parse_line, parse_body
from repro.strace.resume import IncrementalMerger, merge_unfinished, MergeStats
from repro.strace.naming import TraceFileName, parse_trace_filename, format_trace_filename
from repro.strace.reader import (
    TraceCase,
    discover_trace_files,
    read_trace_file,
    read_trace_dir,
)

__all__ = [
    "SyscallSpec",
    "SyscallFamily",
    "SYSCALL_CATALOG",
    "DEFAULT_IO_CALLS",
    "is_transfer_call",
    "transfer_direction",
    "spec_for",
    "RecordKind",
    "Token",
    "tokenize_line",
    "ParsedRecord",
    "parse_line",
    "parse_body",
    "IncrementalMerger",
    "merge_unfinished",
    "MergeStats",
    "TraceFileName",
    "parse_trace_filename",
    "format_trace_filename",
    "TraceCase",
    "discover_trace_files",
    "read_trace_file",
    "read_trace_dir",
]

"""Catalog of I/O system calls and their strace signatures.

The paper traces "the system calls on LINUX-based operating systems that
are implemented based on the interfaces defined in the C standard
library under the headers unistd.h and sys/uio.h" (Sec. I), and parses
the *file path* from the ``fd</path>`` annotation produced by ``-y`` and
the *transfer size* from the return value — "only for the variants of
read and write system calls (and not for other I/O system calls such as
lseek, openat, etc.)" (Sec. III item 6).

This module encodes, per syscall:

- where the file path lives (an fd-annotated argument, a quoted path
  argument, or the fd-annotated *return value* — ``openat`` under ``-y``
  annotates the returned descriptor);
- whether the return value is a transfer size and in which direction;
- the family (read-like / write-like / open / close / seek / sync / other),
  used by statistics and by the simulator's API layers.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class SyscallFamily(enum.Enum):
    """Coarse classification of I/O syscalls used across the library."""

    READ = "read"        #: data moves storage -> user buffer
    WRITE = "write"      #: data moves user buffer -> storage
    OPEN = "open"        #: creates/opens a descriptor
    CLOSE = "close"      #: releases a descriptor
    SEEK = "seek"        #: moves a file offset
    SYNC = "sync"        #: flushes data/metadata to storage
    STAT = "stat"        #: metadata query
    OTHER = "other"      #: anything else we may encounter


class PathSource(enum.Enum):
    """Where the ``fp`` event attribute is recovered from."""

    FD_ARG = "fd_arg"          #: ``read(3</path>, ...)`` — arg 0 annotation
    RET_FD = "ret_fd"          #: ``openat(...) = 3</path>`` — return annotation
    PATH_ARG = "path_arg"      #: quoted string argument (fallback w/o -y)
    NONE = "none"              #: call carries no path


@dataclass(frozen=True, slots=True)
class SyscallSpec:
    """Static description of one syscall's strace signature.

    Attributes
    ----------
    name:
        Syscall name as printed by strace.
    family:
        Coarse :class:`SyscallFamily`.
    path_source:
        Where to find the file path (see :class:`PathSource`).
    path_arg_index:
        Argument index for ``FD_ARG``/``PATH_ARG`` sources.
    returns_size:
        True iff the return value is a byte transfer count (read/write
        variants only, per the paper).
    requested_arg_index:
        Argument index of the requested byte count (``read(fd, buf,
        COUNT)`` → 2), or None when the signature carries no flat byte
        count (vectored I/O passes lengths inside the iovec array).
    """

    name: str
    family: SyscallFamily
    path_source: PathSource = PathSource.FD_ARG
    path_arg_index: int = 0
    returns_size: bool = False
    requested_arg_index: int | None = None


def _spec(name: str, family: SyscallFamily, **kw) -> tuple[str, SyscallSpec]:
    return name, SyscallSpec(name=name, family=family, **kw)


#: Every syscall the parser knows the shape of. Unknown calls still parse
#: (generic path extraction is attempted) but get family OTHER.
SYSCALL_CATALOG: dict[str, SyscallSpec] = dict(
    [
        # unistd.h read/write variants — return value is the transfer size
        _spec("read", SyscallFamily.READ, returns_size=True,
              requested_arg_index=2),
        _spec("write", SyscallFamily.WRITE, returns_size=True,
              requested_arg_index=2),
        _spec("pread64", SyscallFamily.READ, returns_size=True,
              requested_arg_index=2),
        _spec("pwrite64", SyscallFamily.WRITE, returns_size=True,
              requested_arg_index=2),
        # sys/uio.h vectored variants
        _spec("readv", SyscallFamily.READ, returns_size=True),
        _spec("writev", SyscallFamily.WRITE, returns_size=True),
        _spec("preadv", SyscallFamily.READ, returns_size=True),
        _spec("pwritev", SyscallFamily.WRITE, returns_size=True),
        _spec("preadv2", SyscallFamily.READ, returns_size=True),
        _spec("pwritev2", SyscallFamily.WRITE, returns_size=True),
        # descriptor management — openat annotates the *returned* fd under -y
        _spec("open", SyscallFamily.OPEN, path_source=PathSource.RET_FD),
        _spec("openat", SyscallFamily.OPEN, path_source=PathSource.RET_FD),
        _spec("creat", SyscallFamily.OPEN, path_source=PathSource.RET_FD),
        _spec("close", SyscallFamily.CLOSE),
        _spec("dup", SyscallFamily.OTHER),
        _spec("dup2", SyscallFamily.OTHER),
        _spec("dup3", SyscallFamily.OTHER),
        # offsets
        _spec("lseek", SyscallFamily.SEEK),
        _spec("llseek", SyscallFamily.SEEK),
        # durability
        _spec("fsync", SyscallFamily.SYNC),
        _spec("fdatasync", SyscallFamily.SYNC),
        _spec("sync", SyscallFamily.SYNC, path_source=PathSource.NONE),
        _spec("syncfs", SyscallFamily.SYNC),
        # metadata
        _spec("stat", SyscallFamily.STAT, path_source=PathSource.PATH_ARG),
        _spec("lstat", SyscallFamily.STAT, path_source=PathSource.PATH_ARG),
        _spec("fstat", SyscallFamily.STAT),
        _spec("newfstatat", SyscallFamily.STAT, path_source=PathSource.PATH_ARG,
              path_arg_index=1),
        _spec("statx", SyscallFamily.STAT, path_source=PathSource.PATH_ARG,
              path_arg_index=1),
        _spec("access", SyscallFamily.STAT, path_source=PathSource.PATH_ARG),
        _spec("faccessat", SyscallFamily.STAT, path_source=PathSource.PATH_ARG,
              path_arg_index=1),
        _spec("getdents64", SyscallFamily.READ),
        _spec("unlink", SyscallFamily.OTHER, path_source=PathSource.PATH_ARG),
        _spec("unlinkat", SyscallFamily.OTHER, path_source=PathSource.PATH_ARG,
              path_arg_index=1),
        _spec("mkdir", SyscallFamily.OTHER, path_source=PathSource.PATH_ARG),
        _spec("rename", SyscallFamily.OTHER, path_source=PathSource.PATH_ARG),
        _spec("ftruncate", SyscallFamily.OTHER),
        _spec("fcntl", SyscallFamily.OTHER),
        _spec("flock", SyscallFamily.OTHER),
        _spec("mmap", SyscallFamily.OTHER, path_source=PathSource.NONE),
        _spec("ioctl", SyscallFamily.OTHER),
    ]
)

#: The trace set used by the paper's experiments: "variants of read,
#: write and openat" for the SSF/FPP run (Sec. V-A), plus lseek for the
#: MPI-IO run (Sec. V-B).
DEFAULT_IO_CALLS: tuple[str, ...] = (
    "read", "write", "pread64", "pwrite64",
    "readv", "writev", "preadv", "pwritev",
    "open", "openat", "close", "lseek", "fsync",
)

_FALLBACK = SyscallSpec(name="?", family=SyscallFamily.OTHER,
                        path_source=PathSource.FD_ARG)


def spec_for(call: str) -> SyscallSpec:
    """Spec for a syscall name; unknown names get a generic OTHER spec."""
    spec = SYSCALL_CATALOG.get(call)
    if spec is not None:
        return spec
    return SyscallSpec(name=call, family=SyscallFamily.OTHER,
                       path_source=PathSource.FD_ARG)


def is_transfer_call(call: str) -> bool:
    """True iff the return value of ``call`` is a byte transfer size."""
    spec = SYSCALL_CATALOG.get(call)
    return spec is not None and spec.returns_size


def transfer_direction(call: str) -> SyscallFamily | None:
    """READ/WRITE for transfer calls, None otherwise."""
    spec = SYSCALL_CATALOG.get(call)
    if spec is None or not spec.returns_size:
        return None
    return spec.family

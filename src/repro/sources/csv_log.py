"""``csv:`` — delimited-text event-logs (the tool-agnostic interchange
format).

Sec. II of the paper: "The methodology by itself does not depend on
strace and can be applied over data instrumented by one of the other
existing tools." Any tracer that can dump events with the Eq. 1
attributes feeds the pipeline through this source.

Column schema
-------------
A header row naming (a superset of) the canonical columns, then one
row per event:

======  ========  ==================================================
column  type      meaning (Eq. 1 attribute)
======  ========  ==================================================
cid     str       command identifier (required, non-empty)
host    str       host name (required, non-empty)
rid     int       launcher process id from the trace-file name
pid     int       pid of the traced process
call    str       syscall name
start   int       entry timestamp, integer microseconds
dur     int       duration in microseconds; empty = unknown
fp      str       file path; empty = the event carries no path
size    int       transferred bytes; empty = not a transfer
======  ========  ==================================================

Extra columns are ignored so exports from richer tools load unchanged.
Cases are formed exactly as in Sec. IV: one case per distinct
(cid, rid), events ordered by start. The format round-trips:
``read_csv_log(write_csv_log(log))`` reconstructs the same events
(property-tested), and the CLI pair ``export-csv`` / ``csv:`` source
is byte-stable: export → load → export reproduces the file.

This module was promoted from ``repro.adapters.csv_log``; that import
path remains as a deprecated re-export.
"""

from __future__ import annotations

import csv
import os
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

import numpy as np

from repro._util.errors import SourceError, TraceParseError
from repro.core.eventlog import EventLog
from repro.core.frame import EventFrame, FramePools
from repro.sources.base import SourceOptions, TraceSource, iter_cases_of_log

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ingest.parallel import CaseColumns

#: Required columns, in canonical order (Eq. 1).
CSV_COLUMNS: tuple[str, ...] = (
    "cid", "host", "rid", "pid", "call", "start", "dur", "fp", "size")

#: Spellings accepted for the ``?delimiter=`` URI option.
_DELIMITER_NAMES = {"tab": "\t", "comma": ",", "semicolon": ";"}


def _parse_int(value: str, column: str, lineno: int,
               *, optional: bool = False) -> int:
    if value == "" and optional:
        return -1
    try:
        return int(value)
    except ValueError:
        raise TraceParseError(
            f"line {lineno}: column {column!r} is not an integer: "
            f"{value!r}") from None


def read_csv_log(path: str | os.PathLike[str], *,
                 delimiter: str = ",") -> EventLog:
    """Load an event-log from a CSV file.

    Raises :class:`TraceParseError` on missing required columns or
    malformed values; empty ``fp``/``size``/``dur`` become missing.
    """
    file_path = Path(path)
    pools = FramePools()
    columns: dict[str, list[int]] = {name: [] for name in (
        "case", "cid", "host", "rid", "pid", "call", "start", "dur",
        "fp", "size")}
    with open(file_path, newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle, delimiter=delimiter)
        if reader.fieldnames is None:
            raise TraceParseError(f"{file_path}: empty CSV")
        missing = set(CSV_COLUMNS) - set(reader.fieldnames)
        if missing:
            raise TraceParseError(
                f"{file_path}: missing columns {sorted(missing)}")
        for lineno, row in enumerate(reader, start=2):
            cid = row["cid"]
            host = row["host"]
            rid = _parse_int(row["rid"], "rid", lineno)
            if not cid or not host:
                raise TraceParseError(
                    f"line {lineno}: empty cid/host")
            columns["case"].append(pools.cases.intern(f"{cid}{rid}"))
            columns["cid"].append(pools.cids.intern(cid))
            columns["host"].append(pools.hosts.intern(host))
            columns["rid"].append(rid)
            columns["pid"].append(_parse_int(row["pid"], "pid", lineno))
            columns["call"].append(pools.calls.intern(row["call"]))
            columns["start"].append(
                _parse_int(row["start"], "start", lineno))
            columns["dur"].append(
                _parse_int(row["dur"], "dur", lineno, optional=True))
            fp = row["fp"]
            columns["fp"].append(
                pools.paths.intern(fp) if fp else -1)
            columns["size"].append(
                _parse_int(row["size"], "size", lineno, optional=True))
    n = len(columns["start"])
    frame = EventFrame(pools, {
        "case": np.array(columns["case"], dtype=np.int32),
        "cid": np.array(columns["cid"], dtype=np.int32),
        "host": np.array(columns["host"], dtype=np.int32),
        "rid": np.array(columns["rid"], dtype=np.int64),
        "pid": np.array(columns["pid"], dtype=np.int64),
        "call": np.array(columns["call"], dtype=np.int32),
        "start": np.array(columns["start"], dtype=np.int64),
        "dur": np.array(columns["dur"], dtype=np.int64),
        "fp": np.array(columns["fp"], dtype=np.int32),
        "size": np.array(columns["size"], dtype=np.int64),
        "activity": np.full(n, -1, dtype=np.int32),
    })
    return EventLog(frame)


def write_csv_log(event_log: EventLog,
                  path: str | os.PathLike[str], *,
                  delimiter: str = ",") -> Path:
    """Export an event-log to CSV (inverse of :func:`read_csv_log`).

    Lossless for the Eq. 1 attributes: ``read_csv_log(write_csv_log(x))``
    reconstructs the same events (property-tested).
    """
    file_path = Path(path)
    frame = event_log.frame
    with open(file_path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        writer.writerow(CSV_COLUMNS)
        cids = frame.decoded("cid")
        hosts = frame.decoded("host")
        calls = frame.decoded("call")
        fps = frame.decoded("fp")
        rid = frame.column("rid")
        pid = frame.column("pid")
        start = frame.column("start")
        dur = frame.column("dur")
        size = frame.column("size")
        for i in range(len(frame)):
            writer.writerow([
                cids[i], hosts[i], int(rid[i]), int(pid[i]), calls[i],
                int(start[i]),
                "" if dur[i] == -1 else int(dur[i]),
                fps[i] or "",
                "" if size[i] == -1 else int(size[i]),
            ])
    return file_path


class CsvLogSource(TraceSource):
    """A CSV event-log dump (``csv:events.csv``).

    URI options: ``?delimiter=<char>`` — a single character or one of
    the names ``tab``/``comma``/``semicolon`` (a literal tab cannot be
    typed into most shells).
    """

    scheme = "csv"

    def __init__(self, path: str | os.PathLike[str], *,
                 delimiter: str = ",",
                 cids: set[str] | None = None) -> None:
        self.path = Path(path)
        self.delimiter = delimiter
        self.cids = cids

    @classmethod
    def from_uri(cls, target: str, options: dict[str, str],
                 opts: SourceOptions) -> "CsvLogSource":
        extra = set(options) - {"delimiter"}
        if extra:
            raise SourceError(
                f"scheme 'csv' supports only ?delimiter= "
                f"(got {sorted(extra)})")
        delimiter = options.get("delimiter", ",")
        delimiter = _DELIMITER_NAMES.get(delimiter.lower(), delimiter)
        if len(delimiter) != 1:
            raise SourceError(
                f"csv delimiter must be one character or one of "
                f"{sorted(_DELIMITER_NAMES)} (got {delimiter!r})")
        return cls(target, delimiter=delimiter, cids=opts.cids)

    def describe(self) -> str:
        return f"CSV event-log {self.path}"

    def event_log(self) -> EventLog:
        log = read_csv_log(self.path, delimiter=self.delimiter)
        if self.cids is not None:
            log = log.filtered_cids(self.cids)
        return log

    def iter_cases(self) -> "Iterator[CaseColumns]":
        """Per-case columns in sorted case-id order.

        CSV is one flat file, so the log materializes first and the
        generic frame slicer (:func:`iter_cases_of_log`) re-forms the
        cases.
        """
        return iter_cases_of_log(self.event_log())

"""Source registry and URI grammar: ``open_source("scheme:target")``.

One resolver replaces every caller's private path-sniffing:

>>> open_source("strace:traces/")          # doctest: +SKIP
>>> open_source("elog:run.elog")           # doctest: +SKIP
>>> open_source("csv:events.csv")          # doctest: +SKIP
>>> open_source("sim:ior?ranks=4")         # doctest: +SKIP
>>> open_source("traces/")                 # doctest: +SKIP

The grammar is ``scheme:target[?key=value&key=value]``. A spec without
a registered scheme is treated as a filesystem path and autodetected:
directory → strace traces, ``*.csv`` → CSV log, any other existing
file → ``.elog`` store (whose reader rejects non-stores with a precise
message). Precedence: a *registered* scheme prefix always wins (a file
literally named ``sim:ls`` must be spelled ``./sim:ls`` to defeat it);
a path containing ``:`` with an *unregistered* prefix still resolves
as long as it exists on disk — only a nonexistent path with an unknown
scheme is an error, and that error names the registered schemes.

Registered factories receive ``(target, options, opts)`` where
``options`` is the parsed ``?``-query dict and ``opts`` the common
:class:`~repro.sources.base.SourceOptions`. After construction,
:func:`open_source` checks the requested options against the source's
capability flags and warns about any it cannot honor — a request for
``workers=8`` on a CSV file is a user mistake worth surfacing, not a
silent no-op.
"""

from __future__ import annotations

import os
import re
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict

from repro._util.errors import SourceError
from repro.sources.base import (
    SourceOptions,
    TraceSource,
    UnsupportedSourceOptionWarning,
)

#: RFC-3986-shaped scheme prefix; a single letter is excluded so that
#: Windows-style drive paths would not be eaten (and one-letter schemes
#: are unreadable anyway).
_SCHEME_RE = re.compile(r"^(?P<scheme>[A-Za-z][A-Za-z0-9+.-]+):(?P<rest>.*)$")

SourceFactory = Callable[[str, Dict[str, str], SourceOptions], TraceSource]

_REGISTRY: dict[str, SourceFactory] = {}


@dataclass(frozen=True)
class SourceSpec:
    """A parsed source specification.

    ``scheme`` is ``None`` for bare paths (autodetection); ``options``
    holds the ``?key=value`` pairs (only parsed when a scheme is
    present — a bare filename may legally contain ``?``).
    """

    raw: str
    scheme: str | None
    target: str
    options: dict[str, str] = field(default_factory=dict)


def parse_source_spec(spec: str) -> SourceSpec:
    """Split a source spec into (scheme, target, options) — pure syntax.

    >>> parse_source_spec("sim:ior?ranks=4&fpp=1").options
    {'ranks': '4', 'fpp': '1'}
    >>> parse_source_spec("traces/").scheme is None
    True
    """
    match = _SCHEME_RE.match(spec)
    if match is None:
        return SourceSpec(raw=spec, scheme=None, target=spec)
    scheme = match.group("scheme").lower()
    rest = match.group("rest")
    target, sep, query = rest.partition("?")
    options: dict[str, str] = {}
    if sep:
        for pair in query.split("&"):
            if not pair:
                continue
            key, eq, value = pair.partition("=")
            if not eq or not key:
                raise SourceError(
                    f"malformed option {pair!r} in source {spec!r} "
                    f"(expected key=value)")
            if key in options:
                raise SourceError(
                    f"duplicate option {key!r} in source {spec!r}")
            options[key] = value
    return SourceSpec(raw=spec, scheme=scheme, target=target,
                      options=options)


def register_source(scheme: str, factory: SourceFactory, *,
                    replace: bool = False) -> None:
    """Register a factory under a URI scheme.

    Third-party backends plug in here: ``register_source("inotify",
    MyLiveSource.from_uri)`` makes ``open_source("inotify:dir/")`` —
    and with it every CLI subcommand — work without touching any
    consumer.
    """
    key = scheme.lower()
    if not _SCHEME_RE.match(f"{key}:"):
        raise SourceError(
            f"invalid scheme {scheme!r}: must be >= 2 chars, start "
            f"with a letter, and contain only [a-z0-9+.-]")
    if key in _REGISTRY and not replace:
        raise SourceError(
            f"scheme {scheme!r} already registered; pass replace=True "
            f"to override")
    _REGISTRY[key] = factory


def registered_schemes() -> list[str]:
    """Sorted list of the registered URI schemes."""
    return sorted(_REGISTRY)


def _scheme_hint() -> str:
    return ", ".join(f"{s}:" for s in registered_schemes())


def _autodetect(target: str, opts: SourceOptions) -> TraceSource:
    """Bare-path resolution: directory, CSV file, or .elog store."""
    from repro.sources.csv_log import CsvLogSource
    from repro.sources.store import ElstoreSource
    from repro.sources.strace_dir import StraceDirSource

    path = Path(target)
    if path.is_dir():
        return StraceDirSource(path, cids=opts.cids, strict=opts.strict,
                               recursive=opts.recursive,
                               workers=opts.workers)
    if path.suffix.lower() == ".csv":
        return CsvLogSource(path, cids=opts.cids)
    if path.exists():
        # Not a directory, not .csv: expect an .elog container (the
        # reader's magic check gives a precise error for anything else).
        return ElstoreSource(path, cids=opts.cids)
    raise SourceError(
        f"source not found: {target!r} is neither an existing path nor "
        f"a registered scheme (known schemes: {_scheme_hint()}; bare "
        f"paths are autodetected: directory → strace traces, *.csv → "
        f"CSV log, other files → .elog store)")


def _check_capabilities(source: TraceSource, opts: SourceOptions) -> None:
    """Warn about requested options the source cannot honor."""
    if (opts.workers is not None and opts.workers != 1
            and not source.supports_workers):
        warnings.warn(
            f"workers={opts.workers} ignored: {source.describe()} "
            f"does not support parallel parsing",
            UnsupportedSourceOptionWarning, stacklevel=3)
    if opts.recursive and not source.supports_recursive:
        warnings.warn(
            f"recursive=True ignored: {source.describe()} does not "
            f"discover nested files",
            UnsupportedSourceOptionWarning, stacklevel=3)
    if not opts.strict and not source.supports_strict:
        warnings.warn(
            f"strict=False (--lenient) ignored: {source.describe()} "
            f"has no lenient parse mode",
            UnsupportedSourceOptionWarning, stacklevel=3)


def open_source(
    spec: "str | os.PathLike[str]",
    *,
    workers: int | None = None,
    recursive: bool = False,
    strict: bool = True,
    cids: set[str] | None = None,
) -> TraceSource:
    """Resolve a source spec to a ready :class:`TraceSource`.

    ``workers``/``recursive``/``strict``/``cids`` are the common ingest
    knobs; sources take the subset they support and the rest warn
    (:class:`UnsupportedSourceOptionWarning`).

    Raises :class:`~repro._util.errors.SourceError` for unknown
    schemes, missing paths, and malformed ``?key=value`` options.

    The ``sim:`` scheme needs no files on disk, which makes it the
    zero-setup way to try any consumer:

    >>> source = open_source("sim:ls")
    >>> source.describe()
    'simulated workload sim:ls'
    >>> source.event_log().n_cases
    6
    """
    opts = SourceOptions(workers=workers, recursive=recursive,
                         strict=strict, cids=cids)
    text = os.fspath(spec)
    try:
        parsed = parse_source_spec(text)
    except SourceError:
        # A malformed ?query under an unregistered prefix may simply be
        # a real filename (e.g. "odd:file?x"); only re-raise when no
        # such path exists.
        if not Path(text).exists():
            raise
        parsed = SourceSpec(raw=text, scheme=None, target=text)
    if parsed.scheme is not None and parsed.scheme in _REGISTRY:
        source = _REGISTRY[parsed.scheme](parsed.target, parsed.options,
                                          opts)
    elif parsed.scheme is not None and not Path(text).exists():
        raise SourceError(
            f"unknown source scheme {parsed.scheme!r} in {text!r} "
            f"(known schemes: {_scheme_hint()}; bare paths are "
            f"autodetected)")
    else:
        # No scheme, or a path that merely *looks* scheme-prefixed
        # (unregistered prefix) but exists on disk.
        source = _autodetect(text, opts)
    _check_capabilities(source, opts)
    return source


def resolve_source(
    source,
    *,
    workers: int | None = None,
    recursive: bool = False,
    strict: bool = True,
    cids: set[str] | None = None,
) -> TraceSource:
    """Turn a spec-or-source argument into a ready :class:`TraceSource`.

    The shared front door of ``EventLog.from_source`` /
    ``convert_source``: spec strings go through :func:`open_source`
    with the ingest options; an already-constructed source carries its
    *own* options, so passing more here is a contradiction — it raises
    :class:`SourceError` rather than silently discarding them.
    """
    if isinstance(source, TraceSource):
        requested = [name for name, value, default in (
            ("workers", workers, None),
            ("recursive", recursive, False),
            ("strict", strict, True),
            ("cids", cids, None),
        ) if value != default]
        if requested:
            raise SourceError(
                f"options {requested} cannot be applied to an "
                f"already-constructed {type(source).__name__}; pass "
                f"them to the source constructor, or pass a spec "
                f"string to resolve here")
        return source
    return open_source(source, workers=workers, recursive=recursive,
                       strict=strict, cids=cids)


def require_no_options(scheme: str, options: dict[str, str]) -> None:
    """Reject ``?key=value`` options on schemes that take none."""
    if options:
        raise SourceError(
            f"scheme {scheme!r} takes no ?options "
            f"(got {sorted(options)})")

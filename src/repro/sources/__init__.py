"""Pluggable trace sources — one API for batch, store, foreign formats
and synthetic workloads.

Every consumer of events (``EventLog.from_source``,
``InspectionSession.from_source``, ``convert``, every CLI subcommand)
goes through one resolver::

    from repro.sources import open_source

    open_source("strace:traces/")     # directory of .st files
    open_source("elog:run.elog")      # columnar store
    open_source("csv:events.csv")     # delimited dump of any tracer
    open_source("sim:ior?ranks=4")    # simulated workload, no temp dir
    open_source("traces/")            # bare paths are autodetected

A source yields :class:`~repro.ingest.parallel.CaseColumns` (the
parallel engine's columnar wire format, also the ``.elog`` writer's
input shape) via :meth:`TraceSource.iter_cases`, or a whole
:class:`~repro.core.eventlog.EventLog` via
:meth:`TraceSource.event_log`. Capability flags (``supports_workers``,
``supports_recursive``, ``supports_tail``) declare which ingest
options a source honors; unsupported requests warn instead of being
silently ignored.

New backends (an inotify live source, a remote batch fetcher, another
tracer's format) are a :class:`TraceSource` subclass plus one
:func:`register_source` call — the registry makes them reachable from
every entry point at once.
"""

from repro.sources.base import (
    SourceOptions,
    TraceSource,
    UnsupportedSourceOptionWarning,
    case_columns_from_text,
    combine_merge_stats,
    iter_cases_of_log,
)
from repro.sources.registry import (
    SourceSpec,
    open_source,
    parse_source_spec,
    register_source,
    registered_schemes,
    resolve_source,
)
from repro.sources.csv_log import (
    CSV_COLUMNS,
    CsvLogSource,
    read_csv_log,
    write_csv_log,
)
from repro.sources.simulation import SimulationSource
from repro.sources.store import ElstoreSource
from repro.sources.strace_dir import StraceDirSource

def _catalog_factory(target, options, opts):
    # Imported lazily: repro.catalog itself imports TraceSource from
    # this package, so a module-level import here would be a cycle.
    from repro.catalog.source import CatalogSource

    return CatalogSource.from_uri(target, options, opts)


register_source(StraceDirSource.scheme, StraceDirSource.from_uri)
register_source(ElstoreSource.scheme, ElstoreSource.from_uri)
register_source(CsvLogSource.scheme, CsvLogSource.from_uri)
register_source(SimulationSource.scheme, SimulationSource.from_uri)
register_source("catalog", _catalog_factory)

__all__ = [
    "CSV_COLUMNS",
    "CsvLogSource",
    "ElstoreSource",
    "SimulationSource",
    "SourceOptions",
    "SourceSpec",
    "StraceDirSource",
    "TraceSource",
    "UnsupportedSourceOptionWarning",
    "case_columns_from_text",
    "combine_merge_stats",
    "iter_cases_of_log",
    "open_source",
    "parse_source_spec",
    "read_csv_log",
    "register_source",
    "registered_schemes",
    "resolve_source",
    "write_csv_log",
]

"""``elog:`` — the single-file columnar event-log container.

Reading the store back *is* a source like any other: ``event_log`` is
the legacy :func:`~repro.elstore.reader.read_event_log` materializer
(bit-compatible with every existing consumer), and ``iter_cases``
re-slices the container into per-case columns so a store can feed the
streaming consumers too — ``convert`` between two stores (re-chunking/
re-packing) or store → CSV export both ride the same path.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

import numpy as np

from repro.sources.base import (
    SourceOptions,
    TraceSource,
    _localize_codes,
)
from repro.sources.registry import require_no_options

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.eventlog import EventLog
    from repro.ingest.parallel import CaseColumns


class ElstoreSource(TraceSource):
    """An ``.elog`` container (the paper's HDF5 store, reimplemented)."""

    scheme = "elog"

    def __init__(self, path: str | os.PathLike[str], *,
                 cids: set[str] | None = None) -> None:
        self.path = Path(path)
        self.cids = cids

    @classmethod
    def from_uri(cls, target: str, options: dict[str, str],
                 opts: SourceOptions) -> "ElstoreSource":
        require_no_options(cls.scheme, options)
        return cls(target, cids=opts.cids)

    def describe(self) -> str:
        return f".elog store {self.path}"

    def event_log(self) -> "EventLog":
        from repro.elstore.reader import read_event_log

        return read_event_log(self.path, cids=self.cids)

    def iter_cases(self) -> "Iterator[CaseColumns]":
        """Lazy per-case reads in stored (append) order, CRC-verified.

        Append order — not sorted case-id order — is what makes an
        ``elog`` → ``elog`` repack reproduce the container byte for
        byte: the writer laid cases down in that order, and re-writing
        them in any other would shuffle chunks and pools. Merge
        diagnostics are empty — they belong to the original parse and
        are not persisted in the container.
        """
        from repro.elstore.reader import EventLogStore
        from repro.ingest.parallel import CaseColumns
        from repro.strace.naming import TraceFileName
        from repro.strace.resume import MergeStats

        store = EventLogStore(self.path)
        calls_pool = store.pools["calls"]
        paths_pool = store.pools["paths"]
        for case_id in store.stored_case_ids():
            meta = store.case_meta(case_id)
            if self.cids is not None and meta.cid not in self.cids:
                continue
            data = store.read_case(case_id)
            call, calls = _localize_codes(
                data["call"].astype(np.int32), calls_pool.__getitem__)
            fp, paths = _localize_codes(
                data["fp"].astype(np.int32), paths_pool.__getitem__)
            yield CaseColumns(
                name=TraceFileName(cid=meta.cid, host=meta.host,
                                   rid=meta.rid),
                pid=data["pid"].astype(np.int64),
                start=data["start"].astype(np.int64),
                dur=data["dur"].astype(np.int64),
                size=data["size"].astype(np.int64),
                call=call, fp=fp, calls=calls, paths=paths,
                merge_stats=MergeStats())

"""The :class:`TraceSource` contract — one pluggable "where do events
come from" API.

Sec. II of the paper: "The methodology by itself does not depend on
strace and can be applied over data instrumented by one of the other
existing tools." Before this package every entry point hardcoded its
input shape (a directory of strace text, an ``.elog`` store, a CSV
dump, the simulator); a :class:`TraceSource` factors the common
contract out:

- :meth:`TraceSource.iter_cases` yields the paper's cases one at a
  time as :class:`~repro.ingest.parallel.CaseColumns` — the columnar
  wire format of the parallel ingestion engine, which is also the
  ``.elog`` writer's input shape. Every case carries its
  :class:`~repro.strace.resume.MergeStats`; :func:`combine_merge_stats`
  folds them into one diagnostic record.
- :meth:`TraceSource.event_log` assembles the whole source into an
  :class:`~repro.core.eventlog.EventLog`. The default implementation
  feeds ``iter_cases`` through the engine's shared frame assembly
  (:func:`~repro.ingest.parallel.frame_from_case_columns`), so any
  source that can enumerate cases gets a correct log for free;
  sources with a faster direct path override it.
- Capability flags (:attr:`supports_workers`,
  :attr:`supports_recursive`, :attr:`supports_tail`) declare which
  ingest options a source honors, so a requested-but-unsupported
  option warns (:class:`UnsupportedSourceOptionWarning`) instead of
  being silently dropped.

Sources are constructed directly or through the URI registry
(:func:`repro.sources.open_source`); new backends are one subclass and
one :func:`~repro.sources.registry.register_source` call — no new
plumbing through the consumers.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, ClassVar, Iterable, Iterator

import numpy as np

from repro.core.frame import MISSING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.eventlog import EventLog
    from repro.ingest.parallel import CaseColumns
    from repro.strace.resume import MergeStats


class UnsupportedSourceOptionWarning(UserWarning):
    """An ingest option was requested that this source cannot honor."""


@dataclass(frozen=True)
class SourceOptions:
    """The common ingest knobs every consumer may forward to a source.

    Sources pick the subset they support at construction; the registry
    (:func:`~repro.sources.registry.open_source`) checks the rest
    against the capability flags and warns about the remainder.
    """

    workers: int | None = None
    recursive: bool = False
    strict: bool = True
    cids: set[str] | None = None


class TraceSource(abc.ABC):
    """One place events come from: batch, store, foreign format, or
    synthetic.

    Subclasses set :attr:`scheme` (their URI prefix in the registry)
    and the capability flags, and implement :meth:`iter_cases`.
    """

    #: URI scheme under which the source registers (``"strace"`` →
    #: ``open_source("strace:traces/")``).
    scheme: ClassVar[str] = ""
    #: Whether ``workers=N`` fans parsing out (only sources that parse
    #: independent per-case inputs can).
    supports_workers: ClassVar[bool] = False
    #: Whether ``recursive=True`` changes what is discovered.
    supports_recursive: ClassVar[bool] = False
    #: Whether ``strict=False`` (CLI ``--lenient``) relaxes anything —
    #: only sources that run the strace tokenizer/merger have a
    #: lenient mode.
    supports_strict: ClassVar[bool] = False
    #: Whether the underlying input can grow and be tailed live
    #: (:mod:`repro.live` can follow it).
    supports_tail: ClassVar[bool] = False

    @abc.abstractmethod
    def iter_cases(self) -> "Iterator[CaseColumns]":
        """Yield every case in deterministic order.

        The order defines downstream frame layout (and ``.elog``
        append order), so it must be reproducible run to run.
        """

    def event_log(self) -> "EventLog":
        """Materialize the source as an in-memory event-log."""
        from repro.core.eventlog import EventLog
        from repro.ingest.parallel import frame_from_case_columns

        return EventLog(frame_from_case_columns(list(self.iter_cases())))

    def describe(self) -> str:
        """One-line human description (CLI messages, warnings)."""
        return f"{self.scheme} source"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.describe()!r})"


def combine_merge_stats(
        stats: "Iterable[MergeStats]") -> "MergeStats":
    """Fold per-case :class:`MergeStats` into one aggregate record."""
    from repro.strace.resume import MergeStats

    total = MergeStats()
    for part in stats:
        total.merged_pairs += part.merged_pairs
        total.dropped_restarts += part.dropped_restarts
        total.skipped_signals += part.skipped_signals
        total.skipped_exits += part.skipped_exits
        total.orphan_unfinished += part.orphan_unfinished
        total.orphan_resumed += part.orphan_resumed
        total.decode_replacements += part.decode_replacements
    return total


# -- shared case-assembly helpers ---------------------------------------------


def _localize_codes(codes: np.ndarray, decode: Callable[[int], str],
                    ) -> tuple[np.ndarray, list[str]]:
    """Re-encode global pool codes as local first-occurrence codes.

    Returns ``(local_codes, strings)`` in the convention of
    :class:`~repro.ingest.parallel.CaseColumns`: code ``i`` means
    ``strings[i]``, strings ordered by first occurrence in ``codes``,
    and negative input codes (MISSING) pass through unchanged.
    """
    local = np.full(len(codes), MISSING, dtype=np.int32)
    strings: list[str] = []
    present = codes != MISSING
    if not present.any():
        return local, strings
    values = codes[present].astype(np.int64)
    uniq, first, inverse = np.unique(values, return_index=True,
                                     return_inverse=True)
    order = np.argsort(first, kind="stable")
    rank = np.empty(len(uniq), dtype=np.int32)
    rank[order] = np.arange(len(uniq), dtype=np.int32)
    local[present] = rank[inverse]
    strings = [decode(int(uniq[i])) for i in order]
    return local, strings


def iter_cases_of_log(event_log: "EventLog") -> "Iterator[CaseColumns]":
    """Slice an in-memory event-log back into per-case columns.

    The generic bridge for sources that materialize a whole
    :class:`EventLog` first (CSV, foreign adapters): cases come out in
    sorted case-id order with local first-occurrence string coding —
    exactly the shape :meth:`EventLogWriter.add_case_arrays` and
    :func:`frame_from_case_columns` consume. Merge diagnostics are
    empty: these sources never see strace's unfinished/resumed splits.

    A case whose events disagree on host, cid or rid (possible in CSV
    input, where the case key is the ``f"{cid}{rid}"`` concatenation:
    distinct hosts always collide, and e.g. cid ``a``/rid ``12`` and
    cid ``a1``/rid ``2`` both key as ``a12``) cannot be represented in
    the per-case column form — its identity carries a single
    (cid, host, rid) — so it raises
    :class:`~repro._util.errors.SourceError` rather than silently
    relabeling events with the first row's identity.
    """
    from repro._util.errors import SourceError
    from repro.ingest.parallel import CaseColumns
    from repro.strace.naming import TraceFileName
    from repro.strace.resume import MergeStats

    pools = event_log.frame.pools
    for case_id, case_frame in event_log.iter_cases():
        for column, pool in (("host", pools.hosts),
                             ("cid", pools.cids), ("rid", None)):
            distinct = np.unique(case_frame.column(column))
            if len(distinct) > 1:
                values = sorted(
                    int(v) if pool is None else pool.decode(int(v))
                    for v in distinct)
                raise SourceError(
                    f"case {case_id!r} spans {column}s {values}; "
                    f"per-case storage keys a case by one "
                    f"(cid, host, rid) — split the input or "
                    f"disambiguate the colliding identities")
        name = TraceFileName(
            cid=pools.cids.decode(int(case_frame.column("cid")[0])),
            host=pools.hosts.decode(int(case_frame.column("host")[0])),
            rid=int(case_frame.column("rid")[0]))
        call, calls = _localize_codes(case_frame.column("call"),
                                      pools.calls.decode)
        fp, paths = _localize_codes(case_frame.column("fp"),
                                    pools.paths.decode)
        yield CaseColumns(
            name=name,
            pid=case_frame.column("pid").astype(np.int64, copy=False),
            start=case_frame.column("start").astype(np.int64, copy=False),
            dur=case_frame.column("dur").astype(np.int64, copy=False),
            size=case_frame.column("size").astype(np.int64, copy=False),
            call=call, fp=fp, calls=calls, paths=paths,
            merge_stats=MergeStats())


def case_columns_from_text(name, text: str, *, strict: bool = True,
                           path_label: str | None = None,
                           ) -> "CaseColumns":
    """Parse in-memory strace text into one case's columns.

    The exact pipeline of :func:`~repro.strace.reader.read_trace_file`
    minus the file and byte-decode steps: tokenize each line, merge
    unfinished/resumed pairs, columnarize. Lets synthetic producers
    (the simulator) feed the analysis without a temp directory while
    staying byte-identical to the write-files-then-ingest path.
    """
    from repro.ingest.parallel import case_to_columns
    from repro.strace.reader import TraceCase
    from repro.strace.resume import merge_unfinished
    from repro.strace.tokenizer import tokenize_line

    tokens = (
        tokenize_line(line, path=path_label, lineno=lineno, default_pid=0)
        for lineno, line in enumerate(text.splitlines(), start=1)
        if line.strip())
    records, stats = merge_unfinished(tokens, path=path_label,
                                      strict=strict)
    return case_to_columns(
        TraceCase(name=name, records=records, merge_stats=stats))

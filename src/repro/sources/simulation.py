"""``sim:`` — run a :mod:`repro.simulate` workload straight into
columns, no temp directory.

``open_source("sim:ior?ranks=4&segments=1")`` simulates the workload,
renders each rank's records to strace text *in memory*, and pushes the
text through the normal tokenizer → unfinished/resumed merger →
columnarizer. The result is byte-identical to writing the trace files
to disk and ingesting the directory (same text, same parse, same
sorted-by-filename case order) — pinned by the source equivalence
tests — which makes ``sim:`` the zero-setup demo and test input for
every CLI subcommand.

Workloads and their ``?key=value`` options (all optional):

- ``sim:ls`` — the paper's Fig. 1 example, six cases (3× ``ls``,
  3× ``ls -l``). Options: ``stagger_us``.
- ``sim:ior`` — the IOR simulator (Fig. 7). Options: ``ranks``,
  ``ranks_per_node``, ``transfer_kib``, ``block_mib``, ``segments``,
  ``seed`` (ints); ``fpp``, ``trace_lseek`` (bools); ``api``
  (``posix``/``mpiio``); ``cid``, ``test_file`` (strings).
- ``sim:checkpoint`` — the checkpoint/restart workload. Options:
  ``ranks``, ``ranks_per_node``, ``steps``, ``seed`` (ints);
  ``shared_file``, ``restart`` (bools); ``cid`` (string).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterator

from repro._util.errors import SourceError
from repro.sources.base import (
    SourceOptions,
    TraceSource,
    case_columns_from_text,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ingest.parallel import CaseColumns
    from repro.simulate.recording import ProcessRecorder

_TRUE = frozenset({"1", "true", "yes", "on"})
_FALSE = frozenset({"0", "false", "no", "off"})


def _coerce(workload: str, key: str, value: str, kind) -> object:
    if kind is int:
        try:
            return int(value)
        except ValueError:
            raise SourceError(
                f"sim:{workload}: option {key!r} must be an integer "
                f"(got {value!r})") from None
    if kind is bool:
        lowered = value.lower()
        if lowered in _TRUE:
            return True
        if lowered in _FALSE:
            return False
        raise SourceError(
            f"sim:{workload}: option {key!r} must be a boolean "
            f"(got {value!r}; use 1/0, true/false, yes/no, on/off)")
    return value


def _parse_options(workload: str, options: dict[str, str],
                   schema: dict[str, type]) -> dict[str, object]:
    unknown = set(options) - set(schema)
    if unknown:
        raise SourceError(
            f"sim:{workload}: unknown option(s) {sorted(unknown)} "
            f"(valid: {sorted(schema)})")
    return {key: _coerce(workload, key, value, schema[key])
            for key, value in options.items()}


#: (recorders, trace_calls) of one simulated run.
_SimRun = "tuple[list[ProcessRecorder], frozenset[str] | None]"


def _run_ls(opts: dict[str, object]) -> "_SimRun":
    from repro.simulate.workloads.ls import fig1_recorders

    ls_recorders, ls_l_recorders = fig1_recorders(
        stagger_us=int(opts.get("stagger_us", 150)))
    return ls_recorders + ls_l_recorders, None


def _run_ior(opts: dict[str, object]) -> "_SimRun":
    from repro.simulate.strace_writer import (
        EXPERIMENT_A_CALLS,
        EXPERIMENT_B_CALLS,
    )
    from repro.simulate.workloads.ior import IORConfig, simulate_ior

    config = IORConfig(
        ranks=int(opts.get("ranks", 8)),
        ranks_per_node=int(opts.get("ranks_per_node", 4)),
        transfer_size=int(opts.get("transfer_kib", 1024)) << 10,
        block_size=int(opts.get("block_mib", 16)) << 20,
        segments=int(opts.get("segments", 3)),
        file_per_process=bool(opts.get("fpp", False)),
        api=str(opts.get("api", "posix")),
        cid=str(opts.get("cid", "ior")),
        test_file=str(opts.get("test_file", "/p/scratch/ssf/test")),
        seed=int(opts.get("seed", 4242)),
    )
    calls = (EXPERIMENT_B_CALLS if opts.get("trace_lseek", False)
             else EXPERIMENT_A_CALLS)
    return simulate_ior(config).recorders, calls


def _run_checkpoint(opts: dict[str, object]) -> "_SimRun":
    from repro.simulate.workloads.checkpoint import (
        CheckpointConfig,
        simulate_checkpoint,
    )

    config = CheckpointConfig(
        ranks=int(opts.get("ranks", 8)),
        ranks_per_node=int(opts.get("ranks_per_node", 4)),
        steps=int(opts.get("steps", 2)),
        shared_file=bool(opts.get("shared_file", False)),
        restart=bool(opts.get("restart", True)),
        cid=str(opts.get("cid", "ckpt")),
        seed=int(opts.get("seed", 303)),
    )
    return simulate_checkpoint(config).recorders, None


#: workload name → (option schema, runner). The sim: URI grammar is
#: data-driven: adding a workload here is the whole integration.
_WORKLOADS: dict[str, tuple[dict[str, type], Callable]] = {
    "ls": ({"stagger_us": int}, _run_ls),
    "ior": ({"ranks": int, "ranks_per_node": int, "transfer_kib": int,
             "block_mib": int, "segments": int, "seed": int,
             "fpp": bool, "trace_lseek": bool, "api": str, "cid": str,
             "test_file": str}, _run_ior),
    "checkpoint": ({"ranks": int, "ranks_per_node": int, "steps": int,
                    "seed": int, "shared_file": bool, "restart": bool,
                    "cid": str}, _run_checkpoint),
}


class SimulationSource(TraceSource):
    """A simulated workload as a first-class trace source.

    Deterministic for fixed options (the simulators are seeded); the
    run happens lazily at first ``iter_cases``/``event_log`` and is
    re-run per call (runs are cheap at test scale and the source stays
    stateless).
    """

    scheme = "sim"
    # strict governs the unfinished/resumed merger the rendered text
    # runs through, same as for on-disk traces.
    supports_strict = True

    def __init__(self, workload: str,
                 options: dict[str, str] | None = None, *,
                 strict: bool = True,
                 cids: set[str] | None = None) -> None:
        if workload not in _WORKLOADS:
            raise SourceError(
                f"unknown sim workload {workload!r} "
                f"(valid: {sorted(_WORKLOADS)})")
        schema, self._runner = _WORKLOADS[workload]
        self.workload = workload
        self.options = _parse_options(workload, options or {}, schema)
        self.strict = strict
        self.cids = cids

    @classmethod
    def from_uri(cls, target: str, options: dict[str, str],
                 opts: SourceOptions) -> "SimulationSource":
        return cls(target, options, strict=opts.strict, cids=opts.cids)

    def describe(self) -> str:
        return f"simulated workload sim:{self.workload}"

    def iter_cases(self) -> "Iterator[CaseColumns]":
        """Simulate, render per-rank strace text, parse, columnarize.

        Text is rendered in recorder order (matching
        :func:`~repro.simulate.strace_writer.write_trace_files`) but
        yielded sorted by trace-file name — the order directory
        ingestion would produce, so downstream frames are identical to
        the write-then-ingest path.
        """
        from repro.simulate.strace_writer import write_strace_text
        from repro.strace.naming import parse_trace_filename

        recorders, trace_calls = self._runner(self.options)
        rendered: list[tuple[str, str]] = []
        for recorder in recorders:
            if self.cids is not None and recorder.cid not in self.cids:
                continue
            rendered.append((
                recorder.filename(),
                write_strace_text(recorder, trace_calls=trace_calls)))
        for filename, text in sorted(rendered):
            yield case_columns_from_text(
                parse_trace_filename(filename), text,
                strict=self.strict,
                path_label=f"sim:{self.workload}/{filename}")

"""``strace:`` — a directory of ``<cid>_<host>_<rid>.st`` trace files.

The paper's native input (Sec. III), wrapped over the parallel
ingestion engine (:mod:`repro.ingest`): discovery is sorted-path
deterministic, per-file parsing fans out over ``workers`` processes,
and both the streaming case iterator and the whole-log fast path are
byte-identical to the legacy ``EventLog.from_strace_dir`` — pinned by
the golden-fingerprint and equivalence suites.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

from repro.sources.base import SourceOptions, TraceSource
from repro.sources.registry import require_no_options

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.eventlog import EventLog
    from repro.ingest.parallel import CaseColumns


class StraceDirSource(TraceSource):
    """Batch ingestion of a directory of strace text files.

    The only source whose input is a set of independent files, hence
    the only one where ``workers`` buys parse overlap and where
    ``recursive`` changes discovery. It is also tailable: a growing
    directory can be followed live by :mod:`repro.live`.
    """

    scheme = "strace"
    supports_workers = True
    supports_recursive = True
    supports_strict = True
    supports_tail = True

    def __init__(self, directory: str | os.PathLike[str], *,
                 cids: set[str] | None = None,
                 strict: bool = True,
                 recursive: bool = False,
                 workers: int | None = None) -> None:
        self.directory = Path(directory)
        self.cids = cids
        self.strict = strict
        self.recursive = recursive
        self.workers = workers

    @classmethod
    def from_uri(cls, target: str, options: dict[str, str],
                 opts: SourceOptions) -> "StraceDirSource":
        require_no_options(cls.scheme, options)
        return cls(target, cids=opts.cids, strict=opts.strict,
                   recursive=opts.recursive, workers=opts.workers)

    def describe(self) -> str:
        return f"strace trace directory {self.directory}"

    def iter_cases(self) -> "Iterator[CaseColumns]":
        """Stream cases in sorted-path order, ``workers`` at a time.

        Backed by :func:`~repro.ingest.parallel.iter_case_columns`
        (bounded in-flight window), so a slow consumer — the ``.elog``
        writer — keeps memory at O(workers · case).
        """
        from repro.ingest.parallel import iter_case_columns, resolve_workers
        from repro.strace.reader import discover_trace_files

        found = discover_trace_files(self.directory, cids=self.cids,
                                     recursive=self.recursive)
        return iter_case_columns(
            found, strict=self.strict,
            workers=resolve_workers(self.workers, len(found)))

    def event_log(self) -> "EventLog":
        """The whole-log fast path (list-shaped pool map)."""
        from repro.core.eventlog import EventLog
        from repro.ingest.parallel import ingest_event_frame

        return EventLog(ingest_event_frame(
            self.directory, cids=self.cids, strict=self.strict,
            recursive=self.recursive, workers=self.workers))

"""The :class:`Alert` record — what a firing rule produces.

An alert is a *structured* observation, not a log line: sinks render it
(stderr line, JSONL row, webhook payload), the watch pane highlights
it, and the checkpoint sidecar persists it, all from the same fields.

Two layers of identity matter:

- :attr:`Alert.identity` — ``(rule, kind, subject)`` — names *what*
  fired, independent of when. The live-equals-batch discipline of the
  rest of the system extends to alerting through it: for latched rules
  over monotone conditions, the multiset of identities fired over a
  watch is a deterministic function of the final directory, regardless
  of how polls sliced the growth (pinned by
  ``tests/test_alerts/test_alert_properties.py``).
- the full record — observed value, threshold, poll number, event
  count — carries the point-in-time measurement for operators; it
  naturally varies with the poll schedule.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass


@dataclass(frozen=True, slots=True)
class Alert:
    """One firing of one alerting rule.

    Attributes
    ----------
    rule:
        The user-given rule name (the ``name =`` of the rules file).
    kind:
        The rule type (``new_edge``, ``stat_threshold``, ...).
    subject:
        What fired: an edge label (``"a -> b"``), an activity (with
        newlines flattened to spaces), or a case id.
    message:
        Human-readable one-liner, ready for a terminal or a pager.
    value:
        The observed measurement that crossed the rule (edge count,
        metric value, ratio, age in µs) — ``None`` for rules without
        a natural scalar.
    threshold:
        The configured bound the value crossed, if any.
    n_poll:
        Poll sequence number of the refresh that fired the alert
        (counts across checkpoint restarts).
    total_events:
        Records sealed when the alert fired.
    """

    rule: str
    kind: str
    subject: str
    message: str
    value: float | None = None
    threshold: float | None = None
    n_poll: int = 0
    total_events: int = 0

    @property
    def identity(self) -> tuple[str, str, str]:
        """Schedule-independent identity: ``(rule, kind, subject)``."""
        return (self.rule, self.kind, self.subject)

    def to_json(self) -> dict:
        """Plain-data form (JSONL sink, webhook payload, checkpoint)."""
        return asdict(self)

    @classmethod
    def from_json(cls, data: dict) -> "Alert":
        """Inverse of :meth:`to_json` (checkpoint restore)."""
        value = data.get("value")
        threshold = data.get("threshold")
        return cls(
            rule=str(data["rule"]),
            kind=str(data["kind"]),
            subject=str(data["subject"]),
            message=str(data["message"]),
            value=None if value is None else float(value),
            threshold=None if threshold is None else float(threshold),
            n_poll=int(data.get("n_poll", 0)),
            total_events=int(data.get("total_events", 0)),
        )

    def render_line(self) -> str:
        """The one-line terminal form shared by the stderr sink and the
        watch pane: ``!! [rule] message``."""
        return f"!! [{self.rule}] {self.message}"

"""The alert engine: rules × one refresh delta → routed alerts.

:class:`AlertEngine` is evaluated once per
:meth:`~repro.live.engine.LiveIngest.poll` by the watch loop. Each
:meth:`~AlertEngine.evaluate`:

1. snapshots the live engine (graph, O(delta)-assembled statistics,
   watermark ages) into one shared
   :class:`~repro.alerts.rules.RefreshContext` — rules never touch the
   live engine directly;
2. runs every rule, collecting the alerts whose latched conditions
   newly tripped this refresh;
3. appends them to the persistent :attr:`history` *first*, then fans
   them out to the sinks (a crashing sink cannot lose an alert).

Attach the engine to the :class:`~repro.live.engine.LiveIngest`
(``LiveIngest(..., alerts=engine)``) and checkpoint sidecars (v3)
persist the rule latches and the alert history: a restarted watcher
neither re-fires alerts its previous life already paged nor forgets
them.

Basic programmatic use (files usually come from ``--rules``)::

    >>> from repro.alerts import AlertEngine, StatThresholdRule
    >>> engine = AlertEngine()
    >>> engine.add_rule(StatThresholdRule(
    ...     "hot-activity", metric="event_count", op=">", value=1000))
    AlertEngine(1 rules, 0 sinks, 0 fired)
    >>> [rule.name for rule in engine.rules]
    ['hot-activity']
"""

from __future__ import annotations

import os
import time
import warnings
from typing import TYPE_CHECKING, Callable

from repro.alerts.config import load_rules_file
from repro.alerts.model import Alert
from repro.alerts.queue import DeliveryQueue, QueueConfig
from repro.alerts.rules import AlertConfigError, RefreshContext, Rule
from repro.alerts.sinks import (AlertSink, SinkFailureThrottle,
                                throttled_warn)
from repro.core.dfg import DFG
from repro.core.statistics import IOStatistics
from repro.telemetry.spans import NULL_TELEMETRY

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.live.engine import LiveIngest, PollResult


def empty_alert_state() -> dict:
    """The alert state a fresh (or alert-less) watch persists —
    also what a v2 sidecar upgrades to."""
    return {"rules": {}, "history": []}


class AlertEngine:
    """Declarative threshold rules over live refresh deltas.

    Parameters
    ----------
    rules:
        Initial :class:`~repro.alerts.rules.Rule` list (extend with
        :meth:`add_rule`).
    sinks:
        Where fired alerts are routed besides :attr:`history` and the
        watch pane (:mod:`repro.alerts.sinks`).
    baseline:
        Optional reference run to compare against: any trace-source
        spec (``"elog:good.elog"``, ``"sim:ior?ranks=4"``, a bare
        path). Resolved lazily on first evaluation *with the live
        engine's mapping*, so baseline activities live in the same
        namespace as live ones.
    history_limit:
        Cap on the full alert records kept in :attr:`history` (and
        therefore rewritten into every checkpoint). Oldest records
        beyond the cap are *compacted* into per-identity counts —
        :attr:`n_fired` and restart-dedup stay exact while the
        sidecar stops growing with a chatty rule. ``None`` (default)
        keeps everything.
    clock:
        Wall-clock source for rule cooldown windows (injectable for
        tests); ``None`` disables cooldown gating entirely.
    queue:
        Optional :class:`~repro.alerts.queue.QueueConfig`: route fired
        alerts through a bounded background
        :class:`~repro.alerts.queue.DeliveryQueue` instead of emitting
        to the sinks inline, so poll wall-time stays independent of
        sink latency. ``None`` (default) keeps synchronous delivery.
        Call :meth:`shutdown` (the watch loop's ``finalize()`` does)
        to drain it.
    """

    def __init__(self, rules: "list[Rule] | None" = None, *,
                 sinks: "list[AlertSink] | None" = None,
                 baseline: str | os.PathLike[str] | None = None,
                 history_limit: int | None = None,
                 clock: Callable[[], float] | None = time.time,
                 queue: QueueConfig | None = None) -> None:
        if history_limit is not None and history_limit < 1:
            raise AlertConfigError(
                f"history_limit must be >= 1 (got {history_limit})")
        self.rules: list[Rule] = list(rules or [])
        self.sinks: list[AlertSink] = list(sinks or [])
        self.baseline = os.fspath(baseline) if baseline is not None \
            else None
        self.history_limit = history_limit
        self.clock = clock
        #: The newest alert records, full-fidelity (checkpoint-
        #: persisted, so the span covers watcher restarts); bounded
        #: by ``history_limit``.
        self.history: list[Alert] = []
        #: identity -> count of alerts compacted out of :attr:`history`
        #: (empty until a ``history_limit`` overflows).
        self.compacted: dict[tuple[str, str, str], int] = {}
        #: Pre-compaction export callback: called with the full alert
        #: records *about to* be folded into :attr:`compacted` counts,
        #: before the fold discards their detail. The run catalog's
        #: :class:`~repro.catalog.export.AlertExportBuffer` is the
        #: standard consumer; any ``Callable[[list[Alert]], None]``
        #: works. Without a hook, the first lossy compaction warns
        #: once.
        self.export_hook: Callable[[list[Alert]], None] | None = None
        self._warned_compaction_loss = False
        self._baseline_pair: tuple[DFG, IOStatistics] | None = None
        self._prev_dfg: DFG | None = None
        self._prev_stats: IOStatistics | None = None
        # Warning throttles for sinks that *raise* out of emit() (a
        # sink's own failure handling uses its .throttle); keyed by
        # sink index so two instances of one class stay independent.
        self._sink_throttles: dict[int, SinkFailureThrottle] = {}
        #: Background delivery queue (``[sinks.queue]``), or ``None``
        #: for synchronous inline delivery.
        self.delivery: DeliveryQueue | None = None
        if queue is not None:
            self.delivery = DeliveryQueue(
                self._deliver_alert, maxsize=queue.maxsize)

    @classmethod
    def from_rules_file(cls, path: str | os.PathLike[str], *,
                        baseline: str | os.PathLike[str] | None = None,
                        extra_sinks: "list[AlertSink] | None" = None,
                        ) -> "AlertEngine":
        """Build from a TOML/JSON rules file (see ``docs/rules.md``).

        ``baseline`` overrides the file's ``baseline =`` entry (the
        CLI's ``--baseline`` flag). ``extra_sinks`` are appended after
        the file's ``[sinks]`` (the CLI's ``--alert-log`` jsonl sink,
        a fleet job's per-job ``alert_log``). The configuration is
        :meth:`validate`-d before returning: a baseline-requiring rule
        without a baseline, or an unresolvable baseline source, fails
        here — at startup — not minutes into the first poll of a huge
        directory.
        """
        config = load_rules_file(path)
        chosen = baseline if baseline is not None else config.baseline
        engine = cls(config.rules,
                     sinks=[*config.sinks, *(extra_sinks or [])],
                     baseline=chosen,
                     history_limit=config.history_limit,
                     queue=config.queue)
        engine.validate()
        return engine

    # -- configuration -----------------------------------------------------

    def validate(self) -> "AlertEngine":
        """Fail fast on configurations that cannot ever evaluate.

        Checks that every baseline-requiring rule
        (``absent_from_baseline``, ``against = "baseline"``) has a
        baseline configured, and that the baseline spec itself
        resolves to a source (missing path, unknown scheme). Called by
        :meth:`from_rules_file`; call it yourself after programmatic
        :meth:`add_rule` chains if you want the same startup
        guarantee — evaluation re-checks lazily either way.
        """
        if self.baseline is None:
            needy = [rule.name for rule in self.rules
                     if rule.needs_baseline]
            if needy:
                raise AlertConfigError(
                    f"rule(s) {', '.join(map(repr, needy))} compare "
                    f"against a baseline, but no baseline source is "
                    f"configured (set baseline = \"...\" in the rules "
                    f"file or pass --baseline)")
        else:
            from repro.sources import open_source

            # Resolve (not ingest) the spec: catches missing paths and
            # unknown schemes now; the log itself is built lazily at
            # first evaluation, with the live engine's mapping.
            open_source(self.baseline)
        return self

    def add_rule(self, rule: Rule) -> "AlertEngine":
        """Register a rule (chainable)."""
        self.rules.append(rule)
        return self

    def add_sink(self, sink: AlertSink) -> "AlertEngine":
        """Register a sink (chainable)."""
        self.sinks.append(sink)
        return self

    @property
    def n_fired(self) -> int:
        """Alerts fired over the (checkpoint-spanning) lifetime —
        full records still in :attr:`history` plus everything
        compacted into counts."""
        return len(self.history) + sum(self.compacted.values())

    # -- evaluation --------------------------------------------------------

    def evaluate(self, engine: "LiveIngest",
                 result: "PollResult") -> list[Alert]:
        """Run every rule against the refresh that produced ``result``.

        Returns the alerts fired by *this* refresh (already recorded
        in :attr:`history` and routed to the sinks). Call once per
        poll — the previous-snapshot baseline the ``against =
        "previous"`` rules compare to advances here.
        """
        telemetry = getattr(engine, "telemetry", None) or NULL_TELEMETRY
        with telemetry.phase("alerts"):
            current = engine.snapshot_dfg()
            stats = engine.statistics()
            baseline_dfg, baseline_stats = self._baseline_for(engine)
            ctx = RefreshContext(
                n_poll=result.n_poll,
                total_events=result.total_events,
                current=current,
                previous=self._prev_dfg,
                stats=stats,
                previous_stats=self._prev_stats,
                baseline_dfg=baseline_dfg,
                baseline_stats=baseline_stats,
                watermark_ages=engine.watermark_ages(),
                now=self.clock() if self.clock is not None else None,
            )
            fired: list[Alert] = []
            for rule in self.rules:
                fired.extend(rule.evaluate(ctx))
            self._prev_dfg = current
            self._prev_stats = stats
            self.history.extend(fired)
            self._compact()
        for alert in fired:
            if self.delivery is not None:
                # Background road: evaluate() returns as soon as the
                # alert is queued; the worker thread runs the same
                # _deliver_alert fan-out later. The alert is already
                # safe in the history (and the next checkpoint) above.
                self.delivery.submit(alert, telemetry)
            else:
                self._deliver_alert(alert, telemetry, in_phase=True)
        if telemetry.enabled:
            if fired:
                telemetry.count("alerts_fired_total", len(fired))
            self._record_sink_metrics(telemetry)
            if self.delivery is not None:
                telemetry.gauge_set("sink_queue_depth",
                                    self.delivery.depth)
                telemetry.count_total("sink_queue_dropped_total",
                                      self.delivery.n_dropped)
                telemetry.count_total("sink_queue_delivered_total",
                                      self.delivery.n_delivered)
        return fired

    def _deliver_alert(self, alert: Alert, telemetry,
                       *, in_phase: bool = False) -> None:
        """Fan one alert out to every sink.

        Shared by inline delivery (from :meth:`evaluate`, inside the
        poll) and the background :class:`DeliveryQueue` worker —
        throttles, warnings and per-sink metrics are identical on both
        roads. ``in_phase`` wraps each emit in a per-sink telemetry
        phase; only the poll thread may do that (poll spans are not
        thread-safe), so the queue worker leaves it off.
        """
        for index, sink in enumerate(self.sinks):
            # The paging path must not take down the monitoring
            # path: a crashing sink (full disk, dead pager, buggy
            # user sink) warns — rate-limited per sink — and the
            # alert is already safe in the history.
            label = f"{type(sink).__name__}#{index}"
            began = time.perf_counter()
            try:
                if in_phase:
                    with telemetry.phase(f"sink:{label}"):
                        sink.emit(alert)
                else:
                    sink.emit(alert)
            except Exception as exc:
                throttled_warn(
                    self._sink_throttle(index),
                    f"alert sink {type(sink).__name__} failed for "
                    f"{alert.identity}: {exc}")
            else:
                self._sink_throttle(index).record_success()
            if telemetry.enabled:
                telemetry.observe(
                    "sink_seconds", time.perf_counter() - began,
                    sink=label)

    def drain(self, timeout: float | None = None) -> bool:
        """Wait for every queued alert to reach the sinks (no-op and
        True when delivery is synchronous)."""
        if self.delivery is None:
            return True
        return self.delivery.drain(timeout)

    def shutdown(self, timeout: float | None = None) -> bool:
        """Drain and stop the background delivery queue. Idempotent;
        a no-op (returning True) for synchronous engines. Called by
        ``LiveIngest.close()`` / the watch loop's ``finalize()``."""
        if self.delivery is None:
            return True
        return self.delivery.close(timeout)

    def _sink_throttle(self, index: int) -> SinkFailureThrottle:
        throttle = self._sink_throttles.get(index)
        if throttle is None:
            throttle = self._sink_throttles[index] = SinkFailureThrottle()
        return throttle

    def _record_sink_metrics(self, telemetry) -> None:
        """Mirror sink-owned tallies into the registry and publish the
        worst failure streak (the ``/healthz`` sink check)."""
        telemetry.count_total(
            "alerts_suppressed_total",
            sum(rule.n_suppressed for rule in self.rules))
        worst_streak = 0
        for index, sink in enumerate(self.sinks):
            label = f"{type(sink).__name__}#{index}"
            own = getattr(sink, "throttle", None)
            raised = self._sink_throttles.get(index)
            failures = suppressed = 0
            for throttle in (own, raised):
                if throttle is None:
                    continue
                failures += throttle.n_failures
                suppressed += throttle.n_suppressed
                worst_streak = max(worst_streak, throttle.streak)
            telemetry.count_total("sink_failures_total", failures,
                                  sink=label)
            telemetry.count_total("sink_warnings_suppressed_total",
                                  suppressed, sink=label)
            retries = getattr(sink, "n_retries", None)
            if retries is not None:
                telemetry.count_total("sink_retries_total", retries,
                                      sink=label)
        telemetry.gauge_set("sink_failure_streak", worst_streak)

    def _baseline_for(self, engine: "LiveIngest",
                      ) -> tuple[DFG | None, IOStatistics | None]:
        if self.baseline is None:
            return None, None
        if self._baseline_pair is None:
            from repro.sources import open_source

            source = open_source(self.baseline)
            supplier = getattr(source, "baseline_pair", None)
            if supplier is not None:
                # A source that stores aggregates rather than events
                # (the run catalog) mines (DFG, stats) directly for
                # the live mapping instead of replaying an event-log.
                self._baseline_pair = supplier(engine.mapping)
            else:
                log = source.event_log()
                mapped = log.with_mapping(engine.mapping)
                self._baseline_pair = (DFG(mapped), IOStatistics(mapped))
        return self._baseline_pair

    def _compact(self) -> None:
        """Fold history overflow into per-identity counts.

        The newest ``history_limit`` records stay full-fidelity;
        everything older degrades to ``identity -> count`` — exactly
        the information :attr:`n_fired` and duplicate accounting need,
        at O(distinct identities) instead of O(firings). This is what
        bounds the sidecar under a flapping rule.

        When an :attr:`export_hook` is attached, the full records are
        handed to it *before* the fold, so detail loss is opt-out (the
        run catalog captures them for the run's alert history);
        without one, the first lossy compaction warns once.
        """
        if self.history_limit is None:
            return
        excess = len(self.history) - self.history_limit
        if excess <= 0:
            return
        discarded = self.history[:excess]
        if self.export_hook is not None:
            try:
                self.export_hook(discarded)
            except Exception as exc:
                # Export is a capture path, not the monitoring path: a
                # failing hook must not take down compaction.
                warnings.warn(
                    f"alert export hook failed; {len(discarded)} "
                    f"compacted alert(s) lost full detail: {exc}",
                    RuntimeWarning, stacklevel=2)
        elif not self._warned_compaction_loss:
            self._warned_compaction_loss = True
            warnings.warn(
                f"alert history_limit={self.history_limit} reached: "
                f"compaction is folding older alerts into counts and "
                f"discarding their detail (attach an export hook or "
                f"record runs to a catalog to capture them); this "
                f"warning fires once per engine",
                RuntimeWarning, stacklevel=2)
        for alert in discarded:
            key = alert.identity
            self.compacted[key] = self.compacted.get(key, 0) + 1
        del self.history[:excess]

    # -- checkpoint state --------------------------------------------------

    def to_state(self) -> dict:
        """JSON-serializable latch + history state (sidecar v3+).

        Latches are keyed by rule name; a restart with a different
        rules file restores what still matches and starts the rest
        fresh. The previous-refresh snapshot is deliberately *not*
        persisted — ``against = "previous"`` deltas are a per-process
        notion, and the first refresh of a new life has no previous.
        Compacted counts (v4) appear only once compaction happened, so
        an engine that never overflowed keeps the v3 state shape.
        """
        state = {
            "rules": {rule.name: rule.latch_state()
                      for rule in self.rules},
            "history": [alert.to_json() for alert in self.history],
        }
        if self.compacted:
            state["compacted"] = [
                [list(identity), count]
                for identity, count in sorted(self.compacted.items())]
        return state

    def restore_state(self, state: dict) -> None:
        """Inverse of :meth:`to_state` (called by checkpoint load)."""
        latches = state.get("rules", {})
        for rule in self.rules:
            if rule.name in latches:
                rule.restore_latch(latches[rule.name])
        self.history = [Alert.from_json(data)
                        for data in state.get("history", [])]
        self.compacted = {
            (str(rule), str(kind), str(subject)): int(count)
            for (rule, kind, subject), count
            in state.get("compacted", [])}
        self._compact()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"AlertEngine({len(self.rules)} rules, "
                f"{len(self.sinks)} sinks, {self.n_fired} fired)")

"""Pluggable alert routing: where fired alerts go besides the pane.

A sink is anything with an ``emit(alert)`` method. The engine fans
every fired alert out to every registered sink *after* recording it in
its history, so a crashing sink can never lose an alert — sink
failures are reported as warnings and the watch keeps running (a
paging path must not take down the monitoring path).

Built-ins:

- :class:`StderrSink` — one ``!! [rule] message`` line per alert on
  stderr (stdout belongs to the watch rendering);
- :class:`JsonlSink` — appends one JSON object per alert to a file,
  opened per emit so the stream survives watcher restarts and is
  tail-able by other tools;
- :class:`CommandSink` — runs a shell command per alert with the JSON
  payload on stdin (webhook escape hatch: ``curl -d @- ...``,
  ``mail``, a cluster pager script).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import warnings
from pathlib import Path
from typing import IO, Protocol, runtime_checkable

from repro.alerts.model import Alert


class AlertSinkWarning(UserWarning):
    """A sink failed to deliver an alert (the alert itself is safe in
    the engine history / checkpoint)."""


@runtime_checkable
class AlertSink(Protocol):
    """Anything that can receive a fired :class:`Alert`."""

    def emit(self, alert: Alert) -> None:  # pragma: no cover - protocol
        ...


class StderrSink:
    """One highlighted line per alert on stderr (stream injectable)."""

    def __init__(self, stream: IO[str] | None = None) -> None:
        self._stream = stream

    def emit(self, alert: Alert) -> None:
        stream = self._stream if self._stream is not None else sys.stderr
        print(alert.render_line(), file=stream)


class JsonlSink:
    """Append alerts as JSON lines to a file.

    The file is opened in append mode per emit: restarted watchers
    extend the same stream, and concurrent readers (``tail -f``,
    ingest into a TSDB) see complete lines only.
    """

    def __init__(self, path: str | os.PathLike[str]) -> None:
        self.path = Path(path)

    def emit(self, alert: Alert) -> None:
        line = json.dumps(alert.to_json(), sort_keys=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")


class CommandSink:
    """Run a shell command per alert, JSON payload on stdin.

    The command is the operator's webhook bridge — it is *their*
    configured code, run with a timeout so a hung pager cannot stall
    the poll loop. Non-zero exits and spawn failures warn
    (:class:`AlertSinkWarning`) instead of raising.
    """

    def __init__(self, command: str, *, timeout: float = 30.0) -> None:
        self.command = command
        self.timeout = timeout

    def emit(self, alert: Alert) -> None:
        payload = json.dumps(alert.to_json(), sort_keys=True)
        try:
            completed = subprocess.run(
                self.command, shell=True, input=payload.encode("utf-8"),
                timeout=self.timeout, capture_output=True)
        except (OSError, subprocess.TimeoutExpired) as exc:
            warnings.warn(
                f"alert command sink failed for {alert.identity}: {exc}",
                AlertSinkWarning, stacklevel=2)
            return
        if completed.returncode != 0:
            warnings.warn(
                f"alert command sink exited {completed.returncode} for "
                f"{alert.identity}: "
                f"{completed.stderr.decode(errors='replace').strip()}",
                AlertSinkWarning, stacklevel=2)

"""Pluggable alert routing: where fired alerts go besides the pane.

A sink is anything with an ``emit(alert)`` method. The engine fans
every fired alert out to every registered sink *after* recording it in
its history, so a crashing sink can never lose an alert — sink
failures are reported as warnings and the watch keeps running (a
paging path must not take down the monitoring path). Those warnings
are rate-limited per sink by :class:`SinkFailureThrottle` (first
failure of a streak + every Nth), with exact failure counts flowing
into the telemetry registry instead of the terminal.

Built-ins:

- :class:`StderrSink` — one ``!! [rule] message`` line per alert on
  stderr (stdout belongs to the watch rendering);
- :class:`JsonlSink` — appends one JSON object per alert to a file,
  opened per emit so the stream survives watcher restarts and is
  tail-able by other tools;
- :class:`CommandSink` — runs a shell command per alert with the JSON
  payload on stdin (webhook escape hatch: ``curl -d @- ...``,
  ``mail``, a cluster pager script);
- :class:`HttpSink` — POSTs the JSON payload to an HTTP(S) endpoint
  directly, with env-sourced auth, a timeout, and bounded
  retry/exponential backoff — the real pager path, replacing the
  shell-out for endpoints that just want the webhook.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
import urllib.error
import urllib.request
import warnings
from pathlib import Path
from typing import IO, Callable, Protocol, runtime_checkable

from repro.alerts.model import Alert
from repro.alerts.rules import AlertConfigError


class AlertSinkWarning(UserWarning):
    """A sink failed to deliver an alert (the alert itself is safe in
    the engine history / checkpoint)."""


#: Throttled sinks warn on the first failure of a streak and every
#: Nth after it.
DEFAULT_WARN_EVERY = 10


class SinkFailureThrottle:
    """Rate limiter for sink-failure warnings.

    A persistently dead webhook used to warn on *every* poll with a
    firing rule — hundreds of identical lines per hour that bury the
    one warning that matters. The throttle collapses a failure streak
    to its first warning plus every ``warn_every``-th, annotating each
    emitted warning with how many were suppressed since the last one.
    Any success resets the streak, so recovery (and the next outage's
    first failure) always warns immediately.

    The lifetime tallies (:attr:`n_failures`, :attr:`n_suppressed`)
    feed the metrics registry
    (``st_inspector_sink_failures_total`` /
    ``..._warnings_suppressed_total``) and the :attr:`streak` feeds
    the ``sink_failure_streak`` health gauge — the warnings get
    quieter, the numbers stay exact.
    """

    __slots__ = ("warn_every", "streak", "n_failures", "n_suppressed",
                 "_since_warn")

    def __init__(self, warn_every: int = DEFAULT_WARN_EVERY) -> None:
        if warn_every < 1:
            raise AlertConfigError(
                f"warn_every must be >= 1 (got {warn_every})")
        self.warn_every = warn_every
        #: Consecutive failures since the last success.
        self.streak = 0
        #: Lifetime failures (this process).
        self.n_failures = 0
        #: Lifetime warnings suppressed (this process).
        self.n_suppressed = 0
        self._since_warn = 0

    def record_success(self) -> None:
        self.streak = 0
        self._since_warn = 0

    def record_failure(self) -> tuple[bool, int]:
        """Account one failure; returns ``(warn_now, n_suppressed_since
        _last_warning)``."""
        self.streak += 1
        self.n_failures += 1
        if self.streak == 1 or self.streak % self.warn_every == 0:
            suppressed = self._since_warn
            self._since_warn = 0
            return True, suppressed
        self._since_warn += 1
        self.n_suppressed += 1
        return False, 0


def throttled_warn(throttle: SinkFailureThrottle, message: str, *,
                   stacklevel: int = 3) -> None:
    """Route one failure's warning through a throttle (see above)."""
    warn_now, suppressed = throttle.record_failure()
    if not warn_now:
        return
    if suppressed:
        message += (f" ({suppressed} earlier failure warning(s) "
                    f"suppressed)")
    warnings.warn(message, AlertSinkWarning, stacklevel=stacklevel)


@runtime_checkable
class AlertSink(Protocol):
    """Anything that can receive a fired :class:`Alert`."""

    def emit(self, alert: Alert) -> None:  # pragma: no cover - protocol
        ...


class StderrSink:
    """One highlighted line per alert on stderr (stream injectable)."""

    def __init__(self, stream: IO[str] | None = None) -> None:
        self._stream = stream

    def emit(self, alert: Alert) -> None:
        stream = self._stream if self._stream is not None else sys.stderr
        print(alert.render_line(), file=stream)


class JsonlSink:
    """Append alerts as JSON lines to a file.

    The file is opened in append mode per emit: restarted watchers
    extend the same stream, and concurrent readers (``tail -f``,
    ingest into a TSDB) see complete lines only.

    The parent directory is created (or validated) at construction —
    a sink that could only ever warn on every emit is a configuration
    error, and it fails at rules-load time naming the path, not
    minutes later at the first firing.
    """

    def __init__(self, path: str | os.PathLike[str]) -> None:
        self.path = Path(path)
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise AlertConfigError(
                f"jsonl sink {str(self.path)!r}: cannot create parent "
                f"directory: {exc}") from exc

    def emit(self, alert: Alert) -> None:
        line = json.dumps(alert.to_json(), sort_keys=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")


class CommandSink:
    """Run a shell command per alert, JSON payload on stdin.

    The command is the operator's webhook bridge — it is *their*
    configured code, run with a timeout so a hung pager cannot stall
    the poll loop. Non-zero exits and spawn failures warn
    (:class:`AlertSinkWarning`) instead of raising.
    """

    def __init__(self, command: str, *, timeout: float = 30.0) -> None:
        self.command = command
        self.timeout = timeout
        self.throttle = SinkFailureThrottle()

    def emit(self, alert: Alert) -> None:
        payload = json.dumps(alert.to_json(), sort_keys=True)
        try:
            completed = subprocess.run(
                self.command, shell=True, input=payload.encode("utf-8"),
                timeout=self.timeout, capture_output=True)
        except (OSError, subprocess.TimeoutExpired) as exc:
            throttled_warn(
                self.throttle,
                f"alert command sink failed for {alert.identity}: {exc}")
            return
        if completed.returncode != 0:
            throttled_warn(
                self.throttle,
                f"alert command sink exited {completed.returncode} for "
                f"{alert.identity}: "
                f"{completed.stderr.decode(errors='replace').strip()}")
        else:
            self.throttle.record_success()


class HttpSink:
    """POST each alert's JSON payload to an HTTP(S) endpoint.

    Parameters
    ----------
    url:
        The endpoint; must be ``http://`` or ``https://``.
    timeout:
        Per-attempt socket timeout in seconds.
    retries:
        Extra attempts after the first (``0`` = single shot). Network
        failures and 5xx responses retry; 4xx responses do not — the
        payload will not get better.
    backoff:
        Sleep before the first retry, doubling per further retry
        (exponential). The worst-case stall of one emit is therefore
        bounded and knowable up front: ``(retries + 1) × timeout +
        backoff × (2^retries - 1)`` — a dead pager endpoint delays
        the poll loop by at most that budget, never indefinitely.
    auth_env:
        Name of an environment variable whose *value* is sent as the
        ``Authorization`` header. The secret stays out of rules files,
        process listings and checkpoints; a missing variable is a
        configuration error at construction, not a 401 storm at the
        first page.

    Delivery failures warn (:class:`AlertSinkWarning`) after the
    retry budget is spent — the alert itself is already safe in the
    engine history.
    """

    def __init__(self, url: str, *, timeout: float = 5.0,
                 retries: int = 2, backoff: float = 0.5,
                 auth_env: str | None = None,
                 opener: "Callable[..., object] | None" = None,
                 sleep: Callable[[float], None] = time.sleep) -> None:
        if not url.startswith(("http://", "https://")):
            raise AlertConfigError(
                f"http sink: url must start with http:// or https:// "
                f"(got {url!r})")
        if timeout <= 0:
            raise AlertConfigError(
                f"http sink {url!r}: timeout must be > 0 (got {timeout})")
        if retries < 0:
            raise AlertConfigError(
                f"http sink {url!r}: retries must be >= 0 (got {retries})")
        if backoff < 0:
            raise AlertConfigError(
                f"http sink {url!r}: backoff must be >= 0 (got {backoff})")
        self.url = url
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self._auth: str | None = None
        if auth_env is not None:
            token = os.environ.get(auth_env)
            if not token:
                raise AlertConfigError(
                    f"http sink {url!r}: auth_env names environment "
                    f"variable {auth_env!r}, which is unset or empty")
            self._auth = token
        self._opener = opener if opener is not None \
            else urllib.request.urlopen
        self._sleep = sleep
        self.throttle = SinkFailureThrottle()
        #: Lifetime retry attempts (attempts beyond each emit's first),
        #: mirrored into ``st_inspector_sink_retries_total``.
        self.n_retries = 0

    def emit(self, alert: Alert) -> None:
        payload = json.dumps(alert.to_json(),
                             sort_keys=True).encode("utf-8")
        headers = {"Content-Type": "application/json"}
        if self._auth is not None:
            headers["Authorization"] = self._auth
        delay = self.backoff
        failure = "no attempt made"
        attempts = 0
        for attempt in range(self.retries + 1):
            request = urllib.request.Request(
                self.url, data=payload, headers=headers, method="POST")
            attempts += 1
            try:
                response = self._opener(request, timeout=self.timeout)
                getattr(response, "close", lambda: None)()
                self.n_retries += attempts - 1
                self.throttle.record_success()
                return
            except urllib.error.HTTPError as exc:
                failure = f"HTTP {exc.code}"
                if exc.code < 500:  # a 4xx will not get better
                    break
            except (urllib.error.URLError, TimeoutError, OSError,
                    ConnectionError) as exc:
                failure = str(exc)
            if attempt < self.retries:
                if delay > 0:
                    self._sleep(delay)
                delay *= 2
        self.n_retries += attempts - 1
        throttled_warn(
            self.throttle,
            f"alert http sink {self.url} failed for {alert.identity} "
            f"after {attempts} attempt(s): {failure}")

"""The alerting rule vocabulary: predicates over one refresh delta.

Every rule sees a :class:`RefreshContext` — the point-in-time snapshot
the watch loop already computes (current/previous DFG, assembled
statistics, optional baseline, per-file watermark ages) — and returns
the :class:`~repro.alerts.model.Alert` records its condition fired
this refresh. Evaluation cost rides on the structures PR 2/3 made
cheap: graphs are O(edges), statistics are the O(delta)-assembled
:class:`~repro.core.statistics.IOStatistics`, so a rules file adds
O(edges + activities) per refresh, never O(events).

**Latching.** Each rule keeps a *tripped set* of subjects whose
condition currently holds: a subject fires when its condition becomes
true and re-arms when it becomes false. For monotone conditions — a
non-sentinel edge exists (edge counts only grow), ``event_count`` /
``total_bytes`` above a bound, an edge reaching a multiple of its
baseline weight — a subject can trip at most once, which makes the
fired-alert identity multiset a deterministic function of the final
directory regardless of the poll schedule, and the tripped set is
persisted in checkpoint sidecars (v3) so restarts never re-fire.
Conditions over non-monotone measurements (``relative_duration``
ratios, ``process_data_rate`` bounds, watermark ages) sample the live
state and are inherently poll-schedule-sensitive; they re-fire after
re-arming by design — that oscillation *is* the signal.

**Cooldown.** A week-long watcher cannot afford a flapping subject
paging on every oscillation: every rule accepts ``cooldown`` (seconds
of wall clock, default 0 = off) and a subject that re-trips within
its cooldown of the last *delivered* firing is silently suppressed —
the latch still updates (so checkpoint restarts stay honest about
what the condition did), only the alert record is withheld and
counted in :attr:`Rule.n_suppressed`. Last-fired timestamps persist
in the sidecar (v4), so a restart inside the cooldown window stays
quiet too.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, field
from typing import Callable

from repro._util.errors import ReproError
from repro.alerts.model import Alert
from repro.core.activity import SENTINELS
from repro.core.dfg import DFG, Edge
from repro.core.statistics import METRIC_NAMES, IOStatistics


class AlertConfigError(ReproError):
    """An alerting rule (or rules file) is malformed.

    Messages always name the offending rule, so ``st-inspector watch
    --rules`` failures point at the exact table to fix.
    """


#: Comparison operators accepted by ``stat_threshold``.
OPS: dict[str, Callable[[float, float], bool]] = {
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "==": operator.eq,
    "!=": operator.ne,
}


def edge_label(edge: Edge) -> str:
    """Canonical one-line name of an edge (activities may hold
    newlines; subjects and latch keys must not)."""
    a1, a2 = edge
    return f"{a1} -> {a2}".replace("\n", " ")


def activity_label(activity: str) -> str:
    """Canonical one-line name of an activity."""
    return activity.replace("\n", " ")


@dataclass
class RefreshContext:
    """Everything one refresh exposes to the rules.

    Built once per poll by :meth:`~repro.alerts.engine.AlertEngine.
    evaluate` and shared across every rule, so no rule re-snapshots
    the live engine.
    """

    #: Poll sequence number (counts across checkpoint restarts).
    n_poll: int
    #: Records sealed so far.
    total_events: int
    #: The standing graph after this poll.
    current: DFG
    #: The graph after the previous evaluated refresh (None on the
    #: first refresh of this process — ``against="previous"`` rules
    #: skip it; the previous-process snapshot is deliberately not
    #: checkpointed, deltas are a per-process notion).
    previous: DFG | None
    #: Full-history statistics after this poll.
    stats: IOStatistics
    #: Statistics of the previous evaluated refresh.
    previous_stats: IOStatistics | None
    #: Graph/statistics of the configured baseline run, if any.
    baseline_dfg: DFG | None
    baseline_stats: IOStatistics | None
    #: Per-case sealing-starvation ages in µs of trace time
    #: (:meth:`~repro.live.engine.LiveIngest.watermark_ages`).
    watermark_ages: dict[str, int] = field(default_factory=dict)
    #: Wall-clock seconds at evaluation time (the alert engine's
    #: injectable clock) — what ``cooldown`` windows are measured
    #: against. ``None`` disables cooldown gating for this refresh.
    now: float | None = None


class Rule:
    """Base class: a named predicate with a persistent tripped set."""

    #: Rule type tag — the ``type =`` of the rules file.
    kind: str = ""

    def __init__(self, name: str, *, cooldown: float = 0.0) -> None:
        if not name:
            raise AlertConfigError("rule without a name")
        if cooldown < 0:
            raise AlertConfigError(
                f"rule {name!r}: cooldown must be >= 0 seconds "
                f"(got {cooldown})")
        self.name = name
        self.cooldown = float(cooldown)
        self._tripped: set[str] = set()
        #: subject -> wall-clock time of its last delivered firing
        #: (tracked only when a cooldown is configured).
        self._last_fired: dict[str, float] = {}
        #: Firings withheld by the cooldown over this life.
        self.n_suppressed = 0

    @property
    def needs_baseline(self) -> bool:
        """Whether this rule's configuration references the baseline
        run — checked eagerly at startup so a rules file that cannot
        ever evaluate fails before the first (possibly huge) poll."""
        return False

    # -- evaluation --------------------------------------------------------

    def evaluate(self, ctx: RefreshContext) -> list[Alert]:
        """Alerts fired by this refresh (may be empty)."""
        raise NotImplementedError

    def _trip(self, subject: str, condition: bool,
              now: float | None = None) -> bool:
        """Latch helper: True exactly when ``subject`` newly trips
        *and* its cooldown window allows a delivery."""
        if condition:
            if subject in self._tripped:
                return False
            self._tripped.add(subject)
            return self._fire_allowed(subject, now)
        self._tripped.discard(subject)
        return False

    def _fire_allowed(self, subject: str, now: float | None) -> bool:
        """Cooldown gate: record/refuse a delivery for ``subject``."""
        if self.cooldown <= 0 or now is None:
            return True
        last = self._last_fired.get(subject)
        if last is not None and now - last < self.cooldown:
            self.n_suppressed += 1
            return False
        self._last_fired[subject] = now
        return True

    # -- checkpoint state --------------------------------------------------

    def latch_state(self) -> dict:
        """JSON-serializable latch state (checkpoint sidecars, v3+;
        ``last_fired`` appears since v4, and only when cooldown
        tracking recorded anything — empty latches keep their v3
        shape)."""
        state: dict = {"tripped": sorted(self._tripped)}
        if self._last_fired:
            state["last_fired"] = dict(sorted(self._last_fired.items()))
        return state

    def restore_latch(self, state: dict) -> None:
        """Inverse of :meth:`latch_state`."""
        self._tripped = {str(key) for key in state.get("tripped", [])}
        self._last_fired = {
            str(subject): float(when)
            for subject, when in state.get("last_fired", {}).items()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"{type(self).__name__}({self.name!r}, "
                f"{len(self._tripped)} tripped)")


class NewEdgeRule(Rule):
    """Fire once per directly-follows relation entering the graph.

    Options
    -------
    pattern:
        Substring filter on the ``"a -> b"`` edge label.
    include_sentinels:
        Also consider ● / ■ edges. Off by default: closing ``(a, ■)``
        edges move as cases grow, so they are poll-schedule noise;
        without them the fired set is exactly the non-sentinel edge
        set of the final graph, schedule-independent.
    absent_from_baseline:
        Only fire for edges the baseline run never produced — the
        ROADMAP's "new red-only edge": with the baseline as the green
        (known-good) half, these are the red-exclusive relations of
        the partition coloring. Requires a configured baseline.
    """

    kind = "new_edge"

    def __init__(self, name: str, *, pattern: str | None = None,
                 include_sentinels: bool = False,
                 absent_from_baseline: bool = False,
                 cooldown: float = 0.0) -> None:
        super().__init__(name, cooldown=cooldown)
        self.pattern = pattern
        self.include_sentinels = include_sentinels
        self.absent_from_baseline = absent_from_baseline

    @property
    def needs_baseline(self) -> bool:
        return self.absent_from_baseline

    def evaluate(self, ctx: RefreshContext) -> list[Alert]:
        if self.absent_from_baseline and ctx.baseline_dfg is None:
            raise AlertConfigError(
                f"rule {self.name!r}: absent_from_baseline requires a "
                f"baseline source (set baseline = \"...\" in the rules "
                f"file or AlertEngine(baseline=...))")
        baseline_edges = (set(ctx.baseline_dfg.edges())
                          if self.absent_from_baseline else None)
        fired: list[Alert] = []
        present: set[str] = set()
        for edge in sorted(ctx.current.edges()):
            if not self.include_sentinels \
                    and (edge[0] in SENTINELS or edge[1] in SENTINELS):
                continue
            label = edge_label(edge)
            if self.pattern is not None and self.pattern not in label:
                continue
            if baseline_edges is not None and edge in baseline_edges:
                continue
            present.add(label)
            if self._trip(label, True, ctx.now):
                suffix = (" (not in baseline)"
                          if self.absent_from_baseline else "")
                fired.append(Alert(
                    rule=self.name, kind=self.kind, subject=label,
                    message=f"new edge {label}{suffix}",
                    value=float(ctx.current.edge_count(*edge)),
                    n_poll=ctx.n_poll, total_events=ctx.total_events))
        # Edges gone from the graph re-arm (only ■-closing edges can
        # vanish; real edges stay tripped forever).
        self._tripped &= present
        return fired


class EdgeWeightRatioRule(Rule):
    """Fire when an edge's observation count reaches a multiple of its
    reference count.

    Options
    -------
    ratio:
        The multiple. ``ratio >= 1`` detects growth (``current >=
        ratio × reference``); ``ratio < 1`` detects collapse
        (``current <= ratio × reference``).
    against:
        ``"previous"`` (the snapshot of the previous refresh — a
        per-refresh spike detector) or ``"baseline"`` (a configured
        known-good run — monotone, fires at most once per edge).
    min_count:
        Reference counts below this are ignored (suppresses 0 → 1
        noise). Default 1.
    pattern, include_sentinels:
        As for :class:`NewEdgeRule`.
    """

    kind = "edge_weight_ratio"

    def __init__(self, name: str, *, ratio: float,
                 against: str = "previous", min_count: int = 1,
                 pattern: str | None = None,
                 include_sentinels: bool = False,
                 cooldown: float = 0.0) -> None:
        super().__init__(name, cooldown=cooldown)
        if ratio <= 0:
            raise AlertConfigError(
                f"rule {name!r}: ratio must be > 0 (got {ratio})")
        if against not in ("previous", "baseline"):
            raise AlertConfigError(
                f"rule {name!r}: against must be 'previous' or "
                f"'baseline' (got {against!r})")
        if min_count < 1:
            raise AlertConfigError(
                f"rule {name!r}: min_count must be >= 1 (got {min_count})")
        self.ratio = ratio
        self.against = against
        self.min_count = min_count
        self.pattern = pattern
        self.include_sentinels = include_sentinels

    @property
    def needs_baseline(self) -> bool:
        return self.against == "baseline"

    def _reference(self, ctx: RefreshContext) -> DFG | None:
        if self.against == "baseline":
            if ctx.baseline_dfg is None:
                raise AlertConfigError(
                    f"rule {self.name!r}: against = 'baseline' requires "
                    f"a baseline source (set baseline = \"...\" in the "
                    f"rules file or AlertEngine(baseline=...))")
            return ctx.baseline_dfg
        return ctx.previous

    def evaluate(self, ctx: RefreshContext) -> list[Alert]:
        reference = self._reference(ctx)
        if reference is None:  # first refresh, nothing to compare yet
            return []
        fired: list[Alert] = []
        for edge in sorted(ctx.current.edges()):
            if not self.include_sentinels \
                    and (edge[0] in SENTINELS or edge[1] in SENTINELS):
                continue
            label = edge_label(edge)
            if self.pattern is not None and self.pattern not in label:
                continue
            ref = reference.edge_count(*edge)
            if ref < self.min_count:
                self._tripped.discard(label)
                continue
            cur = ctx.current.edge_count(*edge)
            observed = cur / ref
            crossed = (observed >= self.ratio if self.ratio >= 1
                       else observed <= self.ratio)
            if self._trip(label, crossed, ctx.now):
                fired.append(Alert(
                    rule=self.name, kind=self.kind, subject=label,
                    message=(f"edge {label} weight x{observed:.2f} vs "
                             f"{self.against} ({cur} vs {ref})"),
                    value=observed, threshold=self.ratio,
                    n_poll=ctx.n_poll, total_events=ctx.total_events))
        return fired


class ActivityLoadRatioRule(Rule):
    """Fire when an activity's statistic reaches a multiple of its
    reference value — "activity load doubled", "data rate collapsed".

    Options
    -------
    ratio:
        ``>= 1`` detects growth, ``< 1`` detects collapse (e.g.
        ``ratio = 0.5`` on ``process_data_rate`` pages when a rate
        halves).
    against:
        ``"previous"`` refresh or configured ``"baseline"`` run.
    metric:
        Any of :data:`~repro.core.statistics.METRIC_NAMES`; default
        ``relative_duration`` (the paper's Load).
    min_value:
        Reference values at or below this are ignored (avoids
        divide-by-nothing noise for activities just appearing).
    pattern:
        Substring filter on the activity name.
    """

    kind = "activity_load_ratio"

    def __init__(self, name: str, *, ratio: float,
                 against: str = "previous",
                 metric: str = "relative_duration",
                 min_value: float = 0.0,
                 pattern: str | None = None,
                 cooldown: float = 0.0) -> None:
        super().__init__(name, cooldown=cooldown)
        if ratio <= 0:
            raise AlertConfigError(
                f"rule {name!r}: ratio must be > 0 (got {ratio})")
        if against not in ("previous", "baseline"):
            raise AlertConfigError(
                f"rule {name!r}: against must be 'previous' or "
                f"'baseline' (got {against!r})")
        if metric not in METRIC_NAMES:
            raise AlertConfigError(
                f"rule {name!r}: unknown metric {metric!r} "
                f"(known: {', '.join(METRIC_NAMES)})")
        self.ratio = ratio
        self.against = against
        self.metric = metric
        self.min_value = min_value
        self.pattern = pattern

    @property
    def needs_baseline(self) -> bool:
        return self.against == "baseline"

    def evaluate(self, ctx: RefreshContext) -> list[Alert]:
        if self.against == "baseline":
            reference = ctx.baseline_stats
            if reference is None:
                raise AlertConfigError(
                    f"rule {self.name!r}: against = 'baseline' requires "
                    f"a baseline source (set baseline = \"...\" in the "
                    f"rules file or AlertEngine(baseline=...))")
        else:
            reference = ctx.previous_stats
            if reference is None:
                return []
        fired: list[Alert] = []
        for activity in sorted(ctx.stats.activities()):
            label = activity_label(activity)
            if self.pattern is not None and self.pattern not in label:
                continue
            if activity not in reference:
                self._tripped.discard(label)
                continue
            ref = reference.metric(activity, self.metric)
            if ref <= self.min_value:
                self._tripped.discard(label)
                continue
            cur = ctx.stats.metric(activity, self.metric)
            observed = cur / ref
            crossed = (observed >= self.ratio if self.ratio >= 1
                       else observed <= self.ratio)
            if self._trip(label, crossed, ctx.now):
                fired.append(Alert(
                    rule=self.name, kind=self.kind, subject=label,
                    message=(f"activity {label}: {self.metric} "
                             f"x{observed:.2f} vs {self.against} "
                             f"({cur:.4g} vs {ref:.4g})"),
                    value=observed, threshold=self.ratio,
                    n_poll=ctx.n_poll, total_events=ctx.total_events))
        return fired


class StatThresholdRule(Rule):
    """Fire when a Sec. IV-B metric crosses an absolute bound —
    ``process_data_rate < 1e6``, ``event_count > 10000``.

    Options
    -------
    metric:
        Any of :data:`~repro.core.statistics.METRIC_NAMES`.
    op:
        One of ``<  <=  >  >=  ==  !=``.
    value:
        The bound.
    pattern:
        Substring filter on the activity name (default: every
        activity with statistics).
    """

    kind = "stat_threshold"

    def __init__(self, name: str, *, metric: str, op: str,
                 value: float, pattern: str | None = None,
                 cooldown: float = 0.0) -> None:
        super().__init__(name, cooldown=cooldown)
        if metric not in METRIC_NAMES:
            raise AlertConfigError(
                f"rule {name!r}: unknown metric {metric!r} "
                f"(known: {', '.join(METRIC_NAMES)})")
        if op not in OPS:
            raise AlertConfigError(
                f"rule {name!r}: unknown op {op!r} "
                f"(known: {' '.join(OPS)})")
        self.metric = metric
        self.op = op
        self.value = value
        self.pattern = pattern

    def evaluate(self, ctx: RefreshContext) -> list[Alert]:
        compare = OPS[self.op]
        fired: list[Alert] = []
        for activity in sorted(ctx.stats.activities()):
            label = activity_label(activity)
            if self.pattern is not None and self.pattern not in label:
                continue
            observed = ctx.stats.metric(activity, self.metric)
            if self._trip(label, compare(observed, self.value),
                          ctx.now):
                fired.append(Alert(
                    rule=self.name, kind=self.kind, subject=label,
                    message=(f"activity {label}: {self.metric} "
                             f"{observed:.4g} {self.op} {self.value:g}"),
                    value=observed, threshold=self.value,
                    n_poll=ctx.n_poll, total_events=ctx.total_events))
        return fired


class WatermarkAgeRule(Rule):
    """Fire when a file's sealing starves — an in-flight
    ``<unfinished ...>`` call is holding later records back for more
    than ``max_age`` seconds of *trace* time (the ROADMAP's sealing
    starvation diagnostic; the measurement is
    :meth:`~repro.live.engine.LiveIngest.watermark_ages`, the same
    accessor the watch status line renders).

    Options
    -------
    max_age:
        Starvation bound in seconds (trace time, not wall clock —
        the measurement is a function of the bytes consumed, not of
        the polling cadence of the watcher host).
    """

    kind = "watermark_age"

    def __init__(self, name: str, *, max_age: float,
                 cooldown: float = 0.0) -> None:
        super().__init__(name, cooldown=cooldown)
        if max_age < 0:
            raise AlertConfigError(
                f"rule {name!r}: max_age must be >= 0 (got {max_age})")
        self.max_age = max_age

    def evaluate(self, ctx: RefreshContext) -> list[Alert]:
        threshold_us = self.max_age * 1e6
        fired: list[Alert] = []
        over: set[str] = set()
        for case_id in sorted(ctx.watermark_ages):
            age = ctx.watermark_ages[case_id]
            if age <= threshold_us:
                continue
            over.add(case_id)
            if case_id not in self._tripped \
                    and self._fire_allowed(case_id, ctx.now):
                fired.append(Alert(
                    rule=self.name, kind=self.kind, subject=case_id,
                    message=(f"case {case_id}: sealing starved for "
                             f"{age / 1e6:.3f}s of trace time "
                             f"(> {self.max_age:g}s)"),
                    value=float(age), threshold=threshold_us,
                    n_poll=ctx.n_poll, total_events=ctx.total_events))
        self._tripped = over  # cases that recovered re-arm
        return fired


#: type tag → rule class, the registry the rules-file loader resolves
#: against (:mod:`repro.alerts.config`).
RULE_TYPES: dict[str, type[Rule]] = {
    cls.kind: cls
    for cls in (NewEdgeRule, EdgeWeightRatioRule, ActivityLoadRatioRule,
                StatThresholdRule, WatermarkAgeRule)
}

"""Loading declarative rules files (TOML or JSON).

The file format (see ``docs/rules.md`` for the full reference)::

    baseline = "elog:known-good.elog"     # optional reference run

    [sinks]                               # optional routing
    stderr = true
    jsonl = "alerts.jsonl"
    command = "curl -sf -d @- https://hooks.example/pager"

    [[rule]]
    name = "unexpected-relations"
    type = "new_edge"
    absent_from_baseline = true

    [[rule]]
    name = "read-rate-collapse"
    type = "stat_threshold"
    metric = "process_data_rate"
    op = "<"
    value = 1e6
    pattern = "read"

``*.json`` files carry the same structure as a JSON object (``rule``
is an array). Every validation error is an
:class:`~repro.alerts.rules.AlertConfigError` *naming the offending
rule*, and the CLI surfaces it with a non-zero exit — a malformed
pager config must fail loudly at startup, not silently never fire.
"""

from __future__ import annotations

import inspect
import json
import os
import tomllib
from pathlib import Path
from typing import NamedTuple

from repro.alerts.queue import QueueConfig
from repro.alerts.rules import RULE_TYPES, AlertConfigError, Rule
from repro.alerts.sinks import (
    AlertSink,
    CommandSink,
    HttpSink,
    JsonlSink,
    StderrSink,
)

#: Option value types, validated before rule construction so a string
#: where a number belongs fails with the rule's name instead of
#: surfacing later as a bizarre comparison.
_NUMBER_OPTIONS = frozenset({"ratio", "value", "max_age", "min_value",
                             "cooldown"})
_INT_OPTIONS = frozenset({"min_count"})
_BOOL_OPTIONS = frozenset({"include_sentinels", "absent_from_baseline"})
_STRING_OPTIONS = frozenset({"pattern", "against", "metric", "op"})


class RulesFileConfig(NamedTuple):
    """Everything a validated rules file configures."""

    rules: list[Rule]
    sinks: list[AlertSink]
    baseline: str | None
    history_limit: int | None
    queue: QueueConfig | None = None


def _accepted_options(rule_cls: type[Rule]) -> set[str]:
    """Keyword parameters a rule class accepts (beyond ``name``)."""
    signature = inspect.signature(rule_cls.__init__)
    return {param for param in signature.parameters
            if param not in ("self", "name")}


def _check_option_value(rule_name: str, key: str, value) -> None:
    if key in _NUMBER_OPTIONS:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise AlertConfigError(
                f"rule {rule_name!r}: option {key!r} must be a number "
                f"(got {value!r})")
    elif key in _INT_OPTIONS:
        if isinstance(value, bool) or not isinstance(value, int):
            raise AlertConfigError(
                f"rule {rule_name!r}: option {key!r} must be an integer "
                f"(got {value!r})")
    elif key in _BOOL_OPTIONS:
        if not isinstance(value, bool):
            raise AlertConfigError(
                f"rule {rule_name!r}: option {key!r} must be a boolean "
                f"(got {value!r})")
    elif key in _STRING_OPTIONS:
        if not isinstance(value, str):
            raise AlertConfigError(
                f"rule {rule_name!r}: option {key!r} must be a string "
                f"(got {value!r})")


def build_rule(table: dict) -> Rule:
    """Construct one rule from its ``[[rule]]`` table."""
    if not isinstance(table, dict):
        raise AlertConfigError(
            f"each [[rule]] must be a table (got {table!r})")
    name = table.get("name")
    if not name or not isinstance(name, str):
        raise AlertConfigError(
            f"rule without a valid name: {table!r} (every [[rule]] "
            f"needs name = \"...\")")
    kind = table.get("type")
    if kind not in RULE_TYPES:
        raise AlertConfigError(
            f"rule {name!r}: unknown type {kind!r} "
            f"(known: {', '.join(sorted(RULE_TYPES))})")
    rule_cls = RULE_TYPES[kind]
    options = {key: value for key, value in table.items()
               if key not in ("name", "type")}
    accepted = _accepted_options(rule_cls)
    unknown = sorted(set(options) - accepted)
    if unknown:
        raise AlertConfigError(
            f"rule {name!r}: unknown option(s) {', '.join(unknown)} for "
            f"type {kind!r} (accepted: {', '.join(sorted(accepted))})")
    for key, value in options.items():
        _check_option_value(name, key, value)
    try:
        return rule_cls(name, **options)
    except TypeError as exc:
        # A required keyword is missing (e.g. stat_threshold without
        # metric/op/value) — surface it with the rule's name.
        raise AlertConfigError(f"rule {name!r}: {exc}") from exc


def _build_http_sink(value) -> HttpSink:
    """The ``http`` sink entry: a URL string, or a table with options."""
    if isinstance(value, str) and value:
        return HttpSink(value)
    if not isinstance(value, dict):
        raise AlertConfigError(
            f"[sinks]: http must be a URL string or a table "
            f"(got {value!r})")
    unknown = sorted(set(value)
                     - {"url", "timeout", "retries", "backoff",
                        "auth_env"})
    if unknown:
        raise AlertConfigError(
            f"[sinks.http]: unknown option(s) {', '.join(unknown)} "
            f"(known: url, timeout, retries, backoff, auth_env)")
    url = value.get("url")
    if not isinstance(url, str) or not url:
        raise AlertConfigError(
            f"[sinks.http]: url must be a non-empty string "
            f"(got {url!r})")
    options: dict = {}
    for key in ("timeout", "backoff"):
        if key in value:
            raw = value[key]
            if isinstance(raw, bool) or not isinstance(raw, (int, float)):
                raise AlertConfigError(
                    f"[sinks.http]: {key} must be a number (got {raw!r})")
            options[key] = float(raw)
    if "retries" in value:
        raw = value["retries"]
        if isinstance(raw, bool) or not isinstance(raw, int):
            raise AlertConfigError(
                f"[sinks.http]: retries must be an integer (got {raw!r})")
        options["retries"] = raw
    if "auth_env" in value:
        raw = value["auth_env"]
        if not isinstance(raw, str) or not raw:
            raise AlertConfigError(
                f"[sinks.http]: auth_env must be an environment "
                f"variable name (got {raw!r})")
        options["auth_env"] = raw
    return HttpSink(url, **options)


def build_queue_config(value) -> QueueConfig:
    """The ``[sinks.queue]`` table: background delivery settings.

    An empty table enables the queue with defaults; the only option
    is ``maxsize`` (bound on queued-but-undelivered alerts).
    """
    if not isinstance(value, dict):
        raise AlertConfigError(
            f"[sinks.queue] must be a table (got {value!r}); use an "
            f"empty [sinks.queue] table for the defaults")
    unknown = sorted(set(value) - {"maxsize"})
    if unknown:
        raise AlertConfigError(
            f"[sinks.queue]: unknown option(s) {', '.join(unknown)} "
            f"(known: maxsize)")
    options: dict = {}
    if "maxsize" in value:
        raw = value["maxsize"]
        if isinstance(raw, bool) or not isinstance(raw, int) or raw < 1:
            raise AlertConfigError(
                f"[sinks.queue]: maxsize must be a positive integer "
                f"(got {raw!r})")
        options["maxsize"] = raw
    return QueueConfig(**options)


def build_sinks(table: dict) -> list[AlertSink]:
    """Construct the sink list from the ``[sinks]`` table (the
    ``queue`` entry is handled by :func:`build_queue_config`)."""
    if not isinstance(table, dict):
        raise AlertConfigError(f"[sinks] must be a table (got {table!r})")
    unknown = sorted(set(table)
                     - {"stderr", "jsonl", "command", "http", "queue"})
    if unknown:
        raise AlertConfigError(
            f"[sinks]: unknown sink(s) {', '.join(unknown)} "
            f"(known: stderr, jsonl, command, http, queue)")
    sinks: list[AlertSink] = []
    if table.get("stderr"):
        if not isinstance(table["stderr"], bool):
            raise AlertConfigError(
                f"[sinks]: stderr must be a boolean "
                f"(got {table['stderr']!r})")
        sinks.append(StderrSink())
    if "jsonl" in table:
        if not isinstance(table["jsonl"], str) or not table["jsonl"]:
            raise AlertConfigError(
                f"[sinks]: jsonl must be a file path "
                f"(got {table['jsonl']!r})")
        sinks.append(JsonlSink(table["jsonl"]))
    if "command" in table:
        if not isinstance(table["command"], str) or not table["command"]:
            raise AlertConfigError(
                f"[sinks]: command must be a shell command "
                f"(got {table['command']!r})")
        sinks.append(CommandSink(table["command"]))
    if "http" in table:
        sinks.append(_build_http_sink(table["http"]))
    return sinks


def parse_rules_data(data: dict, *, where: str = "rules data",
                     ) -> RulesFileConfig:
    """Validate parsed rules-file data into a :class:`RulesFileConfig`.

    ``where`` names the file in error messages.
    """
    if not isinstance(data, dict):
        raise AlertConfigError(
            f"{where}: top level must be a table/object")
    unknown = sorted(set(data)
                     - {"rule", "sinks", "baseline", "history_limit"})
    if unknown:
        raise AlertConfigError(
            f"{where}: unknown top-level key(s) {', '.join(unknown)} "
            f"(known: rule, sinks, baseline, history_limit)")
    tables = data.get("rule", [])
    if not isinstance(tables, list) or not tables:
        raise AlertConfigError(
            f"{where}: no rules — declare at least one [[rule]] table "
            f"(JSON: a non-empty \"rule\" array)")
    rules: list[Rule] = []
    seen: set[str] = set()
    for table in tables:
        rule = build_rule(table)
        if rule.name in seen:
            raise AlertConfigError(
                f"rule {rule.name!r}: duplicate rule name")
        seen.add(rule.name)
        rules.append(rule)
    sinks_table = data.get("sinks", {})
    sinks = build_sinks(sinks_table)
    queue = None
    if isinstance(sinks_table, dict) and "queue" in sinks_table:
        queue = build_queue_config(sinks_table["queue"])
    baseline = data.get("baseline")
    if baseline is not None and (not isinstance(baseline, str)
                                 or not baseline):
        raise AlertConfigError(
            f"{where}: baseline must be a trace-source spec string "
            f"(got {baseline!r})")
    history_limit = data.get("history_limit")
    if history_limit is not None and (
            isinstance(history_limit, bool)
            or not isinstance(history_limit, int)
            or history_limit < 1):
        raise AlertConfigError(
            f"{where}: history_limit must be a positive integer "
            f"(got {history_limit!r})")
    return RulesFileConfig(rules, sinks, baseline, history_limit, queue)


def load_rules_file(path: str | os.PathLike[str],
                    ) -> RulesFileConfig:
    """Read and validate a rules file (TOML by default, ``*.json``)."""
    target = Path(path)
    try:
        raw = target.read_text(encoding="utf-8")
    except OSError as exc:
        raise AlertConfigError(f"cannot read rules file: {exc}") from exc
    try:
        if target.suffix.lower() == ".json":
            data = json.loads(raw)
        else:
            data = tomllib.loads(raw)
    except (json.JSONDecodeError, tomllib.TOMLDecodeError) as exc:
        raise AlertConfigError(
            f"malformed rules file {target}: {exc}") from exc
    return parse_rules_data(data, where=str(target))

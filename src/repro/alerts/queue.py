"""Background alert delivery: a bounded worker-thread queue.

Synchronous sink dispatch couples poll wall-time to sink latency — an
HTTP sink retrying against a dead endpoint stalls the poll loop for
seconds per alert, exactly when a week-long watcher can least afford
to fall behind its cadence. :class:`DeliveryQueue` decouples them:
:meth:`~repro.alerts.engine.AlertEngine.evaluate` *submits* fired
alerts (O(1), never blocks) and a single daemon worker thread delivers
them to the sinks in submission order.

The queue is bounded with **drop-oldest** overflow: when a slow or
dead sink lets ``maxsize`` alerts pile up, the oldest queued alert is
dropped to admit the newest — the operator should see the most recent
state of a flapping system, and every alert is already durable in the
engine's history (and the checkpoint) before it is ever queued, so a
drop loses a *notification*, not the record. Drops, depth and
submit→delivered latency surface as declared telemetry metrics.

Delivery is intentionally not persisted: a kill loses whatever was
still queued, the same way it loses an alert fired a millisecond
before SIGKILL reached a synchronous sink. Restart dedup (rule
latches) already prevents re-fires either way.

Enable via the rules file::

    [sinks.queue]
    maxsize = 256

and drain at the end of a watch with
:meth:`~repro.alerts.engine.AlertEngine.shutdown` (the watch loop's
``finalize()`` does this).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from collections import deque
from typing import TYPE_CHECKING, Callable

from repro.alerts.rules import AlertConfigError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.alerts.model import Alert

#: Default bound on queued-but-undelivered alerts.
DEFAULT_MAXSIZE = 256


@dataclass(frozen=True)
class QueueConfig:
    """Validated ``[sinks.queue]`` settings."""

    maxsize: int = DEFAULT_MAXSIZE

    def __post_init__(self) -> None:
        if self.maxsize < 1:
            raise AlertConfigError(
                f"sinks.queue maxsize must be >= 1 "
                f"(got {self.maxsize})")


class DeliveryQueue:
    """Bounded drop-oldest queue with one background delivery worker.

    ``deliver`` is the per-alert fan-out callable — the alert engine
    passes its own sink loop, so throttles, warnings and per-sink
    metrics behave identically on both the inline and the queued
    road. The worker starts lazily on the first submit and exits when
    :meth:`close` has been called and the queue ran dry (close drains
    by default — the finalize contract).
    """

    def __init__(self, deliver: "Callable[[Alert, object], None]", *,
                 maxsize: int = DEFAULT_MAXSIZE) -> None:
        if maxsize < 1:
            raise AlertConfigError(
                f"delivery queue maxsize must be >= 1 (got {maxsize})")
        self._deliver = deliver
        self.maxsize = maxsize
        self._items: deque = deque()
        self._state = threading.Condition(threading.Lock())
        self._in_flight = False
        self._closed = False
        self._thread: threading.Thread | None = None
        self._n_submitted = 0
        self._n_dropped = 0
        self._n_delivered = 0

    # -- producer side (poll thread) ---------------------------------------

    def submit(self, alert: "Alert", telemetry) -> None:
        """Enqueue one alert for background delivery; never blocks.

        On overflow the *oldest* queued alert is dropped (counted in
        :attr:`n_dropped`); after :meth:`close` the alert is delivered
        inline instead — a late firing must not vanish silently.
        """
        with self._state:
            if not self._closed:
                if len(self._items) >= self.maxsize:
                    self._items.popleft()
                    self._n_dropped += 1
                self._items.append(
                    (alert, telemetry, time.perf_counter()))
                self._n_submitted += 1
                if self._thread is None:
                    self._thread = threading.Thread(
                        target=self._run, name="alert-delivery",
                        daemon=True)
                    self._thread.start()
                self._state.notify()
                return
        self._deliver(alert, telemetry)  # closed: deliver inline

    # -- worker side -------------------------------------------------------

    def _run(self) -> None:
        while True:
            with self._state:
                while not self._items and not self._closed:
                    self._state.wait()
                if not self._items:  # closed and drained
                    return
                alert, telemetry, submitted = self._items.popleft()
                self._in_flight = True
            try:
                self._deliver(alert, telemetry)
            finally:
                elapsed = time.perf_counter() - submitted
                if getattr(telemetry, "enabled", False):
                    telemetry.observe(
                        "sink_queue_latency_seconds", elapsed)
                with self._state:
                    self._in_flight = False
                    self._n_delivered += 1
                    self._state.notify_all()

    # -- lifecycle ---------------------------------------------------------

    def drain(self, timeout: float | None = None) -> bool:
        """Block until every queued alert was handed to the sinks
        (True) or the timeout elapsed first (False)."""
        deadline = None if timeout is None \
            else time.monotonic() + timeout
        with self._state:
            while self._items or self._in_flight:
                remaining = None if deadline is None \
                    else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                self._state.wait(remaining)
        return True

    def close(self, timeout: float | None = None) -> bool:
        """Drain, then stop the worker. Idempotent.

        Returns False if the drain timed out — queued alerts may then
        be lost when the process exits (they are still in the alert
        history).
        """
        with self._state:
            self._closed = True
            self._state.notify_all()
            thread = self._thread
        drained = self.drain(timeout)
        if thread is not None:
            thread.join(timeout)
        return drained

    # -- introspection -----------------------------------------------------

    @property
    def depth(self) -> int:
        """Alerts queued and not yet picked up by the worker."""
        with self._state:
            return len(self._items)

    @property
    def n_dropped(self) -> int:
        """Alerts evicted by drop-oldest overflow, ever."""
        return self._n_dropped

    @property
    def n_delivered(self) -> int:
        """Alerts the worker finished handing to the sinks, ever."""
        return self._n_delivered

    @property
    def n_submitted(self) -> int:
        """Alerts ever accepted by :meth:`submit`."""
        return self._n_submitted

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"DeliveryQueue(depth={self.depth}/{self.maxsize}, "
                f"delivered={self._n_delivered}, "
                f"dropped={self._n_dropped})")

"""Live alerting: threshold rules over DFG/statistics refresh deltas.

The point of DFG inspection is to *notice* pathological I/O — relations
that should not exist, load that doubled, data rates that collapsed,
files whose sealing starves. ``repro.live`` renders those; this
subsystem makes them **page**: a declarative
:class:`~repro.alerts.engine.AlertEngine` is evaluated once per
:meth:`~repro.live.engine.LiveIngest.poll`, firing structured
:class:`~repro.alerts.model.Alert` records into pluggable sinks and
the ``st-inspector watch`` pane.

Layering (bottom → top):

- :mod:`repro.alerts.model` — the :class:`Alert` record and its
  schedule-independent ``(rule, kind, subject)`` identity.
- :mod:`repro.alerts.rules` — the rule vocabulary
  (``new_edge``, ``edge_weight_ratio``, ``activity_load_ratio``,
  ``stat_threshold``, ``watermark_age``), each a latched predicate
  over one :class:`~repro.alerts.rules.RefreshContext`.
- :mod:`repro.alerts.config` — the TOML/JSON rules-file loader
  (``st-inspector watch --rules rules.toml``); every validation error
  names the offending rule.
- :mod:`repro.alerts.sinks` — stderr lines, JSONL streams, webhook
  commands.
- :mod:`repro.alerts.queue` — the optional bounded background
  :class:`~repro.alerts.queue.DeliveryQueue` (``[sinks.queue]``) that
  keeps poll wall-time independent of sink latency.
- :mod:`repro.alerts.engine` — :class:`AlertEngine`: evaluation,
  history, baseline resolution, checkpoint state.

The live discipline extends here: for latched rules over monotone
conditions the fired-alert identity multiset is a deterministic
function of the final directory — independent of the poll schedule and
of kill/restart cycles (latches and history persist in checkpoint
sidecars v3). Pinned by ``tests/test_alerts/test_alert_properties.py``.

Full rule/file reference: ``docs/rules.md``.
"""

from repro.alerts.model import Alert
from repro.alerts.rules import (
    RULE_TYPES,
    ActivityLoadRatioRule,
    AlertConfigError,
    EdgeWeightRatioRule,
    NewEdgeRule,
    RefreshContext,
    Rule,
    StatThresholdRule,
    WatermarkAgeRule,
)
from repro.alerts.config import (
    RulesFileConfig,
    build_rule,
    load_rules_file,
)
from repro.alerts.queue import DeliveryQueue, QueueConfig
from repro.alerts.sinks import (
    AlertSink,
    AlertSinkWarning,
    CommandSink,
    HttpSink,
    JsonlSink,
    SinkFailureThrottle,
    StderrSink,
)
from repro.alerts.engine import AlertEngine, empty_alert_state

__all__ = [
    "Alert",
    "AlertConfigError",
    "AlertEngine",
    "AlertSink",
    "AlertSinkWarning",
    "ActivityLoadRatioRule",
    "CommandSink",
    "DeliveryQueue",
    "EdgeWeightRatioRule",
    "HttpSink",
    "JsonlSink",
    "NewEdgeRule",
    "QueueConfig",
    "RefreshContext",
    "Rule",
    "RULE_TYPES",
    "RulesFileConfig",
    "SinkFailureThrottle",
    "StatThresholdRule",
    "StderrSink",
    "WatermarkAgeRule",
    "build_rule",
    "empty_alert_state",
    "load_rules_file",
]

"""Sharded DFG construction over the union algebra.

The paper proves that DFG construction distributes over event-log
union: ``G[L(Ca ∪ Cb)] = G[L(Ca)] ∪ G[L(Cb)]`` with summed weights
(Sec. IV-A — the property :mod:`repro.core.dfg` implements and the
hypothesis suite checks). This module *exploits* that algebra for
scale: instead of parsing every trace file, concatenating one giant
frame and walking it, each worker parses one file, maps it and builds
its per-case DFG; the parent then folds the shards together with
:meth:`~repro.core.dfg.DFG.union_all`.

Two consequences:

* only a tiny ``{edge: count}`` dict crosses the process boundary per
  file — never the records themselves;
* the merged result is *provably identical* to ``DFG(EventLog)`` built
  from the same directory, because union-of-shards and
  whole-log construction are the same function by the algebra above
  (the ingest test suite verifies this for every simulated workload).

The mapping travels to the workers by pickle, so use a
:class:`~repro.core.mapping.Mapping` instance (all built-ins qualify)
rather than a lambda when ``workers > 1``.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterator

from repro.core.dfg import DFG

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.event import Event
    from repro.core.eventlog import EventLog
    from repro.core.mapping import Mapping
    from repro.strace.naming import TraceFileName
    from repro.strace.reader import TraceCase

MappingLike = "Mapping | Callable[[Event], str | None]"


def case_dfg(case: "TraceCase", mapping: MappingLike, *,
             add_endpoints: bool = True) -> DFG:
    """The DFG of one parsed case under ``mapping``."""
    from repro.core.eventlog import EventLog

    log = EventLog.from_cases([case]).with_mapping(mapping)
    return DFG(log, add_endpoints=add_endpoints)


def iter_case_dfgs(event_log: "EventLog", *,
                   add_endpoints: bool = True) -> Iterator[tuple[str, DFG]]:
    """Per-case shards ``(case_id, DFG)`` of a mapped event-log.

    Folding the second elements with :meth:`DFG.union_all` reproduces
    ``DFG(event_log)`` exactly — the shard-merge correctness argument
    in executable form.
    """
    from repro.core.activity import ActivityLog
    from repro.core.eventlog import EventLog

    for case_id, frame in event_log.iter_cases():
        sub = EventLog(frame, event_log.mapping)
        activity_log = ActivityLog.from_event_log(
            sub, add_endpoints=add_endpoints)
        yield case_id, DFG(activity_log)


def _shard_worker(
    task: "tuple[Path, TraceFileName, bool, Mapping, bool]",
) -> DFG:
    """Worker: parse one file and reduce it to its per-case DFG."""
    from repro.strace.reader import read_trace_file

    path, name, strict, mapping, add_endpoints = task
    case = read_trace_file(path, name=name, strict=strict)
    return case_dfg(case, mapping, add_endpoints=add_endpoints)


def dfg_from_trace_dir(
    directory: str | os.PathLike[str],
    mapping: MappingLike,
    *,
    cids: set[str] | None = None,
    strict: bool = True,
    recursive: bool = False,
    workers: int | None = None,
    add_endpoints: bool = True,
) -> DFG:
    """Parse a trace directory straight to its DFG, sharded per file.

    The fastest route from ``.st`` files to a graph when the event-log
    itself is not needed: per-file parse + map + build fan out across
    ``workers`` processes and only shard graphs are merged centrally.
    ``workers=None`` auto-detects; ``workers=1`` runs in-process.
    """
    from repro.ingest.parallel import _map_tasks, resolve_workers
    from repro.strace.reader import discover_trace_files

    found = discover_trace_files(directory, cids=cids, recursive=recursive)
    count = resolve_workers(workers, len(found))
    tasks = [(path, name, strict, mapping, add_endpoints)
             for path, name in found]
    return DFG.union_all(_map_tasks(_shard_worker, tasks, count))

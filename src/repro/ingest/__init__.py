"""Parallel, streaming trace ingestion (the scale-out substrate).

The paper treats ingestion as a preprocessing detail; at production
scale it is the bottleneck — multi-GB trace directories with one file
per rank. This subsystem makes ingestion scale along three independent
axes, all of which preserve the sequential semantics *exactly*:

- :mod:`repro.ingest.streaming` — a generator pipeline
  (file → tokens → merged records) that holds one line at a time
  instead of a per-file token list, and diagnoses undecodable bytes
  instead of silently replacing them;
- :mod:`repro.ingest.parallel` — a ``ProcessPoolExecutor`` fan-out of
  per-file parsing, auto-sized to the available CPUs
  (``workers=1`` recovers today's sequential path, bit for bit);
- :mod:`repro.ingest.shards` — sharded DFG construction: per-case
  graphs built where the records are and merged with the union
  algebra, so ``union(shards) == DFG(whole log)`` by Sec. IV-A.

:mod:`repro.ingest.summary` fingerprints a trace directory for the
golden regression tests that lock all of this equivalence in.

Entry points elsewhere accept ``workers=`` / ``recursive=`` and route
through here: :func:`repro.strace.reader.read_trace_dir`,
:class:`repro.sources.StraceDirSource` (behind
``EventLog.from_source``), :func:`repro.elstore.convert.convert_source`
and the CLI's ``--workers`` / ``--recursive`` flags.
"""

from repro.ingest.streaming import TokenStream
from repro.ingest.parallel import (
    MAX_AUTO_WORKERS,
    CaseColumns,
    available_cpus,
    case_to_columns,
    frame_from_case_columns,
    ingest_event_frame,
    iter_case_columns,
    read_cases,
    resolve_workers,
)
from repro.ingest.shards import (
    case_dfg,
    dfg_from_trace_dir,
    iter_case_dfgs,
)
from repro.ingest.summary import cases_summary, trace_dir_summary

__all__ = [
    "TokenStream",
    "MAX_AUTO_WORKERS",
    "CaseColumns",
    "available_cpus",
    "case_to_columns",
    "frame_from_case_columns",
    "ingest_event_frame",
    "iter_case_columns",
    "read_cases",
    "resolve_workers",
    "case_dfg",
    "dfg_from_trace_dir",
    "iter_case_dfgs",
    "cases_summary",
    "trace_dir_summary",
]

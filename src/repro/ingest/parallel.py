"""Process-pool fan-out over trace files.

Cases are independent by construction — "the group of events in each
trace file" (Sec. IV) shares nothing across files — so per-file parsing
is embarrassingly parallel. This module runs
:func:`~repro.strace.reader.read_trace_file` over N files on a
``ProcessPoolExecutor`` (processes, not threads: tokenizing and
argument parsing are pure-Python regex work, which threads cannot
overlap under the GIL).

Determinism is preserved: tasks are submitted in sorted-path order and
``Executor.map`` returns results in submission order, so the case list
is identical to the sequential one — the ingest equivalence tests
assert byte-identical frames for ``workers ∈ {1, 2, 4}``.

Two wire formats cross the process boundary:

* :func:`read_cases` ships full :class:`~repro.strace.reader.TraceCase`
  objects — what callers of ``read_trace_dir`` expect;
* :func:`ingest_event_frame` ships :class:`CaseColumns` — per-case
  NumPy columns plus local string pools, an order of magnitude cheaper
  to pickle than record objects. The parent re-encodes the local codes
  into shared :class:`~repro.core.frame.FramePools` in case order,
  reproducing ``EventFrame.from_cases`` bit for bit (the interning
  sequence is identical, so codes, arrays and pools all match).

``resolve_workers`` implements the auto-detection policy: ``None``
means "use the CPUs this process is allowed to run on" (capped, and
never more than one worker per file); ``1`` short-circuits to the
plain in-process loop, preserving the exact sequential behavior. If
the platform cannot provide a process pool at all (sandboxes without
semaphores are the usual culprit), the fan-out degrades to the
sequential path rather than failing ingestion.
"""

from __future__ import annotations

import itertools
import os
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterator, TypeVar

import numpy as np

from repro._util.errors import ReproError
from repro.core.frame import MISSING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.frame import EventFrame, FramePools
    from repro.strace.naming import TraceFileName
    from repro.strace.reader import TraceCase
    from repro.strace.resume import MergeStats

#: Upper bound on auto-detected workers — beyond this, pool start-up
#: and result pickling outweigh parse overlap for typical trace dirs.
MAX_AUTO_WORKERS = 16

_T = TypeVar("_T")
_R = TypeVar("_R")


def available_cpus() -> int:
    """CPUs this process may run on (affinity-aware where supported)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _pool_context():
    """The multiprocessing context for ingest pools; None = default.

    On Linux, single-threaded parents use ``fork``: forked children
    never re-import ``__main__``, so library calls are safe from
    unguarded caller scripts (the classic spawn hazard of re-running
    top-level side effects in every worker). A *multithreaded* parent
    must not fork — a child can inherit a lock held mid-operation by
    another thread and deadlock — so it gets ``forkserver`` with an
    *empty* preload list: CPython's default forkserver preloads
    ``['__main__']``, which would re-run caller top-level code in the
    server, so it is explicitly cleared. Forkserver *workers* still
    perform the spawn-style ``__mp_main__`` fixup, so for threaded
    parents the usual multiprocessing guard advice applies — the
    price of not deadlocking. macOS *lists* fork but forked
    children crash inside Apple frameworks — the reason CPython made
    spawn the macOS default — so off Linux this returns None and pools
    use the platform default start method.
    """
    import multiprocessing
    import sys
    import threading

    if not sys.platform.startswith("linux"):
        return None  # pragma: no cover - non-Linux
    methods = multiprocessing.get_all_start_methods()
    if threading.active_count() > 1 and "forkserver" in methods:
        context = multiprocessing.get_context("forkserver")
        context.set_forkserver_preload([])
        return context
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return None  # pragma: no cover - fork always on Linux


def resolve_workers(workers: int | None, n_tasks: int | None = None) -> int:
    """Turn a user-facing ``workers`` argument into a concrete count.

    ``None`` auto-detects: available CPUs, capped at
    :data:`MAX_AUTO_WORKERS` — but only where the ``fork`` start
    method is safe (Linux); elsewhere auto stays sequential, so a
    plain library call never spawns processes that re-import the
    caller's ``__main__`` or fork into unsafe frameworks. Explicit
    values are taken as-is (the caller opted in) except that the
    count never exceeds the number of tasks. Always >= 1.
    """
    if workers is not None and workers < 1:
        raise ReproError(f"workers must be >= 1 or None (auto): {workers}")
    if workers is not None:
        count = workers
    elif _pool_context() is None:  # pragma: no cover - non-Linux
        count = 1
    else:
        count = min(available_cpus(), MAX_AUTO_WORKERS)
    if n_tasks is not None:
        count = min(count, max(n_tasks, 1))
    return max(count, 1)


def _parse_one(task: "tuple[Path, TraceFileName, bool]") -> "TraceCase":
    """Worker: fully parse one trace file (runs in the child process).

    Imports locally to keep :mod:`repro.ingest` importable from the
    reader without a cycle, and so spawned children only pay for what
    they use.
    """
    from repro.strace.reader import read_trace_file

    path, name, strict = task
    return read_trace_file(path, name=name, strict=strict)


def _pool_map(fn: "Callable[[_T], _R]", tasks: "list[_T]",
              workers: int) -> "list[_R] | None":
    """Run ``fn`` over ``tasks`` on a process pool, in order.

    Returns ``None`` when the *pool itself* is unusable — creation
    denied (sandboxes without semaphores), or broken before completion
    (spawn bootstrap without a ``__main__`` guard, OOM-killed worker) —
    so callers can fall back to the sequential path. Errors raised *by*
    ``fn`` (parse failures, missing files) propagate unchanged: they
    would fail sequentially too, and must not trigger a full re-parse.
    """
    try:
        pool = ProcessPoolExecutor(max_workers=workers,
                                   mp_context=_pool_context())
    except (OSError, PermissionError, RuntimeError):
        return None
    try:
        with pool:
            # ~4 chunks per worker amortize inter-process transfer
            # without hurting load balance.
            chunksize = max(1, len(tasks) // (workers * 4))
            return list(pool.map(fn, tasks, chunksize=chunksize))
    except BrokenProcessPool:
        return None


def _map_tasks(fn: "Callable[[_T], _R]", tasks: "list[_T]",
               workers: int) -> "list[_R]":
    """The shared dispatch policy of every list-shaped ingest path.

    One task or one worker → plain in-process loop; otherwise fan out
    via :func:`_pool_map` and, if the pool cannot be used at all, fall
    back to the same in-process loop (with a warning — an ingest that
    was asked to parallelize but could not should not look like a
    performance bug).
    """
    if workers <= 1 or len(tasks) <= 1:
        return [fn(task) for task in tasks]
    results = _pool_map(fn, tasks, workers)
    if results is None:  # pool unavailable on this platform
        _warn_sequential_fallback(workers)
        return [fn(task) for task in tasks]
    return results


def _warn_sequential_fallback(workers: int) -> None:
    import warnings

    warnings.warn(
        f"process pool unavailable on this platform; parsing "
        f"sequentially instead of on {workers} workers",
        stacklevel=3)


def read_cases(
    found: "list[tuple[Path, TraceFileName]]",
    *,
    strict: bool = True,
    workers: int = 1,
) -> "list[TraceCase]":
    """Parse discovered trace files into cases, ``workers`` at a time.

    ``found`` is the output of
    :func:`~repro.strace.reader.discover_trace_files` (already sorted);
    the returned cases keep that order exactly, whatever the worker
    count.
    """
    _check_worker_count(workers)
    tasks = [(path, name, strict) for path, name in found]
    return _map_tasks(_parse_one, tasks, workers)


def _check_worker_count(workers: int) -> None:
    """Reject zero/negative worker counts at the API boundary.

    ``resolve_workers`` already rejects them for the ``None``-aware
    entry points; the list-shaped paths take a concrete count and
    would otherwise silently degrade 0/-1 to the sequential loop.
    """
    if workers < 1:
        raise ReproError(f"workers must be >= 1: {workers}")


# -- columnar wire format -----------------------------------------------------


@dataclass(slots=True)
class CaseColumns:
    """One parsed case as pickle-cheap columns (the fan-out wire format).

    ``call``/``fp`` hold codes into the *local* ``calls``/``paths``
    string lists (built in first-occurrence order over the records);
    ``fp`` code ``-1`` means "no path". This mirrors the argument shape
    of :meth:`repro.elstore.writer.EventLogWriter.add_case_arrays`, so
    conversion streams straight into the store as well.
    """

    name: "TraceFileName"
    pid: np.ndarray
    start: np.ndarray
    dur: np.ndarray
    size: np.ndarray
    call: np.ndarray
    fp: np.ndarray
    calls: list[str]
    paths: list[str]
    merge_stats: "MergeStats"

    def __len__(self) -> int:
        return len(self.start)

    def columns(self) -> dict[str, np.ndarray]:
        """The per-record columns keyed as ``add_case_arrays`` expects
        (the single definition both conversion routes share)."""
        return {
            "pid": self.pid,
            "call": self.call,
            "start": self.start,
            "dur": self.dur,
            "fp": self.fp,
            "size": self.size,
        }


def case_to_columns(case: "TraceCase") -> CaseColumns:
    """Reduce a parsed case to its columnar wire form."""
    records = case.records
    n = len(records)
    pid = np.empty(n, dtype=np.int64)
    start = np.empty(n, dtype=np.int64)
    dur = np.empty(n, dtype=np.int64)
    size = np.empty(n, dtype=np.int64)
    call = np.empty(n, dtype=np.int32)
    fp = np.empty(n, dtype=np.int32)
    calls: list[str] = []
    call_index: dict[str, int] = {}
    paths: list[str] = []
    path_index: dict[str, int] = {}

    def intern_local(value: str, strings: list[str],
                     index: dict[str, int]) -> int:
        code = index.get(value)
        if code is None:
            code = len(strings)
            index[value] = code
            strings.append(value)
        return code

    for i, record in enumerate(records):
        pid[i] = record.pid
        start[i] = record.start_us
        dur[i] = record.dur_us if record.dur_us is not None else MISSING
        size[i] = record.size if record.size is not None else MISSING
        call[i] = intern_local(record.call, calls, call_index)
        fp[i] = (intern_local(record.fp, paths, path_index)
                 if record.fp is not None else MISSING)
    return CaseColumns(name=case.name, pid=pid, start=start, dur=dur,
                       size=size, call=call, fp=fp, calls=calls,
                       paths=paths, merge_stats=case.merge_stats)


def _parse_one_columns(
        task: "tuple[Path, TraceFileName, bool]") -> CaseColumns:
    """Worker: parse one trace file and columnarize it in the child,
    so only arrays and distinct strings cross the process boundary."""
    return case_to_columns(_parse_one(task))


def frame_from_case_columns(column_cases: "list[CaseColumns]",
                            pools: "FramePools | None" = None,
                            ) -> "EventFrame":
    """Assemble an :class:`EventFrame` from columnar cases.

    This *is* the frame-construction interning sequence — per case:
    case id, cid, host, then calls/paths in record first-occurrence
    order. ``EventFrame.from_cases`` delegates here, so sequential and
    parallel ingestion share one implementation and byte-identity
    holds by construction (and is additionally pinned by the ingest
    equivalence tests).
    """
    from repro.core.frame import COLUMN_ORDER, EventFrame, FramePools

    pools = pools or FramePools()
    if not column_cases:
        return EventFrame.empty(pools)
    parts: dict[str, list[np.ndarray]] = {
        name: [] for name in COLUMN_ORDER}
    for case in column_cases:
        n = len(case)
        case_code = pools.cases.intern(case.name.case_id)
        cid_code = pools.cids.intern(case.name.cid)
        host_code = pools.hosts.intern(case.name.host)
        call_table = np.fromiter(
            (pools.calls.intern(s) for s in case.calls),
            dtype=np.int32, count=len(case.calls))
        path_table = np.fromiter(
            (pools.paths.intern(s) for s in case.paths),
            dtype=np.int32, count=len(case.paths))
        parts["case"].append(np.full(n, case_code, dtype=np.int32))
        parts["cid"].append(np.full(n, cid_code, dtype=np.int32))
        parts["host"].append(np.full(n, host_code, dtype=np.int32))
        parts["rid"].append(np.full(n, case.name.rid, dtype=np.int64))
        parts["pid"].append(case.pid)
        parts["call"].append(
            call_table[case.call].astype(np.int32, copy=False))
        parts["start"].append(case.start)
        parts["dur"].append(case.dur)
        if len(path_table):
            fp_codes = np.where(
                case.fp >= 0,
                path_table[np.clip(case.fp, 0, None)],
                np.int32(MISSING)).astype(np.int32, copy=False)
        else:  # no record of this case carries a path
            fp_codes = np.full(n, MISSING, dtype=np.int32)
        parts["fp"].append(fp_codes)
        parts["size"].append(case.size)
        parts["activity"].append(np.full(n, MISSING, dtype=np.int32))
    columns = {name: np.concatenate(arrays)
               for name, arrays in parts.items()}
    return EventFrame(pools, columns)


def iter_case_columns(
    found: "list[tuple[Path, TraceFileName]]",
    *,
    strict: bool = True,
    workers: int = 1,
) -> "Iterator[CaseColumns]":
    """Stream discovered files as :class:`CaseColumns`, in order.

    With ``workers > 1`` the parse+columnarize work runs on a process
    pool with *bounded* in-flight submission (a window of ~4 tasks per
    worker): a slow consumer — the disk-bound ``.elog`` writer — stalls
    the producers instead of letting completed results pile up, so
    memory stays O(workers · case) however large the directory.

    A pool that cannot be created — or that breaks before producing
    the first result — falls back to in-process streaming; a pool that
    breaks mid-stream propagates (a partially consumed stream cannot
    be restarted without duplicating yielded cases).

    An invalid ``workers`` raises at the call, not at first ``next()``
    — hence the non-generator wrapper.
    """
    _check_worker_count(workers)
    return _iter_case_columns(found, strict=strict, workers=workers)


def _iter_case_columns(
    found: "list[tuple[Path, TraceFileName]]",
    *,
    strict: bool,
    workers: int,
) -> "Iterator[CaseColumns]":
    tasks = [(path, name, strict) for path, name in found]
    if workers <= 1 or len(tasks) <= 1:
        for task in tasks:
            yield _parse_one_columns(task)
        return
    try:
        pool = ProcessPoolExecutor(max_workers=workers,
                                   mp_context=_pool_context())
    except (OSError, PermissionError, RuntimeError):
        _warn_sequential_fallback(workers)
        for task in tasks:
            yield _parse_one_columns(task)
        return
    yielded = False
    broke_before_first = False
    try:
        window = workers * 4
        task_iter = iter(tasks)
        pending = deque(pool.submit(_parse_one_columns, task)
                        for task in itertools.islice(task_iter, window))
        while pending:
            try:
                result = pending.popleft().result()
            except BrokenProcessPool:
                if yielded:
                    raise
                broke_before_first = True
                break
            yielded = True
            yield result
            for task in itertools.islice(task_iter, 1):
                pending.append(pool.submit(_parse_one_columns, task))
    except BaseException:
        # Consumer abandoned the stream or a parse failed: don't make
        # the error wait for every in-flight parse to finish.
        pool.shutdown(wait=False, cancel_futures=True)
        raise
    pool.shutdown(wait=True)
    if broke_before_first:  # nothing yielded: sequential retry is safe
        _warn_sequential_fallback(workers)
        for task in tasks:
            yield _parse_one_columns(task)


def ingest_event_frame(
    directory: str | os.PathLike[str],
    *,
    cids: set[str] | None = None,
    strict: bool = True,
    recursive: bool = False,
    workers: int | None = None,
) -> "EventFrame":
    """Trace directory → :class:`EventFrame`, the fast whole-log path.

    Parse + columnarize runs per file — in process for ``workers=1``
    (or a single file), on a pool otherwise — and the frames assemble
    identically either way, because ``EventFrame.from_cases`` and this
    path share the same columnar construction.
    """
    from repro.strace.reader import discover_trace_files

    found = discover_trace_files(directory, cids=cids,
                                 recursive=recursive)
    count = resolve_workers(workers, len(found))
    tasks = [(path, name, strict) for path, name in found]
    return frame_from_case_columns(
        _map_tasks(_parse_one_columns, tasks, count))

"""Streaming tokenization: trace file → token generator, O(1) memory.

The original reader materialized every line of a trace file into a
``list[Token]`` before the unfinished/resumed merge — for multi-GB
traces that list dominates peak memory even though the merge itself
only ever needs the per-pid in-flight slot (Sec. III). This module
replaces the list with a generator pipeline::

    open(file) → decode line → tokenize_line → (merge_unfinished)

:class:`TokenStream` is the file-side half: it opens the trace lazily,
decodes it line by line, classifies each line with
:func:`~repro.strace.tokenizer.tokenize_line` and yields
:class:`~repro.strace.tokenizer.Token` objects one at a time. The
merger (:func:`~repro.strace.resume.merge_unfinished`) consumes any
token iterable, so the two halves compose without an intermediate list.

Decoding is done from bytes so that undecodable input is *diagnosed*
instead of silently smoothed over: the old text-mode
``errors="replace"`` swallowed bad bytes with no trace. A
:class:`TokenStream` counts every replacement character it has to
introduce (exposed as :attr:`TokenStream.decode_replacements`, surfaced
as ``MergeStats.decode_replacements`` by the reader) and, under
``strict=True``, raises :class:`~repro._util.errors.TraceParseError` at
the offending line instead of continuing.
"""

from __future__ import annotations

import os
import re
from pathlib import Path
from typing import Iterator

from repro._util.errors import TraceParseError
from repro.strace.tokenizer import Token, tokenize_line

#: The replacement character produced by ``errors="replace"`` decoding.
REPLACEMENT_CHAR = "�"

#: The universal-newline terminators of the pre-streaming text reader,
#: as bytes: splitting before decoding is safe for UTF-8 because the
#: 0x0A/0x0D bytes never occur inside a multi-byte sequence.
_NEWLINE_BYTES_RE = re.compile(b"\r\n|\r|\n")

#: Read granularity of the chunked line splitter.
_CHUNK_BYTES = 1 << 16


def decode_trace_line(raw: bytes, *, strict: bool,
                      path: str | None = None,
                      lineno: int | None = None) -> tuple[str, int]:
    """Decode one raw trace line, diagnosing undecodable bytes.

    Returns ``(text, replacements)`` where ``replacements`` counts the
    U+FFFD characters *introduced* by lenient decoding (a line may
    legitimately contain U+FFFD already). Under ``strict=True`` an
    undecodable line raises :class:`TraceParseError` instead. Shared by
    the batch :class:`TokenStream` and the live file follower
    (:mod:`repro.live`), so both diagnose corruption identically.
    """
    try:
        return raw.decode("utf-8"), 0
    except UnicodeDecodeError:
        text = raw.decode("utf-8", errors="replace")
        replaced = max(
            text.count(REPLACEMENT_CHAR)
            - raw.count("\N{REPLACEMENT CHARACTER}".encode()),
            1)
        if strict:
            raise TraceParseError(
                f"{replaced} undecodable byte(s); the trace is "
                f"corrupt or not UTF-8 — pass strict=False "
                f"(CLI: --lenient) to continue with U+FFFD "
                f"replacements",
                path=path, lineno=lineno, line=text) from None
        return text, replaced


def _iter_raw_lines(handle, chunk_size: int = _CHUNK_BYTES):
    """Yield logical lines (terminators stripped) from a binary stream.

    Splits on the universal-newline terminators ``\\r\\n``, ``\\r``,
    ``\\n`` — matching the pre-streaming text-mode reader — while
    holding at most ``chunk_size`` plus one logical line in memory.
    Plain ``for line in handle`` splits on ``\\n`` only, which would
    read a whole CR-terminated file as one "line".
    """
    carry = b""
    while True:
        chunk = handle.read(chunk_size)
        if not chunk:
            break
        data = carry + chunk
        # Hold back a trailing '\r': it may pair with a '\n' that
        # starts the next chunk.
        if data.endswith(b"\r"):
            data, hold = data[:-1], b"\r"
        else:
            hold = b""
        pieces = _NEWLINE_BYTES_RE.split(data)
        carry = pieces.pop() + hold
        yield from pieces
    if carry.endswith(b"\r"):  # lone '\r' at EOF terminates the line
        carry = carry[:-1]
    if carry:
        yield carry


class TokenStream:
    """A restartable iterable of the tokens of one trace file.

    Each iteration re-opens the file and streams it front to back;
    nothing beyond the current line is held in memory. Diagnostic
    counters (:attr:`decode_replacements`, :attr:`n_lines`) reflect the
    most recent (possibly in-progress) iteration.

    Parameters
    ----------
    path:
        The trace file to stream.
    strict:
        If True, lines containing bytes that are not valid UTF-8 raise
        :class:`TraceParseError`; if False they are decoded with
        U+FFFD replacements, which are counted.
    default_pid:
        Forwarded to :func:`tokenize_line` for pid-less traces.
    """

    __slots__ = ("path", "strict", "default_pid", "decode_replacements",
                 "n_lines")

    def __init__(self, path: str | os.PathLike[str], *,
                 strict: bool = True, default_pid: int = 0) -> None:
        self.path = Path(path)
        self.strict = strict
        self.default_pid = default_pid
        self.decode_replacements = 0
        self.n_lines = 0

    def __iter__(self) -> Iterator[Token]:
        self.decode_replacements = 0
        self.n_lines = 0
        path_str = str(self.path)
        with open(self.path, "rb") as handle:
            for lineno, raw in enumerate(_iter_raw_lines(handle),
                                         start=1):
                self.n_lines = lineno
                text, replaced = decode_trace_line(
                    raw, strict=self.strict, path=path_str, lineno=lineno)
                self.decode_replacements += replaced
                if not text.strip():
                    continue
                yield tokenize_line(text, path=path_str, lineno=lineno,
                                    default_pid=self.default_pid)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TokenStream({str(self.path)!r})"

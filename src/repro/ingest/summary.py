"""Compact ingestion summaries — the golden-test fingerprint.

A summary reduces a whole trace directory to a small, JSON-stable dict:
file/case/event counts, per-cid totals, aggregated merge diagnostics,
DFG shape and the top activities by frequency. It is deliberately
*compact* — golden regression tests check these fingerprints into the
repository and fail on drift, without storing megabytes of parsed
records — while still covering every ingestion stage: discovery,
tokenizing, the unfinished/resumed merge, mapping, and DFG synthesis.
"""

from __future__ import annotations

import dataclasses
import os
from typing import TYPE_CHECKING

from repro.core.dfg import DFG
from repro.core.eventlog import EventLog
from repro.core.mapping import CallTopDirs, Mapping

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.strace.reader import TraceCase


def cases_summary(cases: "list[TraceCase]", *,
                  mapping: Mapping | None = None,
                  top: int = 5) -> dict:
    """Summarize parsed cases (see :func:`trace_dir_summary`)."""
    mapping = mapping or CallTopDirs(levels=2)
    per_cid: dict[str, dict[str, int]] = {}
    merge: dict[str, int] = {}
    for case in cases:
        bucket = per_cid.setdefault(case.name.cid,
                                    {"files": 0, "events": 0})
        bucket["files"] += 1
        bucket["events"] += len(case)
        for key, value in dataclasses.asdict(case.merge_stats).items():
            merge[key] = merge.get(key, 0) + value
    log = EventLog.from_cases(cases).with_mapping(mapping)
    dfg = DFG(log)
    frequencies = sorted(
        ((activity, dfg.node_frequency(activity))
         for activity in dfg.activities()),
        key=lambda item: (-item[1], item[0]))
    return {
        "n_files": len(cases),
        "n_cases": log.n_cases,
        "n_events": log.n_events,
        "per_cid": {cid: per_cid[cid] for cid in sorted(per_cid)},
        "merge": merge,
        "dfg": {
            "nodes": dfg.n_nodes,
            "edges": dfg.n_edges,
            "observations": dfg.total_observations(),
        },
        "top_activities": [[activity, freq]
                           for activity, freq in frequencies[:top]],
    }


def trace_dir_summary(
    directory: str | os.PathLike[str],
    *,
    mapping: Mapping | None = None,
    top: int = 5,
    strict: bool = True,
    recursive: bool = False,
    workers: int | None = 1,
) -> dict:
    """Fingerprint a trace directory for golden regression testing.

    The result is plain JSON-serializable data; ``mapping`` defaults to
    the paper's f̂ (call + top-2 directories).
    """
    from repro.strace.reader import read_trace_dir

    cases = read_trace_dir(directory, strict=strict, recursive=recursive,
                           workers=workers)
    return cases_summary(cases, mapping=mapping, top=top)

"""Command-line interface: ``st-inspector`` / ``python -m repro``.

Subcommands cover the full paper pipeline plus the simulator:

- ``simulate-ls <dir>`` — generate the Fig. 1 example traces.
- ``simulate-ior <dir>`` — run the IOR simulator (Fig. 7 options) and
  write strace files.
- ``convert <source> <out.elog>`` — pack any source into the columnar
  store (the paper's HDF5 step).
- ``synthesize <source>`` — build the DFG and print it (ascii/dot/svg),
  with filtering, mapping and coloring options.
- ``report <source>`` — per-activity statistics table.
- ``compare <source> --green <cid>`` — partition-colored comparison.
- ``timeline <source> --activity <a>`` — the Fig. 5 plot.
- ``watch <dir>`` — live-monitor a growing trace directory
  (incremental ingestion, resumable ``--checkpoint``, declarative
  ``--rules`` alerting, Prometheus/health exposition via
  ``--metrics-port`` / ``--metrics-log``).
- ``fleet --jobs fleet.toml`` — live-monitor many trace directories
  on one cooperative scheduler (:mod:`repro.fleet`): per-job
  checkpoints/rules/emit, fault isolation with backoff restarts, one
  shared metrics port with ``job``-labelled series.
- ``health <checkpoint> [<checkpoint> ...]`` — offline health verdict
  from the telemetry snapshots instrumented watches persisted in
  their checkpoints; several paths aggregate worst-of (the fleet's
  ``/healthz`` semantics).
- ``runs list/show/diff/trend <cat.db>`` — query a run catalog
  (:mod:`repro.catalog`): runs are recorded by ``convert``/``report``
  ``--catalog``, ``watch --catalog``, or a fleet job's ``catalog``
  key, and mined back as alert baselines via the ``catalog:`` source
  scheme.

Exit codes: 0 success (for ``health``: every verdict ok), 2 a
configuration/usage error (bad flags, missing files, malformed
rules/fleet configs), 1 a runtime failure — a live loop that died
mid-run (e.g. a tracked trace file vanished) or a non-ok health
verdict.

The full subcommand/flag reference lives in ``docs/cli.md``.

``<source>`` is any registered trace source
(:func:`repro.sources.open_source`): a directory of ``.st`` files, an
``.elog`` store, a ``.csv`` dump, or a scheme URI like
``strace:traces/``, ``elog:run.elog``, ``csv:log.csv``,
``sim:ior?ranks=4`` — every analysis subcommand accepts every scheme.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from repro._util.errors import ReproError
from repro.core.coloring import PartitionColoring, StatisticsColoring
from repro.core.dfg import DFG
from repro.core.eventlog import EventLog
from repro.core.partition import PartitionEL
from repro.core.render.viewer import DFGViewer
from repro.core.statistics import IOStatistics
from repro.pipeline.report import activity_report, comparison_report


#: Help text for every subcommand's ``source`` positional.
SOURCE_HELP = (".st directory, .elog store, .csv log, or scheme URI "
               "(strace:, elog:, csv:, sim:workload?opt=val)")


def _open_source_args(args: argparse.Namespace):
    """Resolve ``args.source`` honoring the ingest flags when present."""
    from repro.sources import open_source

    return open_source(args.source,
                       workers=getattr(args, "workers", None),
                       recursive=getattr(args, "recursive", False),
                       strict=not getattr(args, "lenient", False))


def _load_args(args: argparse.Namespace) -> EventLog:
    """Load ``args.source`` through the trace-source registry."""
    return _open_source_args(args).event_log()


def _workers_arg(text: str) -> int:
    """argparse type for ``--workers``: a positive integer, rejected at
    parse time with a readable message instead of a pool failure."""
    try:
        return _positive_int_arg(text)
    except argparse.ArgumentTypeError as exc:
        raise argparse.ArgumentTypeError(
            f"{exc}; omit the flag to auto-detect") from None


def _nonneg_float_arg(text: str) -> float:
    """argparse type for ``--interval``: a non-negative number
    (``time.sleep`` rejects negatives with a raw traceback)."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid float value: {text!r}") from None
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0 (got {value})")
    return value


def _positive_int_arg(text: str) -> int:
    """argparse type for ``--polls``: a positive integer."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid int value: {text!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1 (got {value})")
    return value


def _nonneg_int_arg(text: str) -> int:
    """argparse type for ``--max-restarts``: an integer >= 0 (0 means
    a failed job stops on its first failure, no restart attempts)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid int value: {text!r}") from None
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0 (got {value})")
    return value


def _port_arg(text: str) -> int:
    """argparse type for ``--metrics-port``: 0 (ephemeral) – 65535."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid int value: {text!r}") from None
    if not 0 <= value <= 65535:
        raise argparse.ArgumentTypeError(
            f"must be a port number 0-65535 (got {value}; 0 binds an "
            f"ephemeral port)")
    return value


def _window_arg(text: str) -> int:
    """argparse type for ``--window``: an integer >= 2 (a coarsening
    pass merges adjacent pairs — below two entries there is nothing to
    merge into)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"invalid int value: {text!r}") from None
    if value < 2:
        raise argparse.ArgumentTypeError(f"must be >= 2 (got {value})")
    return value


def _add_ingest_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workers", type=_workers_arg, default=None,
                        metavar="N",
                        help="parse trace files on N processes when the "
                             "source is a directory (default: auto-detect "
                             "from the available CPUs; 1 = sequential; "
                             "sources that cannot parallelize warn)")
    parser.add_argument("--recursive", action="store_true",
                        help="also discover .st files in nested "
                             "subdirectories (per-host trace layouts)")
    parser.add_argument("--lenient", action="store_true",
                        help="tolerate corrupt input: undecodable bytes "
                             "become U+FFFD (counted, warned) and orphan "
                             "resumed records are skipped instead of "
                             "aborting the parse")


def _mapping(args: argparse.Namespace):
    from repro.fleet.job import mapping_from_name

    return mapping_from_name(args.mapping, args.levels)


def _add_pipeline_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("source", help=SOURCE_HELP)
    _add_ingest_options(parser)
    parser.add_argument("--filter", default=None, metavar="SUBSTR",
                        help="keep only events whose path contains SUBSTR")
    parser.add_argument("--mapping", default="topdirs",
                        choices=("topdirs", "path", "call", "site"),
                        help="event→activity mapping (default: the "
                             "paper's call+top-2-dirs)")
    parser.add_argument("--levels", type=int, default=2,
                        help="directory levels for the mapping")
    parser.add_argument("--exclude-calls", default=None, metavar="A,B",
                        help="drop these syscalls before synthesis "
                             "(Fig. 9 skips openat)")


def _default_run_name(source) -> str:
    """Run name when ``--run-name`` is omitted: the source target's
    basename (``traces/app1`` → ``app1``, ``run.elog`` → ``run.elog``)."""
    from repro.sources import parse_source_spec

    target = parse_source_spec(str(source)).target
    return os.path.basename(os.path.normpath(target)) or str(target)


def _record_batch_run(args: argparse.Namespace, log: EventLog,
                      mapping, levels: int) -> None:
    """Commit a batch-layer run to ``--catalog`` (no-op without it)."""
    if not getattr(args, "catalog", None):
        return
    from repro.catalog import RunCatalog, RunRecord

    record = RunRecord.from_log(
        log,
        name=(getattr(args, "run_name", None)
              or _default_run_name(args.source)),
        source=str(args.source), mapping=mapping.name, levels=levels)
    run_id = RunCatalog(args.catalog).record_run(record)
    print(f"cataloged run {run_id} ({record.name!r}) in {args.catalog}")


def _add_catalog_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--catalog", default=None, metavar="FILE",
                        help="record this run (DFG, per-activity "
                             "statistics, metadata, fingerprint) into "
                             "a run catalog (created if missing; see "
                             "docs/catalog.md and `st-inspector runs`)")
    parser.add_argument("--run-name", default=None, metavar="NAME",
                        help="name the cataloged run is recorded "
                             "under (default: the source's basename); "
                             "`runs list --app NAME` and catalog: "
                             "baselines filter on it")


def _print_json(payload) -> None:
    print(json.dumps(payload, sort_keys=True, indent=2))


def _prepared_log(args: argparse.Namespace) -> EventLog:
    log = _load_args(args)
    if args.filter:
        log.apply_fp_filter(args.filter)
    if args.exclude_calls:
        names = [n.strip() for n in args.exclude_calls.split(",") if n]
        log = log.filtered(~log.frame.call_in(names))
    log.apply_mapping_fn(_mapping(args))
    return log


def cmd_simulate_ls(args: argparse.Namespace) -> int:
    from repro.simulate.workloads.ls import generate_fig1_traces

    ls_paths, lsl_paths = generate_fig1_traces(args.directory)
    print(f"wrote {len(ls_paths)} 'ls' traces and {len(lsl_paths)} "
          f"'ls -l' traces to {args.directory}")
    return 0


def cmd_simulate_ior(args: argparse.Namespace) -> int:
    from repro.simulate.strace_writer import (
        EXPERIMENT_A_CALLS,
        EXPERIMENT_B_CALLS,
        write_trace_files,
    )
    from repro.simulate.workloads.ior import IORConfig, simulate_ior

    config = IORConfig(
        ranks=args.ranks,
        ranks_per_node=args.ranks_per_node,
        transfer_size=args.transfer_kib << 10,
        block_size=args.block_mib << 20,
        segments=args.segments,
        file_per_process=args.fpp,
        api=args.api,
        cid=args.cid,
        test_file=args.test_file,
        seed=args.seed,
    )
    result = simulate_ior(config)
    calls = (EXPERIMENT_B_CALLS if args.trace_lseek
             else EXPERIMENT_A_CALLS)
    paths = write_trace_files(result.recorders, args.directory,
                              trace_calls=calls)
    print(f"simulated {config.ranks} ranks "
          f"({result.total_syscalls()} syscalls, makespan "
          f"{result.makespan_us / 1e6:.2f} s); wrote {len(paths)} "
          f"trace files to {args.directory}")
    return 0


def cmd_convert(args: argparse.Namespace) -> int:
    from repro.elstore.convert import convert_source

    out = convert_source(_open_source_args(args), args.output)
    from repro.elstore.reader import EventLogStore

    store = EventLogStore(out)
    print(f"wrote {out} ({store.n_cases} cases, "
          f"{store.n_events} events)")
    if args.catalog:
        # Catalog the packed artifact under the default mapping (the
        # paper's call+top-2-dirs — `report --catalog` records under
        # whatever --mapping it was given instead).
        from repro.fleet.job import mapping_from_name
        from repro.sources import ElstoreSource

        log = ElstoreSource(out).event_log()
        mapping = mapping_from_name("topdirs", 2)
        log.apply_mapping_fn(mapping)
        _record_batch_run(args, log, mapping, 2)
    return 0


def cmd_synthesize(args: argparse.Namespace) -> int:
    log = _prepared_log(args)
    dfg = DFG(log)
    stats = IOStatistics(log)
    viewer = DFGViewer(dfg, stats, StatisticsColoring(stats),
                       show_ranks=args.show_ranks)
    text = viewer.render(args.format)
    if args.output:
        Path(args.output).write_text(text, encoding="utf-8")
        print(f"wrote {args.output}")
    else:
        print(text, end="")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    log = _prepared_log(args)
    stats = IOStatistics(log)
    if args.json:
        from repro.pipeline.serialize import stats_payload

        _print_json(stats_payload(stats, top=args.top))
    else:
        print(activity_report(stats, top=args.top), end="")
    _record_batch_run(args, log, _mapping(args), args.levels)
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    log = _prepared_log(args)
    green = [c.strip() for c in args.green.split(",") if c.strip()]
    green_log, red_log = PartitionEL(log, green)
    stats = IOStatistics(log)
    coloring = PartitionColoring(DFG(green_log), DFG(red_log), stats)
    print(comparison_report(coloring, stats), end="")
    viewer = DFGViewer(DFG(log), stats, coloring)
    text = viewer.render(args.format)
    if args.output:
        Path(args.output).write_text(text, encoding="utf-8")
        print(f"wrote {args.output}")
    else:
        print(text, end="")
    return 0


def cmd_variants(args: argparse.Namespace) -> int:
    from repro.pipeline.report import variants_report

    log = _prepared_log(args)
    print(variants_report(log, top=args.top), end="")
    return 0


def cmd_diff(args: argparse.Namespace) -> int:
    from repro.core.diff import DFGDiff

    log = _prepared_log(args)
    green = [c.strip() for c in args.green.split(",") if c.strip()]
    green_log, red_log = PartitionEL(log, green)
    diff = DFGDiff.between(green_log, red_log)
    if args.json:
        from repro.pipeline.serialize import diff_payload

        _print_json(diff_payload(diff, top=args.top))
    else:
        print(diff.report(top=args.top), end="")
    return 0


def cmd_html_report(args: argparse.Namespace) -> int:
    from repro.pipeline.html import save_html_report

    log = _prepared_log(args)
    styler = None
    if args.green:
        from repro.core.coloring import PartitionColoring

        green = [c.strip() for c in args.green.split(",") if c.strip()]
        green_log, red_log = PartitionEL(log, green)
        styler = PartitionColoring(DFG(green_log), DFG(red_log),
                                   IOStatistics(log))
    else:
        styler = StatisticsColoring(IOStatistics(log))
    timelines = ([a.strip() for a in args.timelines.split(",")]
                 if args.timelines else None)
    out = save_html_report(log, args.output, title=args.title,
                           styler=styler,
                           timeline_activities=timelines)
    print(f"wrote {out}")
    return 0


def cmd_timeline(args: argparse.Namespace) -> int:
    from repro.core.render.timeline import (
        render_timeline_ascii,
        render_timeline_svg,
    )

    log = _prepared_log(args)
    stats = IOStatistics(log)
    rows = stats.timeline(args.activity)
    if args.format == "svg":
        text = render_timeline_svg(rows, activity=args.activity)
    else:
        text = render_timeline_ascii(rows, activity=args.activity)
    if args.output:
        Path(args.output).write_text(text, encoding="utf-8")
        print(f"wrote {args.output}")
    else:
        print(text, end="")
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    from repro.core.render.profile import (
        render_profile_ascii,
        render_profile_svg,
    )

    log = _prepared_log(args)
    stats = IOStatistics(log)
    rows = stats.timeline(args.activity)
    if args.format == "svg":
        text = render_profile_svg(rows, activity=args.activity)
    else:
        text = render_profile_ascii(rows, activity=args.activity)
    if args.output:
        Path(args.output).write_text(text, encoding="utf-8")
        print(f"wrote {args.output}")
    else:
        print(text, end="")
    return 0


def cmd_counters(args: argparse.Namespace) -> int:
    from repro.pipeline.counters import counters_report

    log = _load_args(args)
    if args.filter:
        log.apply_fp_filter(args.filter)
    print(counters_report(log, top=args.top), end="")
    return 0


def cmd_watch(args: argparse.Namespace) -> int:
    from repro.fleet.job import JobSpec
    from repro.live.watch import run_watch

    # JobSpec.build_engine is the old inline wiring, extracted: rules
    # loading (a malformed file raises AlertConfigError naming the
    # offending rule), sink flags, telemetry, checkpoint restore.
    # Anything it raises is a *configuration* error → main() → exit 2.
    spec = JobSpec(
        source=args.directory,
        interval=args.interval,
        polls=1 if args.once else args.polls,
        checkpoint=args.checkpoint,
        rules=args.rules,
        baseline=args.baseline,
        alert_log=args.alert_log,
        emit=args.emit,
        window=args.window,
        memory_budget=args.memory_budget,
        compact_emit=args.compact_emit,
        mapping=args.mapping,
        levels=args.levels,
        recursive=args.recursive,
        lenient=args.lenient,
        show_dfg=not args.no_dfg,
        top=args.top,
        telemetry=(args.metrics_port is not None
                   or args.metrics_log is not None),
        metrics_log=args.metrics_log,
        catalog=args.catalog,
        run_name=(args.run_name or _default_run_name(args.directory)
                  if args.catalog else None),
    )
    engine = spec.build_engine()
    try:
        return run_watch(engine, interval=args.interval,
                         polls=spec.polls,
                         show_dfg=spec.show_dfg, top=args.top,
                         metrics_port=args.metrics_port,
                         metrics_log=args.metrics_log,
                         spec=spec)
    except ReproError as exc:
        # A failure *inside* the live loop (a tracked file vanishing,
        # a torn trace) is a runtime error, not a usage error: exit 1,
        # message instead of a traceback. The emit journal was already
        # packed by run_watch's finally.
        print(f"error: {exc}", file=sys.stderr)
        return 1


def cmd_fleet(args: argparse.Namespace) -> int:
    from repro.fleet import load_fleet_config, run_fleet

    # Config problems (missing file, bad keys, colliding write paths,
    # missing trace directories, malformed rules) all surface here,
    # before any poll → main() → exit 2.
    specs = load_fleet_config(args.jobs)
    polls = 1 if args.once else args.polls
    jobs = []
    for spec in specs:
        spec = spec.with_overrides(
            polls=polls,
            telemetry=spec.telemetry or args.metrics_port is not None)
        jobs.append(spec.build())
    try:
        return run_fleet(jobs, metrics_port=args.metrics_port,
                         max_restarts=args.max_restarts)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _health_verdict(path: Path) -> dict:
    import json

    from repro.telemetry import health_from_snapshot

    if not path.exists():
        raise ReproError(f"no such checkpoint: {path}")
    try:
        state = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ReproError(f"corrupt checkpoint {path}: {exc}") from exc
    snapshot = (state.get("telemetry") or {}).get("snapshot")
    if not snapshot:
        raise ReproError(
            f"checkpoint {path} holds no telemetry snapshot — run the "
            f"watch with --metrics-port or --metrics-log so polls are "
            f"instrumented (sidecar version {state.get('version')!r})")
    return health_from_snapshot(snapshot)


def cmd_health(args: argparse.Namespace) -> int:
    import json

    from repro.telemetry import render_health

    verdicts = {str(path): _health_verdict(Path(path))
                for path in args.checkpoints}
    if len(verdicts) == 1:
        # Single-checkpoint behavior is unchanged: plain verdict,
        # no aggregation wrapper.
        verdict = next(iter(verdicts.values()))
        if args.json:
            print(json.dumps(verdict, sort_keys=True, indent=2))
        else:
            print(render_health(verdict))
        return 0 if verdict["status"] == "ok" else 1
    from repro.telemetry.health import aggregate_health

    combined = aggregate_health(verdicts)
    if args.json:
        print(json.dumps(combined, sort_keys=True, indent=2))
    else:
        for name, verdict in verdicts.items():
            print(f"== {name}")
            print(render_health(verdict))
        print(f"fleet status: {combined['status']} "
              f"({len(verdicts)} checkpoint(s), worst wins)")
    return 0 if combined["status"] == "ok" else 1


def _open_catalog(args: argparse.Namespace):
    """Query-side catalog open: the file must already exist."""
    from repro.catalog import RunCatalog

    return RunCatalog(args.catalog, create=False)


def cmd_runs_list(args: argparse.Namespace) -> int:
    from repro.catalog import runs_table

    catalog = _open_catalog(args)
    rows = catalog.list_runs(app=args.app, source=args.source,
                             mapping=args.mapping, limit=args.limit)
    if args.json:
        _print_json([row.to_json() for row in rows])
    else:
        print(runs_table(rows), end="")
    return 0


def cmd_runs_show(args: argparse.Namespace) -> int:
    from repro.catalog import show_run

    catalog = _open_catalog(args)
    row = catalog.resolve(args.run)
    if args.json:
        from repro.pipeline.serialize import stats_payload

        _print_json({
            "run": row.to_json(),
            "statistics": stats_payload(catalog.statistics(row.id),
                                        top=args.top),
            "alerts": [alert.to_json()
                       for alert in catalog.alerts(row.id)],
        })
    else:
        print(show_run(catalog, row, top=args.top), end="")
    return 0


def cmd_runs_diff(args: argparse.Namespace) -> int:
    from repro.catalog import diff_runs

    catalog = _open_catalog(args)
    green, red, diff = diff_runs(catalog, args.green, args.red)
    if args.json:
        from repro.pipeline.serialize import diff_payload

        _print_json({
            "green": green.to_json(),
            "red": red.to_json(),
            "diff": diff_payload(diff, top=args.top),
        })
    else:
        print(f"green: run {green.id} ({green.name!r}), "
              f"red: run {red.id} ({red.name!r})")
        print(diff.report(top=args.top), end="")
    return 0


def cmd_runs_trend(args: argparse.Namespace) -> int:
    from repro.catalog import render_trend, trend_payload

    catalog = _open_catalog(args)
    payload = trend_payload(catalog, args.metric, app=args.app,
                            limit=args.limit, activity=args.activity)
    if args.json:
        _print_json(payload)
    else:
        print(render_trend(payload), end="")
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    from repro.pipeline.validate import validate_event_log, \
        validation_report

    log = _load_args(args)
    print(validation_report(log), end="")
    issues = validate_event_log(log)
    return 1 if any(i.severity == "error" for i in issues) else 0


def cmd_export_csv(args: argparse.Namespace) -> int:
    from repro.sources.csv_log import write_csv_log

    log = _load_args(args)
    out = write_csv_log(log, args.output)
    print(f"wrote {out} ({log.n_events} events)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="st-inspector",
        description="DFG synthesis of I/O system-call traces "
                    "(SC-W 2024 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("simulate-ls",
                       help="generate the paper's Fig. 1 example traces")
    p.add_argument("directory")
    p.set_defaults(fn=cmd_simulate_ls)

    p = sub.add_parser("simulate-ior", help="run the IOR simulator")
    p.add_argument("directory")
    p.add_argument("--ranks", type=int, default=96)
    p.add_argument("--ranks-per-node", type=int, default=48)
    p.add_argument("--transfer-kib", type=int, default=1024,
                   help="-t, in KiB (default 1m)")
    p.add_argument("--block-mib", type=int, default=16,
                   help="-b, in MiB (default 16m)")
    p.add_argument("--segments", type=int, default=3, help="-s")
    p.add_argument("--fpp", action="store_true", help="-F")
    p.add_argument("--api", choices=("posix", "mpiio"), default="posix")
    p.add_argument("--cid", default="ior")
    p.add_argument("--test-file", default="/p/scratch/ssf/test")
    p.add_argument("--trace-lseek", action="store_true",
                   help="include lseek in the -e set (experiment B)")
    p.add_argument("--seed", type=int, default=4242)
    p.set_defaults(fn=cmd_simulate_ior)

    p = sub.add_parser("convert",
                       help="pack any trace source into an .elog store")
    p.add_argument("source", help=SOURCE_HELP)
    p.add_argument("output")
    _add_ingest_options(p)
    _add_catalog_options(p)
    p.set_defaults(fn=cmd_convert)

    p = sub.add_parser("synthesize", help="build and render the DFG")
    _add_pipeline_options(p)
    p.add_argument("--format", choices=("ascii", "dot", "svg"),
                   default="ascii")
    p.add_argument("--show-ranks", action="store_true")
    p.add_argument("--output", default=None)
    p.set_defaults(fn=cmd_synthesize)

    p = sub.add_parser("report", help="per-activity statistics table")
    _add_pipeline_options(p)
    p.add_argument("--top", type=int, default=None)
    p.add_argument("--json", action="store_true",
                   help="emit the statistics as JSON (the same shape "
                        "`runs show --json` uses) instead of the table")
    _add_catalog_options(p)
    p.set_defaults(fn=cmd_report)

    p = sub.add_parser("compare",
                       help="partition-colored comparison of cids")
    _add_pipeline_options(p)
    p.add_argument("--green", required=True,
                   help="comma-separated cids for the green subset")
    p.add_argument("--format", choices=("ascii", "dot", "svg"),
                   default="ascii")
    p.add_argument("--output", default=None)
    p.set_defaults(fn=cmd_compare)

    p = sub.add_parser("timeline", help="Fig. 5 timeline of an activity")
    _add_pipeline_options(p)
    p.add_argument("--activity", required=True)
    p.add_argument("--format", choices=("ascii", "svg"), default="ascii")
    p.add_argument("--output", default=None)
    p.set_defaults(fn=cmd_timeline)

    p = sub.add_parser("profile",
                       help="concurrency-over-time profile of an activity")
    _add_pipeline_options(p)
    p.add_argument("--activity", required=True)
    p.add_argument("--format", choices=("ascii", "svg"), default="ascii")
    p.add_argument("--output", default=None)
    p.set_defaults(fn=cmd_profile)

    p = sub.add_parser("counters",
                       help="Darshan-style per-case counters")
    p.add_argument("source", help=SOURCE_HELP)
    _add_ingest_options(p)
    p.add_argument("--filter", default=None, metavar="SUBSTR")
    p.add_argument("--top", type=int, default=None)
    p.set_defaults(fn=cmd_counters)

    p = sub.add_parser("watch",
                       help="live-monitor a growing trace directory "
                            "(incremental ingestion + standing DFG)")
    p.add_argument("directory", help="trace directory being written "
                                     "(may still be empty)")
    p.add_argument("--interval", type=_nonneg_float_arg, default=2.0,
                   metavar="SEC",
                   help="seconds between polls (default: 2)")
    p.add_argument("--once", action="store_true",
                   help="poll a single time and exit")
    p.add_argument("--polls", type=_positive_int_arg, default=None,
                   metavar="N",
                   help="stop after N polls (default: run until ^C)")
    p.add_argument("--checkpoint", default=None, metavar="FILE",
                   help="JSON sidecar making ingestion resumable: "
                        "loaded if present, rewritten after every poll")
    p.add_argument("--window", type=_window_arg, default=None,
                   metavar="N",
                   help="bound per-case statistics memory: coarsen "
                        "interval/rate buffers past N entries "
                        "(scalar stats stay exact; merge counts and "
                        "timelines become upper bounds, marked '~'; "
                        "default: unbounded)")
    p.add_argument("--memory-budget", type=_positive_int_arg,
                   default=None, metavar="BYTES",
                   help="adaptive --window: derive and re-derive the "
                        "per-case interval-buffer cap each poll so "
                        "the measured buffer footprint stays under "
                        "BYTES (mutually exclusive with --window)")
    p.add_argument("--emit", default=None, metavar="FILE",
                   help="stream sealed records to a durable journal "
                        "next to FILE and pack FILE as an .elog on "
                        "exit — byte-identical to batch `convert` of "
                        "the directory, surviving kill/restart cycles "
                        "(combine with --checkpoint)")
    p.add_argument("--compact-emit", type=_positive_int_arg,
                   default=None, metavar="BYTES",
                   help="rolling journal compaction: whenever the "
                        "checkpointed part of the --emit journal "
                        "exceeds BYTES, pack it into FILE and "
                        "truncate the journal, keeping disk usage "
                        "O(window) over a week-long watch (requires "
                        "--emit and --checkpoint; the final .elog "
                        "stays byte-identical to batch `convert`)")
    p.add_argument("--rules", default=None, metavar="FILE",
                   help="alerting rules file (TOML, or *.json): "
                        "threshold rules over the refresh deltas, "
                        "evaluated every poll (see docs/rules.md); "
                        "fired alerts render as a pane and route to "
                        "the configured sinks")
    p.add_argument("--alert-log", default=None, metavar="FILE",
                   help="append fired alerts as JSON lines to FILE "
                        "(adds a jsonl sink on top of the rules "
                        "file's [sinks]); requires --rules")
    p.add_argument("--baseline", default=None, metavar="SOURCE",
                   help="reference run for against='baseline' and "
                        "absent_from_baseline rules — any trace "
                        "source (elog:good.elog, sim:ior?ranks=4, a "
                        "bare path); overrides the rules file's "
                        "baseline entry; requires --rules")
    p.add_argument("--recursive", action="store_true",
                   help="also follow .st files in nested subdirectories")
    p.add_argument("--lenient", action="store_true",
                   help="tolerate corrupt input (as for batch ingestion)")
    p.add_argument("--mapping", default="topdirs",
                   choices=("topdirs", "path", "call", "site"),
                   help="event→activity mapping (default: the paper's "
                        "call+top-2-dirs)")
    p.add_argument("--levels", type=int, default=2,
                   help="directory levels for the mapping")
    p.add_argument("--no-dfg", action="store_true",
                   help="print the status/diff summary only, skip the "
                        "ASCII DFG")
    p.add_argument("--top", type=int, default=5,
                   help="rows in the change-diff summary")
    p.add_argument("--metrics-port", type=_port_arg, default=None,
                   metavar="PORT",
                   help="serve Prometheus text on 127.0.0.1:PORT"
                        "/metrics and a JSON health verdict on "
                        "/healthz for the life of the watch (0 binds "
                        "an ephemeral port, announced on stdout); "
                        "turns telemetry on")
    p.add_argument("--metrics-log", default=None, metavar="FILE",
                   help="append one JSON telemetry snapshot per poll "
                        "to FILE (the offline twin of --metrics-port "
                        "for hosts nothing scrapes); turns telemetry "
                        "on")
    _add_catalog_options(p)
    p.set_defaults(fn=cmd_watch)

    p = sub.add_parser("fleet",
                       help="run many watch jobs on one cooperative "
                            "scheduler, from a fleet.toml")
    p.add_argument("--jobs", required=True, metavar="FILE",
                   help="fleet config (TOML, or *.json): top-level "
                        "defaults fan out to every [jobs.NAME] table, "
                        "per-job keys override (see docs/fleet.md)")
    p.add_argument("--once", action="store_true",
                   help="poll every job a single time and exit")
    p.add_argument("--polls", type=_positive_int_arg, default=None,
                   metavar="N",
                   help="stop each job after N polls (default: run "
                        "until ^C)")
    p.add_argument("--metrics-port", type=_port_arg, default=None,
                   metavar="PORT",
                   help="serve every job's Prometheus series (tagged "
                        "with a job=\"NAME\" label) on 127.0.0.1:PORT"
                        "/metrics and the worst-of-jobs verdict on "
                        "/healthz (0 binds an ephemeral port); turns "
                        "telemetry on for every job")
    p.add_argument("--max-restarts", type=_nonneg_int_arg,
                   default=None, metavar="N",
                   help="stop a job after N consecutive failed "
                        "restart cycles instead of backing off "
                        "forever (siblings keep running either way; "
                        "default: unbounded)")
    p.set_defaults(fn=cmd_fleet)

    p = sub.add_parser("health",
                       help="render the health verdict from watch "
                            "checkpoints' persisted telemetry "
                            "snapshots")
    p.add_argument("checkpoints", nargs="+", metavar="checkpoint",
                   help="checkpoint sidecar(s) written by "
                        "instrumented watches (v5+); several "
                        "aggregate worst-of, matching the fleet's "
                        "/healthz")
    p.add_argument("--json", action="store_true",
                   help="print the raw JSON verdict instead of the "
                        "readable rendering")
    p.set_defaults(fn=cmd_health)

    p = sub.add_parser("runs",
                       help="query a run catalog: list, show, diff "
                            "and trend over recorded runs")
    runs_sub = p.add_subparsers(dest="runs_command", required=True)

    q = runs_sub.add_parser("list", help="list cataloged runs with "
                                         "metadata filters")
    q.add_argument("catalog", help="run catalog (.db) written by "
                                   "--catalog / a fleet catalog key")
    q.add_argument("--app", default=None, metavar="NAME",
                   help="only runs recorded under this run name")
    q.add_argument("--source", default=None, metavar="SUBSTR",
                   help="only runs whose source URI contains SUBSTR")
    q.add_argument("--mapping", default=None, metavar="NAME",
                   help="only runs recorded under this mapping name "
                        "(e.g. call+top2dirs)")
    q.add_argument("--limit", type=_positive_int_arg, default=None,
                   metavar="N", help="newest N matching runs")
    q.add_argument("--json", action="store_true",
                   help="emit the metadata rows as JSON")
    q.set_defaults(fn=cmd_runs_list)

    q = runs_sub.add_parser("show", help="one run in full: metadata, "
                                         "statistics, fired alerts")
    q.add_argument("catalog", help="run catalog (.db)")
    q.add_argument("run", help="run reference: a numeric catalog id, "
                               "or a run name (resolves to that "
                               "app's newest run)")
    q.add_argument("--top", type=int, default=None,
                   help="rows in the statistics table")
    q.add_argument("--json", action="store_true",
                   help="emit run + statistics + alerts as JSON "
                        "(statistics share `report --json`'s shape)")
    q.set_defaults(fn=cmd_runs_show)

    q = runs_sub.add_parser("diff", help="DFG diff between two "
                                         "cataloged runs (green - red)")
    q.add_argument("catalog", help="run catalog (.db)")
    q.add_argument("green", help="run reference for the green side")
    q.add_argument("red", help="run reference for the red side")
    q.add_argument("--top", type=int, default=10)
    q.add_argument("--json", action="store_true",
                   help="emit the diff as JSON (the same shape "
                        "`diff --json` uses)")
    q.set_defaults(fn=cmd_runs_diff)

    q = runs_sub.add_parser("trend", help="one metric across a run "
                                          "history, per activity")
    q.add_argument("catalog", help="run catalog (.db)")
    q.add_argument("--metric", default="relative_duration",
                   choices=("relative_duration", "total_bytes",
                            "max_concurrency", "event_count",
                            "process_data_rate"),
                   help="Sec. IV-B metric to trend (default: "
                        "relative_duration)")
    q.add_argument("--app", default=None, metavar="NAME",
                   help="only runs recorded under this run name")
    q.add_argument("--limit", type=_positive_int_arg, default=None,
                   metavar="N", help="newest N matching runs")
    q.add_argument("--activity", default=None,
                   help="restrict the table to one activity row")
    q.add_argument("--json", action="store_true",
                   help="emit the trend series as JSON")
    q.set_defaults(fn=cmd_runs_trend)

    p = sub.add_parser("validate",
                       help="check the log against the Sec. III/IV "
                            "preconditions")
    p.add_argument("source", help=SOURCE_HELP)
    _add_ingest_options(p)
    p.set_defaults(fn=cmd_validate)

    p = sub.add_parser("export-csv",
                       help="export the event-log as CSV (tool-agnostic)")
    p.add_argument("source", help=SOURCE_HELP)
    p.add_argument("output")
    _add_ingest_options(p)
    p.set_defaults(fn=cmd_export_csv)

    p = sub.add_parser("variants",
                       help="trace variants with multiplicities")
    _add_pipeline_options(p)
    p.add_argument("--top", type=int, default=10)
    p.set_defaults(fn=cmd_variants)

    p = sub.add_parser("diff",
                       help="quantitative DFG diff between cid groups")
    _add_pipeline_options(p)
    p.add_argument("--green", required=True,
                   help="comma-separated cids for the green subset")
    p.add_argument("--top", type=int, default=10)
    p.add_argument("--json", action="store_true",
                   help="emit the diff as JSON (the same shape "
                        "`runs diff --json` uses) instead of the "
                        "text report")
    p.set_defaults(fn=cmd_diff)

    p = sub.add_parser("html-report",
                       help="standalone HTML report (SVG + tables)")
    _add_pipeline_options(p)
    p.add_argument("--output", required=True)
    p.add_argument("--title", default="st_inspector report")
    p.add_argument("--green", default=None,
                   help="optional: partition-color by these cids")
    p.add_argument("--timelines", default=None,
                   help="comma-separated activities to add timelines for")
    p.set_defaults(fn=cmd_html_report)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""The paper's public API, by its exact Fig. 6 names.

The paper's implementation is the Zenodo-published ``st_inspector``
library; its Fig. 6 listing is::

    import pandas as pd
    from st_inspector import *

    event_log = EventLogH5(H5_FILE_PATH)
    event_log.apply_fp_filter('/usr/lib')
    event_log.apply_mapping_fn(f)
    dfg = DFG(event_log)
    stats = IOStatistics()
    stats.compute_statistics(event_log)
    colored_dfg = DFGViewer(dfg, styler=StatisticsColoring(stats))
    colored_dfg.render()
    green_event_log, red_event_log = PartitionEL(event_log)
    green_dfg = DFG(green_event_log)
    red_dfg = DFG(red_event_log)
    partition_coloring = PartitionColoring(green_dfg, red_dfg, stats)
    colored_dfg = DFGViewer(dfg, styler=partition_coloring)
    colored_dfg.render()

This module makes ``from repro.st_inspector import *`` provide every
name that listing uses, with matching call signatures, so the paper's
code runs against this reproduction as printed — the only difference
being the storage backend: ``EventLogH5`` opens our ``.elog`` columnar
container instead of HDF5 (h5py is unavailable; see DESIGN.md §2).
The alias accepts either a store path or a directory of raw ``.st``
trace files, covering both halves of the paper's pipeline.

Beyond Fig. 6, the facade also carries the two entry points this
reproduction *adds* to the paper's workflow — live monitoring and
alerting — so a script that starts from the paper's imports can reach
them without learning the package layout::

    from repro.st_inspector import LiveIngest, AlertEngine

    engine = LiveIngest("traces/",
                        alerts=AlertEngine.from_rules_file("rules.toml"))

(`docs/architecture.md` maps the full system; Fig. 6 names stay
byte-compatible with the paper.)
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.alerts import AlertEngine
from repro.core.coloring import PartitionColoring, StatisticsColoring
from repro.core.dfg import DFG
from repro.core.eventlog import EventLog
from repro.core.mapping import (
    CallOnly,
    CallPath,
    CallPathTail,
    CallTopDirs,
    SiteVariables,
)
from repro.core.partition import PartitionEL
from repro.core.render.viewer import DFGViewer
from repro.core.statistics import IOStatistics
from repro.live.engine import LiveIngest

__all__ = [
    "EventLogH5",
    "EventLog",
    "DFG",
    "IOStatistics",
    "DFGViewer",
    "StatisticsColoring",
    "PartitionColoring",
    "PartitionEL",
    "CallTopDirs",
    "CallPathTail",
    "CallPath",
    "CallOnly",
    "SiteVariables",
    # extensions beyond the paper's Fig. 6 listing:
    "LiveIngest",
    "AlertEngine",
]


def EventLogH5(path: str | os.PathLike[str]) -> EventLog:
    """Open a stored event-log — the ``EventLogH5(H5_FILE_PATH)`` of
    Fig. 6.

    Accepts an ``.elog`` container (the HDF5-equivalent single file,
    one group per case) or, for convenience, any other trace source
    the registry resolves (:func:`repro.sources.open_source`): a
    directory of raw ``<cid>_<host>_<rid>.st`` strace files, a CSV
    dump, or a scheme URI.
    """
    return EventLog.from_source(Path(path))

"""Getting telemetry out of the process: Prometheus text + JSONL log.

:func:`render_prometheus` turns a registry into the Prometheus text
exposition format (version 0.0.4) — HELP/TYPE headers, cumulative
``_bucket{le=...}`` histogram series, ``_sum``/``_count``. No client
library: the format is a stable, trivially writable line protocol and
the whole point of this package is zero dependencies.

:class:`MetricsServer` serves ``/metrics`` and ``/healthz`` from a
stdlib ``ThreadingHTTPServer`` on a daemon thread. It binds loopback
by default — the watcher measures *itself*; exposing the port beyond
the host is a deployment decision (SSH tunnel, sidecar proxy), not a
default.

:func:`append_snapshot` writes one JSON line per poll to the
``--metrics-log`` file: the offline twin of the scrape endpoint, for
runs on hosts where nothing scrapes (batch nodes behind a scheduler).
"""

from __future__ import annotations

import json
import math
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

from repro._util.errors import ReproError
from repro.telemetry.health import health_from_snapshot
from repro.telemetry.metrics import (METRICS, PREFIX, MetricsRegistry,
                                     metric_spec)


def _escape_label(value: str) -> str:
    return (value.replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def _labels_text(labels: tuple, extra: str = "") -> str:
    parts = [f'{k}="{_escape_label(str(v))}"' for k, v in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _render_family(lines: list[str], name: str,
                   tagged: list[tuple[tuple, object]]) -> None:
    """One metric family: a single HELP/TYPE header, then every series
    — ``tagged`` pairs each metric with extra label pairs (the fleet's
    ``job`` label; empty for a single-registry render)."""
    spec = metric_spec(name)
    kind = spec[0]
    full = PREFIX + name
    lines.append(f"# HELP {full} {spec[1]}")
    lines.append(f"# TYPE {full} {kind}")
    for extra, metric in tagged:
        merged = tuple(sorted((*metric.labels, *extra)))
        if kind == "histogram":
            cumulative = 0
            for bound, count in zip(
                    list(metric.buckets) + [math.inf],
                    metric.merged_counts()):
                cumulative += count
                le = _labels_text(
                    merged, f'le="{_format_value(bound)}"')
                lines.append(f"{full}_bucket{le} {cumulative}")
            labels = _labels_text(merged)
            lines.append(
                f"{full}_sum{labels} "
                f"{_format_value(metric.merged_sum)}")
            lines.append(
                f"{full}_count{labels} {metric.merged_count}")
        else:
            labels = _labels_text(merged)
            lines.append(
                f"{full}{labels} {_format_value(metric.value)}")


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format 0.0.4."""
    lines: list[str] = []
    for name, metrics in registry.families():
        _render_family(lines, name, [((), m) for m in metrics])
    return "\n".join(lines) + "\n"


def render_prometheus_fleet(
        named: "list[tuple[str, MetricsRegistry]]") -> str:
    """Many registries as one exposition, each series tagged with a
    ``job`` label. One HELP/TYPE header per family (the text format
    forbids repeats), families in declared :data:`METRICS` order,
    series within a family ordered job-first — a fleet of N jobs
    scrapes exactly like N watchers behind one endpoint."""
    families: dict[str, list[tuple[tuple, object]]] = {}
    for job, registry in named:
        tag = (("job", job),)
        for name, metrics in registry.families():
            bucket = families.setdefault(name, [])
            bucket.extend((tag, m) for m in metrics)
    lines: list[str] = []
    for name in METRICS:
        if name in families:
            _render_family(lines, name, families[name])
    return "\n".join(lines) + "\n"


class MetricsServer:
    """``/metrics`` + ``/healthz`` on a daemon thread.

    ``port=0`` binds an ephemeral port; read the real one from
    ``self.port`` after construction (tests and multi-watcher hosts).
    The handler only *reads* telemetry — rendering takes the registry
    lock per family, so a scrape races the poll loop by at most one
    sample, never a torn line.

    ``telemetry`` is either a single :class:`~repro.telemetry.Telemetry`
    (``registry`` + ``snapshot()``) or a fleet provider exposing
    ``render_metrics()`` / ``health_verdict()`` — one port serves a
    whole :class:`~repro.fleet.FleetScheduler` that way.
    """

    def __init__(self, telemetry, port: int,
                 host: str = "127.0.0.1") -> None:
        self._telemetry = telemetry

        outer = self

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (http.server API)
                path = self.path.split("?", 1)[0]
                provider = outer._telemetry
                if path == "/metrics":
                    if hasattr(provider, "render_metrics"):
                        text = provider.render_metrics()
                    else:
                        text = render_prometheus(provider.registry)
                    self._reply(200, text.encode("utf-8"),
                                "text/plain; version=0.0.4; "
                                "charset=utf-8")
                elif path == "/healthz":
                    if hasattr(provider, "health_verdict"):
                        verdict = provider.health_verdict()
                    else:
                        verdict = health_from_snapshot(
                            provider.snapshot())
                    status = 503 if verdict["status"] == "failing" else 200
                    body = json.dumps(
                        verdict, sort_keys=True).encode("utf-8")
                    self._reply(status, body, "application/json")
                else:
                    self._reply(404, b"not found\n", "text/plain")

            def _reply(self, status: int, body: bytes,
                       content_type: str) -> None:
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args) -> None:
                pass  # scrapes are routine; stderr belongs to alerts

        try:
            self._server = ThreadingHTTPServer((host, port), _Handler)
        except OSError as exc:
            raise ReproError(
                f"metrics server: cannot bind {host}:{port}: {exc}"
            ) from exc
        self._server.daemon_threads = True
        self.host, self.port = self._server.server_address[:2]
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="st-inspector-metrics", daemon=True)
        self._thread.start()

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5.0)


def append_snapshot(path: str | Path, snapshot: dict) -> None:
    """Append one snapshot as a JSON line (the ``--metrics-log``)."""
    line = json.dumps(snapshot, sort_keys=True)
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(line + "\n")

"""Self-observability for the live pipeline.

The system inspects other applications' I/O; this package makes the
inspector itself inspectable. Three layers, all stdlib-only:

- **Spans** (:mod:`repro.telemetry.spans`) — every watch poll becomes
  a :class:`PollSpan` with per-phase wall/CPU timings, recorded
  through a :class:`Telemetry` facade injected into the engine, the
  alert engine, and the watch loop. Disabled by default:
  :data:`NULL_TELEMETRY` makes every call site a no-op.
- **Metrics** (:mod:`repro.telemetry.metrics`) — counters, gauges and
  fixed-bucket histograms in a :class:`MetricsRegistry`; monotonic
  series persist their base in the checkpoint sidecar (v5) so rates
  survive kill/restart.
- **Exposition** (:mod:`repro.telemetry.exposition`,
  :mod:`repro.telemetry.health`) — Prometheus text + ``/healthz``
  verdict over a stdlib HTTP thread (``watch --metrics-port``), a
  JSONL snapshot log (``watch --metrics-log``), and the offline
  ``st-inspector health`` subcommand.

The cardinal rule: the observer must not perturb. Telemetry on or off
changes no DFG, no statistic, no alert — only what is *known* about
producing them.
"""

from repro.telemetry.exposition import (MetricsServer, append_snapshot,
                                        render_prometheus)
from repro.telemetry.health import (THRESHOLDS, health_from_snapshot,
                                    render_health)
from repro.telemetry.metrics import (DURATION_BUCKETS, METRICS, PREFIX,
                                     MetricsRegistry, rss_bytes)
from repro.telemetry.spans import (NULL_TELEMETRY, NullTelemetry,
                                   PollSpan, Telemetry)

__all__ = [
    "DURATION_BUCKETS",
    "METRICS",
    "MetricsRegistry",
    "MetricsServer",
    "NULL_TELEMETRY",
    "NullTelemetry",
    "PREFIX",
    "PollSpan",
    "THRESHOLDS",
    "Telemetry",
    "append_snapshot",
    "health_from_snapshot",
    "render_health",
    "render_prometheus",
    "rss_bytes",
]

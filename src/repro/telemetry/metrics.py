"""Metric primitives: counters, gauges, fixed-bucket histograms.

The registry is deliberately tiny and dependency-free (stdlib only):
the watcher must be able to measure itself on any host it can run on,
and the exposition format (:mod:`repro.telemetry.exposition`) is plain
Prometheus text — no client library required.

Every metric the system may emit is declared up front in
:data:`METRICS`; asking the registry for an undeclared name is an
error. That catches instrumentation typos at the call site (a
miscounted metric is worse than a crash — it lies quietly for weeks)
and gives the documentation a single authoritative table to render
(``docs/observability.md`` lists exactly these names).

**Restart awareness.** Counters and histograms carry a *base*: the
value persisted by the last checkpoint save of a previous watcher
life. A restored metric reports ``base + this life`` — so a rate
computed by a scraper (``rate(st_inspector_events_sealed_total[5m])``)
survives a kill/restart as a flat spot instead of a counter reset,
mirroring how alert latches already persist. Gauges are point-in-time
readings and restart from scratch.
"""

from __future__ import annotations

import os
import threading
from bisect import bisect_left

from repro._util.errors import ReproError

#: Prefix prepended to every metric name at exposition time.
PREFIX = "st_inspector_"

#: Duration histogram buckets (seconds). Poll phases range from
#: microseconds (an idle scan) to tens of seconds (a burst of trace
#: bytes), so the grid is log-ish across that span.
DURATION_BUCKETS = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
                    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0)

#: Sink deliveries are network-ish: finer grid under a second, capped
#: by the sinks' own retry/timeout budgets.
SINK_BUCKETS = (0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5,
                5.0, 15.0, 60.0)

#: Every metric the instrumentation may touch: name -> (type, help).
#: Histograms carry their bucket grid as a third element.
METRICS: dict[str, tuple] = {
    # counters — monotonic, restart-aware (base persisted in the
    # checkpoint sidecar, v5)
    "polls_total": ("counter", "Completed engine polls."),
    "finalizes_total": ("counter", "Finalize passes (end of growth)."),
    "events_sealed_total": (
        "counter", "Records sealed and folded into the DFG."),
    "bytes_tailed_total": (
        "counter", "Trace bytes consumed by the file tailers."),
    "files_discovered_total": (
        "counter", "Trace files first seen by a scan."),
    "alerts_fired_total": ("counter", "Alerts fired by the rule engine."),
    "alerts_suppressed_total": (
        "counter", "Rule firings withheld by a cooldown window."),
    "sink_failures_total": (
        "counter", "Failed alert deliveries, per sink.", None, ("sink",)),
    "sink_retries_total": (
        "counter", "Delivery retry attempts, per sink.", None, ("sink",)),
    "sink_warnings_suppressed_total": (
        "counter",
        "Sink-failure warnings collapsed by the rate limiter, per sink.",
        None, ("sink",)),
    "checkpoint_saves_total": ("counter", "Checkpoint sidecar rewrites."),
    "journal_fsyncs_total": (
        "counter", "Durable emit-journal fsync barriers."),
    "journal_compactions_total": (
        "counter",
        "Rolling journal compactions (checkpointed prefix packed into "
        "the destination .elog, journal truncated)."),
    "sink_queue_dropped_total": (
        "counter",
        "Alerts evicted from the background delivery queue by "
        "drop-oldest overflow (still recorded in the history)."),
    "sink_queue_delivered_total": (
        "counter",
        "Alerts the background delivery worker handed to the sinks."),
    "poll_overruns_total": (
        "counter",
        "Polls whose work overran the interval, re-anchoring the "
        "watch cadence."),
    "job_restarts_total": (
        "counter",
        "Fleet job restarts after a failed poll (scheduler fault "
        "isolation)."),
    "phase_cpu_seconds_total": (
        "counter", "CPU seconds spent per poll phase.", None, ("phase",)),
    # gauges — point-in-time, not persisted
    "files_tracked": ("gauge", "Trace files currently followed."),
    "starving_files": (
        "gauge", "Files whose sealing is starved by an in-flight "
                 "unfinished call."),
    "watermark_age_seconds": (
        "gauge", "Worst sealing-starvation age across files, in trace "
                 "seconds."),
    "interval_buffer_entries": (
        "gauge", "Interval entries buffered by the statistics "
                 "accumulators across all cases."),
    "interval_buffer_window": (
        "gauge", "Per-case interval-buffer cap (--window; 0 = "
                 "unbounded)."),
    "rss_bytes": ("gauge", "Resident set size of the watcher process."),
    "poll_overrun_streak": (
        "gauge", "Consecutive polls that overran the interval."),
    "sink_failure_streak": (
        "gauge", "Worst consecutive-failure streak across alert sinks."),
    "sink_queue_depth": (
        "gauge", "Alerts queued for background delivery and not yet "
                 "picked up by the worker."),
    "emit_journal_bytes": (
        "gauge", "On-disk size of the emit journal after the last "
                 "sync/compaction (bounded by rolling compaction)."),
    # histograms — restart-aware like counters
    "poll_seconds": (
        "histogram", "Wall-clock duration of one poll span (poll + "
        "alert evaluation + checkpoint save).", DURATION_BUCKETS),
    "phase_seconds": (
        "histogram", "Wall-clock duration per poll phase.",
        DURATION_BUCKETS, ("phase",)),
    "sink_seconds": (
        "histogram", "Alert delivery latency per sink (includes "
        "retries).", SINK_BUCKETS, ("sink",)),
    "sink_queue_latency_seconds": (
        "histogram", "Submit-to-delivered latency of alerts routed "
        "through the background delivery queue.", SINK_BUCKETS),
}


def metric_spec(name: str) -> tuple:
    """The declared ``(type, help, [buckets], [label names])`` of a
    metric; undeclared names are instrumentation bugs."""
    try:
        return METRICS[name]
    except KeyError:
        raise ReproError(
            f"undeclared metric {name!r} — add it to "
            f"repro.telemetry.metrics.METRICS") from None


class Counter:
    """Monotonic counter with a restart base (see module docstring)."""

    __slots__ = ("name", "labels", "base", "live")

    def __init__(self, name: str, labels: tuple) -> None:
        self.name = name
        self.labels = labels
        self.base = 0.0
        self.live = 0.0

    @property
    def value(self) -> float:
        return self.base + self.live

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ReproError(
                f"counter {self.name} cannot decrease (inc {amount})")
        self.live += amount

    def set_live_total(self, total: float) -> None:
        """Mirror an externally accumulated this-life total (e.g. a
        sink's own failure count). Monotonic per life; the base still
        carries previous lives."""
        if total < self.live:
            raise ReproError(
                f"counter {self.name} cannot decrease "
                f"(live total {total} < {self.live})")
        self.live = total

    def restore(self, value: float) -> None:
        self.base = float(value)
        self.live = 0.0


class Gauge:
    """A point-in-time reading; restarts from scratch."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: tuple) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-bucket histogram with cumulative exposition and a restart
    base per bucket (counts/sum restored like counters)."""

    __slots__ = ("name", "labels", "buckets", "counts", "sum", "count",
                 "base_counts", "base_sum", "base_count")

    def __init__(self, name: str, labels: tuple,
                 buckets: tuple[float, ...]) -> None:
        self.name = name
        self.labels = labels
        self.buckets = tuple(buckets)
        self.counts = [0] * (len(self.buckets) + 1)  # +Inf last
        self.sum = 0.0
        self.count = 0
        self.base_counts = [0] * (len(self.buckets) + 1)
        self.base_sum = 0.0
        self.base_count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    def merged_counts(self) -> list[int]:
        return [a + b for a, b in zip(self.counts, self.base_counts)]

    @property
    def merged_sum(self) -> float:
        return self.sum + self.base_sum

    @property
    def merged_count(self) -> int:
        return self.count + self.base_count

    def restore(self, counts: list, total: float, count: int) -> None:
        if len(counts) != len(self.base_counts):
            # A bucket-grid change between versions: fold everything
            # into +Inf rather than misattribute latencies.
            folded = [0] * len(self.base_counts)
            folded[-1] = int(sum(counts))
            counts = folded
        self.base_counts = [int(c) for c in counts]
        self.base_sum = float(total)
        self.base_count = int(count)


def _label_key(labels: dict[str, str]) -> tuple:
    return tuple(sorted(labels.items()))


class MetricsRegistry:
    """All metrics of one telemetry instance, keyed by (name, labels).

    Thread-safe for the single-writer / concurrent-reader shape the
    watcher has: the poll loop mutates, the exposition HTTP thread
    renders. Creation and snapshotting take the lock; the hot-path
    ``inc``/``observe`` on an already-created metric are plain
    attribute updates (atomic enough under the GIL for monotonic
    floats — a torn read costs a scrape one sample, never corruption).
    """

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, tuple], object] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, kind: str, labels: dict[str, str]):
        spec = metric_spec(name)
        if spec[0] != kind:
            raise ReproError(
                f"metric {name!r} is declared as a {spec[0]}, "
                f"used as a {kind}")
        declared = spec[3] if len(spec) > 3 else ()
        if tuple(sorted(labels)) != tuple(sorted(declared)):
            raise ReproError(
                f"metric {name!r} declares labels {declared}, "
                f"got {tuple(sorted(labels))}")
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(key)
                if metric is None:
                    if kind == "counter":
                        metric = Counter(name, key[1])
                    elif kind == "gauge":
                        metric = Gauge(name, key[1])
                    else:
                        metric = Histogram(name, key[1], spec[2])
                    self._metrics[key] = metric
        return metric

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get(name, "counter", labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get(name, "gauge", labels)

    def histogram(self, name: str, **labels: str) -> Histogram:
        return self._get(name, "histogram", labels)

    def counter_sum(self, name: str) -> float:
        """Total across every label set of a counter family (0 if the
        family was never touched)."""
        metric_spec(name)
        with self._lock:
            return sum(m.value for (n, _), m in self._metrics.items()
                       if n == name)

    def families(self) -> list[tuple[str, list]]:
        """Declared-order (name, [metric, ...]) pairs of every metric
        family that has been touched, label sets sorted."""
        with self._lock:
            items = sorted(self._metrics.items())
        by_name: dict[str, list] = {}
        for (name, _), metric in items:
            by_name.setdefault(name, []).append(metric)
        return [(name, by_name[name]) for name in METRICS
                if name in by_name]


def rss_bytes() -> int:
    """Current resident set size, best effort.

    ``/proc/self/statm`` where available (Linux — the deployment
    target); the peak-RSS ``getrusage`` reading elsewhere (close
    enough for a leak-or-not health signal); 0 if neither works.
    """
    try:
        with open("/proc/self/statm") as handle:
            return int(handle.read().split()[1]) * os.sysconf("SC_PAGE_SIZE")
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource

        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    except Exception:  # pragma: no cover - exotic platforms
        return 0

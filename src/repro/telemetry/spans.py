"""Poll spans and the `Telemetry` facade threaded through the live path.

One :class:`PollSpan` covers one poll of the watch loop: everything
from ``begin_poll()`` to ``end_poll()`` — the engine poll itself,
alert evaluation, sink fan-out, and the checkpoint save. Inside the
span, instrumented call sites open named *phases* (``scan``, ``tail``,
``decode``, ``seal``, ``emit``, ``fold``, ``stats``, ``alerts``,
``sink:<label>``, ``checkpoint``, ``render``) that record wall-clock
and CPU time. Phases re-enter freely — the tail phase opens once per
chunk, the seal phase once per feed — and the span accumulates them.

The :class:`Telemetry` object owns one :class:`MetricsRegistry` and
the span lifecycle. It is **injected**, never global: an engine holds
exactly one, tests can hold several side by side, and the default is
:data:`NULL_TELEMETRY` — a shared no-op whose ``phase()`` returns a
reusable null context manager, so the uninstrumented hot path costs
one attribute load and one falsy branch per call site and allocates
nothing.

The observer must not perturb: whether telemetry is on or off changes
no DFG edge, no statistic, no alert — a property test pins this
byte-for-byte (``tests/test_live/test_telemetry_live.py``).
"""

from __future__ import annotations

import time
from typing import Callable

from repro._util.errors import ReproError
from repro.telemetry.metrics import MetricsRegistry, rss_bytes

#: Version of the snapshot / persisted-state layout.
SNAPSHOT_VERSION = 1


class PhaseTiming:
    """Accumulated wall/CPU seconds and entry count of one phase
    within one span."""

    __slots__ = ("name", "wall_s", "cpu_s", "entries")

    def __init__(self, name: str) -> None:
        self.name = name
        self.wall_s = 0.0
        self.cpu_s = 0.0
        self.entries = 0

    def to_json(self) -> dict:
        return {"name": self.name, "wall_s": self.wall_s,
                "cpu_s": self.cpu_s, "entries": self.entries}


class PollSpan:
    """Per-phase timing of one watch poll (see module docstring)."""

    __slots__ = ("n_poll", "started_unix", "wall_s", "cpu_s", "phases",
                 "n_sealed", "n_files", "_t0", "_c0")

    def __init__(self, n_poll: int, *, unix_time: float) -> None:
        self.n_poll = n_poll
        self.started_unix = unix_time
        self.wall_s = 0.0
        self.cpu_s = 0.0
        self.phases: dict[str, PhaseTiming] = {}
        self.n_sealed = 0
        self.n_files = 0
        self._t0 = time.perf_counter()
        self._c0 = time.process_time()

    def finish(self) -> None:
        self.wall_s = time.perf_counter() - self._t0
        self.cpu_s = time.process_time() - self._c0

    def phase(self, name: str) -> PhaseTiming:
        timing = self.phases.get(name)
        if timing is None:
            timing = self.phases[name] = PhaseTiming(name)
        return timing

    def top_phases(self, n: int = 3) -> list[PhaseTiming]:
        return sorted(self.phases.values(),
                      key=lambda p: p.wall_s, reverse=True)[:n]

    def to_json(self) -> dict:
        return {
            "n_poll": self.n_poll,
            "started_unix": self.started_unix,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "n_sealed": self.n_sealed,
            "n_files": self.n_files,
            "phases": [t.to_json() for t in
                       sorted(self.phases.values(),
                              key=lambda p: p.wall_s, reverse=True)],
        }


class _PhaseContext:
    """Times one entry of one phase; records into the open span (if
    any) and the cumulative registry histograms."""

    __slots__ = ("_telemetry", "_name", "_t0", "_c0")

    def __init__(self, telemetry: "Telemetry", name: str) -> None:
        self._telemetry = telemetry
        self._name = name

    def __enter__(self) -> "_PhaseContext":
        self._t0 = time.perf_counter()
        self._c0 = time.process_time()
        return self

    def __exit__(self, *exc_info) -> None:
        wall = time.perf_counter() - self._t0
        cpu = time.process_time() - self._c0
        self._telemetry._record_phase(self._name, wall, cpu)


class _NullContext:
    """Reusable no-op context manager (one instance, zero allocation
    per phase on the disabled path)."""

    __slots__ = ()

    def __enter__(self) -> "_NullContext":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_CONTEXT = _NullContext()


class NullTelemetry:
    """The disabled implementation: every recording call is a no-op.

    ``enabled`` is False so call sites can skip work that exists only
    to feed telemetry (building label strings, reading RSS); the
    methods still exist so call sites never need a None check.
    """

    enabled = False
    last_span = None
    overrun_streak = 0

    __slots__ = ()

    def begin_poll(self) -> None:
        return None

    def end_poll(self, result=None) -> None:
        return None

    def abort_poll(self) -> None:
        return None

    def phase(self, name: str) -> _NullContext:
        return _NULL_CONTEXT

    def count(self, name: str, amount: float = 1, **labels: str) -> None:
        return None

    def count_total(self, name: str, total: float, **labels: str) -> None:
        return None

    def gauge_set(self, name: str, value: float, **labels: str) -> None:
        return None

    def observe(self, name: str, value: float, **labels: str) -> None:
        return None

    def record_overrun(self, n_poll: int, overshoot_s: float) -> None:
        return None

    def record_cadence_ok(self) -> None:
        return None


#: The shared disabled instance — the default everywhere.
NULL_TELEMETRY = NullTelemetry()


class Telemetry:
    """Live instrumentation: span lifecycle + metrics registry.

    One instance per watched engine. All recording goes through this
    facade so the call sites stay one-liners and the null
    implementation can mirror them exactly.
    """

    enabled = True

    def __init__(self, *, unix_clock: Callable[[], float] = time.time) -> None:
        self.registry = MetricsRegistry()
        self.last_span: PollSpan | None = None
        self.overrun_streak = 0
        self._span: PollSpan | None = None
        self._unix_clock = unix_clock
        self._n_spans = 0

    # -- span lifecycle -------------------------------------------------

    def begin_poll(self) -> PollSpan:
        if self._span is not None:
            raise ReproError("telemetry: begin_poll with a span open")
        self._n_spans += 1
        self._span = PollSpan(self._n_spans, unix_time=self._unix_clock())
        return self._span

    def end_poll(self, result=None) -> PollSpan:
        span = self._span
        if span is None:
            raise ReproError("telemetry: end_poll without begin_poll")
        self._span = None
        span.finish()
        if result is not None:
            span.n_poll = result.n_poll
            span.n_sealed = result.n_sealed
            span.n_files = result.n_files
        self.registry.histogram("poll_seconds").observe(span.wall_s)
        self.last_span = span
        return span

    def abort_poll(self) -> None:
        """Discard an open span after a failed poll (no observation —
        a poll that raised measured nothing meaningful). The fleet
        scheduler calls this before parking a job in ``failed`` state
        so the next ``begin_poll`` does not trip the open-span guard."""
        self._span = None

    # -- recording ------------------------------------------------------

    def phase(self, name: str) -> _PhaseContext:
        return _PhaseContext(self, name)

    def _record_phase(self, name: str, wall: float, cpu: float) -> None:
        span = self._span
        if span is not None:
            timing = span.phase(name)
            timing.wall_s += wall
            timing.cpu_s += cpu
            timing.entries += 1
        self.registry.histogram("phase_seconds", phase=name).observe(wall)
        self.registry.counter("phase_cpu_seconds_total",
                              phase=name).inc(max(cpu, 0.0))

    def count(self, name: str, amount: float = 1, **labels: str) -> None:
        self.registry.counter(name, **labels).inc(amount)

    def count_total(self, name: str, total: float, **labels: str) -> None:
        """Mirror an externally owned this-life monotonic total."""
        self.registry.counter(name, **labels).set_live_total(total)

    def gauge_set(self, name: str, value: float, **labels: str) -> None:
        self.registry.gauge(name, **labels).set(value)

    def observe(self, name: str, value: float, **labels: str) -> None:
        self.registry.histogram(name, **labels).observe(value)

    # -- cadence --------------------------------------------------------

    def record_overrun(self, n_poll: int, overshoot_s: float) -> None:
        self.overrun_streak += 1
        self.registry.counter("poll_overruns_total").inc()
        self.registry.gauge("poll_overrun_streak").set(self.overrun_streak)

    def record_cadence_ok(self) -> None:
        self.overrun_streak = 0
        self.registry.gauge("poll_overrun_streak").set(0)

    # -- snapshot / persistence -----------------------------------------

    def snapshot(self) -> dict:
        """The full current state as plain JSON-able data: the unit of
        the metrics log, the ``/healthz`` input, and the persisted
        checkpoint payload."""
        counters, gauges, histograms = [], [], []
        for name, metrics in self.registry.families():
            for metric in metrics:
                labels = dict(metric.labels)
                if hasattr(metric, "buckets"):
                    histograms.append({
                        "name": name, "labels": labels,
                        "buckets": list(metric.buckets),
                        "counts": metric.merged_counts(),
                        "sum": metric.merged_sum,
                        "count": metric.merged_count,
                    })
                elif hasattr(metric, "base"):
                    counters.append({"name": name, "labels": labels,
                                     "value": metric.value})
                else:
                    gauges.append({"name": name, "labels": labels,
                                   "value": metric.value})
        return {
            "version": SNAPSHOT_VERSION,
            "unix_time": self._unix_clock(),
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "last_poll": (self.last_span.to_json()
                          if self.last_span is not None else None),
            "overrun_streak": self.overrun_streak,
        }

    def update_rss(self) -> None:
        self.registry.gauge("rss_bytes").set(rss_bytes())

    def to_state(self) -> dict:
        """Checkpoint payload (see live/checkpoint.py, sidecar v5)."""
        return {"snapshot": self.snapshot()}

    def restore_state(self, state: dict | None) -> None:
        """Adopt a previous life's totals as counter/histogram bases.

        Gauges and the last span are point-in-time and not restored;
        ``overrun_streak`` deliberately resets — a streak is a
        this-life cadence property.
        """
        if not state:
            return
        snapshot = state.get("snapshot") or {}
        for entry in snapshot.get("counters", ()):
            try:
                counter = self.registry.counter(entry["name"],
                                                **entry.get("labels", {}))
            except ReproError:
                continue  # metric retired between versions
            counter.restore(entry.get("value", 0))
        for entry in snapshot.get("histograms", ()):
            try:
                histogram = self.registry.histogram(
                    entry["name"], **entry.get("labels", {}))
            except ReproError:
                continue
            histogram.restore(entry.get("counts", []),
                              entry.get("sum", 0.0),
                              entry.get("count", 0))

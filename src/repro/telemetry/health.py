"""The ``/healthz`` verdict: is this watcher keeping up?

The verdict is computed **from a snapshot**, not from live objects —
the same function serves the HTTP endpoint (live snapshot), the
``st-inspector health`` subcommand (snapshot persisted in a
checkpoint), and tests (hand-built snapshots). Three checks:

``poll_overruns``
    Consecutive polls whose work overran ``--interval``. One overrun
    is load; a streak means the cadence has collapsed and every
    "interval" is really "as fast as we can".

``sinks``
    Worst consecutive-failure streak across alert sinks. One failure
    is a blip; a streak means pages are not being delivered.

``sealing``
    Worst watermark age across tracked files. A file whose tail ends
    mid-call holds back its own sealing by design; an age beyond the
    threshold means some producer died mid-write (or the format
    assumption broke) and events are silently parked.

Each check is ``ok`` below its warning threshold, ``warn`` below its
failing threshold, ``fail`` at or beyond it. The overall status is
``ok`` / ``degraded`` / ``failing`` — the worst check wins. The HTTP
endpoint maps ``failing`` to a 503 so a dumb liveness prober works
without parsing JSON.
"""

from __future__ import annotations

#: check name -> (warn at >=, fail at >=), in the check's own unit.
THRESHOLDS: dict[str, tuple[float, float]] = {
    "poll_overruns": (1, 3),        # consecutive overruns
    "sinks": (1, 3),                # consecutive delivery failures
    "sealing": (60.0, 600.0),       # worst watermark age, trace seconds
}

_LEVELS = {"ok": 0, "warn": 1, "fail": 2}
_STATUS = {0: "ok", 1: "degraded", 2: "failing"}


def _grade(check: str, value: float) -> str:
    warn_at, fail_at = THRESHOLDS[check]
    if value >= fail_at:
        return "fail"
    if value >= warn_at:
        return "warn"
    return "ok"


def _gauge(snapshot: dict, name: str) -> float:
    for entry in snapshot.get("gauges", ()):
        if entry.get("name") == name:
            return float(entry.get("value", 0))
    return 0.0


def health_from_snapshot(snapshot: dict) -> dict:
    """The health verdict for one telemetry snapshot (JSON-able)."""
    values = {
        "poll_overruns": _gauge(snapshot, "poll_overrun_streak"),
        "sinks": _gauge(snapshot, "sink_failure_streak"),
        "sealing": _gauge(snapshot, "watermark_age_seconds"),
    }
    checks = {}
    worst = 0
    for name, value in values.items():
        grade = _grade(name, value)
        worst = max(worst, _LEVELS[grade])
        warn_at, fail_at = THRESHOLDS[name]
        checks[name] = {"status": grade, "value": value,
                        "warn_at": warn_at, "fail_at": fail_at}
    return {
        "status": _STATUS[worst],
        "checks": checks,
        "snapshot_unix_time": snapshot.get("unix_time"),
        "last_poll": snapshot.get("last_poll"),
    }


_STATUS_LEVELS = {status: level for level, status in _STATUS.items()}


def aggregate_health(verdicts: dict[str, dict]) -> dict:
    """Fold per-job verdicts into one fleet verdict — worst job wins.

    The same semantics back the fleet's ``/healthz`` endpoint and the
    multi-checkpoint ``st-inspector health`` command: a fleet is only
    ``ok`` when every job is, and a single ``failing`` job fails the
    whole aggregate (one silent job is exactly what aggregation must
    not hide). An empty fleet is vacuously ``ok``.
    """
    worst = 0
    for verdict in verdicts.values():
        worst = max(worst, _STATUS_LEVELS[verdict["status"]])
    return {"status": _STATUS[worst], "jobs": dict(verdicts)}


def render_health(verdict: dict) -> str:
    """Human-readable multi-line rendering (the ``health`` subcommand)."""
    lines = [f"status: {verdict['status']}"]
    for name, check in verdict["checks"].items():
        lines.append(
            f"  {name:<14} {check['status']:<5} value={check['value']:g} "
            f"(warn>={check['warn_at']:g} fail>={check['fail_at']:g})")
    last = verdict.get("last_poll")
    if last:
        phases = ", ".join(
            f"{p['name']} {p['wall_s'] * 1000:.1f}ms"
            for p in last.get("phases", ())[:3])
        lines.append(
            f"  last poll     #{last.get('n_poll', '?')} "
            f"wall={last.get('wall_s', 0) * 1000:.1f}ms "
            f"sealed={last.get('n_sealed', 0)}"
            + (f" [{phases}]" if phases else ""))
    return "\n".join(lines)

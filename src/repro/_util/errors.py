"""Exception hierarchy for the st_inspector reproduction.

Every error raised by this library derives from :class:`ReproError`, so
callers embedding the library can catch a single base class. Subclasses
partition errors by subsystem, mirroring the package layout.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class TraceParseError(ReproError):
    """A line of strace output could not be parsed.

    Carries optional context so tools can point users at the offending
    trace line.

    Attributes
    ----------
    path:
        Trace file the line came from (``None`` for in-memory input).
    lineno:
        1-based line number within the trace file.
    line:
        The raw offending line (possibly truncated by the caller).
    """

    def __init__(self, message: str, *, path: str | None = None,
                 lineno: int | None = None, line: str | None = None) -> None:
        self.path = path
        self.lineno = lineno
        self.line = line
        location = ""
        if path is not None:
            location = f" [{path}"
            if lineno is not None:
                location += f":{lineno}"
            location += "]"
        super().__init__(message + location)


class StoreFormatError(ReproError):
    """An ``.elog`` event-log container is malformed or unsupported."""


class SourceError(ReproError):
    """A trace-source specification could not be resolved.

    Raised by the :mod:`repro.sources` registry for unknown URI
    schemes, nonexistent paths, and malformed or unsupported
    ``?key=value`` options.
    """


class MappingError(ReproError):
    """A mapping function ``f : E ⇀ A_f`` misbehaved (wrong type, etc.)."""


class PartitionError(ReproError):
    """An event-log partition request is invalid (overlapping / empty)."""


class SimulationError(ReproError):
    """The discrete-event simulator was driven into an invalid state."""


class RenderError(ReproError):
    """A DFG or timeline could not be rendered."""

"""A multiset (bag) over hashable elements.

The paper models an activity-log as a *multiset of traces*
``L_f(C) ∈ B(A_f*)`` — e.g. ``{⟨a,a,b⟩², ⟨a,c⟩}`` (Sec. IV). Python's
:class:`collections.Counter` is close, but we want the algebra the
process-mining formalism uses (multiset union keeping multiplicities,
scalar multiplication, sub-multiset tests) with invariant enforcement
(multiplicities are strictly positive), so we wrap it in a small value
type of our own.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Hashable, Iterable, Iterator
from typing import Generic, TypeVar

T = TypeVar("T", bound=Hashable)


class Bag(Generic[T]):
    """An immutable-by-convention multiset with process-mining algebra.

    Examples
    --------
    >>> b = Bag(["x", "x", "y"])
    >>> b.multiplicity("x")
    2
    >>> (b + Bag(["x"])).multiplicity("x")
    3
    >>> sorted(b.support())
    ['x', 'y']
    """

    __slots__ = ("_counts",)

    def __init__(self, items: Iterable[T] = ()) -> None:
        counts: Counter[T] = Counter()
        for item in items:
            counts[item] += 1
        self._counts = counts

    @classmethod
    def from_counts(cls, counts: dict[T, int]) -> "Bag[T]":
        """Build from an explicit ``{element: multiplicity}`` dict.

        Zero multiplicities are dropped; negative ones are rejected.
        """
        bag: Bag[T] = cls()
        for item, count in counts.items():
            if count < 0:
                raise ValueError(
                    f"negative multiplicity {count} for {item!r}")
            if count > 0:
                bag._counts[item] = count
        return bag

    # -- queries ---------------------------------------------------------

    def multiplicity(self, item: T) -> int:
        """Number of occurrences of ``item`` (0 if absent)."""
        return self._counts.get(item, 0)

    def support(self) -> frozenset[T]:
        """The set of distinct elements."""
        return frozenset(self._counts)

    def total(self) -> int:
        """Total number of elements counting multiplicity (|L|)."""
        return sum(self._counts.values())

    def items(self) -> Iterator[tuple[T, int]]:
        """Iterate ``(element, multiplicity)`` pairs."""
        return iter(self._counts.items())

    def __iter__(self) -> Iterator[T]:
        """Iterate elements, each repeated by its multiplicity."""
        return iter(self._counts.elements())

    def __len__(self) -> int:
        """Number of *distinct* elements (|support|)."""
        return len(self._counts)

    def __contains__(self, item: object) -> bool:
        return item in self._counts

    # -- algebra ----------------------------------------------------------

    def __add__(self, other: "Bag[T]") -> "Bag[T]":
        """Multiset union keeping multiplicities (⊎)."""
        if not isinstance(other, Bag):
            return NotImplemented
        result: Bag[T] = Bag()
        result._counts = self._counts + other._counts
        return result

    def __sub__(self, other: "Bag[T]") -> "Bag[T]":
        """Multiset difference, truncated at zero."""
        if not isinstance(other, Bag):
            return NotImplemented
        result: Bag[T] = Bag()
        result._counts = self._counts - other._counts
        return result

    def __mul__(self, factor: int) -> "Bag[T]":
        """Scale every multiplicity by a non-negative integer."""
        if not isinstance(factor, int):
            return NotImplemented
        if factor < 0:
            raise ValueError("multiset scale factor must be >= 0")
        result: Bag[T] = Bag()
        if factor:
            result._counts = Counter(
                {k: v * factor for k, v in self._counts.items()})
        return result

    __rmul__ = __mul__

    def issubbag(self, other: "Bag[T]") -> bool:
        """True iff every multiplicity here is ≤ the one in ``other``."""
        return all(other.multiplicity(k) >= v for k, v in self._counts.items())

    # -- identity ---------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bag):
            return NotImplemented
        return self._counts == other._counts

    def __hash__(self) -> int:
        return hash(frozenset(self._counts.items()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(
            f"{item!r}^{count}" if count > 1 else repr(item)
            for item, count in sorted(
                self._counts.items(), key=lambda kv: repr(kv[0]))
        )
        return f"Bag({{{inner}}})"

"""Interned string pools for columnar event storage.

An event-log holds millions of events but only a handful of distinct
syscall names and file paths. Storing each occurrence as a Python string
wastes memory and makes vectorized comparisons impossible, so the
columnar :class:`~repro.core.frame.EventFrame` stores *codes* (int32
indices) into a :class:`StringPool`, the standard dictionary-encoding
trick used by columnar engines. Substring filters — the paper's
``apply_fp_filter('/usr/lib')`` — then scan only the pool (m distinct
strings) instead of the column (n events), turning O(n · |s|) into
O(m · |s|) + one vectorized ``isin`` over codes.

The ablation benchmark ``bench_ablation_interning`` quantifies this
against a plain object-array representation.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

import numpy as np


class StringPool:
    """An append-only bijection ``str <-> int32 code``.

    Codes are dense, starting at 0, in first-seen order. The pool never
    forgets a string; event frames built from the same pool therefore
    share code semantics and can be concatenated without re-encoding.
    """

    __slots__ = ("_strings", "_codes")

    def __init__(self, strings: Iterable[str] = ()) -> None:
        self._strings: list[str] = []
        self._codes: dict[str, int] = {}
        for s in strings:
            self.intern(s)

    def intern(self, string: str) -> int:
        """Return the code for ``string``, adding it if unseen."""
        code = self._codes.get(string)
        if code is None:
            code = len(self._strings)
            self._codes[string] = code
            self._strings.append(string)
        return code

    def intern_all(self, strings: Iterable[str]) -> np.ndarray:
        """Vector form of :meth:`intern`; returns an int32 code array."""
        return np.fromiter(
            (self.intern(s) for s in strings), dtype=np.int32)

    def decode(self, code: int) -> str:
        """The string for a code; raises :class:`IndexError` if unknown."""
        if code < 0:
            raise IndexError(f"negative string code {code}")
        return self._strings[code]

    def decode_all(self, codes: np.ndarray) -> list[str]:
        """Vector form of :meth:`decode`."""
        strings = self._strings
        return [strings[int(c)] for c in codes]

    def lookup(self, string: str) -> int | None:
        """Code for ``string`` or ``None`` — never interns."""
        return self._codes.get(string)

    def codes_matching(self, predicate) -> np.ndarray:
        """Codes of all pooled strings satisfying ``predicate(str)``.

        This is the heart of pool-level filtering: evaluate the (slow,
        Python-level) predicate once per *distinct* string, then let the
        caller do a vectorized ``isin`` over the code column.
        """
        return np.fromiter(
            (code for code, s in enumerate(self._strings) if predicate(s)),
            dtype=np.int32,
        )

    def codes_containing(self, substring: str) -> np.ndarray:
        """Codes of pooled strings that contain ``substring``."""
        return self.codes_matching(lambda s: substring in s)

    def __len__(self) -> int:
        return len(self._strings)

    def __contains__(self, string: object) -> bool:
        return string in self._codes

    def __iter__(self) -> Iterator[str]:
        return iter(self._strings)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StringPool):
            return NotImplemented
        return self._strings == other._strings

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StringPool({len(self._strings)} strings)"

"""Shared low-level helpers for the st_inspector reproduction.

This subpackage hosts the small, dependency-free building blocks used
across the library:

- :mod:`repro._util.errors` — the exception hierarchy.
- :mod:`repro._util.sizes` — byte/rate formatting exactly as rendered in
  the paper's DFG node labels (``Load: 0.22 (14.98 KB)``,
  ``DR: 2x10.15 MB/s``).
- :mod:`repro._util.timefmt` — wall-clock (``HH:MM:SS.ffffff``) and
  duration (``<0.000203>``) parsing/formatting used by the strace layer.
- :mod:`repro._util.multiset` — the :class:`~repro._util.multiset.Bag`
  used to represent activity-logs ``L_f(C) ∈ B(A_f*)``.
- :mod:`repro._util.intervals` — interval arithmetic incl. the
  max-concurrency sweep-line (Eq. 16 of the paper).
- :mod:`repro._util.strings` — interned string pools backing the
  columnar :class:`~repro.core.frame.EventFrame`.
"""

from repro._util.errors import (
    ReproError,
    TraceParseError,
    StoreFormatError,
    MappingError,
    PartitionError,
    SimulationError,
    RenderError,
)
from repro._util.sizes import format_bytes, format_rate, parse_size
from repro._util.timefmt import (
    parse_wallclock,
    format_wallclock,
    parse_duration,
    format_duration,
)
from repro._util.multiset import Bag
from repro._util.intervals import (
    max_concurrency,
    max_concurrency_naive,
    total_covered,
    merge_intervals,
)
from repro._util.strings import StringPool

__all__ = [
    "ReproError",
    "TraceParseError",
    "StoreFormatError",
    "MappingError",
    "PartitionError",
    "SimulationError",
    "RenderError",
    "format_bytes",
    "format_rate",
    "parse_size",
    "parse_wallclock",
    "format_wallclock",
    "parse_duration",
    "format_duration",
    "Bag",
    "max_concurrency",
    "max_concurrency_naive",
    "total_covered",
    "merge_intervals",
    "StringPool",
]

"""Byte-count and data-rate formatting.

The paper's DFG node labels render byte counts with decimal-power units
and two decimals — e.g. ``Load:0.22 (14.98 KB)``, ``(9.66 GB)`` — and
data rates always in megabytes per second — e.g. ``DR: 96x3175.20 MB/s``
(Fig. 3 and Fig. 8). This module reproduces that exact formatting and
provides the inverse parser used by tests and the CLI.

Decimal powers (1 KB = 1000 B) are used, matching the magnitudes in the
paper: each ``ls`` rank reads three 832-byte ELF headers + 478 + 2996
bytes ≈ 5 KB, reported as ``14.98 KB`` over three ranks.
"""

from __future__ import annotations

import re

#: Decimal unit ladder used by the paper's labels.
_UNITS: tuple[tuple[str, float], ...] = (
    ("TB", 1e12),
    ("GB", 1e9),
    ("MB", 1e6),
    ("KB", 1e3),
)

_SIZE_RE = re.compile(
    r"^\s*([0-9]+(?:\.[0-9]+)?)\s*(TB|GB|MB|KB|B)\s*$", re.IGNORECASE
)


def format_bytes(num_bytes: float, *, decimals: int = 2) -> str:
    """Render a byte count the way the paper's node labels do.

    Parameters
    ----------
    num_bytes:
        Number of bytes (may be fractional after aggregation).
    decimals:
        Number of decimal places; the paper uses 2.

    Examples
    --------
    >>> format_bytes(14980)
    '14.98 KB'
    >>> format_bytes(9.66e9)
    '9.66 GB'
    >>> format_bytes(512)
    '512 B'
    """
    if num_bytes < 0:
        raise ValueError(f"byte count must be non-negative, got {num_bytes}")
    for unit, scale in _UNITS:
        if num_bytes >= scale:
            return f"{num_bytes / scale:.{decimals}f} {unit}"
    # Below 1 KB the paper would not realistically show fractions of a byte.
    if num_bytes == int(num_bytes):
        return f"{int(num_bytes)} B"
    return f"{num_bytes:.{decimals}f} B"


def format_rate(bytes_per_second: float, *, decimals: int = 2) -> str:
    """Render a data rate; the paper always uses MB/s regardless of size.

    Examples
    --------
    >>> format_rate(10.15e6)
    '10.15 MB/s'
    >>> format_rate(3175.2e6)
    '3175.20 MB/s'
    """
    if bytes_per_second < 0:
        raise ValueError(
            f"rate must be non-negative, got {bytes_per_second}")
    return f"{bytes_per_second / 1e6:.{decimals}f} MB/s"


def parse_size(text: str) -> float:
    """Parse ``'14.98 KB'`` / ``'9.66 GB'`` / ``'512 B'`` back into bytes.

    Inverse of :func:`format_bytes` up to the printed precision. Raises
    :class:`ValueError` on malformed input.
    """
    match = _SIZE_RE.match(text)
    if match is None:
        raise ValueError(f"unparseable size: {text!r}")
    value = float(match.group(1))
    unit = match.group(2).upper()
    if unit == "B":
        return value
    for name, scale in _UNITS:
        if name == unit:
            return value * scale
    raise ValueError(f"unknown unit in {text!r}")  # pragma: no cover

"""Wall-clock and duration parsing for strace records.

strace with ``-tt`` stamps each record with a microsecond wall-clock of
the form ``HH:MM:SS.ffffff`` (no date), and with ``-T`` appends the call
duration as ``<seconds.ffffff>``. The paper parses both into the event
attributes ``start`` and ``dur`` (Sec. III, items 3-4).

Internally the library represents both as integer **microseconds**:
floats lose precision once seconds-of-day exceed ~2^23 µs and, more
importantly, exact integer arithmetic keeps the strace-writer → parser
round-trip property (tested with hypothesis) free of float noise.
``start`` is microseconds since the midnight of the (unrecorded) trace
day; the paper explicitly does not require synchronized clocks across
hosts, and neither do we (Sec. IV-B, max-concurrency caveat).
"""

from __future__ import annotations

import re

#: Number of microseconds in one day; wall-clocks are taken modulo this.
MICROSECONDS_PER_DAY = 24 * 3600 * 1_000_000

_WALLCLOCK_RE = re.compile(
    r"^(\d{2}):(\d{2}):(\d{2})\.(\d{6})$"
)
_DURATION_RE = re.compile(r"^<(\d+)\.(\d{6})>$")


def parse_wallclock(text: str) -> int:
    """Parse ``'08:55:54.153994'`` into microseconds since midnight.

    Raises :class:`ValueError` for malformed stamps (wrong field widths,
    out-of-range minutes/seconds). Hours are allowed up to 23.

    >>> parse_wallclock("08:55:54.153994")
    32154153994
    """
    match = _WALLCLOCK_RE.match(text)
    if match is None:
        raise ValueError(f"unparseable wall clock: {text!r}")
    hours, minutes, seconds, micros = (int(g) for g in match.groups())
    if hours > 23 or minutes > 59 or seconds > 60:  # 60 allows leap second
        raise ValueError(f"out-of-range wall clock: {text!r}")
    return ((hours * 3600 + minutes * 60 + seconds) * 1_000_000) + micros


def format_wallclock(micros_since_midnight: int) -> str:
    """Inverse of :func:`parse_wallclock`.

    Values are wrapped modulo 24 h so a simulator running past midnight
    still emits valid stamps (matching strace's own wrap-around).

    >>> format_wallclock(32154153994)
    '08:55:54.153994'
    """
    if micros_since_midnight < 0:
        raise ValueError("wall clock must be non-negative")
    total = micros_since_midnight % MICROSECONDS_PER_DAY
    micros = total % 1_000_000
    total //= 1_000_000
    seconds = total % 60
    total //= 60
    minutes = total % 60
    hours = total // 60
    return f"{hours:02d}:{minutes:02d}:{seconds:02d}.{micros:06d}"


def parse_duration(text: str) -> int:
    """Parse a ``-T`` duration annotation ``'<0.000203>'`` into µs.

    >>> parse_duration("<0.000203>")
    203
    """
    match = _DURATION_RE.match(text)
    if match is None:
        raise ValueError(f"unparseable duration: {text!r}")
    seconds, micros = int(match.group(1)), int(match.group(2))
    return seconds * 1_000_000 + micros


def format_duration(micros: int) -> str:
    """Inverse of :func:`parse_duration`.

    >>> format_duration(203)
    '<0.000203>'
    """
    if micros < 0:
        raise ValueError("duration must be non-negative")
    return f"<{micros // 1_000_000}.{micros % 1_000_000:06d}>"


def micros_to_seconds(micros: int | float) -> float:
    """Convenience: µs → float seconds (used by statistics/rendering)."""
    return micros / 1e6

"""Interval arithmetic, including the paper's max-concurrency metric.

Sec. IV-B defines, for an activity ``a``, the list of event time ranges
``t_f(a, C) = [(start, start+dur), ...]`` and the statistic

    ``mc_f(a, C) = get_max_concurrency(t_f(a, C))``

i.e. the largest number of simultaneously in-flight events. The paper's
algorithm sorts by start time and scans; we implement the classic
sweep-line over +1/-1 boundary deltas, vectorized with NumPy
(:func:`max_concurrency`), plus a deliberately simple O(n²) reference
(:func:`max_concurrency_naive`) used by property-based tests and by the
ablation benchmark to validate and measure the optimization — following
the guide's rule that optimizations must be checked against a trivially
correct implementation.

Boundary convention: intervals are half-open ``[start, end)`` — an event
ending exactly when another starts does *not* overlap it. This matches
the paper's Fig. 5 reading (mc = 2 for the staggered reads) and makes
zero-duration events count as overlapping only events that strictly
contain their start instant plus other zero-duration events at the same
instant (handled via the tie-break ordering below).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np


def _as_arrays(
    intervals: Sequence[tuple[float, float]] | np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Split interval pairs into (starts, ends) float64 arrays."""
    arr = np.asarray(intervals, dtype=np.float64)
    if arr.size == 0:
        return np.empty(0), np.empty(0)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError(
            f"expected an (n, 2) array of (start, end) pairs, got {arr.shape}")
    starts, ends = arr[:, 0], arr[:, 1]
    if np.any(ends < starts):
        raise ValueError("interval end precedes start")
    return starts, ends


def max_concurrency(
    intervals: Sequence[tuple[float, float]] | np.ndarray,
) -> int:
    """Maximum number of simultaneously active intervals (Eq. 16).

    Sweep-line: sort all boundaries; +1 at starts, -1 at ends; ends sort
    *before* coincident starts (half-open intervals). Zero-duration
    intervals still contribute a count of one at their instant: the pair
    (+1 at t, -1 at t) is ordered start-before-its-own-end via a
    secondary key.

    Complexity O(n log n); fully vectorized.

    >>> max_concurrency([(0, 10), (5, 15), (20, 30)])
    2
    """
    starts, ends = _as_arrays(intervals)
    if starts.size == 0:
        return 0
    n = starts.size
    # Boundary times and deltas. Secondary key orders, at equal times:
    # end-of-other (-1, key 0) < start (key 1) < end-of-zero-length pair —
    # we realize this by treating zero-length intervals specially: emit
    # their -1 with key 2 so their own +1 (key 1) lands first.
    zero_len = ends == starts
    times = np.concatenate([starts, ends])
    deltas = np.concatenate([np.ones(n, dtype=np.int64),
                             -np.ones(n, dtype=np.int64)])
    keys = np.concatenate([
        np.ones(n, dtype=np.int8),                       # starts: key 1
        np.where(zero_len, np.int8(2), np.int8(0)),      # ends: 0 or 2
    ])
    order = np.lexsort((keys, times))
    running = np.cumsum(deltas[order])
    return int(running.max())


def max_concurrency_naive(
    intervals: Sequence[tuple[float, float]] | np.ndarray,
) -> int:
    """O(n²) reference implementation of :func:`max_concurrency`.

    For each interval, count intervals active at its start instant
    (half-open convention; zero-duration intervals are active at their
    own start). The maximum over all start instants equals the sweep
    result because concurrency only increases at start boundaries.
    """
    starts, ends = _as_arrays(intervals)
    best = 0
    for i in range(starts.size):
        t = starts[i]
        active = 0
        for j in range(starts.size):
            if starts[j] <= t and (t < ends[j]
                                   or (starts[j] == ends[j] == t)):
                active += 1
        best = max(best, active)
    return best


def total_covered(
    intervals: Sequence[tuple[float, float]] | np.ndarray,
) -> float:
    """Total length of the union of intervals (used by timeline axes)."""
    merged = merge_intervals(intervals)
    return float(sum(end - start for start, end in merged))


def merge_intervals(
    intervals: Sequence[tuple[float, float]] | np.ndarray,
) -> list[tuple[float, float]]:
    """Merge overlapping/touching intervals into a sorted disjoint list.

    >>> merge_intervals([(5, 7), (0, 2), (1, 3)])
    [(0.0, 3.0), (5.0, 7.0)]
    """
    starts, ends = _as_arrays(intervals)
    if starts.size == 0:
        return []
    order = np.argsort(starts, kind="stable")
    merged: list[tuple[float, float]] = []
    cur_start, cur_end = float(starts[order[0]]), float(ends[order[0]])
    for idx in order[1:]:
        s, e = float(starts[idx]), float(ends[idx])
        if s <= cur_end:
            cur_end = max(cur_end, e)
        else:
            merged.append((cur_start, cur_end))
            cur_start, cur_end = s, e
    merged.append((cur_start, cur_end))
    return merged


def concurrency_profile(
    intervals: Sequence[tuple[float, float]] | np.ndarray,
) -> list[tuple[float, int]]:
    """The full concurrency step function, not just its maximum.

    Returns ``[(time, active_count), ...]``: at each boundary time the
    number of active intervals *from* that instant (piecewise-constant
    until the next entry). The last entry always has count 0.
    Zero-length intervals are instantaneous spikes a pure step
    function cannot carry, so a boundary instant whose peak count
    exceeds its settled count emits *two* entries — ``(t, peak)``
    immediately followed by ``(t, settled)`` — which keeps
    ``max(count)`` over the profile equal to :func:`max_concurrency`
    on every input (a property the tests verify).

    >>> concurrency_profile([(0, 10), (5, 15)])
    [(0.0, 1), (5.0, 2), (10.0, 1), (15.0, 0)]
    >>> concurrency_profile([(3, 3)])
    [(3.0, 1), (3.0, 0)]
    """
    starts, ends = _as_arrays(intervals)
    if starts.size == 0:
        return []
    n = starts.size
    times = np.concatenate([starts, ends])
    deltas = np.concatenate([np.ones(n, dtype=np.int64),
                             -np.ones(n, dtype=np.int64)])
    # The max_concurrency ordering: at equal times, ends of *other*
    # intervals (key 0) sort before starts (key 1), and the end of a
    # zero-length interval (key 2) after its own start — so the
    # running count passes through the spike value.
    zero_len = ends == starts
    keys = np.concatenate([
        np.ones(n, dtype=np.int8),
        np.where(zero_len, np.int8(2), np.int8(0)),
    ])
    order = np.lexsort((keys, times))
    sorted_times = times[order]
    sorted_keys = keys[order]
    running = np.cumsum(deltas[order])
    profile: list[tuple[float, int]] = []
    i = 0
    total = len(sorted_times)
    while i < total:
        j = i
        while j + 1 < total and sorted_times[j + 1] == sorted_times[i]:
            j += 1
        t = float(sorted_times[i])
        settled = int(running[j])
        # The instantaneous count *at* t is the running value after the
        # last start (key 1): every interval active at t has been
        # opened, and only zero-length ends (key 2) follow. It exceeds
        # the settled count exactly when zero-length intervals spiked.
        starts_at = np.flatnonzero(sorted_keys[i:j + 1] == 1)
        peak = (int(running[i + int(starts_at[-1])])
                if starts_at.size else settled)
        if peak > settled:
            profile.append((t, peak))
        profile.append((t, settled))
        i = j + 1
    return profile


def span(
    intervals: Iterable[tuple[float, float]],
) -> tuple[float, float] | None:
    """Smallest (min start, max end) covering all intervals, or None."""
    lo: float | None = None
    hi: float | None = None
    for start, end in intervals:
        lo = start if lo is None else min(lo, start)
        hi = end if hi is None else max(hi, end)
    if lo is None or hi is None:
        return None
    return (lo, hi)

"""The fleet presentation: interleaved per-job frames + status line.

A fleet's stdout is N watch outputs interleaved by the scheduler, so
every emitted line carries its job's name as a ``[name]`` prefix —
strip the prefixes of one job's lines and you get exactly what a solo
``st-inspector watch`` of that directory would have printed (the
fleet ≡ independent-watchers equivalence is asserted that way).

The status frame is one ``FLEET:`` line summarising every job's
state and completed-poll count; the scheduler emits it at startup and
on every state transition (``pending → running → failed → … → done``),
so an operator tailing the stream can always reconstruct fleet health
without parsing job frames.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.fleet.job import WatchJob


class FleetView:
    """Stateless formatting of the interleaved multi-job stream."""

    def frame(self, job: "WatchJob", text: str) -> str:
        """One job refresh, every line tagged with the job name."""
        body = text.rstrip("\n")
        return "\n".join(f"[{job.name}] {line}"
                         for line in body.split("\n")) + "\n"

    def line(self, job: "WatchJob", line: str) -> str:
        """One event line (overrun, failure, emit) tagged likewise."""
        return f"[{job.name}] {line}"

    def status_frame(self, jobs: "list[WatchJob]") -> str:
        """The one-line fleet summary."""
        parts = []
        for job in jobs:
            note = f"{job.state} {job.completed} poll(s)"
            if job.failures:
                note += f", {job.failures} failure(s)"
            if job.restarts:
                note += f", {job.restarts} restart(s)"
            parts.append(f"{job.name} {note}")
        return f"FLEET: {' | '.join(parts)}"

"""``repro.fleet`` — the multi-job fleet runtime behind live watching.

The live stack is layered so N jobs can share one process (and one
metrics port) while staying byte-for-byte equivalent to N independent
``st-inspector watch`` processes:

job layer (:mod:`repro.fleet.job`)
    :class:`JobSpec` (the declarative watch-argument wiring) builds a
    :class:`WatchJob` owning one engine plus its policy and IO, with
    the ``create → restore → poll_once → finalize`` lifecycle.

scheduler layer (:mod:`repro.fleet.scheduler`)
    :class:`FleetScheduler` deadline-schedules the jobs cooperatively
    and isolates per-job failures (``failed`` state, bounded-backoff
    rebuild-from-checkpoint restarts). :func:`run_fleet` is the
    driving entry point.

presentation (:mod:`repro.fleet.view`, :mod:`repro.fleet.telemetry`)
    :class:`FleetView` interleaves per-job frames under ``[name]``
    prefixes; :class:`FleetTelemetry` serves every job's metrics under
    a ``job`` label and a worst-of-jobs ``/healthz``.

``st-inspector watch`` / :func:`repro.live.watch.run_watch` are a
one-job fleet (no view, no isolation) — the old loop, refactored, not
forked. Configuration for the multi-job CLI lives in ``fleet.toml``
(:mod:`repro.fleet.config`, see ``docs/fleet.md``).
"""

from repro.fleet.config import (FleetConfigError, load_fleet_config,
                                parse_fleet_data)
from repro.fleet.job import JobSpec, PollOutcome, WatchJob
from repro.fleet.scheduler import FleetScheduler, run_fleet
from repro.fleet.telemetry import FleetTelemetry
from repro.fleet.view import FleetView

__all__ = [
    "FleetConfigError",
    "FleetScheduler",
    "FleetTelemetry",
    "FleetView",
    "JobSpec",
    "PollOutcome",
    "WatchJob",
    "load_fleet_config",
    "parse_fleet_data",
    "run_fleet",
]

"""One metrics endpoint for N jobs: the fleet telemetry provider.

:class:`FleetTelemetry` is the object a
:class:`~repro.telemetry.exposition.MetricsServer` serves when the
fleet CLI gets ``--metrics-port``: ``render_metrics()`` merges every
instrumented job's registry into one Prometheus exposition where each
series carries a ``job`` label
(:func:`~repro.telemetry.exposition.render_prometheus_fleet`), and
``health_verdict()`` folds the per-job ``/healthz`` verdicts
worst-of-jobs (:func:`~repro.telemetry.health.aggregate_health`) — a
single ``failing`` job 503s the fleet endpoint, exactly what a
liveness prober should see.

The provider reads ``job.engine.telemetry`` *at scrape time*, not at
construction: when the scheduler rebuilds a failed job the fresh
engine's telemetry (counter bases restored from the job's checkpoint)
is what the next scrape serves, with no re-registration step.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.telemetry.exposition import render_prometheus_fleet
from repro.telemetry.health import aggregate_health, health_from_snapshot

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.fleet.job import WatchJob


class FleetTelemetry:
    """Duck-typed telemetry provider over a fleet's jobs."""

    def __init__(self, jobs: "list[WatchJob]") -> None:
        self._jobs = list(jobs)

    def _instrumented(self):
        return [(job.name, job.engine.telemetry) for job in self._jobs
                if job.engine.telemetry.enabled]

    def render_metrics(self) -> str:
        return render_prometheus_fleet(
            [(name, telemetry.registry)
             for name, telemetry in self._instrumented()])

    def health_verdict(self) -> dict:
        return aggregate_health(
            {name: health_from_snapshot(telemetry.snapshot())
             for name, telemetry in self._instrumented()})

"""The job layer: one watched trace directory as a schedulable unit.

A :class:`WatchJob` owns one :class:`~repro.live.engine.LiveIngest`
plus everything ``run_watch`` used to wire around it — the alert
engine, the checkpoint sidecar, the emit journal, per-job telemetry,
the stateful :class:`~repro.live.watch.WatchView` — with an explicit
lifecycle::

    create (JobSpec.build) → restore (checkpoint, inside the engine)
        → poll_once, repeatedly (the scheduler's unit of work)
        → finalize (pack the --emit .elog)

:class:`JobSpec` is the declarative half: the watch-argument wiring
extracted from ``cli.py`` (engine construction from a source spec,
rules loading, checkpoint restore) as a value object, so the same
recipe builds a job for ``st-inspector watch``, one entry of a
``fleet.toml``, or a *rebuild* after the scheduler isolated a failure
— a rebuilt job re-restores from its own checkpoint exactly like a
killed-and-restarted watch process.

``poll_once`` is the body of the old ``run_watch`` loop, verbatim in
ordering: poll → alert evaluation → checkpoint save → engine gauges →
span end → render. The scheduler owns everything between polls
(cadence, sleeping, output); the job owns everything within one.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import TYPE_CHECKING

from repro._util.errors import ReproError
from repro.live.engine import LiveIngest, PollResult
from repro.live.watch import WatchView

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.alerts import Alert
    from repro.telemetry.spans import PollSpan

#: Source schemes a fleet job can follow live. Only strace directories
#: grow in place today; elog/csv/sim sources are complete artifacts
#: with nothing to poll.
_WATCHABLE_SCHEMES = ("strace",)


def mapping_from_name(name: str, levels: int = 2):
    """The event→activity mapping behind ``--mapping NAME`` — shared
    by the watch CLI and fleet job specs."""
    from repro.core.mapping import (CallOnly, CallPath, CallTopDirs,
                                    SiteVariables)

    if name == "topdirs":
        return CallTopDirs(levels=levels)
    if name == "path":
        return CallPath()
    if name == "call":
        return CallOnly()
    if name == "site":
        from repro.simulate.workloads.ior import JUWELS_SITE_VARIABLES

        return SiteVariables(JUWELS_SITE_VARIABLES,
                             extra_levels=levels - 1)
    raise ReproError(f"unknown mapping {name!r}")


@dataclass(frozen=True)
class JobSpec:
    """Everything needed to (re)build one watch job.

    Frozen so a spec can be shared between the scheduler (which
    rebuilds failed jobs from it) and whoever constructed it; derive
    variants with :func:`dataclasses.replace`.
    """

    source: str | os.PathLike[str]
    name: str = "watch"
    interval: float = 2.0
    polls: int | None = None
    checkpoint: str | os.PathLike[str] | None = None
    rules: str | os.PathLike[str] | None = None
    baseline: str | None = None
    alert_log: str | os.PathLike[str] | None = None
    emit: str | os.PathLike[str] | None = None
    window: int | None = None
    #: Adaptive interval-buffer budget (bytes): derives ``window``
    #: from measured accumulator footprint instead of a fixed cap.
    #: Mutually exclusive with ``window``.
    memory_budget: int | None = None
    #: Rolling journal compaction threshold (bytes of checkpointed
    #: journal): pack the durable prefix into the ``emit`` destination
    #: and truncate the journal whenever it exceeds this. Requires
    #: both ``emit`` and ``checkpoint``.
    compact_emit: int | None = None
    mapping: str = "topdirs"
    levels: int = 2
    recursive: bool = False
    lenient: bool = False
    show_dfg: bool = True
    show_stats: bool = True
    top: int = 5
    telemetry: bool = False
    metrics_log: str | os.PathLike[str] | None = None
    #: Run catalog the job commits its finished run into (shared
    #: between fleet jobs — the catalog is multi-writer).
    catalog: str | os.PathLike[str] | None = None
    #: Name the cataloged run is recorded under (defaults to the job
    #: name; ``runs list --app NAME`` and ``catalog:...?app=NAME``
    #: filter on it).
    run_name: str | None = None

    def with_overrides(self, **changes) -> "JobSpec":
        return replace(self, **changes)

    def resolve_directory(self) -> Path:
        """The trace directory behind ``source`` — a bare path or a
        ``strace:`` URI (:func:`~repro.sources.parse_source_spec`
        grammar); complete-artifact schemes are rejected."""
        from repro.sources import parse_source_spec

        spec = parse_source_spec(str(self.source))
        if spec.scheme is None:
            return Path(spec.target)
        if spec.scheme in _WATCHABLE_SCHEMES:
            if spec.options:
                raise ReproError(
                    f"job {self.name!r}: source {spec.raw!r} takes no "
                    f"?options for live watching")
            return Path(spec.target)
        raise ReproError(
            f"job {self.name!r}: cannot watch source {spec.raw!r} — "
            f"live ingestion follows growing strace directories "
            f"(a bare path or strace:DIR), not {spec.scheme}: sources")

    def build_engine(self) -> LiveIngest:
        """Construct the engine — the ``cmd_watch`` wiring, extracted.

        Raises :class:`~repro._util.errors.ReproError` for anything a
        startup should reject (missing directory, malformed rules,
        sink flags without rules) so callers can keep configuration
        errors (exit 2) apart from runtime failures (exit 1).
        """
        directory = self.resolve_directory()
        if not directory.is_dir():
            raise ReproError(
                f"no such trace directory: {directory} (job "
                f"{self.name!r} watches a directory that must exist, "
                f"even if still empty)")
        alerts = None
        if self.rules:
            from repro.alerts import AlertEngine, JsonlSink

            # A malformed rules file raises AlertConfigError (a
            # ReproError) naming the offending rule.
            extra = [JsonlSink(self.alert_log)] if self.alert_log else None
            alerts = AlertEngine.from_rules_file(
                self.rules, baseline=self.baseline, extra_sinks=extra)
        elif self.alert_log or self.baseline:
            raise ReproError(
                "--alert-log/--baseline require --rules (no rules, "
                "nothing to fire or compare)")
        if self.catalog:
            from repro.catalog import AlertExportBuffer, RunCatalog

            # Create/validate the catalog now so a bad path or an
            # unsupported schema version is a startup (exit 2) error,
            # not a surprise at finalize after a week of watching.
            RunCatalog(self.catalog)
            if alerts is not None:
                # Capture full alert detail before history_limit
                # compaction folds it into counts (the finalize-time
                # catalog commit stores exported + surviving history).
                alerts.export_hook = AlertExportBuffer()
        telemetry = None
        if self.telemetry:
            from repro.telemetry import Telemetry

            telemetry = Telemetry()
        return LiveIngest(
            directory,
            mapping=mapping_from_name(self.mapping, self.levels),
            strict=not self.lenient,
            recursive=self.recursive,
            # The graph and statistics are both maintained
            # incrementally, so a watcher never needs the raw records.
            keep_records=False,
            window=self.window,
            memory_budget=self.memory_budget,
            emit=self.emit,
            compact_emit=self.compact_emit,
            checkpoint=self.checkpoint,
            # Attached before checkpoint load so a resumed sidecar
            # restores rule latches, alert history and telemetry
            # counter bases into this life.
            alerts=alerts,
            telemetry=telemetry,
        )

    def build(self) -> "WatchJob":
        return WatchJob(self.build_engine(), spec=self)


@dataclass
class PollOutcome:
    """What one ``poll_once`` produced, for the scheduler to present."""

    result: PollResult
    fired: "list[Alert] | None"
    span: "PollSpan | None"
    text: str


class WatchJob:
    """One engine + policy/IO, driven one poll at a time.

    The scheduler reads/writes the bookkeeping attributes (``state``,
    ``deadline``, ``failures``); the job itself only knows how to do
    one poll, how to rebuild itself after a failure, and how to
    finalize its emit destination.
    """

    def __init__(self, engine: LiveIngest, *,
                 name: str | None = None,
                 interval: float = 2.0,
                 polls: int | None = None,
                 show_dfg: bool = True,
                 show_stats: bool = True,
                 top: int = 5,
                 metrics_log: str | os.PathLike[str] | None = None,
                 spec: JobSpec | None = None) -> None:
        if spec is not None:
            name = name if name is not None else spec.name
            interval = spec.interval
            polls = spec.polls
            show_dfg = spec.show_dfg
            show_stats = spec.show_stats
            top = spec.top
            metrics_log = spec.metrics_log
        self.engine = engine
        self.spec = spec
        self.name = name if name is not None else "watch"
        self.interval = interval
        self.polls = polls
        self.show_dfg = show_dfg
        self.show_stats = show_stats
        self.top = top
        self.metrics_log = metrics_log
        self.view = WatchView(engine, show_dfg=show_dfg,
                              show_stats=show_stats, top=top)
        #: pending → running → done; failed/stopped via the scheduler.
        self.state = "pending"
        self.completed = 0
        self.failures = 0
        self.restarts = 0
        self.deadline = 0.0
        self._order = 0
        self._emit_packed = False
        self._cataloged = False
        self._started = time.monotonic()

    @classmethod
    def from_spec(cls, spec: JobSpec) -> "WatchJob":
        return spec.build()

    @property
    def exhausted(self) -> bool:
        """Poll budget spent (``polls=None`` never exhausts)."""
        return self.polls is not None and self.completed >= self.polls

    def poll_once(self) -> PollOutcome:
        """One refresh: the old ``run_watch`` body, order preserved.

        Alert evaluation runs *before* the checkpoint save so the
        sidecar always holds the latches of the alerts it has seen
        fire; the render phase sits outside the span so the TELEMETRY
        row describes the poll it belongs to.
        """
        engine = self.engine
        telemetry = engine.telemetry
        telemetry.begin_poll()
        result = engine.poll()
        fired = (engine.alerts.evaluate(engine, result)
                 if engine.alerts is not None else None)
        if engine.checkpoint_path is not None \
                and (result.state_moved
                     or not engine.checkpoint_path.exists()
                     or fired):
            engine.save_checkpoint()
        if telemetry.enabled:
            record_engine_gauges(telemetry, engine)
        span = telemetry.end_poll(result)
        with telemetry.phase("render"):
            text = self.view.refresh(result, fired)
        self.completed += 1
        return PollOutcome(result=result, fired=fired, span=span,
                           text=text)

    def record_snapshot(self) -> None:
        """Append one telemetry snapshot line (``--metrics-log``)."""
        if self.metrics_log is not None:
            from repro.telemetry.exposition import append_snapshot

            append_snapshot(self.metrics_log,
                            self.engine.telemetry.snapshot())

    def rebuild(self) -> None:
        """Replace the engine with a freshly built one — the in-process
        equivalent of kill/restart: the old engine's resources are
        released first (so the new engine is the emit journal's only
        appender), the new engine restores from the job's checkpoint,
        and the view baseline resets exactly as a restarted watch
        process would."""
        if self.spec is None:
            raise ReproError(
                f"job {self.name!r} was built from a bare engine — "
                f"only spec-built jobs can be rebuilt after a failure")
        self.engine.close()
        self.engine = self.spec.build_engine()
        self.view = WatchView(self.engine, show_dfg=self.show_dfg,
                              show_stats=self.show_stats, top=self.top)
        self._emit_packed = False
        self._cataloged = False

    def finalize(self) -> Path | None:
        """Drain background alert delivery, pack the ``--emit``
        destination and commit the run to the catalog, each once
        (idempotent); returns the packed path the first time, None
        after (or with no emit)."""
        if self.engine.alerts is not None:
            # Queued alerts must reach their sinks before the run is
            # declared finished (late submits deliver inline).
            self.engine.alerts.shutdown()
        packed = None
        if self.engine.emit_journal is not None and not self._emit_packed:
            packed = self.engine.pack_emit()
            self._emit_packed = True
        self._commit_catalog()
        return packed

    def _commit_catalog(self) -> int | None:
        """Record the finished run (DFG, statistics, alert history —
        exported pre-compaction detail included) into the job's
        catalog; returns the run id, or None without a catalog."""
        spec = self.spec
        if spec is None or not spec.catalog or self._cataloged:
            return None
        from repro.catalog import AlertExportBuffer, RunCatalog, RunRecord

        engine = self.engine
        alerts: tuple = ()
        if engine.alerts is not None:
            hook = engine.alerts.export_hook
            if isinstance(hook, AlertExportBuffer):
                alerts = hook.full_history(engine.alerts.history)
            else:
                alerts = tuple(engine.alerts.history)
        record = RunRecord.create(
            name=spec.run_name or spec.name,
            source=str(spec.source),
            mapping=engine.mapping.name,
            levels=spec.levels,
            dfg=engine.snapshot_dfg(),
            stats=engine.statistics(),
            n_events=engine.total_events,
            n_cases=engine.incremental.n_cases,
            alerts=alerts,
            window=spec.window,
            n_polls=engine.n_polls,
            wall_span_s=time.monotonic() - self._started)
        run_id = RunCatalog(spec.catalog).record_run(record)
        self._cataloged = True
        return run_id

    def close(self) -> None:
        self.engine.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"WatchJob({self.name!r}, state={self.state!r}, "
                f"completed={self.completed})")


def record_engine_gauges(telemetry, engine: LiveIngest) -> None:
    """Point-in-time engine gauges, refreshed once per poll (after the
    checkpoint save, so they describe the state the sidecar holds)."""
    ages = engine.watermark_ages()
    telemetry.gauge_set("starving_files", len(ages))
    telemetry.gauge_set(
        "watermark_age_seconds",
        max(ages.values()) / 1e6 if ages else 0.0)
    telemetry.gauge_set("interval_buffer_entries",
                        engine.stats.n_buffered_intervals())
    telemetry.gauge_set("interval_buffer_window", engine.window or 0)
    telemetry.update_rss()

"""``fleet.toml`` — the declarative fleet definition.

One file describes N watch jobs: top-level keys are *defaults* that
fan out to every job (the shared rules file of the CI e2e, a common
interval), ``[jobs.NAME]`` tables declare the jobs, and any key
repeated inside a job table overrides the default for that job only.
JSON is accepted for ``*.json`` paths (same shape), mirroring the
rules loader.

::

    interval = 1.0
    rules = "rules.toml"          # fans out to every job

    [jobs.app1]
    source = "traces/app1"
    checkpoint = "app1.ckpt.json"

    [jobs.app2]
    source = "strace:traces/app2"
    interval = 5.0                # override wins
    emit = "app2.elog"

Relative paths — ``source``, ``checkpoint``, ``emit``, ``alert_log``,
``rules``, and path-shaped ``baseline`` specs — resolve against the
directory of the config file, not the CWD, so a fleet file can live
next to its trace tree and be launched from anywhere.

Every validation error is a :class:`FleetConfigError` (a
:class:`~repro._util.errors.ReproError`, so the CLI maps it to exit
2) naming the offending job and key. Jobs writing to the same
``checkpoint``/``emit``/``alert_log`` path are rejected up front —
two engines appending to one journal corrupt it quietly. A shared
``catalog`` is the exception (the run catalog is multi-writer by
design), but a catalog path doubling as an exclusive write path, or
two jobs recording under one run name into one catalog, is rejected.
"""

from __future__ import annotations

import json
import os
import re
import tomllib
from pathlib import Path

from repro._util.errors import ReproError
from repro.fleet.job import JobSpec

_NAME_RE = re.compile(r"^[A-Za-z0-9._-]+$")

#: Keys allowed at the top level (defaults fanning out to every job).
#: ``catalog`` fans out deliberately: the run catalog is multi-writer,
#: so one shared ``catalog = "runs.db"`` is the normal fleet setup.
DEFAULT_KEYS = ("interval", "rules", "baseline", "window", "mapping",
                "levels", "recursive", "lenient", "dfg", "top",
                "catalog", "memory_budget")

#: Keys allowed inside a ``[jobs.NAME]`` table. ``run_name`` is
#: job-level only — a default run name shared by every job would make
#: their cataloged histories indistinguishable; ``compact_emit`` is
#: job-level only because it is meaningless without that job's own
#: ``emit``/``checkpoint`` pair.
JOB_KEYS = DEFAULT_KEYS + ("source", "checkpoint", "emit", "alert_log",
                           "run_name", "compact_emit")

_MAPPINGS = ("topdirs", "path", "call", "site")


class FleetConfigError(ReproError):
    """A malformed fleet config — message names the job and key."""


def _type_error(where: str, job: str | None, key: str,
                want: str, got) -> FleetConfigError:
    place = f"job {job!r}: " if job else ""
    return FleetConfigError(
        f"{where}: {place}key {key!r} must be {want} "
        f"(got {got!r})")


def _check_types(entry: dict, where: str, job: str | None) -> None:
    for key, want, kinds in (
            ("interval", "a number >= 0", (int, float)),
            ("window", "an integer >= 2", (int,)),
            ("memory_budget", "an integer >= 1 (bytes)", (int,)),
            ("compact_emit", "an integer >= 1 (bytes)", (int,)),
            ("levels", "an integer", (int,)),
            ("top", "an integer >= 1", (int,)),
            ("recursive", "a boolean", (bool,)),
            ("lenient", "a boolean", (bool,)),
            ("dfg", "a boolean", (bool,)),
            ("source", "a string", (str,)),
            ("rules", "a string", (str,)),
            ("baseline", "a string", (str,)),
            ("checkpoint", "a string", (str,)),
            ("emit", "a string", (str,)),
            ("alert_log", "a string", (str,)),
            ("catalog", "a string", (str,)),
            ("run_name", "a string", (str,)),
            ("mapping", "a string", (str,))):
        if key not in entry:
            continue
        value = entry[key]
        # bool is an int subclass: a numeric key must not accept it.
        if isinstance(value, bool) and bool not in kinds:
            raise _type_error(where, job, key, want, value)
        if not isinstance(value, kinds):
            raise _type_error(where, job, key, want, value)
    if "interval" in entry and entry["interval"] < 0:
        raise _type_error(where, job, "interval", "a number >= 0",
                          entry["interval"])
    if "window" in entry and entry["window"] < 2:
        raise _type_error(where, job, "window", "an integer >= 2",
                          entry["window"])
    if "memory_budget" in entry and entry["memory_budget"] < 1:
        raise _type_error(where, job, "memory_budget",
                          "an integer >= 1 (bytes)",
                          entry["memory_budget"])
    if "compact_emit" in entry and entry["compact_emit"] < 1:
        raise _type_error(where, job, "compact_emit",
                          "an integer >= 1 (bytes)",
                          entry["compact_emit"])
    if "top" in entry and entry["top"] < 1:
        raise _type_error(where, job, "top", "an integer >= 1",
                          entry["top"])
    if "mapping" in entry and entry["mapping"] not in _MAPPINGS:
        raise _type_error(where, job, "mapping",
                          f"one of {_MAPPINGS}", entry["mapping"])


def _resolve_path(base: Path, value: str | None) -> str | None:
    if value is None:
        return None
    return str(base / value) if not os.path.isabs(value) else value


def _resolve_source(base: Path, value: str) -> str:
    """Join a path-shaped source spec onto the config directory,
    preserving the scheme spelling (``strace:traces/a`` stays a
    ``strace:`` URI; ``sim:`` and friends pass through untouched)."""
    from repro.sources import parse_source_spec

    spec = parse_source_spec(value)
    if spec.scheme is None:
        return _resolve_path(base, spec.target)
    if spec.scheme in ("strace", "elog", "csv") \
            and not os.path.isabs(spec.target):
        options = "&".join(f"{k}={v}" for k, v in spec.options.items())
        joined = f"{spec.scheme}:{base / spec.target}"
        return f"{joined}?{options}" if options else joined
    return value


def parse_fleet_data(data: dict, *, where: str,
                     base_dir: str | os.PathLike[str] = ".",
                     ) -> list[JobSpec]:
    """Validate an already-parsed config mapping into job specs.

    Split from :func:`load_fleet_config` so the docs example in
    ``docs/fleet.md`` can be parsed by the test suite without a file
    on disk (the ``rules.md`` pattern).
    """
    base = Path(base_dir)
    if not isinstance(data, dict):
        raise FleetConfigError(
            f"{where}: top level must be a table/object, "
            f"got {type(data).__name__}")
    unknown = sorted(set(data) - set(DEFAULT_KEYS) - {"jobs"})
    if unknown:
        raise FleetConfigError(
            f"{where}: unknown top-level key(s) {unknown} — defaults "
            f"are {sorted(DEFAULT_KEYS)}, jobs live under [jobs.NAME]")
    defaults = {key: data[key] for key in DEFAULT_KEYS if key in data}
    _check_types(defaults, where, None)
    jobs_table = data.get("jobs")
    if not isinstance(jobs_table, dict) or not jobs_table:
        raise FleetConfigError(
            f"{where}: no jobs — declare at least one [jobs.NAME] "
            f"table with a source")
    specs: list[JobSpec] = []
    writers: dict[str, tuple[str, str]] = {}
    catalogs: dict[str, str] = {}
    run_names: dict[tuple[str, str], str] = {}
    for name, entry in jobs_table.items():
        if not _NAME_RE.match(name):
            raise FleetConfigError(
                f"{where}: invalid job name {name!r} — use letters, "
                f"digits, '.', '_' or '-'")
        if not isinstance(entry, dict):
            raise FleetConfigError(
                f"{where}: job {name!r} must be a table/object, "
                f"got {type(entry).__name__}")
        unknown = sorted(set(entry) - set(JOB_KEYS))
        if unknown:
            raise FleetConfigError(
                f"{where}: job {name!r}: unknown key(s) {unknown} — "
                f"job keys are {sorted(JOB_KEYS)}")
        _check_types(entry, where, name)
        merged = {**defaults, **entry}
        if "source" not in merged:
            raise FleetConfigError(
                f"{where}: job {name!r} has no source (the trace "
                f"directory to watch)")
        spec = JobSpec(
            name=name,
            source=_resolve_source(base, merged["source"]),
            interval=float(merged.get("interval", 2.0)),
            checkpoint=_resolve_path(base, merged.get("checkpoint")),
            rules=_resolve_path(base, merged.get("rules")),
            baseline=(_resolve_source(base, merged["baseline"])
                      if merged.get("baseline") else None),
            alert_log=_resolve_path(base, merged.get("alert_log")),
            emit=_resolve_path(base, merged.get("emit")),
            window=merged.get("window"),
            memory_budget=merged.get("memory_budget"),
            compact_emit=merged.get("compact_emit"),
            mapping=merged.get("mapping", "topdirs"),
            levels=merged.get("levels", 2),
            recursive=merged.get("recursive", False),
            lenient=merged.get("lenient", False),
            show_dfg=merged.get("dfg", True),
            top=merged.get("top", 5),
            catalog=_resolve_path(base, merged.get("catalog")),
            run_name=merged.get("run_name"),
        )
        if spec.run_name and not spec.catalog:
            raise FleetConfigError(
                f"{where}: job {name!r} has run_name but no catalog "
                f"(run names label cataloged runs)")
        if spec.catalog and not spec.run_name:
            # Cataloged runs default to the job name so every job's
            # history stays separable (runs list --app NAME).
            spec = spec.with_overrides(run_name=name)
        if spec.alert_log and not spec.rules:
            raise FleetConfigError(
                f"{where}: job {name!r} has alert_log but no rules "
                f"(no rules, nothing to fire)")
        if spec.baseline and not spec.rules:
            raise FleetConfigError(
                f"{where}: job {name!r} has baseline but no rules "
                f"(no rules, nothing to compare)")
        if spec.window is not None and spec.memory_budget is not None:
            raise FleetConfigError(
                f"{where}: job {name!r} sets both window and "
                f"memory_budget — the budget derives the window, pick "
                f"one")
        if spec.compact_emit is not None and not spec.emit:
            raise FleetConfigError(
                f"{where}: job {name!r} has compact_emit but no emit "
                f"(there is no journal to compact)")
        if spec.compact_emit is not None and not spec.checkpoint:
            raise FleetConfigError(
                f"{where}: job {name!r} has compact_emit but no "
                f"checkpoint (compaction only packs journal bytes a "
                f"durable sidecar already accounts for)")
        write_paths = [(key, getattr(spec, key))
                       for key in ("checkpoint", "emit", "alert_log")
                       if getattr(spec, key) is not None]
        if spec.emit is not None:
            # The journal the engine appends next to its emit
            # destination is a write path too — it must not collide
            # with another job's paths or the shared catalog.
            write_paths.append(("emit journal",
                               f"{spec.emit}.journal"))
        for key, value in write_paths:
            resolved = os.path.normpath(value)
            if resolved in writers:
                other, other_key = writers[resolved]
                raise FleetConfigError(
                    f"{where}: job {name!r} {key} {value!r} collides "
                    f"with job {other!r} {other_key} — each job needs "
                    f"its own write paths")
            writers[resolved] = (name, key)
        if spec.catalog:
            # The catalog is multi-writer (WAL + transactional
            # appends): jobs *sharing* a catalog is the point. What is
            # rejected is a catalog path doubling as some job's
            # exclusive write path, and two jobs recording under one
            # run name into one catalog — their histories would
            # interleave indistinguishably.
            resolved = os.path.normpath(str(spec.catalog))
            if resolved in writers:
                other, other_key = writers[resolved]
                raise FleetConfigError(
                    f"{where}: job {name!r} catalog {spec.catalog!r} "
                    f"collides with job {other!r} {other_key} — a run "
                    f"catalog cannot double as a "
                    f"checkpoint/emit/journal/alert_log path")
            catalogs[resolved] = name
            key = (resolved, spec.run_name)
            if key in run_names:
                raise FleetConfigError(
                    f"{where}: job {name!r} records run name "
                    f"{spec.run_name!r} into the same catalog as job "
                    f"{run_names[key]!r} — run names within one fleet "
                    f"must be unique per catalog (set run_name)")
            run_names[key] = name
        specs.append(spec)
    for resolved, (job, key) in writers.items():
        if resolved in catalogs:
            raise FleetConfigError(
                f"{where}: job {job!r} {key} {resolved!r} collides "
                f"with job {catalogs[resolved]!r} catalog — a run "
                f"catalog cannot double as a "
                f"checkpoint/emit/journal/alert_log path")
    return specs


def load_fleet_config(path: str | os.PathLike[str]) -> list[JobSpec]:
    """Load and validate a fleet file (TOML, or ``*.json``)."""
    config_path = Path(path)
    if not config_path.exists():
        raise FleetConfigError(f"no such fleet config: {config_path}")
    where = f"fleet config {config_path}"
    try:
        if config_path.suffix.lower() == ".json":
            data = json.loads(config_path.read_text(encoding="utf-8"))
        else:
            with open(config_path, "rb") as handle:
                data = tomllib.load(handle)
    except (tomllib.TOMLDecodeError, json.JSONDecodeError) as exc:
        raise FleetConfigError(f"{where}: parse error: {exc}") from exc
    return parse_fleet_data(data, where=where,
                            base_dir=config_path.parent)

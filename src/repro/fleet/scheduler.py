"""The scheduler layer: many jobs, one cooperative loop.

:class:`FleetScheduler` deadline-schedules N :class:`~repro.fleet.job.
WatchJob`\\ s on one thread — the cadence logic hoisted verbatim out of
the old ``run_watch`` (``next = max(now, next + interval)``), applied
per job: each job's next poll is due ``interval`` after its previous
one was *due*, so one job's slow refresh never silently stretches its
own cadence, and the scheduler simply runs whichever job's deadline is
earliest (FIFO among ties, so zero-interval jobs round-robin instead
of starving each other). With a single job the loop reduces exactly to
the old one — ``run_watch`` is now a one-job fleet, byte-identical.

**Fault isolation** (``isolate=True``, the fleet CLI): a job whose
poll raises transitions to ``failed`` instead of taking the process
down — the open telemetry span is aborted, a structured ``JOB FAILED``
event and a fleet status frame are emitted, and the job is re-due
after an exponential backoff (doubling from its interval, capped).
When its backoff deadline arrives the scheduler *rebuilds* the job
from its spec — the in-process equivalent of kill/restart, restoring
from the job's own checkpoint — and resumes polling. ``max_restarts``
bounds the consecutive attempts; beyond it the job is ``stopped``
(its emit journal still packs) and its siblings keep running.

With ``isolate=False`` (the single-job ``watch`` path) exceptions
propagate to the caller unchanged.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Callable

from repro.fleet.job import PollOutcome, WatchJob

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.fleet.view import FleetView
    from repro.telemetry.spans import PollSpan


def _overrun_line(n_poll: int, interval: float, overshoot: float,
                  span: "PollSpan | None") -> str:
    """The structured overrun event: which poll, by how much, and —
    when telemetry is on — where the time went."""
    line = (f"OVERRUN poll {n_poll}: work exceeded the {interval:g}s "
            f"interval by {overshoot:.3f}s; cadence re-anchored")
    if span is not None:
        breakdown = ", ".join(
            f"{p.name} {p.wall_s:.3f}s" for p in span.top_phases(3))
        if breakdown:
            line += f" ({breakdown})"
    return line


class FleetScheduler:
    """Cooperative deadline scheduler over a list of jobs.

    ``out``/``sleep``/``clock`` are injectable exactly as in the old
    ``run_watch`` — tests drive a whole fleet without a terminal or a
    wall clock. ``view`` (a :class:`~repro.fleet.view.FleetView`)
    turns on the interleaved presentation: per-job ``[name]`` line
    prefixes and fleet status frames on every state change. With
    ``view=None`` output is raw — the single-job byte-identical mode.
    """

    def __init__(self, jobs: "list[WatchJob]", *,
                 out: Callable[[str], None] = print,
                 sleep: Callable[[float], None] = time.sleep,
                 clock: Callable[[], float] = time.monotonic,
                 view: "FleetView | None" = None,
                 isolate: bool = False,
                 max_restarts: int | None = None,
                 max_backoff: float = 300.0) -> None:
        self.jobs = list(jobs)
        self._out = out
        self._sleep = sleep
        self._clock = clock
        self._view = view
        self._isolate = isolate
        self._max_restarts = max_restarts
        self._max_backoff = max_backoff
        self._seq = 0

    # -- the loop ----------------------------------------------------------

    def run(self) -> int:
        """Poll every job on its own cadence until all are done.

        Returns a process exit code (0). KeyboardInterrupt propagates
        — the presentation layer owns the stop message.
        """
        now = self._clock()
        for index, job in enumerate(self.jobs):
            job.deadline = now
            job._order = index
        self._seq = len(self.jobs)
        if self._view is not None and self.jobs:
            self._out(self._view.status_frame(self.jobs))
        while True:
            job = self._next_job()
            if job is None:
                return 0
            delay = job.deadline - self._clock()
            if delay > 0:
                self._sleep(delay)
            self._visit(job)

    def _next_job(self) -> "WatchJob | None":
        runnable = [job for job in self.jobs
                    if job.state not in ("done", "stopped")]
        if not runnable:
            return None
        return min(runnable, key=lambda job: (job.deadline, job._order))

    # -- one visit ---------------------------------------------------------

    def _visit(self, job: WatchJob) -> None:
        # FIFO tie-break: after a visit the job queues behind every
        # same-deadline sibling (zero-interval fleets round-robin).
        job._order = self._seq
        self._seq += 1
        if job.state == "failed":
            try:
                job.rebuild()
            except KeyboardInterrupt:  # pragma: no cover - interactive
                raise
            except Exception as exc:
                self._record_failure(job, exc)
                return
            job.restarts += 1
            telemetry = job.engine.telemetry
            if telemetry.enabled:
                telemetry.count("job_restarts_total")
            self._emit_line(job, f"JOB RESTARTED (restart "
                                 f"{job.restarts})")
        try:
            outcome = job.poll_once()
        except KeyboardInterrupt:  # pragma: no cover - interactive
            raise
        except Exception as exc:
            if not self._isolate:
                raise
            self._record_failure(job, exc)
            return
        job.failures = 0
        self._emit(job, outcome.text)
        job.record_snapshot()
        if job.state != "running":
            self._set_state(job, "running")
        if job.exhausted:
            packed = job.finalize()
            if packed is not None:
                self._emit_line(job, f"emitted event log: {packed}")
            self._set_state(job, "done")
            return
        self._advance_deadline(job, outcome)

    def _advance_deadline(self, job: WatchJob,
                          outcome: PollOutcome) -> None:
        due = job.deadline + job.interval
        now = self._clock()
        telemetry = job.engine.telemetry
        if job.interval > 0 and now > due:
            telemetry.record_overrun(outcome.result.n_poll, now - due)
            self._emit_line(job, _overrun_line(
                outcome.result.n_poll, job.interval, now - due,
                outcome.span))
        else:
            telemetry.record_cadence_ok()
        job.deadline = max(now, due)

    # -- failure handling --------------------------------------------------

    def _record_failure(self, job: WatchJob, exc: Exception) -> None:
        job.failures += 1
        # A poll that raised mid-span leaves it open; discard it so
        # the rebuilt (or retried) job's begin_poll doesn't trip the
        # open-span guard.
        job.engine.telemetry.abort_poll()
        if self._max_restarts is not None \
                and job.failures > self._max_restarts:
            self._emit_line(
                job, f"JOB STOPPED: {exc}; gave up after "
                     f"{job.failures} consecutive failure(s)")
            self._set_state(job, "stopped")
            try:
                packed = job.finalize()
            except Exception as pack_exc:
                self._emit_line(job, f"emit pack failed: {pack_exc}")
                packed = None
            if packed is not None:
                self._emit_line(job, f"emitted event log: {packed}")
            return
        backoff = min(self._max_backoff,
                      max(job.interval, 1.0) * 2 ** (job.failures - 1))
        self._emit_line(
            job, f"JOB FAILED: {exc}; restart in {backoff:g}s "
                 f"(failure {job.failures})")
        self._set_state(job, "failed")
        job.deadline = self._clock() + backoff

    # -- presentation ------------------------------------------------------

    def _emit(self, job: WatchJob, text: str) -> None:
        if self._view is None:
            self._out(text)
        else:
            self._out(self._view.frame(job, text))

    def _emit_line(self, job: WatchJob, line: str) -> None:
        if self._view is None:
            self._out(line)
        else:
            self._out(self._view.line(job, line))

    def _set_state(self, job: WatchJob, state: str) -> None:
        job.state = state
        if self._view is not None:
            self._out(self._view.status_frame(self.jobs))


def run_fleet(jobs: "list[WatchJob]", *,
              metrics_port: int | None = None,
              max_restarts: int | None = None,
              out: Callable[[str], None] = print,
              sleep: Callable[[float], None] = time.sleep,
              clock: Callable[[], float] = time.monotonic) -> int:
    """Drive a fleet to completion — the presentation entry point.

    Wraps :class:`FleetScheduler` with the interleaved
    :class:`~repro.fleet.view.FleetView`, fault isolation, a shared
    metrics endpoint (``metrics_port`` serves every instrumented job's
    registry under a ``job`` label, ``/healthz`` aggregates
    worst-of-jobs), a fleet stop message on ^C, and a ``finally`` that
    packs every job's ``--emit`` destination and releases engines on
    *any* exit path.
    """
    from repro.fleet.view import FleetView

    view = FleetView()
    server = None
    if metrics_port is not None:
        from repro.fleet.telemetry import FleetTelemetry
        from repro.telemetry.exposition import MetricsServer

        server = MetricsServer(FleetTelemetry(jobs), metrics_port)
        out(f"serving fleet metrics on http://{server.host}:"
            f"{server.port}/metrics (health: /healthz)")
    scheduler = FleetScheduler(jobs, out=out, sleep=sleep, clock=clock,
                               view=view, isolate=True,
                               max_restarts=max_restarts)
    try:
        return scheduler.run()
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        out("fleet stopped: " + ", ".join(
            f"{job.name} {job.completed} poll(s)" for job in jobs))
        return 0
    finally:
        for job in jobs:
            try:
                packed = job.finalize()
            except Exception as exc:
                out(view.line(job, f"emit pack failed: {exc}"))
                packed = None
            if packed is not None:
                out(view.line(job, f"emitted event log: {packed}"))
            job.close()
        if server is not None:
            server.close()

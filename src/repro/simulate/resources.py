"""Shared resources for the simulation kernel.

- :class:`Resource` — a FIFO server pool with ``capacity`` slots; the
  building block for the metadata server, token manager and storage
  targets of the filesystem model. Queueing here is what turns
  "96 ranks open one file" into the contention the paper observes.
- :class:`Barrier` — an n-party rendezvous, used for the MPI barriers
  separating IOR's write and read phases.
"""

from __future__ import annotations

from collections import deque
from typing import Generator

from repro._util.errors import SimulationError
from repro.simulate.kernel import SimEvent, Simulator


class Resource:
    """FIFO resource with ``capacity`` concurrent holders.

    Usage inside a process generator::

        grant = resource.acquire()
        yield grant
        try:
            yield sim.timeout(service_time)
        finally:
            resource.release()
    """

    def __init__(self, sim: Simulator, capacity: int = 1,
                 name: str = "resource") -> None:
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiting: deque[SimEvent] = deque()
        #: peak queue length observed (diagnostics / tests)
        self.peak_queue = 0
        #: total completed acquisitions
        self.total_acquired = 0

    def acquire(self) -> SimEvent:
        """Event that triggers when a slot is granted (FIFO order)."""
        event = self.sim.event()
        if self._in_use < self.capacity:
            self._in_use += 1
            self.total_acquired += 1
            event.succeed()
        else:
            self._waiting.append(event)
            self.peak_queue = max(self.peak_queue, len(self._waiting))
        return event

    def release(self) -> None:
        """Free a slot; wakes the longest-waiting acquirer, if any."""
        if self._in_use <= 0:
            raise SimulationError(f"{self.name}: release without acquire")
        if self._waiting:
            self.total_acquired += 1
            self._waiting.popleft().succeed()
        else:
            self._in_use -= 1

    def use(self, service_us: int) -> Generator[SimEvent, None, None]:
        """Sub-process: acquire, hold for ``service_us``, release."""
        yield self.acquire()
        try:
            yield self.sim.timeout(service_us)
        finally:
            self.release()

    @property
    def queue_length(self) -> int:
        return len(self._waiting)

    @property
    def in_use(self) -> int:
        return self._in_use


class Barrier:
    """An n-party barrier: the nth arrival releases everyone.

    Reusable across phases (it resets after releasing).
    """

    def __init__(self, sim: Simulator, parties: int,
                 name: str = "barrier") -> None:
        if parties < 1:
            raise SimulationError(f"parties must be >= 1, got {parties}")
        self.sim = sim
        self.parties = parties
        self.name = name
        self._waiting: list[SimEvent] = []
        #: number of completed barrier rounds
        self.generations = 0

    def wait(self) -> SimEvent:
        """Event that triggers when all parties have arrived."""
        event = self.sim.event()
        self._waiting.append(event)
        if len(self._waiting) == self.parties:
            waiters, self._waiting = self._waiting, []
            self.generations += 1
            for waiter in waiters:
                waiter.succeed()
        elif len(self._waiting) > self.parties:  # pragma: no cover
            raise SimulationError(f"{self.name}: too many waiters")
        return event

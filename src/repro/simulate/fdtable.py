"""Per-process file-descriptor tables.

The strace writer needs realistic descriptor numbers (``read(3</...>``,
``openat(...) = 4</...>``): descriptors start at 3 (0/1/2 are
stdio), the lowest free number is reused after close — exactly the
POSIX allocation rule, which is why the paper's ``ls -l`` trace shows
``/etc/nsswitch.conf`` on fd 4 while fd 3 still holds the locale
archive.
"""

from __future__ import annotations

from repro._util.errors import SimulationError

#: First descriptor handed out (0, 1, 2 are stdin/stdout/stderr).
FIRST_FD = 3


class FdTable:
    """Tracks open descriptors and their paths for one process."""

    def __init__(self) -> None:
        self._open: dict[int, str] = {}

    def allocate(self, path: str) -> int:
        """Open: return the lowest free descriptor >= 3."""
        fd = FIRST_FD
        while fd in self._open:
            fd += 1
        self._open[fd] = path
        return fd

    def path_of(self, fd: int) -> str:
        """Path bound to an open descriptor."""
        try:
            return self._open[fd]
        except KeyError:
            raise SimulationError(f"fd {fd} is not open") from None

    def release(self, fd: int) -> str:
        """Close: free the descriptor, returning its path."""
        try:
            return self._open.pop(fd)
        except KeyError:
            raise SimulationError(f"close of unopened fd {fd}") from None

    def is_open(self, fd: int) -> bool:
        return fd in self._open

    def open_fds(self) -> list[int]:
        """Currently open descriptors, ascending."""
        return sorted(self._open)

    def __len__(self) -> int:
        return len(self._open)

"""Rendering simulated syscall records as strace text.

Produces the exact textual shape of ``strace -f -e <calls> -tt -T -y``
output written via ``-o`` (Fig. 2 of the paper), so simulated traces
flow through the *same* tokenizer/parser/merger as real ones:

- ``read(3</path>, ..., 1048576) = 1048576 <0.000301>`` — buffer
  contents elided as ``...`` exactly as in the paper's figures;
- ``openat(AT_FDCWD, "/path", O_WRONLY|O_CREAT, 0644) = 3</path> <…>``
  with the ``-y`` annotation on the returned descriptor;
- failed probes: ``openat(..) = -1 ENOENT (No such file or directory)``;
- optional ``<unfinished ...>`` / ``<... call resumed>`` splitting to
  exercise the merge path (Fig. 2c);
- wall-clock stamps with per-host clock offsets — the paper explicitly
  tolerates unsynchronized clocks, and so must the pipeline.

``-e``-style call filtering happens here (strace records only the
selected calls), which is how the paper's experiment A excludes
``lseek``/``fsync`` while experiment B includes ``lseek``.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from repro._util.timefmt import format_duration, format_wallclock
from repro.simulate.recording import ProcessRecorder, SyscallRecord

#: Calls recorded in the paper's experiment A ("variants of read, write
#: and openat", Sec. V-A).
EXPERIMENT_A_CALLS = frozenset({
    "read", "write", "pread64", "pwrite64", "openat", "open"})
#: Experiment B adds lseek (Sec. V-B).
EXPERIMENT_B_CALLS = EXPERIMENT_A_CALLS | {"lseek"}


def _format_args(rec: SyscallRecord) -> tuple[str, str]:
    """Return (args_text, ret_text) for one record."""
    call = rec.call
    if call in ("read", "write"):
        args = f"{rec.fd}<{rec.path}>, ..., {rec.requested}"
        ret = str(rec.size)
    elif call in ("pread64", "pwrite64"):
        args = (f"{rec.fd}<{rec.path}>, ..., {rec.requested}, "
                f"{rec.args_hint}")
        ret = str(rec.size)
    elif call in ("open", "openat"):
        flags = rec.args_hint or "O_RDONLY|O_CLOEXEC"
        prefix = 'AT_FDCWD, ' if call == "openat" else ""
        args = f'{prefix}"{rec.path}", {flags}'
        if rec.ret_fd is not None:
            ret = f"{rec.ret_fd}<{rec.path}>"
        else:
            ret = "-1 ENOENT (No such file or directory)"
    elif call == "lseek":
        args = f"{rec.fd}<{rec.path}>, {rec.args_hint}, SEEK_SET"
        ret = str(rec.retval if rec.retval is not None else rec.args_hint)
    elif call in ("fsync", "fdatasync", "close"):
        args = f"{rec.fd}<{rec.path}>"
        ret = "0"
    else:
        args = rec.args_hint or ""
        ret = str(rec.retval if rec.retval is not None else 0)
    return args, ret


def format_record(rec: SyscallRecord, *, clock_offset_us: int = 0) -> str:
    """One complete strace line for a record."""
    stamp = format_wallclock(rec.start_us + clock_offset_us)
    args, ret = _format_args(rec)
    dur = format_duration(rec.dur_us)
    return f"{rec.pid}  {stamp} {rec.call}({args}) = {ret} {dur}"


def format_record_split(rec: SyscallRecord, *,
                        clock_offset_us: int = 0) -> tuple[str, str]:
    """The unfinished/resumed two-line form of a record (Fig. 2c)."""
    start_stamp = format_wallclock(rec.start_us + clock_offset_us)
    end_stamp = format_wallclock(
        rec.start_us + rec.dur_us + clock_offset_us)
    args, ret = _format_args(rec)
    dur = format_duration(rec.dur_us)
    # Split the argument list at the first top-level comma when
    # possible, mirroring how strace leaves the buffer unprinted.
    head, sep, tail = args.partition(", ")
    if not sep:
        head, tail = args, ""
    first = (f"{rec.pid}  {start_stamp} {rec.call}({head},"
             f" <unfinished ...>")
    second = (f"{rec.pid}  {end_stamp} <... {rec.call} resumed> "
              f"{tail}) = {ret} {dur}")
    return first, second


def write_strace_text(
    recorder: ProcessRecorder,
    *,
    trace_calls: Iterable[str] | None = None,
    clock_offset_us: int = 0,
    unfinished_probability: float = 0.0,
    rng: np.random.Generator | None = None,
) -> str:
    """Render one recorder (one trace file / case) to strace text.

    ``trace_calls`` emulates strace's ``-e`` selection: records of
    other calls are dropped. ``unfinished_probability`` splits that
    fraction of records into unfinished/resumed pairs (time-ordered
    within the file) to exercise the merge path.
    """
    wanted = set(trace_calls) if trace_calls is not None else None
    rng = rng or np.random.default_rng(0)
    lines: list[tuple[int, int, str]] = []  # (time, tiebreak, text)
    seq = 0
    for rec in recorder.sorted_records():
        if wanted is not None and rec.call not in wanted:
            continue
        if unfinished_probability > 0 and rec.dur_us > 0 and \
                rng.random() < unfinished_probability:
            first, second = format_record_split(
                rec, clock_offset_us=clock_offset_us)
            lines.append((rec.start_us, seq, first))
            lines.append((rec.start_us + rec.dur_us, seq + 1, second))
            seq += 2
        else:
            lines.append((
                rec.start_us, seq,
                format_record(rec, clock_offset_us=clock_offset_us)))
            seq += 1
    lines.sort()
    return "\n".join(text for _, _, text in lines) + ("\n" if lines else "")


def write_trace_files(
    recorders: Sequence[ProcessRecorder],
    directory: str | os.PathLike[str],
    *,
    trace_calls: Iterable[str] | None = None,
    host_clock_offsets: dict[str, int] | None = None,
    unfinished_probability: float = 0.0,
    seed: int = 7,
) -> list[Path]:
    """Write one ``<cid>_<host>_<rid>.st`` file per recorder.

    ``host_clock_offsets`` applies a fixed per-host clock skew (µs) to
    every stamp of that host's files — exercising the paper's
    "clocks need not be synchronized" property.
    """
    out_dir = Path(directory)
    out_dir.mkdir(parents=True, exist_ok=True)
    offsets = host_clock_offsets or {}
    rng = np.random.default_rng(seed)
    paths: list[Path] = []
    for recorder in recorders:
        text = write_strace_text(
            recorder,
            trace_calls=trace_calls,
            clock_offset_us=offsets.get(recorder.host, 0),
            unfinished_probability=unfinished_probability,
            rng=rng,
        )
        path = out_dir / recorder.filename()
        path.write_text(text, encoding="utf-8")
        paths.append(path)
    return paths

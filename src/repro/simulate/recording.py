"""Syscall recording for simulated processes.

Each simulated process owns a :class:`ProcessRecorder` that captures
the attributes strace would print — pid, call, entry wall-clock,
duration, file path, transfer size, descriptor, requested bytes —
as :class:`SyscallRecord` rows. The strace writer renders these to
text; tests can also assert on them directly, bypassing the text round
trip.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class SyscallRecord:
    """One simulated system call, as strace would record it.

    ``start_us`` is simulation wall-clock (µs since midnight, already
    including any per-host clock skew); ``size`` is the transfer size
    for read/write variants and ``None`` otherwise; ``ret_fd`` is the
    descriptor returned by open/openat (for the ``-y`` annotation on
    the return value).
    """

    pid: int
    call: str
    start_us: int
    dur_us: int
    path: str | None = None
    fd: int | None = None
    size: int | None = None
    requested: int | None = None
    ret_fd: int | None = None
    args_hint: str | None = None  #: extra args text (e.g. lseek offset)
    retval: int | None = None     #: explicit return (lseek offset, 0...)


@dataclass
class ProcessRecorder:
    """Accumulates the records of one simulated process (one pid).

    One recorder corresponds to one trace file — i.e. one *case* —
    because the simulated launcher (rid) runs exactly one traced child
    (pid), mirroring the paper's ``srun -n N strace ...`` setup.
    """

    cid: str
    host: str
    rid: int
    pid: int
    records: list[SyscallRecord] = field(default_factory=list)

    def record(self, **kwargs) -> SyscallRecord:
        """Append a record (keyword args of :class:`SyscallRecord`)."""
        rec = SyscallRecord(pid=self.pid, **kwargs)
        self.records.append(rec)
        return rec

    @property
    def case_id(self) -> str:
        return f"{self.cid}{self.rid}"

    def filename(self) -> str:
        """Trace-file name per the Fig. 1 convention."""
        return f"{self.cid}_{self.host}_{self.rid}.st"

    def sorted_records(self) -> list[SyscallRecord]:
        """Records in start-time order (simulation emits them in order,
        but phase-parallel workloads may interleave)."""
        return sorted(self.records, key=lambda r: (r.start_us, r.pid))

"""A GPFS-like parallel-filesystem model.

This is the substitute for the paper's JUWELS → JUST (GPFS) storage
stack (DESIGN.md §2). It models exactly the mechanisms behind the
paper's findings, no more:

**Metadata server** (:attr:`ParallelFS.mds`) — a FIFO server pool.
File creates and opens queue here; a file-per-process run issues N
creates that serialize only lightly (capacity > 1), which is the
"metadata overhead" trade-off the paper discusses for FPP.

**Byte-range token manager** (:attr:`ParallelFS.token_server`) — the
GPFS distributed-lock mechanism that makes the *single-shared-file* run
expensive:

- opening a file that other ranks already hold write tokens on forces a
  whole-file token revocation, serialized at the token server with cost
  proportional to the number of holders (→ the paper's dominant
  ``openat`` load in SSF, Fig. 8b);
- a rank's *first* write to a shared file acquires its byte-range token
  (one serialized grant);
- subsequent shared-file writes suffer a *probabilistic boundary
  conflict* (token ping-pong at block boundaries), a serialized stall
  of several milliseconds. This produces the heavy-tailed write
  durations that explain the paper's seemingly contradictory numbers —
  mean per-event data rate within ~25 % of FPP, yet total duration
  (Load) orders of magnitude higher;
- shared-file *reads* of ranges another rank wrote trigger a
  write→read token downgrade with its own (smaller) stall probability,
  giving SSF reads their mc = 96 pile-up while FPP reads stay cheap.

**Page cache** — writes land in the page cache at memory speed (the
syscall "returns as soon as the page table is updated", Sec. III);
``fsync`` flushes a rank's dirty bytes to storage. Reads served from
the local node's cache run at memory speed; IOR's ``-C`` defeats this
by reading data written on the *neighboring node* (Sec. V-A), which we
model as a cache-bypassing storage read.

**Storage reads** — served at a fixed streaming rate + latency with
log-normal jitter. JUST's aggregate bandwidth far exceeds what 96
ranks of 1 MB transfers pull, so no capacity queue is modelled for
data; contention lives in the token/metadata layers, as in GPFS.

All durations are integer microseconds; randomness comes from a
dedicated ``numpy`` Generator so runs are exactly reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator

import numpy as np

from repro._util.errors import SimulationError
from repro.simulate.kernel import SimEvent, Simulator
from repro.simulate.resources import Resource


@dataclass
class FSConfig:
    """Tunable constants of the filesystem model.

    Defaults are calibrated so the IOR benches reproduce the *shape* of
    the paper's Fig. 8/9 (orderings and rough ratios, not absolute
    JUWELS timings) — see EXPERIMENTS.md.
    """

    # -- metadata server ---------------------------------------------------
    mds_capacity: int = 4          #: parallel MDS service slots
    create_service_us: int = 350   #: create a new file (FPP cost)
    open_service_us: int = 60      #: open an existing file
    stat_service_us: int = 25      #: metadata query

    # -- token / lock manager ------------------------------------------------
    token_grant_us: int = 40           #: uncontended byte-range grant
    shared_open_revoke_us: int = 25000  #: inode-token revoke at contended open
    token_split_us: int = 1200         #: first byte-range split on shared file
    write_conflict_probability: float = 0.02  #: boundary token ping-pong
    write_conflict_stall_us: int = 15000      #: serialized conflict cost
    read_downgrade_probability: float = 0.012  #: write→read token downgrade
    read_downgrade_stall_us: int = 2000        #: serialized downgrade cost

    # -- data movement -----------------------------------------------------------
    page_cache_write_mbps: float = 3400.0   #: memcpy into page cache
    cache_read_mbps: float = 9000.0         #: read served from local cache
    storage_read_mbps: float = 5200.0       #: streaming read from NSDs
    storage_read_latency_us: int = 25
    flush_mbps: float = 11000.0             #: fsync drain rate (aggregate share)
    node_local_write_mbps: float = 2100.0   #: /dev/shm & /tmp writes

    # -- misc --------------------------------------------------------------------------
    tiny_call_us: int = 3        #: user-side calls (lseek, close)
    syscall_overhead_us: int = 6  #: fixed per-call kernel+ptrace overhead
    jitter_sigma: float = 0.25   #: lognormal sigma on data-path durations
    seed: int = 20240924         #: RNG seed (paper v2 date)

    #: Page-cache block granularity for hit tracking.
    cache_block_bytes: int = 1 << 20


@dataclass
class FileState:
    """Dynamic per-file lock/cache bookkeeping."""

    exists: bool = False
    writer_tokens: set[int] = field(default_factory=set)
    reader_tokens: set[int] = field(default_factory=set)
    open_count: int = 0
    #: opens *initiated* (incremented at syscall entry) — contention is
    #: decided on intents, not completions, so simultaneous openers of
    #: a shared file all pay the revocation except the very first.
    open_intents: int = 0
    dirty_by_rank: dict[int, int] = field(default_factory=dict)
    #: rank -> host that wrote each cache block (for -C cache misses)
    block_writer_host: dict[int, str] = field(default_factory=dict)


class ParallelFS:
    """The filesystem model; all operations are simulation processes.

    Each operation is a generator to be driven via
    ``yield from fs.op(...)`` inside a rank process; the caller measures
    the syscall duration as the simulated time spent inside.
    """

    def __init__(self, sim: Simulator, config: FSConfig | None = None,
                 rng: np.random.Generator | None = None) -> None:
        self.sim = sim
        self.config = config or FSConfig()
        self.rng = rng or np.random.default_rng(self.config.seed)
        self.mds = Resource(sim, self.config.mds_capacity, name="mds")
        self.token_server = Resource(sim, 1, name="token-server")
        self.files: dict[str, FileState] = {}
        #: host -> set of (path, block) resident in that node's cache
        self.page_cache: dict[str, set[tuple[str, int]]] = {}
        #: diagnostics
        self.conflict_stalls = 0
        self.downgrade_stalls = 0

    # -- helpers -----------------------------------------------------------

    def _state(self, path: str) -> FileState:
        state = self.files.get(path)
        if state is None:
            state = FileState()
            self.files[path] = state
        return state

    def _jitter(self, base_us: float) -> int:
        """Log-normal jitter around a base duration, >= 1 µs."""
        factor = float(np.exp(self.rng.normal(
            0.0, self.config.jitter_sigma)))
        return max(1, int(base_us * factor))

    def _transfer_us(self, nbytes: int, mbps: float) -> int:
        return self._jitter(nbytes / mbps)  # bytes / (MB/s) = µs

    def _cache(self, host: str) -> set[tuple[str, int]]:
        return self.page_cache.setdefault(host, set())

    def _blocks(self, offset: int, nbytes: int) -> range:
        block = self.config.cache_block_bytes
        return range(offset // block, (offset + max(nbytes, 1) - 1)
                     // block + 1)

    # -- operations ----------------------------------------------------------

    def open(self, host: str, rank: int, path: str, *,
             create: bool) -> Generator[SimEvent, None, None]:
        """open/openat: metadata service + shared-file token revocation.

        The SSF cost driver: when other ranks already hold write tokens
        on this file, the new opener must revoke the whole-file token
        from every holder — serialized at the token server.
        """
        cfg = self.config
        state = self._state(path)
        prior_intents = state.open_intents
        state.open_intents += 1
        service = (cfg.create_service_us if (create and not state.exists)
                   else cfg.open_service_us)
        yield from self.mds.use(self._jitter(service))
        contended = create and (prior_intents > 0
                                or bool(state.writer_tokens - {rank}))
        if contended:
            # Inode/whole-file token must be revoked from the current
            # holder; serialized at the token server, so the k-th
            # opener of a shared file waits behind k-1 revocations —
            # the linear-in-rank open cost that dominates SSF Load.
            yield from self.token_server.use(
                self._jitter(cfg.shared_open_revoke_us))
        state.exists = True
        state.open_count += 1
        yield self.sim.timeout(cfg.syscall_overhead_us)

    def write(self, host: str, rank: int, path: str, offset: int,
              nbytes: int, *,
              conflict_scale: float = 1.0,
              ) -> Generator[SimEvent, None, None]:
        """write/pwrite64: token acquisition + page-cache memcpy.

        ``conflict_scale`` lets API layers modulate the boundary-
        conflict probability (the POSIX lseek+write split holds tokens
        across two syscalls; see DESIGN.md).
        """
        cfg = self.config
        state = self._state(path)
        if not state.exists:
            raise SimulationError(f"write to non-existent file {path}")
        shared = bool(state.writer_tokens - {rank})
        if rank not in state.writer_tokens:
            # First write by this rank: acquire a byte-range token.
            grant = cfg.token_grant_us
            if shared:
                grant += cfg.token_split_us  # split range off the holders
            yield from self.token_server.use(self._jitter(grant))
            state.writer_tokens.add(rank)
        elif shared and self.rng.random() < (
                cfg.write_conflict_probability * conflict_scale):
            # Boundary token ping-pong with a neighbouring writer.
            self.conflict_stalls += 1
            yield from self.token_server.use(
                self._jitter(cfg.write_conflict_stall_us))
        yield self.sim.timeout(
            cfg.syscall_overhead_us
            + self._transfer_us(nbytes, cfg.page_cache_write_mbps))
        state.dirty_by_rank[rank] = (
            state.dirty_by_rank.get(rank, 0) + nbytes)
        cache = self._cache(host)
        for block in self._blocks(offset, nbytes):
            cache.add((path, block))
            state.block_writer_host[block] = host

    def read(self, host: str, rank: int, path: str, offset: int,
             nbytes: int, *,
             bypass_cache: bool = False,
             ) -> Generator[SimEvent, None, int]:
        """read/pread64: cache hit at memory speed, else storage read.

        Shared files whose target range was written by another rank may
        incur a write→read token downgrade stall — the SSF read-side
        contention. Returns the number of bytes read.
        """
        cfg = self.config
        state = self._state(path)
        if not state.exists:
            raise SimulationError(f"read of non-existent file {path}")
        blocks = list(self._blocks(offset, nbytes))
        cache = self._cache(host)
        cached = (not bypass_cache
                  and all((path, b) in cache for b in blocks))
        shared = bool(state.writer_tokens - {rank})
        if shared:
            foreign = any(state.block_writer_host.get(b) not in (None, host)
                          for b in blocks)
            if foreign and self.rng.random() < \
                    cfg.read_downgrade_probability:
                # Write→read token downgrade: the writer's byte-range
                # token must be downgraded through the token server —
                # serialized, so downgrade bursts pile the readers up
                # (the mc = 96 reading of Fig. 8b's SSF read node).
                self.downgrade_stalls += 1
                yield from self.token_server.use(
                    self._jitter(cfg.read_downgrade_stall_us))
        if cached:
            duration = self._transfer_us(nbytes, cfg.cache_read_mbps)
        else:
            duration = (cfg.storage_read_latency_us
                        + self._transfer_us(nbytes, cfg.storage_read_mbps))
            for block in blocks:
                cache.add((path, block))
        yield self.sim.timeout(cfg.syscall_overhead_us + duration)
        return nbytes

    def fsync(self, host: str, rank: int, path: str,
              ) -> Generator[SimEvent, None, None]:
        """fsync: drain this rank's dirty bytes to storage (-e)."""
        cfg = self.config
        state = self._state(path)
        dirty = state.dirty_by_rank.pop(rank, 0)
        duration = cfg.syscall_overhead_us + (
            self._transfer_us(dirty, cfg.flush_mbps) if dirty else
            cfg.tiny_call_us)
        yield self.sim.timeout(duration)

    def lseek(self) -> Generator[SimEvent, None, None]:
        """lseek: pure user/kernel bookkeeping, no I/O."""
        yield self.sim.timeout(
            self.config.tiny_call_us + self.config.syscall_overhead_us)

    def close(self, host: str, rank: int, path: str,
              ) -> Generator[SimEvent, None, None]:
        """close: descriptor teardown (tokens retained, as in GPFS)."""
        state = self._state(path)
        if state.open_count > 0:
            state.open_count -= 1
        yield self.sim.timeout(
            self.config.tiny_call_us + self.config.syscall_overhead_us)

    def write_node_local(self, nbytes: int,
                         ) -> Generator[SimEvent, None, None]:
        """Write to node-local tmpfs (/dev/shm, /tmp): no tokens."""
        cfg = self.config
        yield self.sim.timeout(
            cfg.syscall_overhead_us
            + self._transfer_us(nbytes, cfg.node_local_write_mbps))

"""A minimal discrete-event simulation kernel.

Design follows the classic event-list architecture (and the SimPy
programming model): *processes* are Python generators that ``yield``
events they wait on; the kernel pops the earliest scheduled event from
a heap, fires its callbacks, and resumes waiting processes. Time is
integer **microseconds**, matching the strace ``-tt`` resolution used
by the rest of the library — integer time makes simulated traces
exactly reproducible and round-trippable through the text format.

Event lifecycle: *pending* → *scheduled* (``succeed()`` called or a
timeout created; the event sits in the heap with a fire time) →
*processed* (the kernel dispatched it and ran its callbacks). A process
waiting on an already-*processed* event resumes on the next kernel
step; waiting on a *scheduled* event resumes at its fire time.

Only what the filesystem model needs is implemented: timeouts,
process-completion events, and manually triggered events (used by
resources). That keeps the kernel small enough to reason about and
test exhaustively.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator

from repro._util.errors import SimulationError


class SimEvent:
    """A one-shot event; callbacks fire when the kernel dispatches it.

    Processes wait on events by yielding them. An event may carry a
    value, delivered as the result of the ``yield``.
    """

    __slots__ = ("sim", "scheduled", "processed", "value", "_callbacks")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self.scheduled = False   #: in the heap, waiting to fire
        self.processed = False   #: callbacks have run
        self.value: Any = None
        self._callbacks: list[Callable[[SimEvent], None]] = []

    def succeed(self, value: Any = None) -> "SimEvent":
        """Trigger now: dispatch callbacks at the current time."""
        if self.scheduled or self.processed:
            raise SimulationError("event already triggered")
        self.value = value
        self.sim._schedule(self, 0)
        return self

    def add_callback(self, fn: Callable[["SimEvent"], None]) -> None:
        if self.processed:
            raise SimulationError(
                "cannot add a callback to a processed event")
        self._callbacks.append(fn)


class Process(SimEvent):
    """A running generator; also an event that fires on completion.

    The generator's ``return`` value becomes the event value, so
    ``result = yield sim.process(child())`` composes sub-processes.
    """

    __slots__ = ("_generator", "name")

    def __init__(self, sim: "Simulator",
                 generator: Generator[SimEvent, Any, Any],
                 name: str = "proc") -> None:
        super().__init__(sim)
        self._generator = generator
        self.name = name

    def _step(self, fired: SimEvent | None) -> None:
        try:
            if fired is None:
                target = next(self._generator)
            else:
                target = self._generator.send(fired.value)
        except StopIteration as stop:
            self.value = stop.value
            self.sim._schedule(self, 0)
            return
        if not isinstance(target, SimEvent):
            raise SimulationError(
                f"process {self.name!r} yielded {type(target).__name__}, "
                f"expected a SimEvent")
        if target.processed:
            # The event fired before we started waiting: resume on the
            # next kernel step, at the current time.
            resume = SimEvent(self.sim)
            resume.add_callback(lambda _ev: self._step(target))
            resume.value = target.value
            self.sim._schedule(resume, 0)
        else:
            target.add_callback(self._step)


class Simulator:
    """The event loop: a heap of (time, seq, event)."""

    def __init__(self) -> None:
        self.now: int = 0
        self._heap: list[tuple[int, int, SimEvent]] = []
        self._seq = 0
        self._processes: list[Process] = []

    # -- scheduling -----------------------------------------------------------

    def _schedule(self, event: SimEvent, delay: int) -> None:
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        if event.scheduled or event.processed:
            raise SimulationError("event already scheduled")
        event.scheduled = True
        heapq.heappush(self._heap, (self.now + delay, self._seq, event))
        self._seq += 1

    def timeout(self, delay: int, value: Any = None) -> SimEvent:
        """An event that fires ``delay`` µs from now."""
        if delay < 0:
            raise SimulationError(f"negative timeout {delay}")
        event = SimEvent(self)
        event.value = value
        self._schedule(event, delay)
        return event

    def event(self) -> SimEvent:
        """A bare event to be triggered manually (by resources etc.)."""
        return SimEvent(self)

    def process(self, generator: Generator[SimEvent, Any, Any],
                name: str = "proc") -> Process:
        """Register a process; its first step runs at the current time."""
        proc = Process(self, generator, name)
        self._processes.append(proc)
        kickoff = SimEvent(self)
        kickoff.add_callback(lambda _ev: proc._step(None))
        kickoff.succeed()
        return proc

    # -- running -----------------------------------------------------------------

    def run(self, until: int | None = None,
            max_steps: int = 50_000_000) -> None:
        """Dispatch events until the heap drains (or ``until`` µs).

        ``max_steps`` guards against runaway loops in workload bugs.
        """
        steps = 0
        while self._heap:
            fire_time, _seq, event = self._heap[0]
            if until is not None and fire_time > until:
                break
            heapq.heappop(self._heap)
            if fire_time < self.now:  # pragma: no cover - heap invariant
                raise SimulationError("time went backwards")
            self.now = fire_time
            event.processed = True
            callbacks, event._callbacks = event._callbacks, []
            for fn in callbacks:
                fn(event)
            steps += 1
            if steps > max_steps:
                raise SimulationError(
                    f"simulation exceeded {max_steps} steps; "
                    f"likely a livelock in a workload")
        if until is not None and self.now < until:
            self.now = until

    def all_done(self) -> bool:
        """True iff every registered process has completed."""
        return all(p.processed for p in self._processes)

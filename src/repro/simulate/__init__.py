"""Discrete-event simulation of HPC I/O workloads (testbed substitute).

The paper's experiments run IOR on the JUWELS cluster against a GPFS
file system, traced with strace (Sec. V). Neither the machine nor the
benchmark binary is available here, so this subpackage provides the
closest synthetic equivalent that exercises the *identical* analysis
code path: simulated MPI ranks issue POSIX / MPI-IO system calls
against a parallel-filesystem model, and the resulting per-rank syscall
records are written out as byte-faithful strace text which then flows
through the normal parse → store → DFG pipeline.

Components:

- :mod:`repro.simulate.kernel` — a minimal generator-based
  discrete-event simulator (events, timeouts, processes).
- :mod:`repro.simulate.resources` — FIFO resources, barriers.
- :mod:`repro.simulate.fdtable` — per-process descriptor tables.
- :mod:`repro.simulate.filesystem` — the GPFS-like model: metadata
  server, byte-range token/lock manager (the SSF contention mechanism),
  shared-bandwidth storage targets, per-node page cache (defeated by
  IOR ``-C``, as in the paper).
- :mod:`repro.simulate.recording` — syscall records accumulated per
  simulated process.
- :mod:`repro.simulate.strace_writer` — renders records as strace
  ``-f -tt -T -y`` text (incl. optional ``<unfinished ...>`` splits).
- :mod:`repro.simulate.workloads` — the paper's workloads: ``ls`` /
  ``ls -l`` (Fig. 1-5) and IOR with ``-t -b -s -w -r -C -e -F -a``
  (Fig. 7-9).

The fidelity target is *shape*, not absolute timing — see DESIGN.md §2
and §5.
"""

from repro.simulate.kernel import Simulator, SimEvent, Process
from repro.simulate.resources import Resource, Barrier
from repro.simulate.fdtable import FdTable
from repro.simulate.recording import SyscallRecord, ProcessRecorder
from repro.simulate.filesystem import FSConfig, ParallelFS
from repro.simulate.strace_writer import write_strace_text, write_trace_files

__all__ = [
    "Simulator",
    "SimEvent",
    "Process",
    "Resource",
    "Barrier",
    "FdTable",
    "SyscallRecord",
    "ProcessRecorder",
    "FSConfig",
    "ParallelFS",
    "write_strace_text",
    "write_trace_files",
]

"""The IOR benchmark workload (Fig. 7-9 of the paper).

Models IOR's segmented file layout (Fig. 7a) and the exact option set
the paper uses (Fig. 7b)::

    srun -n 96 ./strace.sh ./ior -t 1m -b 16m -s 3 -w -r -C -e -o <path>
                              [-F]            # file per process
                              [-a mpiio]      # MPI-IO interface

Each simulated MPI rank runs as a DES process:

1. **Preamble** — dynamic-loader probes and library reads under
   ``$SOFTWARE``, a ``$HOME`` config read, and MPI shared-memory setup
   writes on node-local tmpfs — producing the extra DFG nodes of
   Fig. 8a (``openat/read $SOFTWARE``, ``openat/write Node Local``).
2. **Open** — the shared file (SSF) or a per-rank file (FPP, ``-F``).
3. **Write phase** — ``segments × (block/transfer)`` transfers at the
   Fig. 7a offsets. POSIX: ``lseek`` + ``write`` per transfer; MPI-IO:
   ``pwrite64`` (plus one initial probe ``lseek``), matching the
   paper's Fig. 9 observation that MPI-IO folds the seek into the call.
4. **fsync** (``-e``) — flush before reading.
5. **Read phase** — with ``-C``, each rank reads the data written by a
   rank on the neighboring node, defeating the local page cache.
6. **close**.

MPI barriers separate the phases; barrier-exit skew plus log-normal
service jitter desynchronizes ranks, which is what keeps the FPP
max-concurrency well below 96 while SSF token queues pile everyone up
(the paper's ``96x`` vs ``29x`` DR annotations in Fig. 8b).

``fsync`` is always *executed* (when ``-e``) but only appears in trace
files if listed in the strace ``-e`` call set — exactly like the
paper's experiments, which trace openat/read/write variants (exp. A)
plus lseek (exp. B) but never fsync.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator

import numpy as np

from repro._util.errors import SimulationError
from repro._util.timefmt import parse_wallclock
from repro.simulate.fdtable import FdTable
from repro.simulate.filesystem import FSConfig, ParallelFS
from repro.simulate.kernel import SimEvent, Simulator
from repro.simulate.recording import ProcessRecorder
from repro.simulate.resources import Barrier

#: Site-variable mapping for the simulated JUWELS-like paths — the
#: paper's f̄ "abstracts the file paths based on site-specific
#: variable" (Sec. V); pass to
#: :class:`~repro.core.mapping.SiteVariables`.
JUWELS_SITE_VARIABLES: dict[str, tuple[str, ...]] = {
    "$SCRATCH": ("/p/scratch",),
    "$HOME": ("/p/home",),
    "$SOFTWARE": ("/p/software",),
    "Node Local": ("/dev/shm", "/tmp"),
}

#: Library names probed/loaded by the simulated dynamic loader.
_PRELOAD_LIBS = (
    "libmpi.so.40", "libopen-pal.so.40", "libpsm2.so.2",
    "libnuma.so.1",
)


@dataclass
class IORConfig:
    """The IOR option model (paper Fig. 7b) plus simulation knobs."""

    # -- IOR options ---------------------------------------------------------
    ranks: int = 96                      #: srun -n
    ranks_per_node: int = 48             #: cores per node (2 nodes default)
    transfer_size: int = 1 << 20         #: -t 1m
    block_size: int = 16 << 20           #: -b 16m
    segments: int = 3                    #: -s 3
    do_write: bool = True                #: -w
    do_read: bool = True                 #: -r
    reorder_tasks: bool = True           #: -C
    fsync: bool = True                   #: -e
    file_per_process: bool = False       #: -F
    api: str = "posix"                   #: -a posix | mpiio
    test_file: str = "/p/scratch/ssf/test"   #: -o (paper: $SCRATCH/ssf)

    # -- identity / tracing -------------------------------------------------------
    cid: str = "ssf"
    host_prefix: str = "node"
    base_rid: int = 20000
    pid_offset: int = 3                  #: traced child pid = rid + offset
    start_wallclock_us: int = field(
        default_factory=lambda: parse_wallclock("09:15:00.000000"))

    # -- preamble --------------------------------------------------------------------
    preamble: bool = True
    preamble_probes: int = 18            #: failed $SOFTWARE openat probes
    node_local_writes: int = 12          #: MPI shm setup writes per rank

    # -- simulation ---------------------------------------------------------------------
    barrier_exit_skew_us: int = 2500     #: uniform post-barrier skew
    #: user-space time between data transfers (buffer prep/validation in
    #: IOR); this is what keeps the FPP max-concurrency well below the
    #: rank count while SSF token queues still pile everyone up.
    inter_op_user_us: int = 1100
    seed: int = 4242

    def __post_init__(self) -> None:
        if self.api not in ("posix", "mpiio"):
            raise SimulationError(f"unknown api {self.api!r}")
        if self.block_size % self.transfer_size != 0:
            raise SimulationError(
                "block size must be a multiple of transfer size")
        if self.ranks < 1 or self.ranks_per_node < 1:
            raise SimulationError("ranks and ranks_per_node must be >= 1")

    @property
    def transfers_per_block(self) -> int:
        return self.block_size // self.transfer_size

    @property
    def n_nodes(self) -> int:
        return -(-self.ranks // self.ranks_per_node)

    def host_of(self, rank: int) -> str:
        return f"{self.host_prefix}{rank // self.ranks_per_node + 1:02d}"

    def file_of(self, rank: int) -> str:
        """Data file accessed by ``rank`` (IOR's ``.%08d`` FPP suffix)."""
        if self.file_per_process:
            return f"{self.test_file}.{rank:08d}"
        return self.test_file

    def write_offset(self, rank: int, segment: int, transfer: int) -> int:
        """Fig. 7a layout: segment-major, rank-block interleaved (SSF);
        contiguous per-file (FPP)."""
        if self.file_per_process:
            return (segment * self.block_size
                    + transfer * self.transfer_size)
        return (segment * self.ranks * self.block_size
                + rank * self.block_size
                + transfer * self.transfer_size)

    def read_source_rank(self, rank: int) -> int:
        """The rank whose data ``rank`` reads back.

        ``-C`` shifts by one node's worth of ranks "to read the data
        written by a process from the neighboring node" (Sec. V-A).
        """
        if not self.reorder_tasks:
            return rank
        return (rank + self.ranks_per_node) % self.ranks


@dataclass
class IORResult:
    """Everything a bench needs from one simulated IOR run."""

    config: IORConfig
    recorders: list[ProcessRecorder]
    sim: Simulator
    fs: ParallelFS

    @property
    def makespan_us(self) -> int:
        """Total simulated wall time of the run."""
        return self.sim.now

    def total_syscalls(self) -> int:
        return sum(len(r.records) for r in self.recorders)


def _rank_process(
    sim: Simulator,
    fs: ParallelFS,
    cfg: IORConfig,
    rank: int,
    recorder: ProcessRecorder,
    barrier: Barrier,
    rng: np.random.Generator,
) -> Generator[SimEvent, None, None]:
    """The life of one MPI rank."""
    host = cfg.host_of(rank)
    fdt = FdTable()

    def record(call: str, start: int, **kwargs) -> None:
        recorder.record(call=call, start_us=cfg.start_wallclock_us + start,
                        dur_us=sim.now - start, **kwargs)

    def skew() -> SimEvent:
        return sim.timeout(int(rng.integers(0, cfg.barrier_exit_skew_us)))

    def tiny() -> SimEvent:
        return sim.timeout(int(rng.integers(2, 30)))

    def think() -> SimEvent:
        lo = cfg.inter_op_user_us // 2
        hi = max(lo + 1, cfg.inter_op_user_us * 3 // 2)
        return sim.timeout(int(rng.integers(lo, hi)))

    # ---- 1. preamble: loader + MPI runtime startup --------------------------
    if cfg.preamble:
        yield sim.timeout(int(rng.integers(0, 1500)))
        software = "/p/software/stages/2024/software"
        for i in range(cfg.preamble_probes):
            lib = _PRELOAD_LIBS[i % len(_PRELOAD_LIBS)]
            probe = f"{software}/probe-{i % 6}/{lib}"
            start = sim.now
            yield tiny()
            record("openat", start, path=probe,
                   args_hint="O_RDONLY|O_CLOEXEC")  # ret_fd None -> ENOENT
        for lib in _PRELOAD_LIBS:
            path = f"{software}/OpenMPI/lib/{lib}"
            start = sim.now
            yield tiny()
            fd = fdt.allocate(path)
            record("openat", start, path=path, ret_fd=fd,
                   args_hint="O_RDONLY|O_CLOEXEC")
            for requested, size in ((832, 832), (784, 784)):
                start = sim.now
                yield tiny()
                record("read", start, path=path, fd=fd,
                       requested=requested, size=size)
            start = sim.now
            yield from fs.lseek()
            record("lseek", start, path=path, fd=fd, args_hint="0",
                   retval=0)
            start = sim.now
            yield tiny()
            record("read", start, path=path, fd=fd, requested=4096,
                   size=4096)
            fdt.release(fd)
        home = "/p/home/user/.mpi.conf"
        start = sim.now
        yield tiny()
        fd = fdt.allocate(home)
        record("openat", start, path=home, ret_fd=fd,
               args_hint="O_RDONLY")
        fdt.release(fd)
        # MPI shared-memory segments on node-local tmpfs.
        for base, count in ((f"/dev/shm/psm2_shm.{rank}",
                             cfg.node_local_writes // 2),
                            (f"/tmp/ompi.{host}.0/session.{rank}",
                             cfg.node_local_writes
                             - cfg.node_local_writes // 2)):
            start = sim.now
            yield tiny()
            fd = fdt.allocate(base)
            record("openat", start, path=base, ret_fd=fd,
                   args_hint="O_RDWR|O_CREAT, 0600")
            start = sim.now
            yield from fs.lseek()
            record("lseek", start, path=base, fd=fd, args_hint="0",
                   retval=0)
            for _ in range(count):
                nbytes = 64 << 10
                start = sim.now
                yield from fs.write_node_local(nbytes)
                record("write", start, path=base, fd=fd,
                       requested=nbytes, size=nbytes)
            fdt.release(fd)

    # ---- 2. open the data file --------------------------------------------------
    yield barrier.wait()
    yield skew()
    path = cfg.file_of(rank)
    start = sim.now
    yield from fs.open(host, rank, path, create=True)
    fd = fdt.allocate(path)
    record("openat", start, path=path, ret_fd=fd,
           args_hint="O_WRONLY|O_CREAT, 0664")

    conflict_scale = 1.25 if cfg.api == "posix" else 1.0
    if cfg.api == "mpiio":
        # ROMIO probes the file once (size check) — the single lseek
        # per rank that keeps lseek:$SCRATCH a *shared* node in Fig. 9.
        start = sim.now
        yield from fs.lseek()
        record("lseek", start, path=path, fd=fd, args_hint="0", retval=0)

    # ---- 3. write phase -------------------------------------------------------------
    yield barrier.wait()
    yield skew()
    if cfg.do_write:
        for segment in range(cfg.segments):
            for transfer in range(cfg.transfers_per_block):
                yield think()
                offset = cfg.write_offset(rank, segment, transfer)
                if cfg.api == "posix":
                    start = sim.now
                    yield from fs.lseek()
                    record("lseek", start, path=path, fd=fd,
                           args_hint=str(offset), retval=offset)
                start = sim.now
                yield from fs.write(host, rank, path, offset,
                                    cfg.transfer_size,
                                    conflict_scale=conflict_scale)
                call = "write" if cfg.api == "posix" else "pwrite64"
                record(call, start, path=path, fd=fd,
                       requested=cfg.transfer_size,
                       size=cfg.transfer_size,
                       args_hint=(None if cfg.api == "posix"
                                  else str(offset)))
        if cfg.fsync:
            start = sim.now
            yield from fs.fsync(host, rank, path)
            record("fsync", start, path=path, fd=fd)

    # ---- 4. read phase ------------------------------------------------------------------
    yield barrier.wait()
    yield skew()
    if cfg.do_read:
        source = cfg.read_source_rank(rank)
        # FPP + -C: reads must not be served by the local page cache
        # (see DESIGN.md — the paper's Fig. 8b shows a single openat
        # per rank, so no cross-file reopen is modelled).
        bypass = cfg.reorder_tasks and cfg.file_per_process
        for segment in range(cfg.segments):
            for transfer in range(cfg.transfers_per_block):
                yield think()
                offset = cfg.write_offset(source, segment, transfer)
                if cfg.api == "posix":
                    start = sim.now
                    yield from fs.lseek()
                    record("lseek", start, path=path, fd=fd,
                           args_hint=str(offset), retval=offset)
                start = sim.now
                yield from fs.read(host, rank, path, offset,
                                   cfg.transfer_size, bypass_cache=bypass)
                call = "read" if cfg.api == "posix" else "pread64"
                record(call, start, path=path, fd=fd,
                       requested=cfg.transfer_size,
                       size=cfg.transfer_size,
                       args_hint=(None if cfg.api == "posix"
                                  else str(offset)))

    # ---- 5. close ------------------------------------------------------------------------
    start = sim.now
    yield from fs.close(host, rank, path)
    fdt.release(fd)
    record("close", start, path=path, fd=fd)


def simulate_ior(
    config: IORConfig | None = None,
    fs_config: FSConfig | None = None,
) -> IORResult:
    """Run one simulated IOR invocation; returns recorders + the model.

    Deterministic for a fixed (config.seed, fs_config.seed).
    """
    cfg = config or IORConfig()
    sim = Simulator()
    fs = ParallelFS(sim, fs_config or FSConfig(),
                    rng=np.random.default_rng(
                        (fs_config or FSConfig()).seed))
    barrier = Barrier(sim, cfg.ranks, name="mpi-barrier")
    recorders: list[ProcessRecorder] = []
    master_rng = np.random.default_rng(cfg.seed)
    for rank in range(cfg.ranks):
        rid = cfg.base_rid + rank
        recorder = ProcessRecorder(
            cid=cfg.cid, host=cfg.host_of(rank), rid=rid,
            pid=rid + cfg.pid_offset)
        recorders.append(recorder)
        rank_rng = np.random.default_rng(master_rng.integers(0, 2**63))
        sim.process(
            _rank_process(sim, fs, cfg, rank, recorder, barrier, rank_rng),
            name=f"rank-{rank}")
    sim.run()
    if not sim.all_done():
        raise SimulationError(
            "IOR simulation deadlocked: not all ranks completed "
            "(barrier starvation?)")
    return IORResult(config=cfg, recorders=recorders, sim=sim, fs=fs)

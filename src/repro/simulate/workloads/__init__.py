"""The paper's workloads, as trace generators.

- :mod:`repro.simulate.workloads.ls` — the ``ls`` / ``ls -l`` example
  of Fig. 1-5: deterministic startup-I/O templates matching the
  paper's Fig. 2 traces, staggered across ranks so the Fig. 5
  max-concurrency reading (mc = 2 for ``read:/usr/lib`` over Cb)
  reproduces.
- :mod:`repro.simulate.workloads.ior` — the IOR benchmark of Fig. 7-9:
  a full option model (``-t -b -s -w -r -C -e -F -a posix|mpiio -o``)
  driving simulated MPI ranks against the
  :class:`~repro.simulate.filesystem.ParallelFS` model.
"""

from repro.simulate.workloads.ls import (
    LsConfig,
    simulate_ls,
    generate_fig1_traces,
)
from repro.simulate.workloads.ior import (
    IORConfig,
    IORResult,
    simulate_ior,
    JUWELS_SITE_VARIABLES,
)

__all__ = [
    "LsConfig",
    "simulate_ls",
    "generate_fig1_traces",
    "IORConfig",
    "IORResult",
    "simulate_ior",
    "JUWELS_SITE_VARIABLES",
]

from repro.simulate.workloads.checkpoint import (
    CheckpointConfig,
    CheckpointResult,
    simulate_checkpoint,
)

__all__ += [
    "CheckpointConfig",
    "CheckpointResult",
    "simulate_checkpoint",
]

"""The ``ls`` / ``ls -l`` example workload (Fig. 1-5 of the paper).

The paper's introductory example traces ``srun -n 3 strace ... ls`` and
``... ls -l``: three MPI processes each record one trace file; all
three produce the *same* sequence of startup I/O (so the activity-log
collapses to one trace with multiplicity 3), but their wall-clock
starts are staggered, which is what gives ``read:/usr/lib`` a
max-concurrency of 2 in Fig. 5.

The event sequences below are transcribed from Fig. 2a (``ls``, 8
events) and Fig. 2b (``ls -l``, 17 events) — same files, sizes,
requested counts and durations, with inter-event gaps taken from the
figures' timestamps. This workload does not need the DES: process
startup I/O is deterministic; only the per-rank stagger matters.

The default stagger is 150 µs: successive ranks overlap pairwise on
the long first ELF-header read but never three ways — reproducing
``mc = 2`` exactly (see ``tests/test_simulate/test_ls.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro._util.timefmt import parse_wallclock
from repro.simulate.recording import ProcessRecorder

#: (call, path, fd, requested, size, gap_us_since_previous, dur_us)
#: transcribed from Fig. 2a — the ``ls`` trace.
LS_TEMPLATE: tuple[tuple[str, str, int, int, int, int, int], ...] = (
    ("read", "/usr/lib/x86_64-linux-gnu/libselinux.so.1", 3, 832, 832, 0, 203),
    ("read", "/usr/lib/x86_64-linux-gnu/libc.so.6", 3, 832, 832, 2646, 79),
    ("read", "/usr/lib/x86_64-linux-gnu/libpcre2-8.so.0.10.4", 3, 832, 832,
     2654, 87),
    ("read", "/proc/filesystems", 3, 1024, 478, 3580, 52),
    ("read", "/proc/filesystems", 3, 1024, 0, 175, 40),
    ("read", "/etc/locale.alias", 3, 4096, 2996, 511, 41),
    ("read", "/etc/locale.alias", 3, 4096, 0, 119, 44),
    ("write", "/dev/pts/7", 1, 50, 50, 12581, 111),
)

#: Fig. 2b — the ``ls -l`` trace (17 events).
LS_L_TEMPLATE: tuple[tuple[str, str, int, int, int, int, int], ...] = (
    ("read", "/usr/lib/x86_64-linux-gnu/libselinux.so.1", 3, 832, 832, 0, 187),
    ("read", "/usr/lib/x86_64-linux-gnu/libc.so.6", 3, 832, 832, 2570, 75),
    ("read", "/usr/lib/x86_64-linux-gnu/libpcre2-8.so.0.10.4", 3, 832, 832,
     2539, 63),
    ("read", "/proc/filesystems", 3, 1024, 478, 3853, 80),
    ("read", "/proc/filesystems", 3, 1024, 0, 249, 67),
    ("read", "/etc/locale.alias", 3, 4096, 2996, 1027, 97),
    ("read", "/etc/locale.alias", 3, 4096, 0, 268, 83),
    ("read", "/etc/nsswitch.conf", 4, 4096, 542, 11703, 140),
    ("read", "/etc/nsswitch.conf", 4, 4096, 0, 279, 27),
    ("read", "/etc/passwd", 4, 4096, 1612, 792, 37),
    ("read", "/etc/group", 4, 4096, 872, 1461, 91),
    ("write", "/dev/pts/7", 1, 9, 9, 1921, 74),
    ("read", "/usr/share/zoneinfo/Europe/Berlin", 3, 4096, 2298, 512, 74),
    ("read", "/usr/share/zoneinfo/Europe/Berlin", 3, 4096, 1449, 298, 33),
    ("write", "/dev/pts/7", 1, 74, 74, 345, 99),
    ("write", "/dev/pts/7", 1, 53, 53, 227, 73),
    ("write", "/dev/pts/7", 1, 65, 65, 190, 99),
)


@dataclass
class LsConfig:
    """Configuration of the ``ls`` example run (Fig. 1 commands).

    Defaults reproduce the paper exactly: cid ``a`` = ``ls`` with rids
    9042/9043/9045, cid ``b`` = ``ls -l`` with rids 9157/9158/9160, all
    on ``host1``; the pid inside each trace differs from the rid
    because ``srun`` forks the traced command (Sec. III item 1).
    """

    cid: str = "a"
    long_format: bool = False            #: False = ``ls``, True = ``ls -l``
    host: str = "host1"
    rids: tuple[int, ...] = (9042, 9043, 9045)
    pid_offset: int = 12                 #: pid = rid + offset (forked child)
    start_wallclock_us: int = field(
        default_factory=lambda: parse_wallclock("08:55:54.153994"))
    stagger_us: int = 150                #: per-rank start offset (Fig. 5)

    @property
    def template(self) -> tuple[tuple[str, str, int, int, int, int, int], ...]:
        return LS_L_TEMPLATE if self.long_format else LS_TEMPLATE


def simulate_ls(config: LsConfig | None = None) -> list[ProcessRecorder]:
    """Produce one recorder (= one trace file) per rank."""
    cfg = config or LsConfig()
    recorders: list[ProcessRecorder] = []
    for index, rid in enumerate(cfg.rids):
        recorder = ProcessRecorder(
            cid=cfg.cid, host=cfg.host, rid=rid,
            pid=rid + cfg.pid_offset)
        clock = cfg.start_wallclock_us + index * cfg.stagger_us
        for call, path, fd, requested, size, gap, dur in cfg.template:
            clock += gap
            recorder.record(
                call=call, start_us=clock, dur_us=dur, path=path,
                fd=fd, size=size, requested=requested)
        recorders.append(recorder)
    return recorders


def fig1_recorders(
    *,
    stagger_us: int = 150,
) -> tuple[list[ProcessRecorder], list[ProcessRecorder]]:
    """The six recorders of Fig. 1: ``(ls_recorders, ls_l_recorders)``.

    The single owner of the figure's constants (cids ``a``/``b``,
    rids, pid offsets, the ~10 s ``ls -l`` start delay) — both the
    trace-file writer (:func:`generate_fig1_traces`) and the ``sim:ls``
    trace source build on it, so they cannot drift apart.
    """
    ls_recorders = simulate_ls(LsConfig(stagger_us=stagger_us))
    ls_l_recorders = simulate_ls(LsConfig(
        cid="b", long_format=True, rids=(9157, 9158, 9160),
        pid_offset=16,
        start_wallclock_us=parse_wallclock("08:56:04.731999"),
        stagger_us=stagger_us))
    return ls_recorders, ls_l_recorders


def generate_fig1_traces(
    directory: str | Path,
    *,
    stagger_us: int = 150,
) -> tuple[list[Path], list[Path]]:
    """Write the six trace files of Fig. 1 (3× ``ls``, 3× ``ls -l``).

    Returns ``(ls_paths, ls_l_paths)``. The ``ls -l`` run starts ~10 s
    after ``ls``, matching the figures' timestamps.
    """
    from repro.simulate.strace_writer import write_trace_files

    ls_recorders, ls_l_recorders = fig1_recorders(stagger_us=stagger_us)
    ls_paths = write_trace_files(ls_recorders, directory)
    ls_l_paths = write_trace_files(ls_l_recorders, directory)
    return ls_paths, ls_l_paths

"""A checkpoint/restart workload — the paper's stated future work.

The conclusion announces: "In future work, we plan to apply our
technique to typical HPC workloads." The most typical I/O-heavy HPC
pattern beyond benchmarks is periodic checkpointing: compute phases
separated by synchronized checkpoint bursts, with an optional restart
read at startup. This workload generates exactly that, so the DFG
methodology can be exercised on a realistic pattern:

- per step: a compute delay (no traced I/O), a barrier, then every
  rank writes its checkpoint shard (``ckpt_<step>/shard.<rank>`` —
  FPP-style) or a region of one shared checkpoint file;
- a metadata rendezvous: rank 0 writes a small manifest after each
  step (the classic "tiny serial I/O after the parallel burst");
- optional restart: every rank reads the *previous* run's shard at
  startup.

The resulting DFGs show a clean cyclic structure (write-burst →
manifest → write-burst …) that :func:`repro.core.analysis.find_cycles`
recovers — see ``tests/test_simulate/test_checkpoint.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator

import numpy as np

from repro._util.errors import SimulationError
from repro._util.timefmt import parse_wallclock
from repro.simulate.fdtable import FdTable
from repro.simulate.filesystem import FSConfig, ParallelFS
from repro.simulate.kernel import SimEvent, Simulator
from repro.simulate.recording import ProcessRecorder
from repro.simulate.resources import Barrier


@dataclass
class CheckpointConfig:
    """Shape of the checkpoint/restart run."""

    ranks: int = 16
    ranks_per_node: int = 8
    steps: int = 4                       #: checkpoint rounds
    shard_bytes: int = 8 << 20           #: per-rank checkpoint size
    transfer_bytes: int = 1 << 20        #: write granularity
    compute_us: int = 50_000             #: compute phase between steps
    shared_file: bool = False            #: one shared ckpt file per step
    restart: bool = True                 #: read previous shards at start
    checkpoint_dir: str = "/p/scratch/app/ckpt"
    restart_dir: str = "/p/scratch/app/ckpt-prev"
    cid: str = "ckpt"
    host_prefix: str = "cnode"
    base_rid: int = 50000
    pid_offset: int = 2
    start_wallclock_us: int = field(
        default_factory=lambda: parse_wallclock("11:30:00.000000"))
    barrier_exit_skew_us: int = 800
    seed: int = 303

    def __post_init__(self) -> None:
        if self.shard_bytes % self.transfer_bytes != 0:
            raise SimulationError(
                "shard size must be a multiple of the transfer size")

    @property
    def transfers_per_shard(self) -> int:
        return self.shard_bytes // self.transfer_bytes

    def host_of(self, rank: int) -> str:
        return f"{self.host_prefix}{rank // self.ranks_per_node + 1:02d}"

    def shard_path(self, step: int, rank: int) -> str:
        if self.shared_file:
            return f"{self.checkpoint_dir}/ckpt_{step:04d}/shared"
        return f"{self.checkpoint_dir}/ckpt_{step:04d}/shard.{rank:05d}"

    def shard_offset(self, rank: int, transfer: int) -> int:
        base = (rank * self.shard_bytes) if self.shared_file else 0
        return base + transfer * self.transfer_bytes

    def manifest_path(self, step: int) -> str:
        return f"{self.checkpoint_dir}/ckpt_{step:04d}/manifest.json"

    def restart_path(self, rank: int) -> str:
        return f"{self.restart_dir}/shard.{rank:05d}"


@dataclass
class CheckpointResult:
    config: CheckpointConfig
    recorders: list[ProcessRecorder]
    sim: Simulator
    fs: ParallelFS

    @property
    def makespan_us(self) -> int:
        return self.sim.now

    def total_syscalls(self) -> int:
        return sum(len(r.records) for r in self.recorders)


def _rank_process(
    sim: Simulator,
    fs: ParallelFS,
    cfg: CheckpointConfig,
    rank: int,
    recorder: ProcessRecorder,
    barrier: Barrier,
    rng: np.random.Generator,
) -> Generator[SimEvent, None, None]:
    host = cfg.host_of(rank)
    fdt = FdTable()

    def record(call: str, start: int, **kwargs) -> None:
        recorder.record(call=call, start_us=cfg.start_wallclock_us + start,
                        dur_us=sim.now - start, **kwargs)

    def skew() -> SimEvent:
        return sim.timeout(int(rng.integers(0, cfg.barrier_exit_skew_us)))

    # ---- restart read --------------------------------------------------
    if cfg.restart:
        path = cfg.restart_path(rank)
        fs._state(path).exists = True  # the previous run left it behind
        start = sim.now
        yield from fs.open(host, rank, path, create=False)
        fd = fdt.allocate(path)
        record("openat", start, path=path, ret_fd=fd,
               args_hint="O_RDONLY")
        for transfer in range(cfg.transfers_per_shard):
            start = sim.now
            yield from fs.read(host, rank, path,
                               transfer * cfg.transfer_bytes,
                               cfg.transfer_bytes, bypass_cache=True)
            record("read", start, path=path, fd=fd,
                   requested=cfg.transfer_bytes, size=cfg.transfer_bytes)
        start = sim.now
        yield from fs.close(host, rank, path)
        fdt.release(fd)
        record("close", start, path=path, fd=fd)

    # ---- checkpoint steps ------------------------------------------------
    for step in range(cfg.steps):
        # Compute phase (untraced), then the synchronized burst.
        yield sim.timeout(
            int(cfg.compute_us * float(rng.uniform(0.9, 1.1))))
        yield barrier.wait()
        yield skew()
        path = cfg.shard_path(step, rank)
        start = sim.now
        yield from fs.open(host, rank, path, create=True)
        fd = fdt.allocate(path)
        record("openat", start, path=path, ret_fd=fd,
               args_hint="O_WRONLY|O_CREAT, 0644")
        for transfer in range(cfg.transfers_per_shard):
            start = sim.now
            yield from fs.write(host, rank, path,
                                cfg.shard_offset(rank, transfer),
                                cfg.transfer_bytes)
            record("write", start, path=path, fd=fd,
                   requested=cfg.transfer_bytes,
                   size=cfg.transfer_bytes)
        start = sim.now
        yield from fs.fsync(host, rank, path)
        record("fsync", start, path=path, fd=fd)
        start = sim.now
        yield from fs.close(host, rank, path)
        fdt.release(fd)
        record("close", start, path=path, fd=fd)
        # Rank 0 seals the step with a manifest (serial metadata tail).
        yield barrier.wait()
        if rank == 0:
            manifest = cfg.manifest_path(step)
            start = sim.now
            yield from fs.open(host, rank, manifest, create=True)
            fd = fdt.allocate(manifest)
            record("openat", start, path=manifest, ret_fd=fd,
                   args_hint="O_WRONLY|O_CREAT, 0644")
            start = sim.now
            yield from fs.write(host, rank, manifest, 0, 4096)
            record("write", start, path=manifest, fd=fd,
                   requested=4096, size=4096)
            start = sim.now
            yield from fs.close(host, rank, manifest)
            fdt.release(fd)
            record("close", start, path=manifest, fd=fd)


def simulate_checkpoint(
    config: CheckpointConfig | None = None,
    fs_config: FSConfig | None = None,
) -> CheckpointResult:
    """Run the checkpoint/restart workload; deterministic per seed."""
    cfg = config or CheckpointConfig()
    sim = Simulator()
    fs = ParallelFS(sim, fs_config or FSConfig(),
                    rng=np.random.default_rng(
                        (fs_config or FSConfig()).seed))
    barrier = Barrier(sim, cfg.ranks, name="ckpt-barrier")
    recorders: list[ProcessRecorder] = []
    master_rng = np.random.default_rng(cfg.seed)
    for rank in range(cfg.ranks):
        rid = cfg.base_rid + rank
        recorder = ProcessRecorder(
            cid=cfg.cid, host=cfg.host_of(rank), rid=rid,
            pid=rid + cfg.pid_offset)
        recorders.append(recorder)
        rank_rng = np.random.default_rng(master_rng.integers(0, 2**63))
        sim.process(
            _rank_process(sim, fs, cfg, rank, recorder, barrier,
                          rank_rng),
            name=f"ckpt-rank-{rank}")
    sim.run()
    if not sim.all_done():
        raise SimulationError("checkpoint simulation deadlocked")
    return CheckpointResult(config=cfg, recorders=recorders, sim=sim,
                            fs=fs)

"""Darshan-style per-case counters.

Darshan (the paper's most prominent related tool) reports per-process
aggregate counters — bytes read/written, call counts, cumulative I/O
time. The DFG methodology is complementary, and having the same
counters next to the graph makes a familiar cross-check: these rows
answer "how much", the DFG answers "in what pattern".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.core.frame import MISSING
from repro.strace.syscalls import SyscallFamily, spec_for

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.eventlog import EventLog


@dataclass(frozen=True, slots=True)
class CaseCounters:
    """Aggregate I/O counters of one case (one rank's trace file)."""

    case_id: str
    cid: str
    host: str
    rid: int
    n_events: int
    n_reads: int
    n_writes: int
    n_opens: int
    n_seeks: int
    bytes_read: int
    bytes_written: int
    io_time_us: int          #: Σ dur over all recorded events
    read_time_us: int
    write_time_us: int
    first_start_us: int
    last_end_us: int
    distinct_files: int

    @property
    def span_us(self) -> int:
        """Wall-clock span from first event start to last event end."""
        return self.last_end_us - self.first_start_us

    @property
    def io_fraction(self) -> float:
        """Share of the case's span spent inside recorded syscalls."""
        span = self.span_us
        return self.io_time_us / span if span > 0 else 0.0


def case_counters(event_log: "EventLog") -> list[CaseCounters]:
    """Counters for every case, sorted by case id.

    Works on unmapped logs — counters classify by syscall family, not
    by activity.
    """
    frame = event_log.frame
    pools = frame.pools
    call_col = frame.column("call")
    dur_col = frame.column("dur")
    size_col = frame.column("size")
    start_col = frame.column("start")
    fp_col = frame.column("fp")

    # Family classification per distinct call code (vectorized apply).
    family_of: dict[int, SyscallFamily] = {
        int(code): spec_for(pools.calls.decode(int(code))).family
        for code in np.unique(call_col)
    }

    results: list[CaseCounters] = []
    for case_code, rows in frame.case_slices():
        calls = call_col[rows]
        durs = dur_col[rows]
        sizes = size_col[rows]
        starts = start_col[rows]
        fps = fp_col[rows]
        valid_durs = np.where(durs != MISSING, durs, 0)
        families = np.array([family_of[int(c)].value for c in calls])
        is_read = families == "read"
        is_write = families == "write"
        sizes_or_zero = np.where(sizes != MISSING, sizes, 0)
        ends = starts + valid_durs
        cid_code = int(frame.column("cid")[rows[0]])
        host_code = int(frame.column("host")[rows[0]])
        results.append(CaseCounters(
            case_id=pools.cases.decode(case_code),
            cid=pools.cids.decode(cid_code),
            host=pools.hosts.decode(host_code),
            rid=int(frame.column("rid")[rows[0]]),
            n_events=int(len(rows)),
            n_reads=int(is_read.sum()),
            n_writes=int(is_write.sum()),
            n_opens=int((families == "open").sum()),
            n_seeks=int((families == "seek").sum()),
            bytes_read=int(sizes_or_zero[is_read].sum()),
            bytes_written=int(sizes_or_zero[is_write].sum()),
            io_time_us=int(valid_durs.sum()),
            read_time_us=int(valid_durs[is_read].sum()),
            write_time_us=int(valid_durs[is_write].sum()),
            first_start_us=int(starts.min()),
            last_end_us=int(ends.max()),
            distinct_files=int(np.unique(fps[fps != MISSING]).size),
        ))
    results.sort(key=lambda c: c.case_id)
    return results


def counters_report(event_log: "EventLog", *,
                    top: int | None = None) -> str:
    """Tabular per-case counter report (heaviest I/O time first)."""
    from repro._util.sizes import format_bytes

    counters = sorted(case_counters(event_log),
                      key=lambda c: -c.io_time_us)
    if top is not None:
        counters = counters[:top]
    header = (f"{'case':>12} {'events':>7} {'reads':>6} {'writes':>6} "
              f"{'opens':>6} {'seeks':>6} {'read B':>10} {'written B':>10} "
              f"{'io time':>10} {'io frac':>8}")
    lines = [header, "-" * len(header)]
    for c in counters:
        lines.append(
            f"{c.case_id:>12} {c.n_events:>7} {c.n_reads:>6} "
            f"{c.n_writes:>6} {c.n_opens:>6} {c.n_seeks:>6} "
            f"{format_bytes(c.bytes_read):>10} "
            f"{format_bytes(c.bytes_written):>10} "
            f"{c.io_time_us / 1e6:>8.3f} s {c.io_fraction:>7.1%}")
    return "\n".join(lines) + "\n"

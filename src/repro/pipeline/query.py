"""Composable event-log queries.

The paper frames filtering as "a query and an abstraction applied to an
event-log" (Sec. IV). :class:`Query` makes the query half first-class:
a conjunction of predicates over the columnar frame, evaluated
vectorized, reusable across logs.

>>> q = Query().fp_contains("/p/scratch").calls("read", "write")
>>> scratch_rw = q.apply(log)                      # doctest: +SKIP
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.eventlog import EventLog
from repro.core.frame import EventFrame

#: A frame-level predicate producing a boolean row mask.
FramePredicate = Callable[[EventFrame], np.ndarray]


@dataclass
class Query:
    """An immutable conjunction of event filters."""

    _predicates: tuple[FramePredicate, ...] = ()
    _description: tuple[str, ...] = ()

    def _extended(self, predicate: FramePredicate,
                  description: str) -> "Query":
        return Query(self._predicates + (predicate,),
                     self._description + (description,))

    # -- builders -----------------------------------------------------------

    def fp_contains(self, substring: str) -> "Query":
        """Keep events whose file path contains ``substring``."""
        return self._extended(
            lambda frame: frame.fp_contains(substring),
            f"fp~{substring!r}")

    def fp_matches(self, predicate: Callable[[str], bool],
                   label: str = "fp-predicate") -> "Query":
        """Keep events whose path satisfies an arbitrary predicate."""
        return self._extended(
            lambda frame: frame.fp_matches(predicate), label)

    def calls(self, *names: str) -> "Query":
        """Keep events whose syscall is one of ``names``."""
        return self._extended(
            lambda frame: frame.call_in(names), f"call∈{sorted(names)}")

    def not_calls(self, *names: str) -> "Query":
        """Drop events whose syscall is one of ``names`` (e.g. the
        paper's Fig. 9, which skips rendering openat)."""
        return self._extended(
            lambda frame: ~frame.call_in(names), f"call∉{sorted(names)}")

    def cids(self, *cids: str) -> "Query":
        """Keep events of the given command identifiers."""
        return self._extended(
            lambda frame: frame.cid_in(cids), f"cid∈{sorted(cids)}")

    def time_window(self, start_us: int, end_us: int) -> "Query":
        """Keep events starting within [start_us, end_us)."""
        return self._extended(
            lambda frame: frame.time_window(start_us, end_us),
            f"start∈[{start_us},{end_us})")

    def where(self, predicate: FramePredicate,
              label: str = "custom") -> "Query":
        """Attach a raw frame-level predicate."""
        return self._extended(predicate, label)

    # -- evaluation -------------------------------------------------------------

    def mask(self, frame: EventFrame) -> np.ndarray:
        """The conjunction of all predicates as a boolean mask."""
        result = np.ones(len(frame), dtype=bool)
        for predicate in self._predicates:
            result &= predicate(frame)
        return result

    def apply(self, event_log: EventLog) -> EventLog:
        """A new event-log containing only the matching events."""
        if not self._predicates:
            return event_log
        return event_log.filtered(self.mask(event_log.frame))

    def describe(self) -> str:
        """Human-readable conjunction, for reports."""
        return " AND ".join(self._description) if self._description \
            else "(all events)"

    def __len__(self) -> int:
        return len(self._predicates)

"""Machine-readable payloads for reports and diffs — one serializer.

``report --json``, ``diff --json``, and the catalog's ``runs
show/diff/trend --json`` all emit these shapes, so scripts parse one
vocabulary no matter which subcommand produced the data. Payloads are
plain dicts/lists of JSON-native values; callers ``json.dumps`` them.

Numbers are emitted raw (no unit formatting): ``relative_duration`` in
[0, 1], ``total_bytes`` in bytes, ``process_data_rate`` in bytes per
second or ``null`` — the same quantities the text tables render
human-readably.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.diff import DFGDiff
    from repro.core.statistics import IOStatistics


def stats_payload(stats: "IOStatistics", *,
                  top: int | None = None) -> dict:
    """Per-activity statistics, heaviest (by relative duration) first.

    Every activity row carries the full Sec. IV-B vector plus the
    ranks/cases/approximate bookkeeping fields.
    """
    activities = stats.activities()
    if top is not None:
        activities = activities[:top]
    rows = []
    for activity in activities:
        s = stats[activity]
        rows.append({
            "activity": s.activity,
            "event_count": s.event_count,
            "total_dur_us": s.total_dur_us,
            "relative_duration": s.relative_duration,
            "total_bytes": s.total_bytes,
            "has_transfers": s.has_transfers,
            "process_data_rate": s.process_data_rate,
            "max_concurrency": s.max_concurrency,
            "ranks": s.ranks,
            "cases": s.cases,
            "approximate": s.approximate,
        })
    return {
        "total_duration_us": stats.total_duration_us,
        "n_activities": len(stats),
        "activities": rows,
    }


def diff_payload(diff: "DFGDiff", *, top: int | None = None) -> dict:
    """A :class:`~repro.core.diff.DFGDiff` as plain data.

    Deltas read green minus red, matching the coloring convention and
    the text report. ``activity_deltas`` is present only when the diff
    carries statistics.
    """
    edge_deltas = diff.edge_deltas()
    if top is not None:
        edge_deltas = edge_deltas[:top]
    payload = {
        "jaccard_nodes": diff.jaccard_nodes(),
        "jaccard_edges": diff.jaccard_edges(),
        "total_count_delta": diff.total_count_delta(),
        "added_edges": [list(edge) for edge in diff.added_edges()],
        "vanished_edges": [list(edge) for edge in diff.vanished_edges()],
        "edge_deltas": [
            {
                "src": delta.edge[0],
                "dst": delta.edge[1],
                "green_count": delta.green_count,
                "red_count": delta.red_count,
                "delta": delta.delta,
                "status": delta.status,
            }
            for delta in edge_deltas
        ],
    }
    if diff.green_stats is not None and diff.red_stats is not None:
        activity_deltas = diff.activity_deltas()
        if top is not None:
            activity_deltas = activity_deltas[:top]
        payload["activity_deltas"] = [
            {
                "activity": delta.activity,
                "green_events": delta.green_events,
                "red_events": delta.red_events,
                "event_delta": delta.event_delta,
                "green_relative_duration": delta.green_rd,
                "red_relative_duration": delta.red_rd,
                "relative_duration_delta": delta.rd_delta,
                "green_bytes": delta.green_bytes,
                "red_bytes": delta.red_bytes,
                "green_rate": delta.green_rate,
                "red_rate": delta.red_rate,
                "rate_ratio": delta.rate_ratio,
            }
            for delta in activity_deltas
        ]
    return payload

"""The end-to-end inspection session.

One object that walks the paper's full pipeline (Fig. 6) — load, filter,
map, synthesize, compute statistics, color, render — while keeping all
intermediate artifacts accessible:

>>> session = InspectionSession.from_source("strace:traces/")  # doctest: +SKIP
>>> session.filter_fp("/usr/lib")                           # doctest: +SKIP
>>> session.map(CallTopDirs(levels=2))                      # doctest: +SKIP
>>> print(session.render("ascii"))                          # doctest: +SKIP
>>> session.compare_cids(green=["b"]).render("dot")         # doctest: +SKIP
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Callable, Iterable

from repro._util.errors import MappingError
from repro.core.coloring import (
    PartitionColoring,
    PlainColoring,
    StatisticsColoring,
    Styler,
)
from repro.core.dfg import DFG
from repro.core.event import Event
from repro.core.eventlog import EventLog
from repro.core.mapping import CallTopDirs, Mapping
from repro.core.render.viewer import DFGViewer
from repro.core.statistics import IOStatistics
from repro.pipeline.query import Query


class InspectionSession:
    """Mutable pipeline state: event-log → DFG → styled rendering.

    Derived artifacts (DFG, statistics) are computed lazily and
    invalidated whenever the log or mapping changes.
    """

    def __init__(self, event_log: EventLog) -> None:
        self._log = event_log
        self._dfg: DFG | None = None
        self._stats: IOStatistics | None = None

    # -- constructors -----------------------------------------------------

    @classmethod
    def from_source(cls, source, *,
                    cids: set[str] | None = None,
                    strict: bool = True,
                    recursive: bool = False,
                    workers: int | None = None) -> "InspectionSession":
        """Start a session from any trace source.

        ``source`` is a :class:`~repro.sources.TraceSource` or a spec
        resolved by :func:`~repro.sources.open_source` —
        ``"strace:traces/"``, ``"elog:run.elog"``, ``"csv:log.csv"``,
        ``"sim:ior?ranks=4"``, or a bare path (autodetected).

        >>> session = InspectionSession.from_source("sim:ls")
        >>> session.map_default()           # the paper's f̂ mapping
        InspectionSession(75 events, 6 cases, mapping='call+top2dirs')
        >>> len(session.dfg.activities()) > 0
        True
        """
        return cls(EventLog.from_source(
            source, cids=cids, strict=strict, recursive=recursive,
            workers=workers))

    @classmethod
    def from_strace_dir(cls, directory: str | os.PathLike[str], *,
                        cids: set[str] | None = None,
                        strict: bool = True,
                        recursive: bool = False,
                        workers: int | None = None) -> "InspectionSession":
        """Start a session from raw traces.

        .. deprecated:: 1.1
           Use :meth:`from_source` — this shim delegates to it.
        """
        import warnings

        warnings.warn(
            "InspectionSession.from_strace_dir is deprecated; use "
            "InspectionSession.from_source(...)", DeprecationWarning,
            stacklevel=2)
        from repro.sources import StraceDirSource

        return cls.from_source(StraceDirSource(
            directory, cids=cids, strict=strict, recursive=recursive,
            workers=workers))

    @classmethod
    def from_store(cls, path: str | os.PathLike[str]) -> "InspectionSession":
        """Open a stored event-log.

        .. deprecated:: 1.1
           Use :meth:`from_source` — this shim delegates to it.
        """
        import warnings

        warnings.warn(
            "InspectionSession.from_store is deprecated; use "
            "InspectionSession.from_source(...)", DeprecationWarning,
            stacklevel=2)
        from repro.sources import ElstoreSource

        return cls.from_source(ElstoreSource(path))

    @classmethod
    def from_live(cls, engine) -> "InspectionSession":
        """Session over the current snapshot of a live ingestion engine
        (:class:`~repro.live.engine.LiveIngest`).

        The DFG and statistics are seeded from the engine's standing
        incremental state — O(graph + delta), full history even after
        a checkpoint restart or under ``keep_records=False``, where
        the snapshot log covers less than the graph. The session holds
        a point-in-time copy — take a fresh one after later polls.
        Applying a further filter or mapping recomputes from the
        snapshot log and therefore narrows to the records the engine
        kept in memory.
        """
        session = cls(engine.snapshot_log().with_mapping(engine.mapping))
        session._dfg = engine.snapshot_dfg()
        session._stats = engine.statistics()
        return session

    # -- pipeline steps -------------------------------------------------------

    def filter_fp(self, substring: str) -> "InspectionSession":
        """Keep only events whose path contains ``substring``."""
        self._log = self._log.filtered_fp(substring)
        self._invalidate()
        return self

    def filter(self, query: Query) -> "InspectionSession":
        """Apply a composed :class:`~repro.pipeline.query.Query`."""
        self._log = query.apply(self._log)
        self._invalidate()
        return self

    def map(self, mapping: Mapping | Callable[[Event], str | None],
            ) -> "InspectionSession":
        """Apply the mapping f : E ⇀ A_f (defaults available via
        :meth:`map_default`)."""
        self._log = self._log.with_mapping(mapping)
        self._invalidate()
        return self

    def map_default(self) -> "InspectionSession":
        """Apply the paper's f̂ (call + top-2 directories, Eq. 4)."""
        return self.map(CallTopDirs(levels=2))

    # -- derived artifacts ---------------------------------------------------------

    @property
    def event_log(self) -> EventLog:
        return self._log

    @property
    def dfg(self) -> DFG:
        """The DFG of the current (filtered, mapped) log."""
        if self._dfg is None:
            self._require_mapping()
            self._dfg = DFG(self._log)
        return self._dfg

    @property
    def stats(self) -> IOStatistics:
        """Activity statistics of the current log."""
        if self._stats is None:
            self._require_mapping()
            self._stats = IOStatistics(self._log)
        return self._stats

    def _require_mapping(self) -> None:
        if self._log.mapping is None:
            raise MappingError(
                "no mapping applied; call .map(...) or .map_default()")

    def _invalidate(self) -> None:
        self._dfg = None
        self._stats = None

    # -- rendering -----------------------------------------------------------------

    def viewer(self, styler: Styler | None = None, *,
               show_ranks: bool = False,
               title: str | None = None) -> DFGViewer:
        """A viewer over the session's DFG; default styler shades by
        relative duration (the paper's Fig. 3/8 presentation)."""
        if styler is None:
            styler = StatisticsColoring(self.stats)
        return DFGViewer(self.dfg, self.stats, styler,
                         show_ranks=show_ranks, title=title)

    def render(self, fmt: str = "ascii", *,
               styler: Styler | None = None) -> str:
        """Shortcut: render the statistics-colored DFG."""
        return self.viewer(styler).render(fmt)

    def save(self, path: str | os.PathLike[str], *,
             styler: Styler | None = None) -> Path:
        """Render to a file (format from suffix)."""
        return self.viewer(styler).save(path)

    # -- comparison (Sec. IV-C) ---------------------------------------------------------

    def compare_cids(self, green: Iterable[str],
                     red: Iterable[str] | None = None) -> DFGViewer:
        """Partition-colored viewer: G = given cids, R = the rest (or
        the explicit ``red`` cids).

        This is the paper's Fig. 9 workflow in one call: partition the
        log, build both sub-DFGs, color exclusive elements green/red.
        """
        self._require_mapping()
        from repro.core.partition import partition_by_cid

        green_log, red_log = partition_by_cid(
            self._log, list(green),
            list(red) if red is not None else None)
        coloring = PartitionColoring(DFG(green_log), DFG(red_log),
                                     self.stats)
        return DFGViewer(self.dfg, self.stats, coloring)

    def timeline(self, activity: str, fmt: str = "ascii") -> str:
        """Fig. 5 timeline plot for one activity."""
        from repro.core.render.timeline import (
            render_timeline_ascii,
            render_timeline_svg,
        )
        rows = self.stats.timeline(activity)
        if fmt == "svg":
            return render_timeline_svg(rows, activity=activity)
        return render_timeline_ascii(rows, activity=activity)

    def profile(self, activity: str, fmt: str = "ascii") -> str:
        """Concurrency-over-time profile (mc_f explained visually)."""
        from repro.core.render.profile import (
            render_profile_ascii,
            render_profile_svg,
        )
        rows = self.stats.timeline(activity)
        if fmt == "svg":
            return render_profile_svg(rows, activity=activity)
        return render_profile_ascii(rows, activity=activity)

    def counters(self) -> str:
        """Darshan-style per-case counter table."""
        from repro.pipeline.counters import counters_report

        return counters_report(self._log)

    def html_report(self, path: str | os.PathLike[str], *,
                    title: str = "st_inspector report",
                    styler: Styler | None = None,
                    timeline_activities: list[str] | None = None) -> Path:
        """Write a standalone HTML report of the session state."""
        from repro.pipeline.html import save_html_report

        if styler is None:
            styler = StatisticsColoring(self.stats)
        return save_html_report(
            self._log, path, title=title, styler=styler,
            timeline_activities=timeline_activities)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"InspectionSession({self._log.n_events} events, "
                f"{self._log.n_cases} cases, "
                f"mapping={getattr(self._log.mapping, 'name', None)!r})")

"""Plain-text reports over event-logs and DFGs.

Darshan renders PDF summaries; our equivalent is terminal-friendly
text: a per-activity statistics table (the node annotations of Fig. 3a
in tabular form), a trace-variant listing (the multiset notation of
Sec. IV), and a green/red comparison summary (Sec. IV-C in words).
"""

from __future__ import annotations

from repro._util.sizes import format_bytes, format_rate
from repro.core.activity import ActivityLog
from repro.core.coloring import PartitionColoring
from repro.core.eventlog import EventLog
from repro.core.statistics import IOStatistics


def _table(headers: list[str], rows: list[list[str]]) -> str:
    """Fixed-width table with a separator rule."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells: list[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()
    rule = "  ".join("-" * w for w in widths)
    return "\n".join([fmt(headers), rule] + [fmt(r) for r in rows])


def activity_report(stats: IOStatistics, *, top: int | None = None) -> str:
    """Per-activity statistics table, heaviest (by rd_f) first."""
    activities = stats.activities()
    if top is not None:
        activities = activities[:top]
    rows = []
    for activity in activities:
        s = stats[activity]
        rows.append([
            activity.replace("\n", " "),
            str(s.event_count),
            f"{s.relative_duration:.3f}",
            format_bytes(s.total_bytes) if s.has_transfers else "-",
            (format_rate(s.process_data_rate)
             if s.process_data_rate is not None else "-"),
            str(s.max_concurrency),
            str(s.ranks),
            str(s.cases),
        ])
    header = ["activity", "events", "rel.dur", "bytes", "proc.rate",
              "max.conc", "ranks", "cases"]
    body = _table(header, rows)
    total = stats.total_duration_us / 1e6
    return (f"{body}\n\ntotal I/O time across activities: "
            f"{total:.3f} s ({len(stats)} activities)\n")


def variants_report(event_log: EventLog, *, top: int | None = 10) -> str:
    """Trace variants with multiplicities — the paper's multiset
    notation ``{⟨a,a,b⟩², ⟨a,c⟩}`` as a listing."""
    activity_log = ActivityLog.from_event_log(event_log)
    lines = [f"{activity_log.n_traces()} traces, "
             f"{activity_log.n_variants()} variants"]
    variants = activity_log.variants()
    if top is not None:
        variants = variants[:top]
    for trace, multiplicity in variants:
        shown = " -> ".join(a.replace("\n", " ") for a in trace[:8])
        if len(trace) > 8:
            shown += f" ... ({len(trace)} activities)"
        lines.append(f"  x{multiplicity:<4d} {shown}")
    return "\n".join(lines) + "\n"


def comparison_report(coloring: PartitionColoring,
                      stats: IOStatistics | None = None) -> str:
    """Sec. IV-C comparison in words: exclusive and shared elements.

    With statistics, each exclusive node also shows its load, giving
    the Fig. 9-style conclusion ("MPI-IO uses pwrite64 instead of
    write, with lower relative duration") directly.
    """
    summary = coloring.summary()
    stats = stats or coloring.stats

    def node_line(activity: str) -> str:
        label = activity.replace("\n", " ")
        if stats is not None and activity in stats:
            s = stats[activity]
            return f"    {label}  ({s.load_label})"
        return f"    {label}"

    lines = ["PARTITION COMPARISON (green = first subset exclusive, "
             "red = second subset exclusive)"]
    lines.append(f"  green-exclusive nodes ({len(summary['green_nodes'])}):")
    lines += [node_line(a) for a in summary["green_nodes"]] or ["    (none)"]
    lines.append(f"  red-exclusive nodes ({len(summary['red_nodes'])}):")
    lines += [node_line(a) for a in summary["red_nodes"]] or ["    (none)"]
    lines.append(
        f"  shared nodes: {len(summary['shared_nodes'])}; "
        f"green-exclusive edges: {len(summary['green_edges'])}; "
        f"red-exclusive edges: {len(summary['red_edges'])}; "
        f"shared edges: {len(summary['shared_edges'])}")
    return "\n".join(lines) + "\n"

"""Event-log validation: the preconditions Sec. III/IV assume.

The formalism quietly relies on well-formed inputs: unique events (the
no-``-f`` trap the paper discusses in Sec. IV), non-negative durations,
time-ordered cases, sizes only on transfer calls. Real traces violate
these in creative ways; :func:`validate_event_log` reports every
violation with enough context to find the offending records, instead of
letting them silently skew statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.core.event import check_event_uniqueness
from repro.core.frame import MISSING
from repro.strace.syscalls import is_transfer_call

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.eventlog import EventLog


@dataclass(frozen=True, slots=True)
class ValidationIssue:
    """One problem found in an event-log."""

    severity: str        #: "error" | "warning"
    rule: str            #: machine-readable rule id
    message: str         #: human-readable description

    def __str__(self) -> str:  # pragma: no cover - display helper
        return f"[{self.severity}] {self.rule}: {self.message}"


def validate_event_log(event_log: "EventLog",
                       *, check_uniqueness: bool = True,
                       ) -> list[ValidationIssue]:
    """Run every rule; returns an empty list for a clean log.

    Rules
    -----
    - ``duplicate-events`` (error): identical Eq. 1 tuples — the paper's
      Sec. IV uniqueness requirement (typically traces without ``-f``).
    - ``negative-duration`` (error): dur < 0 other than the missing
      sentinel.
    - ``unordered-case`` (error): events of a case not sorted by start
      (violates the case definition, Eq. 2).
    - ``size-on-non-transfer`` (warning): a size recorded for a call
      that is not a read/write variant (Sec. III item 6 says sizes are
      parsed only for transfer calls).
    - ``missing-duration`` (warning): events without ``-T`` data; they
      contribute zero to rd_f and cannot carry a data rate.
    - ``empty-log`` (warning): no events at all.
    """
    issues: list[ValidationIssue] = []
    frame = event_log.frame
    n = len(frame)
    if n == 0:
        return [ValidationIssue("warning", "empty-log",
                                "event-log contains no events")]

    dur = frame.column("dur")
    bad_dur = np.flatnonzero((dur < 0) & (dur != MISSING))
    if bad_dur.size:
        issues.append(ValidationIssue(
            "error", "negative-duration",
            f"{bad_dur.size} events with negative durations "
            f"(first at row {int(bad_dur[0])})"))

    missing_dur = int((dur == MISSING).sum())
    if missing_dur:
        issues.append(ValidationIssue(
            "warning", "missing-duration",
            f"{missing_dur} events lack a duration (-T not used?); "
            f"they contribute nothing to rd_f"))

    # Case ordering (Eq. 2).
    start = frame.column("start")
    pool = frame.pools.cases
    for case_code, rows in frame.case_slices():
        starts = start[rows]
        if (np.diff(starts) < 0).any():
            issues.append(ValidationIssue(
                "error", "unordered-case",
                f"case {pool.decode(case_code)!r} has events out of "
                f"start-time order"))

    # Sizes on non-transfer calls (Sec. III item 6).
    size = frame.column("size")
    call_pool = frame.pools.calls
    for code in np.unique(frame.column("call")):
        name = call_pool.decode(int(code))
        if is_transfer_call(name):
            continue
        mask = (frame.column("call") == code) & (size != MISSING)
        count = int(mask.sum())
        if count:
            issues.append(ValidationIssue(
                "warning", "size-on-non-transfer",
                f"{count} {name!r} events carry a transfer size; "
                f"the paper parses sizes only for read/write variants"))

    if check_uniqueness:
        duplicates = check_event_uniqueness(frame.iter_events())
        if duplicates:
            sample = duplicates[0]
            issues.append(ValidationIssue(
                "error", "duplicate-events",
                f"{len(duplicates)} duplicated event identities "
                f"(e.g. {sample!r}); traces recorded without -f?"))
    return issues


def validation_report(event_log: "EventLog") -> str:
    """Plain-text summary; 'OK' for a clean log."""
    issues = validate_event_log(event_log)
    if not issues:
        return (f"OK: {event_log.n_events} events in "
                f"{event_log.n_cases} cases, no issues\n")
    lines = [f"{len(issues)} issue(s) in {event_log.n_events} events:"]
    for issue in issues:
        lines.append(f"  [{issue.severity}] {issue.rule}: "
                     f"{issue.message}")
    return "\n".join(lines) + "\n"

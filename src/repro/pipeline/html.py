"""Self-contained HTML reports.

The related-work section of the paper points at Darshan's PDF summaries
and PyDarshan's interactive HTML reports as the established synthesis
outputs; this module provides that deliverable for the DFG methodology:
one static ``.html`` file embedding the rendered SVG graph, the
per-activity statistics table, the trace-variant listing, optional
timelines, and (for partitioned logs) the comparison summary — no
JavaScript dependencies, viewable offline.
"""

from __future__ import annotations

import html
import os
from pathlib import Path
from typing import TYPE_CHECKING

from repro._util.sizes import format_bytes, format_rate
from repro.core.activity import ActivityLog
from repro.core.coloring import PartitionColoring, Styler
from repro.core.dfg import DFG
from repro.core.render.svg import render_svg
from repro.core.render.timeline import render_timeline_svg
from repro.core.statistics import IOStatistics

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.eventlog import EventLog

_STYLE = """
body { font-family: -apple-system, 'Segoe UI', sans-serif;
       margin: 2rem auto; max-width: 1100px; color: #222; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem;
     border-bottom: 1px solid #ddd; padding-bottom: .3rem; }
table { border-collapse: collapse; font-size: .85rem; }
th, td { padding: .25rem .6rem; border: 1px solid #ddd;
         text-align: right; }
th:first-child, td:first-child { text-align: left; }
th { background: #f5f5f5; }
.graph { overflow-x: auto; border: 1px solid #eee; }
.tag-green { color: #1a7a1a; font-weight: 600; }
.tag-red { color: #b30000; font-weight: 600; }
code { background: #f6f6f6; padding: 0 .25rem; }
.meta { color: #666; font-size: .85rem; }
"""


def _esc(text: str) -> str:
    return html.escape(text.replace("\n", " "))


def _stats_table(stats: IOStatistics, top: int | None = None) -> str:
    rows = []
    activities = stats.activities()
    if top is not None:
        activities = activities[:top]
    for activity in activities:
        s = stats[activity]
        rows.append(
            "<tr><td>{a}</td><td>{n}</td><td>{rd:.3f}</td><td>{b}</td>"
            "<td>{r}</td><td>{mc}</td><td>{ranks}</td><td>{cases}</td>"
            "</tr>".format(
                a=_esc(activity), n=s.event_count,
                rd=s.relative_duration,
                b=format_bytes(s.total_bytes) if s.has_transfers else "–",
                r=(format_rate(s.process_data_rate)
                   if s.process_data_rate is not None else "–"),
                mc=s.max_concurrency, ranks=s.ranks, cases=s.cases))
    return (
        "<table><thead><tr><th>activity</th><th>events</th>"
        "<th>rel. dur</th><th>bytes</th><th>proc. rate</th>"
        "<th>max conc.</th><th>ranks</th><th>cases</th></tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table>")


def _variants_section(event_log: "EventLog", top: int = 10) -> str:
    activity_log = ActivityLog.from_event_log(event_log)
    items = []
    for trace, multiplicity in activity_log.variants()[:top]:
        shown = " → ".join(_esc(a) for a in trace[:8])
        if len(trace) > 8:
            shown += f" … ({len(trace)} activities)"
        items.append(f"<li><b>×{multiplicity}</b> {shown}</li>")
    return (
        f"<p class='meta'>{activity_log.n_traces()} traces, "
        f"{activity_log.n_variants()} variants</p>"
        f"<ul>{''.join(items)}</ul>")


def _comparison_section(coloring: PartitionColoring) -> str:
    summary = coloring.summary()

    def listing(names, css):
        if not names:
            return "<i>(none)</i>"
        return ", ".join(
            f"<span class='{css}'>{_esc(n)}</span>" for n in names)

    return (
        "<p><b>green-exclusive nodes:</b> "
        f"{listing(summary['green_nodes'], 'tag-green')}</p>"
        "<p><b>red-exclusive nodes:</b> "
        f"{listing(summary['red_nodes'], 'tag-red')}</p>"
        f"<p class='meta'>shared nodes: {len(summary['shared_nodes'])} "
        f"· green edges: {len(summary['green_edges'])} "
        f"· red edges: {len(summary['red_edges'])} "
        f"· shared edges: {len(summary['shared_edges'])}</p>")


def render_html_report(
    event_log: "EventLog",
    *,
    title: str = "st_inspector report",
    styler: Styler | None = None,
    timeline_activities: list[str] | None = None,
    top_variants: int = 10,
) -> str:
    """Render a full standalone HTML report for a mapped event-log.

    If ``styler`` is a :class:`PartitionColoring`, a comparison section
    is included automatically.
    """
    dfg = DFG(event_log)
    stats = IOStatistics(event_log)
    svg = render_svg(dfg, stats, styler)
    parts = [
        "<!DOCTYPE html><html><head><meta charset='utf-8'>",
        f"<title>{_esc(title)}</title><style>{_STYLE}</style></head>",
        "<body>",
        f"<h1>{_esc(title)}</h1>",
        f"<p class='meta'>{event_log.n_events} events · "
        f"{event_log.n_cases} cases · cids: "
        f"{_esc(', '.join(event_log.cids()))} · mapping: "
        f"<code>{_esc(getattr(event_log.mapping, 'name', '?'))}</code>"
        "</p>",
        "<h2>Directly-Follows Graph</h2>",
        f"<div class='graph'>{svg}</div>",
        "<h2>Activity statistics</h2>",
        _stats_table(stats),
        "<h2>Trace variants</h2>",
        _variants_section(event_log, top_variants),
    ]
    if isinstance(styler, PartitionColoring):
        parts.append("<h2>Partition comparison</h2>")
        parts.append(_comparison_section(styler))
    for activity in timeline_activities or []:
        if activity in stats:
            parts.append(f"<h2>Timeline: {_esc(activity)}</h2>")
            parts.append(render_timeline_svg(
                stats.timeline(activity), activity=activity))
    parts.append("</body></html>")
    return "\n".join(parts)


def save_html_report(
    event_log: "EventLog",
    path: str | os.PathLike[str],
    **kwargs,
) -> Path:
    """Render and write the report; returns the path."""
    out = Path(path)
    out.write_text(render_html_report(event_log, **kwargs),
                   encoding="utf-8")
    return out

"""End-to-end orchestration: sessions, queries, reports.

- :class:`~repro.pipeline.session.InspectionSession` — one object from
  trace directory (or ``.elog`` store) to rendered, colored DFG; the
  programmatic equivalent of the paper's Fig. 6 listing.
- :mod:`repro.pipeline.query` — composable event-log filters.
- :mod:`repro.pipeline.report` — plain-text activity/statistics/
  comparison reports for terminals and CI logs.
"""

from repro.pipeline.session import InspectionSession
from repro.pipeline.query import Query
from repro.pipeline.report import (
    activity_report,
    comparison_report,
    variants_report,
)
from repro.pipeline.html import render_html_report, save_html_report
from repro.pipeline.counters import (
    CaseCounters,
    case_counters,
    counters_report,
)

__all__ = [
    "CaseCounters",
    "case_counters",
    "counters_report",
    "InspectionSession",
    "Query",
    "activity_report",
    "comparison_report",
    "variants_report",
    "render_html_report",
    "save_html_report",
]

#!/usr/bin/env python3
"""Live alerting: watch a growing trace directory with a rules file.

Simulates an IOR run, reveals its strace files to a watcher in
increments (the way a running job's traces grow), and evaluates a
declarative rules file after every poll — exactly what
``st-inspector watch traces/ --rules rules.toml`` does, driven here
through the library so the growth can be scripted.

Rules demonstrated:

- ``new_edge`` with ``absent_from_baseline``: page only on
  directly-follows relations a known-good baseline run (here: a plain
  ``ls`` workload) never produced;
- ``stat_threshold``: page when an activity's ``event_count`` passes a
  bound (any Sec. IV-B metric works: ``process_data_rate < 1e6``, ...);
- ``watermark_age``: page when a file's sealing starves behind an
  unfinished syscall.

The script exits non-zero if no alert fires — CI runs it, so the
example cannot rot.

Run:
    python examples/live_alerting.py [output-dir]
"""

import sys
import tempfile
from pathlib import Path

from repro.alerts import AlertEngine
from repro.live import LiveIngest
from repro.simulate.strace_writer import (
    EXPERIMENT_A_CALLS,
    write_trace_files,
)
from repro.simulate.workloads.ior import IORConfig, simulate_ior

RULES_TOML = """\
baseline = "sim:ls"

[sinks]
stderr = true

[[rule]]
name = "not-in-baseline"
type = "new_edge"
absent_from_baseline = true

[[rule]]
name = "busy-activity"
type = "stat_threshold"
metric = "event_count"
op = ">"
value = 20

[[rule]]
name = "sealing-starved"
type = "watermark_age"
max_age = 5.0
"""


def main() -> int:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else \
        Path(tempfile.mkdtemp(prefix="st-inspector-alerting-"))
    trace_dir = out_dir / "traces"
    trace_dir.mkdir(parents=True, exist_ok=True)

    rules_path = out_dir / "rules.toml"
    rules_path.write_text(RULES_TOML)
    print(f"rules file: {rules_path}\n")

    # Render a small IOR run to trace bytes (with unfinished/resumed
    # splits, as real strace output has).
    result = simulate_ior(IORConfig(ranks=4, ranks_per_node=2,
                                    segments=2, cid="ior", seed=7))
    with tempfile.TemporaryDirectory() as scratch:
        paths = write_trace_files(result.recorders, scratch,
                                  trace_calls=EXPERIMENT_A_CALLS,
                                  unfinished_probability=0.2, seed=7)
        file_bytes = {path.name: path.read_bytes() for path in paths}

    # The watcher: rules attached to the engine so a --checkpoint
    # sidecar would persist latches and history too.
    alerts = AlertEngine.from_rules_file(rules_path)
    engine = LiveIngest(trace_dir, alerts=alerts, keep_records=False)

    # Reveal each file in two halves, polling in between — six
    # refreshes of a growing directory.
    for cut in (0.5, 1.0):
        for name, content in sorted(file_bytes.items()):
            upto = int(len(content) * cut)
            with open(trace_dir / name, "ab") as handle:
                written = (trace_dir / name).stat().st_size
                handle.write(content[written:upto])
            fired = alerts.evaluate(engine, engine.poll())
            for alert in fired:
                print(f"  poll {alert.n_poll}: {alert.render_line()}")

    fired = alerts.evaluate(engine, engine.finalize())
    for alert in fired:
        print(f"  finalize: {alert.render_line()}")

    by_rule = {}
    for alert in alerts.history:
        by_rule.setdefault(alert.rule, []).append(alert)
    print(f"\n{alerts.n_fired} alert(s) from {len(by_rule)} rule(s):")
    for rule, fired in sorted(by_rule.items()):
        print(f"  [{rule}] x{len(fired)}, e.g. {fired[0].message}")

    if not alerts.n_fired:
        print("error: expected the IOR run to trip the rules",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

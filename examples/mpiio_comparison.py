#!/usr/bin/env python3
"""Experiment B of the paper: IOR with vs without the MPI-IO interface.

Both runs use a single shared file; the runs do **not** use distinct
paths, so statistics-based coloring cannot tell them apart — this is
exactly the situation partition-based coloring (Sec. IV-C) solves:

- green: nodes/edges occurring only in the MPI-IO run
  (``pread64``/``pwrite64`` — the interface folds the seek into the
  call);
- red: only in the POSIX run (``read``/``write`` and the per-transfer
  ``lseek`` edges);
- uncolored: shared behaviour (startup I/O, the probe lseek).

Run (a few seconds):
    python examples/mpiio_comparison.py [--ranks N] [output-dir]
"""

import argparse
import sys
import tempfile
from pathlib import Path

from repro import (
    DFG,
    DFGViewer,
    EventLog,
    IOStatistics,
    PartitionColoring,
    PartitionEL,
    SiteVariables,
)
from repro.pipeline.report import comparison_report
from repro.simulate.strace_writer import (
    EXPERIMENT_B_CALLS,
    write_trace_files,
)
from repro.simulate.workloads.ior import (
    IORConfig,
    JUWELS_SITE_VARIABLES,
    simulate_ior,
)


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("output", nargs="?", default=None)
    parser.add_argument("--ranks", type=int, default=96)
    parser.add_argument("--ranks-per-node", type=int, default=48)
    args = parser.parse_args()
    out_dir = Path(args.output) if args.output else \
        Path(tempfile.mkdtemp(prefix="st-inspector-mpiio-"))
    trace_dir = out_dir / "traces"

    print(f"simulating IOR SSF: POSIX then MPI-IO ({args.ranks} ranks)")
    posix = simulate_ior(IORConfig(
        ranks=args.ranks, ranks_per_node=args.ranks_per_node,
        cid="posix", test_file="/p/scratch/ssf/test", seed=5))
    mpiio = simulate_ior(IORConfig(
        ranks=args.ranks, ranks_per_node=args.ranks_per_node,
        cid="mpiio", api="mpiio", test_file="/p/scratch/ssf/test2",
        base_rid=40000, seed=6))
    print(f"  POSIX:  {posix.total_syscalls():6d} syscalls, "
          f"makespan {posix.makespan_us / 1e6:.2f} s")
    print(f"  MPI-IO: {mpiio.total_syscalls():6d} syscalls, "
          f"makespan {mpiio.makespan_us / 1e6:.2f} s\n")

    # Experiment B traces lseek in addition (Sec. V-B).
    write_trace_files(posix.recorders, trace_dir,
                      trace_calls=EXPERIMENT_B_CALLS)
    write_trace_files(mpiio.recorders, trace_dir,
                      trace_calls=EXPERIMENT_B_CALLS)

    log = EventLog.from_source(trace_dir)
    # "we skip the rendering of openat calls in Figure 9"
    log = log.filtered(~log.frame.call_in(["openat", "open"]))
    log.apply_mapping_fn(SiteVariables(JUWELS_SITE_VARIABLES))
    stats = IOStatistics(log)

    # Partition: green = the MPI-IO run, red = the POSIX run.
    green_log, red_log = PartitionEL(log, ["mpiio"])
    coloring = PartitionColoring(DFG(green_log), DFG(red_log), stats)
    print(comparison_report(coloring, stats))

    viewer = DFGViewer(DFG(log), stats, coloring)
    print(viewer.render("ascii"))
    viewer.save(out_dir / "fig9.svg")
    viewer.save(out_dir / "fig9.dot")

    green_lseeks = int(green_log.frame.call_in(["lseek"]).sum())
    red_lseeks = int(red_log.frame.call_in(["lseek"]).sum())
    print(f"lseek calls: POSIX {red_lseeks} vs MPI-IO {green_lseeks} "
          f"— {red_lseeks / max(green_lseeks, 1):.0f}x reduction "
          f"(paper: 'significantly lower ... with MPI-IO')")
    print(f"\nartifacts in {out_dir}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

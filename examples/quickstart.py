#!/usr/bin/env python3
"""Quickstart: from strace text to a statistics-colored DFG.

Recreates the paper's introductory example (Fig. 1-3): trace ``ls`` and
``ls -l`` under three MPI ranks each, synthesize the combined DFG with
the f̂ mapping (syscall + top-2 directories), annotate it with the
Load/DR statistics of Sec. IV-B, and render it.

Run:
    python examples/quickstart.py [output-dir]
"""

import sys
import tempfile
from pathlib import Path

from repro import (
    DFG,
    CallTopDirs,
    DFGViewer,
    EventLog,
    IOStatistics,
    StatisticsColoring,
)
from repro.simulate.workloads.ls import generate_fig1_traces


def main() -> int:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else \
        Path(tempfile.mkdtemp(prefix="st-inspector-quickstart-"))
    trace_dir = out_dir / "traces"

    # 1. Produce the six trace files of the paper's Fig. 1
    #    (a_host1_{9042,9043,9045}.st for `ls`, b_... for `ls -l`).
    #    With real programs this step is:
    #    srun -n 3 strace -o a_$(hostname)_$$.st -f -e read,write \
    #        -tt -T -y ls
    generate_fig1_traces(trace_dir)
    print(f"traces written to {trace_dir}\n")

    # 2. Build the event-log (one case per trace file, Sec. IV).
    #    from_source accepts bare paths and scheme URIs alike
    #    ("strace:...", "elog:...", "csv:...", "sim:...").
    event_log = EventLog.from_source(trace_dir)
    print(f"event-log: {event_log.n_events} events in "
          f"{event_log.n_cases} cases ({', '.join(event_log.cids())})\n")

    # 3. Apply the paper's f̂ mapping: activity = call + top-2 dirs.
    event_log.apply_mapping_fn(CallTopDirs(levels=2))

    # 4. Synthesize the DFG and the per-activity statistics.
    dfg = DFG(event_log)
    stats = IOStatistics(event_log)

    # 5. Render: terminal view now, DOT + SVG artifacts on disk.
    viewer = DFGViewer(dfg, stats, StatisticsColoring(stats))
    print(viewer.render("ascii"))
    dot_path = viewer.save(out_dir / "ls_dfg.dot")
    svg_path = viewer.save(out_dir / "ls_dfg.svg")
    print(f"wrote {dot_path}\nwrote {svg_path}")
    print("(render the .dot with graphviz, or open the .svg directly)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Writing custom mappings and queries: the DFG as an interactive lens.

The paper stresses that "the DFG is a response to a query applied
through f on the event-log" — shifting the mapping shifts the focus.
This example runs four different lenses over the same IOR trace set:

1. f̂ (call + top-2 dirs)       — the default overview;
2. call-only                    — how many syscalls of each kind;
3. a regex mapping by file kind — group .so probes vs data files;
4. a hand-written partial mapping — only 1 MiB data transfers, labeled
   by direction, everything else excluded.

Run:
    python examples/custom_mapping.py
"""

import sys
import tempfile
from pathlib import Path

from repro import (
    DFG,
    CallOnly,
    CallTopDirs,
    EventLog,
    IOStatistics,
    RegexMapping,
)
from repro.pipeline.query import Query
from repro.pipeline.report import activity_report, variants_report
from repro.simulate.strace_writer import (
    EXPERIMENT_A_CALLS,
    write_trace_files,
)
from repro.simulate.workloads.ior import IORConfig, simulate_ior


def main() -> int:
    trace_dir = Path(tempfile.mkdtemp(prefix="st-inspector-map-"))
    result = simulate_ior(IORConfig(
        ranks=8, ranks_per_node=4, segments=2, cid="demo"))
    write_trace_files(result.recorders, trace_dir,
                      trace_calls=EXPERIMENT_A_CALLS)
    base = EventLog.from_source(trace_dir)
    print(f"event-log: {base.n_events} events, {base.n_cases} cases\n")

    # -- lens 1: the paper's default f̂ ---------------------------------
    lens1 = base.with_mapping(CallTopDirs(levels=2))
    print("=== lens 1: call + top-2 directories (f̂) ===")
    print(activity_report(IOStatistics(lens1), top=6))

    # -- lens 2: syscall kinds only -------------------------------------
    lens2 = base.with_mapping(CallOnly())
    print("=== lens 2: syscall names only ===")
    print(variants_report(lens2, top=3))

    # -- lens 3: regex over the path ------------------------------------
    # Classify shared-object accesses by suffix; everything else is
    # excluded (the regex makes the mapping partial).
    by_kind = RegexMapping(r"(\.so[.\d]*)$", "{call}:shared-object")
    lens3 = base.with_mapping(by_kind)
    print("=== lens 3: only shared-object accesses (regex, partial) ===")
    print(activity_report(IOStatistics(lens3)))

    # -- lens 4: hand-written partial mapping ---------------------------
    def big_transfers(event) -> str | None:
        if event["size"] != 1 << 20:
            return None  # exclude everything but the 1 MiB data ops
        direction = "ingest" if event["call"] == "read" else "egest"
        return f"{direction}:1MiB"

    lens4 = base.with_mapping(big_transfers)
    dfg = DFG(lens4)
    print("=== lens 4: 1 MiB transfers by direction ===")
    print(activity_report(IOStatistics(lens4)))
    print(f"egest self-loop weight: "
          f"{dfg.edge_count('egest:1MiB', 'egest:1MiB')}")
    print(f"egest -> ingest transitions: "
          f"{dfg.edge_count('egest:1MiB', 'ingest:1MiB')}")

    # -- queries compose with lenses -------------------------------------
    scratch_reads = Query().fp_contains("/p/scratch").calls("read")
    narrowed = scratch_reads.apply(base).with_mapping(CallTopDirs())
    print(f"query [{scratch_reads.describe()}] -> "
          f"{narrowed.n_events} events, "
          f"activities {narrowed.activities()}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

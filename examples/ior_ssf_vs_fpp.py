#!/usr/bin/env python3
"""Experiment A of the paper: single shared file vs file per process.

Simulates the paper's Fig. 7b IOR runs (96 MPI ranks over 2 nodes,
``-t 1m -b 16m -s 3 -w -r -C -e``, once in SSF mode and once with
``-F``), writes strace-format traces, and walks the Sec. V-A analysis:

1. synthesize the DFG over *all* events with the site-variable mapping
   f̄ → the $SCRATCH openat/write nodes dominate (Fig. 8a);
2. filter to $SCRATCH and re-map with one extra path level → the
   contention is attributable to the ssf/ directory (Fig. 8b).

Run (a few seconds):
    python examples/ior_ssf_vs_fpp.py [--ranks N] [output-dir]
"""

import argparse
import sys
import tempfile
from pathlib import Path

from repro import (
    DFG,
    DFGViewer,
    EventLog,
    IOStatistics,
    SiteVariables,
    StatisticsColoring,
)
from repro.pipeline.report import activity_report
from repro.simulate.strace_writer import (
    EXPERIMENT_A_CALLS,
    write_trace_files,
)
from repro.simulate.workloads.ior import (
    IORConfig,
    JUWELS_SITE_VARIABLES,
    simulate_ior,
)


def main() -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("output", nargs="?", default=None)
    parser.add_argument("--ranks", type=int, default=96)
    parser.add_argument("--ranks-per-node", type=int, default=48)
    args = parser.parse_args()
    out_dir = Path(args.output) if args.output else \
        Path(tempfile.mkdtemp(prefix="st-inspector-ior-"))
    trace_dir = out_dir / "traces"

    # --- simulate both IOR runs (the paper's Fig. 7b commands) -------
    print(f"simulating IOR: {args.ranks} ranks, SSF then FPP ...")
    ssf = simulate_ior(IORConfig(
        ranks=args.ranks, ranks_per_node=args.ranks_per_node,
        cid="ssf", test_file="/p/scratch/ssf/test"))
    fpp = simulate_ior(IORConfig(
        ranks=args.ranks, ranks_per_node=args.ranks_per_node,
        cid="fpp", file_per_process=True,
        test_file="/p/scratch/fpp/test", base_rid=30000, seed=77))
    print(f"  SSF makespan {ssf.makespan_us / 1e6:6.2f} s, "
          f"{ssf.total_syscalls()} syscalls, "
          f"{ssf.fs.conflict_stalls} write-token conflicts")
    print(f"  FPP makespan {fpp.makespan_us / 1e6:6.2f} s, "
          f"{fpp.total_syscalls()} syscalls, "
          f"{fpp.fs.conflict_stalls} write-token conflicts\n")

    # strace -e trace=read,write,openat (variants), as in Sec. V-A.
    write_trace_files(ssf.recorders, trace_dir,
                      trace_calls=EXPERIMENT_A_CALLS)
    write_trace_files(fpp.recorders, trace_dir,
                      trace_calls=EXPERIMENT_A_CALLS)

    # --- Fig. 8a: all events, site-variable mapping -------------------
    log = EventLog.from_source(trace_dir)
    log.apply_mapping_fn(SiteVariables(JUWELS_SITE_VARIABLES))
    stats = IOStatistics(log)
    print("=== Fig. 8a — full DFG statistics (all events) ===")
    print(activity_report(stats, top=8))
    DFGViewer(DFG(log), stats, StatisticsColoring(stats)).save(
        out_dir / "fig8a.svg")

    # --- Fig. 8b: restrict to $SCRATCH, one more path level ----------
    scratch = EventLog.from_source(trace_dir)
    scratch.apply_fp_filter("/p/scratch")
    scratch.apply_mapping_fn(
        SiteVariables(JUWELS_SITE_VARIABLES, extra_levels=1))
    scratch_stats = IOStatistics(scratch)
    print("=== Fig. 8b — $SCRATCH only, ssf vs fpp paths ===")
    print(activity_report(scratch_stats))
    DFGViewer(DFG(scratch), scratch_stats,
              StatisticsColoring(scratch_stats)).save(
        out_dir / "fig8b.svg")

    ssf_write = scratch_stats["write:$SCRATCH/ssf"]
    fpp_write = scratch_stats["write:$SCRATCH/fpp"]
    print("conclusion (paper Sec. V-A): openat+write on the shared "
          "file dominate —")
    print(f"  rd(write ssf) = {ssf_write.relative_duration:.2f} vs "
          f"rd(write fpp) = {fpp_write.relative_duration:.2f}; "
          f"per-process rate {ssf_write.process_data_rate / 1e6:.0f} "
          f"vs {fpp_write.process_data_rate / 1e6:.0f} MB/s")
    print(f"\nartifacts in {out_dir}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Analyzing a checkpoint/restart workload — the paper's future work.

The paper's conclusion plans to "apply our technique to typical HPC
workloads"; periodic checkpointing is the canonical one. This example
simulates a 4-step checkpoint/restart run, then uses the full toolbox:

- the DFG shows the cyclic open → write → fsync → close burst
  structure, which :func:`find_cycles` extracts programmatically;
- the dominant path summarizes what a typical rank does, in order;
- variant coverage shows rank 0 behaving differently (it writes the
  per-step manifests) — exactly the heterogeneity partition-based
  comparison is for;
- re-running with a *shared* checkpoint file brings back the paper's
  SSF token contention, visible as a load shift in the stats table.

Run:
    python examples/checkpoint_analysis.py
"""

import sys
import tempfile
from pathlib import Path

from repro import (
    DFG,
    CallTopDirs,
    DFGViewer,
    EventLog,
    IOStatistics,
    StatisticsColoring,
)
from repro.core.analysis import (
    dominant_path,
    find_cycles,
    variant_coverage,
)
from repro.pipeline.report import activity_report
from repro.simulate.strace_writer import write_trace_files
from repro.simulate.workloads.checkpoint import (
    CheckpointConfig,
    simulate_checkpoint,
)


def build_log(shared_file: bool, label: str) -> EventLog:
    result = simulate_checkpoint(CheckpointConfig(
        ranks=16, ranks_per_node=8, steps=4, shared_file=shared_file,
        cid=label, seed=11))
    directory = Path(tempfile.mkdtemp(prefix=f"ckpt-{label}-"))
    write_trace_files(result.recorders, directory)
    print(f"{label}: {result.total_syscalls()} syscalls, makespan "
          f"{result.makespan_us / 1e6:.3f} s, "
          f"{result.fs.conflict_stalls} token conflicts")
    log = EventLog.from_source(directory)
    log.apply_mapping_fn(CallTopDirs(levels=4))
    return log


def main() -> int:
    print("simulating checkpoint/restart (file-per-rank shards) ...")
    log = build_log(shared_file=False, label="fpp")
    dfg = DFG(log)
    stats = IOStatistics(log)

    print("\n=== activity statistics ===")
    print(activity_report(stats))

    print("=== burst structure ===")
    for cycle in find_cycles(dfg)[:3]:
        print("  cycle:", " -> ".join(cycle))
    print("  dominant path:",
          " -> ".join(dominant_path(dfg)))

    print("\n=== heterogeneity (rank 0 writes manifests) ===")
    for k, coverage in variant_coverage(log):
        print(f"  top-{k} variants cover {coverage:.0%} of ranks")

    print("\nre-running with ONE SHARED checkpoint file per step ...")
    shared_log = build_log(shared_file=True, label="shared")
    shared_stats = IOStatistics(shared_log)
    fpp_write = stats["write:/p/scratch/app/ckpt"]
    shared_write = shared_stats["write:/p/scratch/app/ckpt"]
    print(f"  write rd: shards {fpp_write.relative_duration:.2f} vs "
          f"shared {shared_write.relative_duration:.2f}")
    print(f"  write rate: shards "
          f"{fpp_write.process_data_rate / 1e6:.0f} MB/s vs shared "
          f"{shared_write.process_data_rate / 1e6:.0f} MB/s")
    print("  (the SSF contention of the paper's Fig. 8, reproduced on "
          "a realistic workload)")

    out = Path(tempfile.mkdtemp(prefix="ckpt-dfg-")) / "checkpoint.svg"
    DFGViewer(dfg, stats, StatisticsColoring(stats)).save(out)
    print(f"\nDFG written to {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

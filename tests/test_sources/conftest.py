"""Fixtures for the trace-source suite."""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.core.frame import COLUMN_ORDER


@pytest.fixture(scope="session")
def ls_traces(tmp_path_factory) -> Path:
    """The Fig. 1 six-trace directory (3× ``ls``, 3× ``ls -l``)."""
    from repro.simulate.workloads.ls import generate_fig1_traces

    directory = tmp_path_factory.mktemp("sources") / "traces"
    generate_fig1_traces(directory)
    return directory


@pytest.fixture(scope="session")
def ls_store(ls_traces, tmp_path_factory) -> Path:
    """The same run packed into an ``.elog`` container."""
    from repro.elstore.convert import convert_strace_dir

    return convert_strace_dir(
        ls_traces, tmp_path_factory.mktemp("sources_store") / "ls.elog")


@pytest.fixture()
def logs_identical():
    """Byte-identity assertion: every column array and string pool."""

    def check(one, other) -> None:
        assert len(one.frame) == len(other.frame)
        for column in COLUMN_ORDER:
            assert np.array_equal(one.frame.column(column),
                                  other.frame.column(column)), column
        for name in ("case", "cid", "host", "call", "fp", "activity"):
            assert (list(one.frame.pools.pool_for(name))
                    == list(other.frame.pools.pool_for(name))), name

    return check

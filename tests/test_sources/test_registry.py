"""URI grammar, registry resolution, autodetection, capability flags."""

from __future__ import annotations

import pytest

from repro._util.errors import SourceError, TraceParseError
from repro.sources import (
    CsvLogSource,
    ElstoreSource,
    SimulationSource,
    StraceDirSource,
    TraceSource,
    UnsupportedSourceOptionWarning,
    open_source,
    parse_source_spec,
    register_source,
    registered_schemes,
)


class TestSpecParsing:
    def test_bare_path_has_no_scheme(self):
        spec = parse_source_spec("traces/")
        assert spec.scheme is None
        assert spec.target == "traces/"

    def test_scheme_and_target(self):
        spec = parse_source_spec("strace:traces/")
        assert spec.scheme == "strace"
        assert spec.target == "traces/"
        assert spec.options == {}

    def test_query_options(self):
        spec = parse_source_spec("sim:ior?ranks=4&fpp=1&api=posix")
        assert spec.scheme == "sim"
        assert spec.target == "ior"
        assert spec.options == {"ranks": "4", "fpp": "1", "api": "posix"}

    def test_scheme_is_case_insensitive(self):
        assert parse_source_spec("ELOG:x.elog").scheme == "elog"

    def test_question_mark_in_bare_path_is_not_query(self):
        spec = parse_source_spec("odd?name")
        assert spec.scheme is None
        assert spec.target == "odd?name"

    def test_single_letter_prefix_is_a_path(self):
        # Keeps Windows-style drive paths (and one-letter names with a
        # colon) out of the scheme grammar.
        assert parse_source_spec("c:whatever").scheme is None

    def test_malformed_option_rejected(self):
        with pytest.raises(SourceError, match="key=value"):
            parse_source_spec("sim:ior?ranks")

    def test_duplicate_option_rejected(self):
        with pytest.raises(SourceError, match="duplicate"):
            parse_source_spec("sim:ior?ranks=1&ranks=2")


class TestResolution:
    def test_directory_autodetects_to_strace(self, ls_traces):
        assert isinstance(open_source(str(ls_traces)), StraceDirSource)

    def test_trailing_slash_directory(self, ls_traces):
        source = open_source(str(ls_traces) + "/")
        assert isinstance(source, StraceDirSource)
        assert source.event_log().n_cases == 6

    def test_pathlike_accepted(self, ls_traces):
        assert isinstance(open_source(ls_traces), StraceDirSource)

    def test_elog_file_autodetects_to_store(self, ls_store):
        assert isinstance(open_source(str(ls_store)), ElstoreSource)

    def test_csv_suffix_autodetects(self, tmp_path):
        path = tmp_path / "events.csv"
        path.write_text("cid,host,rid,pid,call,start,dur,fp,size\n")
        assert isinstance(open_source(str(path)), CsvLogSource)

    def test_explicit_schemes(self, ls_traces, ls_store, tmp_path):
        csv_path = tmp_path / "x.csv"
        csv_path.write_text("cid,host,rid,pid,call,start,dur,fp,size\n")
        assert isinstance(open_source(f"strace:{ls_traces}"),
                          StraceDirSource)
        assert isinstance(open_source(f"elog:{ls_store}"), ElstoreSource)
        assert isinstance(open_source(f"csv:{csv_path}"), CsvLogSource)
        assert isinstance(open_source("sim:ls"), SimulationSource)

    def test_unknown_scheme_names_known_ones(self, tmp_path):
        with pytest.raises(SourceError) as exc:
            open_source("bogus:whatever")
        message = str(exc.value)
        assert "unknown source scheme 'bogus'" in message
        for scheme in registered_schemes():
            assert f"{scheme}:" in message

    def test_missing_path_is_a_clear_error(self, tmp_path):
        with pytest.raises(SourceError, match="source not found"):
            open_source(str(tmp_path / "nope"))

    def test_existing_file_with_colon_in_name(self, tmp_path):
        # A real file whose name merely looks scheme-prefixed must
        # still resolve by autodetection.
        path = tmp_path / "odd:name.csv"
        path.write_text("cid,host,rid,pid,call,start,dur,fp,size\n")
        assert isinstance(open_source(str(path)), CsvLogSource)

    def test_empty_directory_fails_at_event_log(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        source = open_source(str(empty))
        with pytest.raises(TraceParseError, match="no .st trace files"):
            source.event_log()

    def test_mixed_directory_ignores_non_st_files(self, ls_traces,
                                                  ls_store, tmp_path):
        mixed = tmp_path / "mixed"
        mixed.mkdir()
        for trace in ls_traces.glob("*.st"):
            (mixed / trace.name).write_bytes(trace.read_bytes())
        (mixed / "run.elog").write_bytes(ls_store.read_bytes())
        (mixed / "notes.txt").write_text("not a trace\n")
        log = open_source(str(mixed)).event_log()
        assert log.n_cases == 6

    def test_scheme_with_stray_options_rejected(self, ls_traces):
        with pytest.raises(SourceError, match="takes no .options"):
            open_source(f"strace:{ls_traces}?x=1")


class TestCapabilityFlags:
    def test_strace_dir_capabilities(self, ls_traces):
        source = open_source(str(ls_traces))
        assert source.supports_workers
        assert source.supports_recursive
        assert source.supports_tail

    def test_workers_on_strace_dir_does_not_warn(self, ls_traces,
                                                 recwarn):
        open_source(str(ls_traces), workers=2)
        assert not [w for w in recwarn.list if issubclass(
            w.category, UnsupportedSourceOptionWarning)]

    @pytest.mark.parametrize("fixture,scheme", [
        ("ls_store", "elog"),
    ])
    def test_workers_on_store_warns(self, fixture, scheme, request):
        path = request.getfixturevalue(fixture)
        with pytest.warns(UnsupportedSourceOptionWarning,
                          match="workers=4 ignored"):
            open_source(f"{scheme}:{path}", workers=4)

    def test_workers_on_sim_warns(self):
        with pytest.warns(UnsupportedSourceOptionWarning,
                          match="workers=2 ignored"):
            open_source("sim:ls", workers=2)

    def test_workers_one_never_warns(self, ls_store, recwarn):
        # 1 = "sequential", which every source trivially satisfies.
        open_source(f"elog:{ls_store}", workers=1)
        assert not [w for w in recwarn.list if issubclass(
            w.category, UnsupportedSourceOptionWarning)]

    def test_recursive_on_store_warns(self, ls_store):
        with pytest.warns(UnsupportedSourceOptionWarning,
                          match="recursive=True ignored"):
            open_source(f"elog:{ls_store}", recursive=True)


class TestRegistration:
    def test_register_duplicate_rejected(self):
        with pytest.raises(SourceError, match="already registered"):
            register_source("strace", StraceDirSource.from_uri)

    def test_register_invalid_scheme_rejected(self):
        with pytest.raises(SourceError, match="invalid scheme"):
            register_source("9bad", StraceDirSource.from_uri)

    def test_third_party_scheme_plugs_in(self, ls_traces):
        class EchoSource(StraceDirSource):
            scheme = "echotest"

        register_source("echotest", EchoSource.from_uri, replace=True)
        try:
            source = open_source(f"echotest:{ls_traces}")
            assert isinstance(source, EchoSource)
            assert isinstance(source, TraceSource)
            assert source.event_log().n_cases == 6
        finally:
            from repro.sources import registry

            registry._REGISTRY.pop("echotest", None)


class TestReviewRegressions:
    """Pinned fixes from the redesign's review pass."""

    def test_in_place_convert_refused_not_destroyed(self, ls_store,
                                                    tmp_path):
        """convert elog:x.elog x.elog must refuse, not truncate+delete
        the input."""
        from repro.elstore.convert import convert_source

        target = tmp_path / "run.elog"
        target.write_bytes(ls_store.read_bytes())
        before = target.read_bytes()
        with pytest.raises(SourceError, match="destroy the input"):
            convert_source(f"elog:{target}", target)
        assert target.read_bytes() == before  # input untouched

    def test_in_place_csv_convert_refused(self, tmp_path):
        from repro.elstore.convert import convert_source

        path = tmp_path / "log.csv"
        path.write_text("cid,host,rid,pid,call,start,dur,fp,size\n"
                        "x,h1,1,5,read,100,50,/f,10\n")
        with pytest.raises(SourceError, match="destroy the input"):
            convert_source(str(path), path)
        assert path.exists()

    def test_multi_host_case_refused_not_relabeled(self, tmp_path):
        """A (cid, rid) case spanning hosts cannot silently collapse to
        the first host in per-case storage."""
        from repro.elstore.convert import convert_source

        path = tmp_path / "multi.csv"
        path.write_text("cid,host,rid,pid,call,start,dur,fp,size\n"
                        "a,host1,1,5,read,100,50,/f,10\n"
                        "a,host2,1,6,read,200,50,/f,10\n")
        # Direct load keeps both hosts ...
        log = open_source(str(path)).event_log()
        assert log.hosts() == ["host1", "host2"]
        # ... so streaming it into a single-host-per-case store must
        # refuse rather than relabel host2's event.
        with pytest.raises(SourceError, match="spans hosts"):
            convert_source(str(path), tmp_path / "out.elog")

    def test_registered_scheme_beats_existing_file(self, tmp_path,
                                                   monkeypatch):
        monkeypatch.chdir(tmp_path)
        (tmp_path / "sim:ls").write_text("not a trace\n")
        assert isinstance(open_source("sim:ls"), SimulationSource)

    def test_malformed_query_falls_back_to_existing_file(self, tmp_path):
        path = tmp_path / "odd:file?x"
        path.write_text("cid,host,rid,pid,call,start,dur,fp,size\n")
        # Unregistered prefix + malformed ?query, but the file exists:
        # resolve it (suffix-less → elog attempt would error on magic,
        # so name it .csv to prove resolution happened).
        csv_path = tmp_path / "odd:file?x.csv"
        csv_path.write_text("cid,host,rid,pid,call,start,dur,fp,size\n")
        assert isinstance(open_source(str(csv_path)), CsvLogSource)

    def test_lenient_on_store_warns(self, ls_store):
        with pytest.warns(UnsupportedSourceOptionWarning,
                          match="lenient"):
            open_source(f"elog:{ls_store}", strict=False)

    def test_lenient_on_strace_dir_does_not_warn(self, ls_traces,
                                                 recwarn):
        open_source(str(ls_traces), strict=False)
        assert not [w for w in recwarn.list if issubclass(
            w.category, UnsupportedSourceOptionWarning)]

    def test_options_on_prebuilt_source_rejected(self, ls_traces):
        """from_source(StraceDirSource(...), cids=...) must raise, not
        silently drop the option."""
        from repro.core.eventlog import EventLog

        source = StraceDirSource(ls_traces)
        with pytest.raises(SourceError, match="already-constructed"):
            EventLog.from_source(source, cids={"a"})
        with pytest.raises(SourceError, match="already-constructed"):
            EventLog.from_source(source, workers=2)
        # Defaults are fine: the source's own options rule.
        assert EventLog.from_source(source).n_cases == 6

    def test_options_on_prebuilt_source_rejected_by_convert(
            self, ls_traces, tmp_path):
        from repro.elstore.convert import convert_source

        with pytest.raises(SourceError, match="already-constructed"):
            convert_source(StraceDirSource(ls_traces),
                           tmp_path / "o.elog", cids={"a"})

    def test_repack_byte_identical_when_orders_diverge(self, tmp_path):
        """Repack must follow the container's append order, not sorted
        case-id order, to stay byte-identical."""
        from repro.elstore.convert import convert_source, convert_strace_dir

        directory = tmp_path / "traces"
        directory.mkdir()
        line = ("5  08:55:54.153994 read(3</usr/lib/x.so>, ..., 832)"
                " = 832 <0.000203>\n")
        # Sorted-path (= append) order: a_aaa_2.st before a_zzz_1.st;
        # sorted case-id order: "a1" before "a2" — a genuine flip,
        # because the host sits in the filename but not in the case id.
        for name in ["a_zzz_1.st", "a_aaa_2.st"]:
            (directory / name).write_text(line)
        first = convert_strace_dir(directory, tmp_path / "one.elog")
        second = convert_source(f"elog:{first}", tmp_path / "two.elog")
        assert first.read_bytes() == second.read_bytes()

    def test_case_key_collision_refused(self, tmp_path):
        """cid 'a' rid 12 and cid 'a1' rid 2 both key as 'a12' — the
        converter must refuse rather than relabel."""
        from repro.elstore.convert import convert_source

        path = tmp_path / "collide.csv"
        path.write_text("cid,host,rid,pid,call,start,dur,fp,size\n"
                        "a,h1,12,5,read,100,50,/f,10\n"
                        "a1,h1,2,6,read,200,50,/f,10\n")
        with pytest.raises(SourceError, match="spans cids"):
            convert_source(str(path), tmp_path / "out.elog")

    def test_sim_ls_shares_fig1_constants(self, ls_traces,
                                          logs_identical):
        """sim:ls must track generate_fig1_traces through the shared
        fig1_recorders helper."""
        from repro.core.eventlog import EventLog

        logs_identical(open_source("sim:ls").event_log(),
                       EventLog.from_source(str(ls_traces)))

"""Cross-source equivalence: every route into an EventLog agrees.

The acceptance bar of the source redesign: ``StraceDirSource`` (and
with it ``EventLog.from_source``) is byte-identical to the legacy
``from_strace_dir`` path at every worker count, the simulator source
is byte-identical to write-files-then-ingest, and the store/CSV
sources reproduce their legacy readers.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.core.dfg import DFG
from repro.core.eventlog import EventLog
from repro.core.mapping import CallTopDirs
from repro.sources import (
    ElstoreSource,
    SimulationSource,
    StraceDirSource,
    combine_merge_stats,
    open_source,
)


def _legacy_from_strace_dir(directory, **kwargs) -> EventLog:
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return EventLog.from_strace_dir(directory, **kwargs)


class TestStraceDirSource:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_byte_identical_to_legacy(self, ls_traces, workers,
                                      logs_identical):
        legacy = _legacy_from_strace_dir(ls_traces, workers=workers)
        via_source = StraceDirSource(
            ls_traces, workers=workers).event_log()
        via_uri = open_source(f"strace:{ls_traces}",
                              workers=workers).event_log()
        logs_identical(via_source, legacy)
        logs_identical(via_uri, legacy)

    def test_from_source_bare_path(self, ls_traces, logs_identical):
        logs_identical(EventLog.from_source(str(ls_traces)),
                       _legacy_from_strace_dir(ls_traces))

    def test_iter_cases_matches_event_log(self, ls_traces,
                                          logs_identical):
        from repro.ingest.parallel import frame_from_case_columns

        source = StraceDirSource(ls_traces)
        assembled = EventLog(
            frame_from_case_columns(list(source.iter_cases())))
        logs_identical(assembled, source.event_log())

    def test_cids_filter(self, ls_traces):
        log = EventLog.from_source(str(ls_traces), cids={"a"})
        assert log.cids() == ["a"]
        assert log.n_cases == 3

    def test_merge_stats_exposed_per_case(self, ls_traces):
        cases = list(StraceDirSource(ls_traces).iter_cases())
        total = combine_merge_stats(c.merge_stats for c in cases)
        assert total.merged_pairs == 0  # ls traces have no splits
        assert len(cases) == 6


class TestElstoreSource:
    def test_event_log_matches_legacy_reader(self, ls_store,
                                             logs_identical):
        from repro.elstore.reader import read_event_log

        logs_identical(ElstoreSource(ls_store).event_log(),
                       read_event_log(ls_store))

    def test_repack_is_byte_identical(self, ls_store, tmp_path):
        """elog → iter_cases → writer reproduces the container bytes."""
        from repro.elstore.convert import convert_source

        out = convert_source(f"elog:{ls_store}", tmp_path / "re.elog")
        assert out.read_bytes() == ls_store.read_bytes()

    def test_store_equals_dir_after_mapping(self, ls_traces, ls_store):
        mapping = CallTopDirs(levels=2)
        from_dir = EventLog.from_source(
            f"strace:{ls_traces}").with_mapping(mapping)
        from_store = EventLog.from_source(
            f"elog:{ls_store}").with_mapping(mapping)
        assert DFG(from_dir) == DFG(from_store)

    def test_cids_filter(self, ls_store):
        log = EventLog.from_source(str(ls_store), cids={"b"})
        assert log.cids() == ["b"]


class TestSimulationSource:
    def test_sim_ls_byte_identical_to_dir_ingest(self, ls_traces,
                                                 logs_identical):
        logs_identical(SimulationSource("ls").event_log(),
                       EventLog.from_source(f"strace:{ls_traces}"))

    @pytest.mark.parametrize("spec", [
        "sim:ior?ranks=4&ranks_per_node=2&segments=1",
        "sim:ior?ranks=4&ranks_per_node=2&segments=1&fpp=1&trace_lseek=1",
        "sim:checkpoint?ranks=4&ranks_per_node=2&steps=2",
    ])
    def test_sim_equals_write_then_ingest(self, spec, tmp_path,
                                          logs_identical):
        """The no-temp-dir path reproduces the files-on-disk path."""
        from repro.simulate.strace_writer import write_trace_files

        source = open_source(spec)
        recorders, trace_calls = source._runner(source.options)
        write_trace_files(recorders, tmp_path / "sim",
                          trace_calls=trace_calls)
        logs_identical(source.event_log(),
                       EventLog.from_source(str(tmp_path / "sim")))

    def test_deterministic_across_calls(self, logs_identical):
        source = open_source("sim:ior?ranks=4&ranks_per_node=2&segments=1")
        logs_identical(source.event_log(), source.event_log())

    def test_cids_filter(self):
        log = EventLog.from_source("sim:ls", cids={"a"})
        assert log.cids() == ["a"]
        assert log.n_cases == 3

    def test_full_pipeline_runs(self):
        log = EventLog.from_source(
            "sim:ior?ranks=4&ranks_per_node=2&segments=1")
        log.apply_mapping_fn(CallTopDirs(levels=2))
        dfg = DFG(log)
        assert dfg.n_nodes > 0


class TestConvertSource:
    def test_convert_accepts_every_scheme(self, ls_traces, ls_store,
                                          tmp_path, logs_identical):
        from repro.elstore.convert import convert_source
        from repro.sources.csv_log import write_csv_log

        base = EventLog.from_source(f"strace:{ls_traces}")
        write_csv_log(base, tmp_path / "ls.csv")

        for i, spec in enumerate([f"strace:{ls_traces}",
                                  f"elog:{ls_store}",
                                  f"csv:{tmp_path / 'ls.csv'}",
                                  "sim:ls"]):
            out = convert_source(spec, tmp_path / f"out{i}.elog")
            converted = EventLog.from_source(f"elog:{out}")
            assert converted.n_events == base.n_events
            assert converted.case_ids() == base.case_ids()
            np.testing.assert_array_equal(
                converted.frame.column("start"),
                base.frame.column("start"))

    def test_strace_convert_unchanged_by_redesign(self, ls_traces,
                                                  ls_store, tmp_path):
        """convert_strace_dir (the wrapped legacy path) still produces
        the same bytes as convert_source over the strace scheme."""
        from repro.elstore.convert import convert_source

        out = convert_source(f"strace:{ls_traces}", tmp_path / "x.elog",
                             workers=2)
        assert out.read_bytes() == ls_store.read_bytes()


class TestDeprecatedShims:
    def test_from_strace_dir_warns_and_matches(self, ls_traces,
                                               logs_identical):
        with pytest.warns(DeprecationWarning, match="from_source"):
            legacy = EventLog.from_strace_dir(ls_traces)
        logs_identical(legacy, EventLog.from_source(str(ls_traces)))

    def test_from_store_warns_and_matches(self, ls_store,
                                          logs_identical):
        with pytest.warns(DeprecationWarning, match="from_source"):
            legacy = EventLog.from_store(ls_store)
        logs_identical(legacy, EventLog.from_source(str(ls_store)))

    def test_session_shims_warn(self, ls_traces, ls_store):
        from repro.pipeline.session import InspectionSession

        with pytest.warns(DeprecationWarning, match="from_source"):
            InspectionSession.from_strace_dir(ls_traces)
        with pytest.warns(DeprecationWarning, match="from_source"):
            InspectionSession.from_store(ls_store)

    def test_session_from_source_all_schemes(self, ls_traces, ls_store):
        from repro.pipeline.session import InspectionSession

        for spec in (f"strace:{ls_traces}", f"elog:{ls_store}",
                     "sim:ls"):
            session = InspectionSession.from_source(spec)
            session.map_default()
            assert session.dfg.n_nodes > 0

    def test_adapters_reexport_warns(self):
        import importlib

        import repro.adapters as adapters

        importlib.reload(adapters)
        with pytest.warns(DeprecationWarning, match="moved to"):
            assert adapters.read_csv_log is not None
        with pytest.warns(DeprecationWarning, match="moved to"):
            assert adapters.CSV_COLUMNS[0] == "cid"

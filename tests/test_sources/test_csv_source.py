"""CSV source: schema, round trips, URI options."""

from __future__ import annotations

import pytest

from repro._util.errors import SourceError
from repro.core.eventlog import EventLog
from repro.sources import CsvLogSource, open_source
from repro.sources.csv_log import CSV_COLUMNS, read_csv_log, write_csv_log


class TestRoundTrip:
    def test_csv_eventlog_csv_is_byte_stable(self, ls_traces, tmp_path):
        """csv → EventLog → export-csv → csv reproduces the file."""
        base = EventLog.from_source(f"strace:{ls_traces}")
        first = write_csv_log(base, tmp_path / "one.csv")
        loaded = open_source(f"csv:{first}").event_log()
        second = write_csv_log(loaded, tmp_path / "two.csv")
        assert first.read_text() == second.read_text()

    def test_events_survive_the_trip(self, ls_traces, tmp_path,
                                     logs_identical):
        base = EventLog.from_source(f"strace:{ls_traces}")
        path = write_csv_log(base, tmp_path / "log.csv")
        loaded = EventLog.from_source(str(path))
        assert loaded.n_events == base.n_events
        assert loaded.case_ids() == base.case_ids()
        # Events agree attribute for attribute (pool codes may differ:
        # CSV interning is row-major, strace ingest is case-major).
        for ours, theirs in zip(loaded.events(), base.events()):
            assert (ours.call, ours.start, ours.dur, ours.fp,
                    ours.size, ours.pid) == \
                   (theirs.call, theirs.start, theirs.dur, theirs.fp,
                    theirs.size, theirs.pid)

    def test_iter_cases_roundtrip_through_store(self, ls_traces,
                                                tmp_path):
        from repro.elstore.convert import convert_source

        base = EventLog.from_source(f"strace:{ls_traces}")
        csv_path = write_csv_log(base, tmp_path / "log.csv")
        out = convert_source(f"csv:{csv_path}", tmp_path / "log.elog")
        via_store = EventLog.from_source(f"elog:{out}")
        assert via_store.n_events == base.n_events
        assert via_store.case_ids() == base.case_ids()


class TestUriOptions:
    def _rows(self):
        return ("cid\thost\trid\tpid\tcall\tstart\tdur\tfp\tsize\n"
                "x\th1\t1\t5\tread\t100\t50\t/data/f\t4096\n")

    def test_delimiter_tab_by_name(self, tmp_path):
        path = tmp_path / "log.tsv.csv"
        path.write_text(self._rows())
        log = open_source(f"csv:{path}?delimiter=tab").event_log()
        assert log.n_events == 1
        assert log.case_ids() == ["x1"]

    def test_unknown_option_rejected(self, tmp_path):
        path = tmp_path / "log.csv"
        path.write_text(",".join(CSV_COLUMNS) + "\n")
        with pytest.raises(SourceError, match="delimiter"):
            open_source(f"csv:{path}?sep=tab")

    def test_multichar_delimiter_rejected(self, tmp_path):
        path = tmp_path / "log.csv"
        path.write_text(",".join(CSV_COLUMNS) + "\n")
        with pytest.raises(SourceError, match="one character"):
            open_source(f"csv:{path}?delimiter=xx")

    def test_cids_filter(self, ls_traces, tmp_path):
        base = EventLog.from_source(f"strace:{ls_traces}")
        path = write_csv_log(base, tmp_path / "log.csv")
        log = EventLog.from_source(str(path), cids={"b"})
        assert log.cids() == ["b"]

    def test_direct_construction_matches_uri(self, ls_traces, tmp_path):
        base = EventLog.from_source(f"strace:{ls_traces}")
        path = write_csv_log(base, tmp_path / "log.csv")
        direct = CsvLogSource(path).event_log()
        via_uri = open_source(f"csv:{path}").event_log()
        assert direct.n_events == via_uri.n_events


class TestSchemaDocsStayTrue:
    def test_header_is_canonical_order(self, ls_traces, tmp_path):
        base = EventLog.from_source(f"strace:{ls_traces}")
        path = write_csv_log(base, tmp_path / "log.csv")
        header = path.read_text().splitlines()[0]
        assert header == ",".join(CSV_COLUMNS)

    def test_read_rejects_missing_columns(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("cid,host\nx,h\n")
        with pytest.raises(Exception, match="missing columns"):
            read_csv_log(path)

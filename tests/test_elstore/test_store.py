"""The .elog columnar container: write/read round trips, laziness."""

import numpy as np
import pytest

from repro._util.errors import StoreFormatError
from repro.core.eventlog import EventLog
from repro.elstore.convert import convert_strace_dir
from repro.elstore.reader import EventLogStore, read_event_log
from repro.elstore.writer import EventLogWriter, write_event_log
from repro.strace.naming import TraceFileName
from repro.strace.parser import ParsedRecord


def _record(start: int, call: str = "read", fp: str | None = "/x",
            size: int | None = 10, dur: int | None = 5,
            pid: int = 1) -> ParsedRecord:
    return ParsedRecord(pid=pid, start_us=start, call=call, fp=fp,
                        size=size, dur_us=dur, retval=size, errno=None,
                        requested=size, args=())


class TestWriterReader:
    def test_roundtrip_records(self, tmp_path):
        path = tmp_path / "log.elog"
        with EventLogWriter(path) as writer:
            writer.add_case_records(
                TraceFileName("a", "h1", 1),
                [_record(10), _record(20, call="write", fp="/y", size=7)])
            writer.add_case_records(
                TraceFileName("a", "h1", 2), [_record(30, fp=None)])
        store = EventLogStore(path)
        assert store.case_ids() == ["a1", "a2"]
        assert store.n_cases == 2
        assert store.n_events == 3
        data = store.read_case("a1")
        assert data["start"].tolist() == [10, 20]
        assert data["size"].tolist() == [10, 7]
        # fp of the second case's record is missing → -1
        assert store.read_case("a2")["fp"].tolist() == [-1]

    def test_case_meta(self, tmp_path):
        path = tmp_path / "log.elog"
        with EventLogWriter(path) as writer:
            writer.add_case_records(
                TraceFileName("ssf", "node01", 20000), [_record(1)])
        meta = EventLogStore(path).case_meta("ssf20000")
        assert meta.cid == "ssf"
        assert meta.host == "node01"
        assert meta.rid == 20000
        assert meta.n_events == 1

    def test_unknown_case_rejected(self, tmp_path):
        path = tmp_path / "log.elog"
        with EventLogWriter(path) as writer:
            writer.add_case_records(TraceFileName("a", "h", 1),
                                    [_record(1)])
        with pytest.raises(StoreFormatError):
            EventLogStore(path).case_meta("nope")

    def test_duplicate_case_rejected(self, tmp_path):
        with EventLogWriter(tmp_path / "log.elog") as writer:
            writer.add_case_records(TraceFileName("a", "h", 1),
                                    [_record(1)])
            with pytest.raises(StoreFormatError):
                writer.add_case_records(TraceFileName("a", "h", 1), [])

    def test_empty_case_allowed(self, tmp_path):
        path = tmp_path / "log.elog"
        with EventLogWriter(path) as writer:
            writer.add_case_records(TraceFileName("a", "h", 1), [])
        store = EventLogStore(path)
        assert store.n_events == 0
        assert store.read_case("a1")["start"].tolist() == []

    def test_chunking_roundtrip(self, tmp_path):
        """Tiny chunks force many chunk refs; data must reassemble."""
        path = tmp_path / "log.elog"
        records = [_record(i, size=i) for i in range(100)]
        with EventLogWriter(path, chunk_values=7) as writer:
            writer.add_case_records(TraceFileName("a", "h", 1), records)
        store = EventLogStore(path)
        meta = store.case_meta("a1")
        assert len(meta.columns["start"].chunks) == 15  # ceil(100/7)
        assert store.read_case("a1")["size"].tolist() == list(range(100))

    def test_writer_removes_file_on_error(self, tmp_path):
        path = tmp_path / "log.elog"
        with pytest.raises(RuntimeError):
            with EventLogWriter(path) as writer:
                writer.add_case_records(TraceFileName("a", "h", 1),
                                        [_record(1)])
                raise RuntimeError("boom")
        assert not path.exists()

    def test_string_pools_deduplicated(self, tmp_path):
        path = tmp_path / "log.elog"
        with EventLogWriter(path) as writer:
            for rid in range(5):
                writer.add_case_records(
                    TraceFileName("a", "h", rid),
                    [_record(1, fp="/shared/path"),
                     _record(2, fp="/shared/path")])
        store = EventLogStore(path)
        assert store.pools["paths"] == ["/shared/path"]


class TestEventLogIntegration:
    def test_eventlog_roundtrip(self, fig1_dir, tmp_path):
        original = EventLog.from_source(fig1_dir)
        path = write_event_log(original, tmp_path / "fig1.elog")
        loaded = read_event_log(path)
        assert loaded.n_events == original.n_events
        assert loaded.case_ids() == original.case_ids()
        assert loaded.cids() == original.cids()
        # Column-level equality after sorting both the same way.
        for col in ("start", "dur", "size", "pid", "rid"):
            assert np.array_equal(loaded.frame.column(col),
                                  original.frame.column(col))
        # String columns compare decoded (codes may differ).
        assert loaded.frame.decoded("fp") == original.frame.decoded("fp")
        assert loaded.frame.decoded("call") == \
            original.frame.decoded("call")

    def test_cid_subset_load(self, fig1_dir, tmp_path):
        path = write_event_log(EventLog.from_source(fig1_dir),
                               tmp_path / "fig1.elog")
        loaded = read_event_log(path, cids={"a"})
        assert loaded.cids() == ["a"]
        assert loaded.n_cases == 3

    def test_missing_cid_subset_rejected(self, fig1_dir, tmp_path):
        path = write_event_log(EventLog.from_source(fig1_dir),
                               tmp_path / "fig1.elog")
        with pytest.raises(StoreFormatError):
            read_event_log(path, cids={"zzz"})

    def test_convert_strace_dir(self, fig1_dir, tmp_path):
        out = convert_strace_dir(fig1_dir, tmp_path / "conv.elog")
        store = EventLogStore(out)
        assert store.n_cases == 6
        assert store.n_events == 3 * 8 + 3 * 17

    def test_dfg_from_store_equals_dfg_from_traces(self, fig1_dir,
                                                   tmp_path):
        """The store is a faithful intermediate: same DFG either way."""
        from repro.core.dfg import DFG
        from repro.core.mapping import CallTopDirs

        direct = EventLog.from_source(fig1_dir)
        direct.apply_mapping_fn(CallTopDirs(levels=2))
        path = write_event_log(EventLog.from_source(fig1_dir),
                               tmp_path / "x.elog")
        via_store = read_event_log(path)
        via_store.apply_mapping_fn(CallTopDirs(levels=2))
        assert DFG(direct) == DFG(via_store)


class TestCorruption:
    def _store_path(self, tmp_path):
        path = tmp_path / "log.elog"
        with EventLogWriter(path) as writer:
            writer.add_case_records(
                TraceFileName("a", "h", 1),
                [_record(i) for i in range(50)])
        return path

    def test_bad_magic_rejected(self, tmp_path):
        path = self._store_path(tmp_path)
        data = bytearray(path.read_bytes())
        data[0:4] = b"XXXX"
        path.write_bytes(data)
        with pytest.raises(StoreFormatError, match="magic"):
            EventLogStore(path)

    def test_bad_version_rejected(self, tmp_path):
        path = self._store_path(tmp_path)
        data = bytearray(path.read_bytes())
        data[8] = 99  # version u16 little-endian low byte
        path.write_bytes(data)
        with pytest.raises(StoreFormatError, match="version"):
            EventLogStore(path)

    def test_truncated_file_rejected(self, tmp_path):
        path = self._store_path(tmp_path)
        path.write_bytes(path.read_bytes()[:10])
        with pytest.raises(StoreFormatError):
            EventLogStore(path)

    def test_flipped_data_byte_fails_crc(self, tmp_path):
        path = self._store_path(tmp_path)
        data = bytearray(path.read_bytes())
        data[40] ^= 0xFF  # inside the first column chunk
        path.write_bytes(data)
        store = EventLogStore(path)  # TOC itself is intact
        with pytest.raises(StoreFormatError, match="CRC"):
            store.read_case("a1")

    def test_corrupt_toc_rejected(self, tmp_path):
        path = self._store_path(tmp_path)
        data = bytearray(path.read_bytes())
        data[-5] = 0xFF  # garbage inside the JSON TOC
        path.write_bytes(data)
        with pytest.raises(StoreFormatError):
            EventLogStore(path)

    def test_unclosed_writer_header_rejected(self, tmp_path):
        path = tmp_path / "log.elog"
        writer = EventLogWriter(path)
        writer.add_case_records(TraceFileName("a", "h", 1), [_record(1)])
        writer._handle.close()  # simulate a crash before close()
        with pytest.raises(StoreFormatError, match="TOC"):
            EventLogStore(path)


class TestColumnProjection:
    def test_subset_read(self, fig1_dir, tmp_path):
        path = write_event_log(EventLog.from_source(fig1_dir),
                               tmp_path / "p.elog")
        store = EventLogStore(path)
        data = store.read_case("a9042", columns=["start", "dur"])
        assert set(data) == {"start", "dur"}
        assert len(data["start"]) == 8

    def test_unknown_column_rejected(self, fig1_dir, tmp_path):
        path = write_event_log(EventLog.from_source(fig1_dir),
                               tmp_path / "p.elog")
        with pytest.raises(StoreFormatError, match="unknown columns"):
            EventLogStore(path).read_case("a9042", columns=["bogus"])

    def test_projection_matches_full_read(self, fig1_dir, tmp_path):
        path = write_event_log(EventLog.from_source(fig1_dir),
                               tmp_path / "p.elog")
        store = EventLogStore(path)
        full = store.read_case("b9157")
        partial = store.read_case("b9157", columns=["size"])
        assert (partial["size"] == full["size"]).all()

"""Recursive trace discovery in nested per-host layouts."""

from __future__ import annotations

import shutil

import pytest

from repro._util.errors import TraceParseError
from repro.core.eventlog import EventLog
from repro.strace.reader import discover_trace_files, read_trace_dir


@pytest.fixture()
def nested_dir(workload_dirs, tmp_path):
    """The ls traces rearranged into host subdirectories."""
    root = tmp_path / "nested"
    for index, (path, name) in enumerate(
            discover_trace_files(workload_dirs["ls"])):
        sub = root / f"host{index % 2 + 1}" / "rack0"
        sub.mkdir(parents=True, exist_ok=True)
        shutil.copy(path, sub / path.name)
    return root


class TestDiscovery:
    def test_flat_scan_misses_nested_files(self, nested_dir):
        with pytest.raises(TraceParseError, match="no .st trace files"):
            discover_trace_files(nested_dir)

    def test_recursive_finds_all(self, nested_dir, workload_dirs):
        found = discover_trace_files(nested_dir, recursive=True)
        flat = discover_trace_files(workload_dirs["ls"])
        assert sorted(n.case_id for _, n in found) == \
            sorted(n.case_id for _, n in flat)

    def test_ordering_is_deterministic(self, nested_dir):
        """Sorted by path — independent of filesystem enumeration and
        repeatable across scans."""
        first = [path for path, _ in
                 discover_trace_files(nested_dir, recursive=True)]
        second = [path for path, _ in
                  discover_trace_files(nested_dir, recursive=True)]
        assert first == second == sorted(first)

    def test_duplicate_case_across_subdirs_rejected(self, nested_dir):
        original = next(nested_dir.rglob("*.st"))
        clone_dir = nested_dir / "host9"
        clone_dir.mkdir()
        shutil.copy(original, clone_dir / original.name)
        with pytest.raises(TraceParseError, match="duplicate case"):
            discover_trace_files(nested_dir, recursive=True)

    def test_recursive_respects_cids(self, nested_dir):
        found = discover_trace_files(nested_dir, cids={"a"},
                                     recursive=True)
        assert all(name.cid == "a" for _, name in found)
        assert len(found) == 3


class TestRecursiveIngestion:
    def test_same_log_as_flat_layout(self, nested_dir, workload_dirs):
        """Nesting changes discovery order, not content: same cases,
        same events, same DFG as the flat directory (code pools differ
        because interning follows discovery order)."""
        from repro.core.dfg import DFG
        from repro.core.mapping import CallTopDirs

        mapping = CallTopDirs(levels=2)
        nested = EventLog.from_source(nested_dir, recursive=True)
        flat = EventLog.from_source(workload_dirs["ls"])
        assert nested.case_ids() == flat.case_ids()
        assert nested.n_events == flat.n_events
        assert DFG(nested.with_mapping(mapping)) == \
            DFG(flat.with_mapping(mapping))

    @pytest.mark.parametrize("workers", [1, 2])
    def test_parallel_recursive(self, nested_dir, workers,
                                logs_identical):
        parallel = EventLog.from_source(nested_dir, recursive=True,
                                            workers=workers)
        sequential = EventLog.from_source(nested_dir,
                                              recursive=True, workers=1)
        logs_identical(parallel, sequential)

    def test_read_trace_dir_recursive_flag(self, nested_dir):
        cases = read_trace_dir(nested_dir, recursive=True)
        assert len(cases) == 6

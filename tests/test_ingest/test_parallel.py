"""Process-pool fan-out: policy, determinism, and exact equivalence."""

from __future__ import annotations

import dataclasses

import pytest

from repro._util.errors import ReproError, TraceParseError
from repro.core.dfg import DFG
from repro.core.eventlog import EventLog
from repro.core.mapping import CallTopDirs
from repro.ingest.parallel import (
    MAX_AUTO_WORKERS,
    available_cpus,
    resolve_workers,
)
from repro.strace.reader import read_trace_dir

WORKLOADS = ("ls", "ior", "ckpt")


class TestResolveWorkers:
    def test_auto_is_bounded_by_cpus_and_cap(self):
        auto = resolve_workers(None)
        assert 1 <= auto <= min(available_cpus(), MAX_AUTO_WORKERS)

    def test_never_more_workers_than_tasks(self):
        assert resolve_workers(8, 3) == 3
        assert resolve_workers(None, 1) == 1

    def test_explicit_value_taken_as_is(self):
        assert resolve_workers(5, 100) == 5
        assert resolve_workers(1, 100) == 1

    def test_zero_tasks_still_one_worker(self):
        assert resolve_workers(None, 0) == 1

    def test_invalid_count_rejected(self):
        with pytest.raises(ReproError):
            resolve_workers(0)
        with pytest.raises(ReproError):
            resolve_workers(-2)

    @pytest.mark.parametrize("workers", [0, -3])
    def test_list_shaped_entry_points_reject_bad_counts(self, workers):
        """read_cases / iter_case_columns take a concrete count and
        must not silently degrade 0/-1 to the sequential loop."""
        from repro.ingest.parallel import iter_case_columns, read_cases

        with pytest.raises(ReproError, match="workers must be >= 1"):
            read_cases([], workers=workers)
        with pytest.raises(ReproError, match="workers must be >= 1"):
            # At the call boundary — not deferred to the first next().
            iter_case_columns([], workers=workers)


@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("workers", [1, 2, 4])
class TestParallelEquivalence:
    """Acceptance property: for every simulate workload, parallel
    ingestion with workers ∈ {1, 2, 4} is byte-identical to the
    sequential path — same cases, same merge stats, same frame arrays,
    same pools, same DFG."""

    def test_cases_identical(self, workload_dirs, workload, workers):
        directory = workload_dirs[workload]
        sequential = read_trace_dir(directory, workers=1)
        parallel = read_trace_dir(directory, workers=workers)
        assert [c.case_id for c in parallel] == \
            [c.case_id for c in sequential]
        for par, seq in zip(parallel, sequential):
            assert par.name == seq.name
            assert par.records == seq.records
            assert dataclasses.asdict(par.merge_stats) == \
                dataclasses.asdict(seq.merge_stats)

    def test_event_log_byte_identical(self, workload_dirs, workload,
                                      workers, logs_identical):
        directory = workload_dirs[workload]
        sequential = EventLog.from_source(directory, workers=1)
        parallel = EventLog.from_source(directory, workers=workers)
        logs_identical(parallel, sequential)

    def test_dfg_identical(self, workload_dirs, workload, workers):
        directory = workload_dirs[workload]
        mapping = CallTopDirs(levels=2)
        sequential = DFG(EventLog.from_source(directory, workers=1)
                         .with_mapping(mapping))
        parallel = DFG(EventLog.from_source(directory,
                                                workers=workers)
                       .with_mapping(mapping))
        assert parallel == sequential


class TestParallelErrors:
    def test_parse_error_propagates_from_workers(self, tmp_path):
        (tmp_path / "a_h_1.st").write_text(
            "1  00:00:00.000001 close(3</x>) = 0 <0.000001>\n")
        (tmp_path / "b_h_2.st").write_text("garbage, not strace\n")
        with pytest.raises(TraceParseError):
            read_trace_dir(tmp_path, workers=2)

    def test_cids_filter_respected(self, workload_dirs):
        directory = workload_dirs["ls"]
        cases = read_trace_dir(directory, cids={"a"}, workers=2)
        assert [c.case_id for c in cases] == ["a9042", "a9043", "a9045"]


class TestCliWorkersFlag:
    def test_synthesize_output_identical_across_workers(
            self, workload_dirs, capsys):
        from repro.cli import main

        directory = str(workload_dirs["ls"])
        assert main(["synthesize", directory, "--workers", "1"]) == 0
        sequential = capsys.readouterr().out
        assert main(["synthesize", directory, "--workers", "2"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == sequential

    def test_convert_accepts_workers(self, workload_dirs, tmp_path,
                                     capsys):
        from repro.cli import main

        out = tmp_path / "ls.elog"
        assert main(["convert", str(workload_dirs["ls"]), str(out),
                     "--workers", "2"]) == 0
        assert out.exists()
        assert "6 cases" in capsys.readouterr().out


@pytest.mark.parametrize("workload", WORKLOADS)
class TestConvertEquivalence:
    def test_elog_bytes_identical_across_workers(self, workload_dirs,
                                                 workload, tmp_path):
        """The .elog container is append-ordered, so conversion must
        produce the same bytes for every worker count."""
        from repro.elstore.convert import convert_strace_dir

        sequential = convert_strace_dir(
            workload_dirs[workload], tmp_path / "seq.elog", workers=1)
        parallel = convert_strace_dir(
            workload_dirs[workload], tmp_path / "par.elog", workers=3)
        assert parallel.read_bytes() == sequential.read_bytes()


@pytest.mark.parametrize("workers", [2, 3])
class TestColumnarWireFormat:
    def test_frame_from_case_columns_matches_from_cases(
            self, workload_dirs, workers, logs_identical):
        """The columnar wire format reassembles to the exact frame the
        sequential record path builds — same arrays, same pools."""
        from repro.core.frame import EventFrame
        from repro.ingest.parallel import (
            frame_from_case_columns,
            iter_case_columns,
        )
        from repro.strace.reader import discover_trace_files

        found = discover_trace_files(workload_dirs["ior"])
        columnar = EventLog(frame_from_case_columns(list(
            iter_case_columns(found, workers=workers))))
        recorded = EventLog(EventFrame.from_cases(
            read_trace_dir(workload_dirs["ior"], workers=1)))
        logs_identical(columnar, recorded)

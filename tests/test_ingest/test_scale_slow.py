"""Larger-scale equivalence checks, opt-in via ``--run-slow``.

Tier-1 pins parallel/sequential equivalence on small directories;
these repeat it at a scale where chunking, pool reuse and result
streaming actually engage (dozens of files, tens of thousands of
events). Excluded from the default run by the ``slow`` marker.
"""

from __future__ import annotations

import pytest

from repro.core.dfg import DFG
from repro.core.eventlog import EventLog
from repro.core.mapping import CallTopDirs
from repro.ingest.shards import dfg_from_trace_dir


@pytest.fixture(scope="module")
def big_ior_dir(tmp_path_factory):
    from repro.simulate.strace_writer import (
        EXPERIMENT_A_CALLS,
        write_trace_files,
    )
    from repro.simulate.workloads.ior import IORConfig, simulate_ior

    directory = tmp_path_factory.mktemp("big_ior")
    result = simulate_ior(IORConfig(
        ranks=48, ranks_per_node=24, segments=3, cid="ior", seed=4242))
    write_trace_files(result.recorders, directory,
                      trace_calls=EXPERIMENT_A_CALLS,
                      unfinished_probability=0.1, seed=7)
    return directory


@pytest.mark.slow
@pytest.mark.parametrize("workers", [2, 4, 8])
def test_parallel_equivalence_at_scale(big_ior_dir, workers,
                                       logs_identical):
    sequential = EventLog.from_source(big_ior_dir, workers=1)
    parallel = EventLog.from_source(big_ior_dir, workers=workers)
    logs_identical(parallel, sequential)


@pytest.mark.slow
def test_sharded_dfg_at_scale(big_ior_dir):
    mapping = CallTopDirs(levels=2)
    sharded = dfg_from_trace_dir(big_ior_dir, mapping, workers=4)
    whole = DFG(EventLog.from_source(big_ior_dir)
                .with_mapping(mapping))
    assert sharded == whole

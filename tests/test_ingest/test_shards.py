"""Sharded DFG construction and the union algebra it rests on."""

from __future__ import annotations

import pytest

from repro.core.activity import ActivityLog
from repro.core.dfg import DFG
from repro.core.eventlog import EventLog
from repro.core.mapping import CallOnly, CallTopDirs
from repro.ingest.shards import (
    case_dfg,
    dfg_from_trace_dir,
    iter_case_dfgs,
)
from repro.strace.reader import read_trace_dir

WORKLOADS = ("ls", "ior", "ckpt")


class TestUnionAll:
    def test_empty_fold_is_empty_graph(self):
        merged = DFG.union_all([])
        assert merged.n_nodes == 0
        assert merged.n_edges == 0

    def test_singleton_fold_is_identity(self):
        dfg = DFG(ActivityLog([("●", "a", "b", "■")]))
        assert DFG.union_all([dfg]) == dfg

    def test_matches_repeated_binary_union(self):
        shards = [
            DFG(ActivityLog([("●", "a", "b", "■")])),
            DFG(ActivityLog([("●", "b", "b", "■")])),
            DFG(ActivityLog([("●", "a", "c", "■")])),
        ]
        folded = DFG.union_all(shards)
        binary = shards[0] | shards[1] | shards[2]
        assert folded == binary

    def test_does_not_mutate_inputs(self):
        left = DFG(ActivityLog([("●", "a", "■")]))
        right = DFG(ActivityLog([("●", "a", "■")]))
        before = left.edges()
        DFG.union_all([left, right])
        assert left.edges() == before


@pytest.mark.parametrize("workload", WORKLOADS)
class TestShardMergeCorrectness:
    """The tentpole property: union of per-case shards == whole-log DFG
    for every simulate workload."""

    def test_iter_case_dfgs_folds_to_whole(self, workload_dirs,
                                           workload):
        log = EventLog.from_source(workload_dirs[workload]) \
            .with_mapping(CallTopDirs(levels=2))
        shards = [dfg for _, dfg in iter_case_dfgs(log)]
        assert len(shards) == log.n_cases
        assert DFG.union_all(shards) == DFG(log)

    def test_case_dfg_matches_single_case_log(self, workload_dirs,
                                              workload):
        mapping = CallTopDirs(levels=2)
        case = read_trace_dir(workload_dirs[workload])[0]
        expected = DFG(EventLog.from_cases([case]).with_mapping(mapping))
        assert case_dfg(case, mapping) == expected

    @pytest.mark.parametrize("workers", [1, 2])
    def test_dfg_from_trace_dir_equals_whole_log(self, workload_dirs,
                                                 workload, workers):
        mapping = CallTopDirs(levels=2)
        sharded = dfg_from_trace_dir(workload_dirs[workload], mapping,
                                     workers=workers)
        whole = DFG(EventLog.from_source(workload_dirs[workload])
                    .with_mapping(mapping))
        assert sharded == whole


class TestShardOptions:
    def test_without_endpoints(self, workload_dirs):
        mapping = CallOnly()
        sharded = dfg_from_trace_dir(workload_dirs["ls"], mapping,
                                     add_endpoints=False)
        whole = DFG(EventLog.from_source(workload_dirs["ls"])
                    .with_mapping(mapping), add_endpoints=False)
        assert sharded == whole
        assert sharded.nodes() == sharded.activities()  # no sentinels

    def test_cids_filter(self, workload_dirs):
        mapping = CallOnly()
        sharded = dfg_from_trace_dir(workload_dirs["ls"], mapping,
                                     cids={"b"})
        whole = DFG(EventLog.from_source(workload_dirs["ls"],
                                             cids={"b"})
                    .with_mapping(mapping))
        assert sharded == whole

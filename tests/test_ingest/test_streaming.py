"""The streaming tokenizer path (repro.ingest.streaming)."""

from __future__ import annotations

import pytest

from repro._util.errors import TraceParseError
from repro.ingest.streaming import TokenStream
from repro.strace.reader import read_trace_file
from repro.strace.resume import merge_unfinished
from repro.strace.tokenizer import RecordKind, tokenize_line

GOOD_LINE = "1  00:00:00.000001 close(3</x>) = 0 <0.000001>\n"


class TestTokenStream:
    def test_yields_same_tokens_as_list_path(self, fig1_dir):
        path = fig1_dir / "b_host1_9157.st"
        streamed = list(TokenStream(path))
        eager = [
            tokenize_line(line, path=str(path), lineno=i)
            for i, line in enumerate(
                path.read_text().splitlines(), start=1)
            if line.strip()
        ]
        assert streamed == eager

    def test_is_lazy(self, tmp_path):
        """Construction must not open the file; iteration must not
        read past the line it is asked for."""
        path = tmp_path / "a_h_1.st"
        stream = TokenStream(path)  # file does not exist yet
        path.write_text(GOOD_LINE + "this line is garbage\n")
        iterator = iter(stream)
        token = next(iterator)
        assert token.kind is RecordKind.SYSCALL
        with pytest.raises(TraceParseError):
            next(iterator)

    def test_restartable(self, tmp_path):
        path = tmp_path / "a_h_1.st"
        path.write_text(GOOD_LINE * 3)
        stream = TokenStream(path)
        assert len(list(stream)) == 3
        assert len(list(stream)) == 3  # second pass re-opens

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "a_h_1.st"
        path.write_text("\n" + GOOD_LINE + "   \n" + GOOD_LINE)
        assert len(list(TokenStream(path))) == 2

    def test_crlf_tolerated(self, tmp_path):
        path = tmp_path / "a_h_1.st"
        path.write_bytes(GOOD_LINE.rstrip("\n").encode() + b"\r\n")
        (token,) = TokenStream(path)
        assert token.kind is RecordKind.SYSCALL
        assert token.body.endswith("<0.000001>")

    def test_cr_only_terminators_tolerated(self, tmp_path):
        """Universal-newline parity with the old text-mode reader:
        lone \\r separates records too."""
        path = tmp_path / "a_h_1.st"
        path.write_bytes(
            GOOD_LINE.rstrip("\n").encode() + b"\r"
            + GOOD_LINE.rstrip("\n").encode() + b"\r")
        tokens = list(TokenStream(path))
        assert len(tokens) == 2
        assert all(t.kind is RecordKind.SYSCALL for t in tokens)

    def test_line_numbers_follow_logical_lines(self, tmp_path):
        """Error positions count universal-newline logical lines, so a
        CR-separated file reports the true line, not physical-\\n 1."""
        path = tmp_path / "a_h_1.st"
        path.write_bytes(GOOD_LINE.rstrip("\n").encode() + b"\r"
                         + b"garbage line")
        with pytest.raises(TraceParseError) as excinfo:
            list(TokenStream(path))
        assert excinfo.value.lineno == 2

    @pytest.mark.parametrize("chunk_size", [1, 2, 3, 7, 64])
    def test_raw_line_splitter_chunk_boundaries(self, chunk_size):
        """\\r\\n spanning a chunk boundary must not produce a phantom
        blank line; every terminator style round-trips."""
        import io

        from repro.ingest.streaming import _iter_raw_lines

        data = b"one\r\ntwo\rthree\nfour\r\n\r\nfive"
        lines = list(_iter_raw_lines(io.BytesIO(data),
                                     chunk_size=chunk_size))
        assert lines == [b"one", b"two", b"three", b"four", b"",
                         b"five"]

    def test_composes_with_merger_without_list(self, tmp_path):
        path = tmp_path / "a_h_1.st"
        path.write_text(
            "1  00:00:00.000001 read(3</x>, <unfinished ...>\n"
            "1  00:00:00.000900 <... read resumed> ..., 5) = 5 "
            "<0.000899>\n")
        records, stats = merge_unfinished(TokenStream(path),
                                          path=str(path))
        assert len(records) == 1
        assert stats.merged_pairs == 1


class TestDecodeDiagnostics:
    """Satellite: undecodable bytes are counted, warned, or fatal —
    never silently smoothed over."""

    MALFORMED = (b"1  00:00:00.000001 read(3</data/f\xff\xfeile>, ..., 5)"
                 b" = 5 <0.000001>\n")

    def test_strict_raises_at_offending_line(self, tmp_path):
        path = tmp_path / "a_h_1.st"
        path.write_bytes(GOOD_LINE.encode() + self.MALFORMED)
        with pytest.raises(TraceParseError) as excinfo:
            read_trace_file(path)
        assert excinfo.value.lineno == 2
        assert "undecodable" in str(excinfo.value)

    def test_lenient_counts_and_warns(self, tmp_path):
        path = tmp_path / "a_h_1.st"
        path.write_bytes(GOOD_LINE.encode() + self.MALFORMED)
        with pytest.warns(UserWarning, match="undecodable"):
            case = read_trace_file(path, strict=False)
        assert case.merge_stats.decode_replacements == 2
        assert len(case) == 2
        assert "�" in case.records[1].fp

    def test_clean_file_has_zero_replacements(self, fig1_dir):
        case = read_trace_file(fig1_dir / "a_host1_9042.st")
        assert case.merge_stats.decode_replacements == 0

    def test_preexisting_replacement_char_not_counted(self, tmp_path):
        """A path legitimately containing U+FFFD (valid UTF-8) must not
        inflate the corruption count of an undecodable byte."""
        path = tmp_path / "a_h_1.st"
        legit = "1  00:00:00.000001 read(3</weird�name>, ..., 5) = 5 " \
                "<0.000001>\n"
        bad = b"1  00:00:00.000900 read(3</bro\xffken>, ..., 5) = 5 " \
              b"<0.000001>\n"
        path.write_bytes(legit.encode("utf-8") + bad)
        with pytest.warns(UserWarning):
            case = read_trace_file(path, strict=False)
        assert case.merge_stats.decode_replacements == 1

    def test_session_strict_passthrough(self, tmp_path):
        from repro.pipeline.session import InspectionSession

        path = tmp_path / "a_h_1.st"
        path.write_bytes(GOOD_LINE.encode() + self.MALFORMED)
        with pytest.raises(TraceParseError):
            InspectionSession.from_source(tmp_path)
        with pytest.warns(UserWarning):
            session = InspectionSession.from_source(tmp_path,
                                                       strict=False)
        assert session.event_log.n_events == 2

    def test_cli_lenient_flag(self, tmp_path, capsys):
        from repro.cli import main

        (tmp_path / "a_h_1.st").write_bytes(
            GOOD_LINE.encode() + self.MALFORMED)
        assert main(["report", str(tmp_path)]) == 2  # strict default
        assert "undecodable" in capsys.readouterr().err
        with pytest.warns(UserWarning, match="undecodable"):
            assert main(["report", str(tmp_path), "--lenient"]) == 0
        assert "read" in capsys.readouterr().out


class TestStreamingReader:
    def test_read_trace_file_unchanged_results(self, fig1_dir):
        """The streaming rewrite preserves the documented output."""
        case = read_trace_file(fig1_dir / "a_host1_9042.st")
        assert case.case_id == "a9042"
        assert len(case) == 8
        starts = [r.start_us for r in case.records]
        assert starts == sorted(starts)

"""Property-based laws of the ingestion engine (hypothesis).

Two families, matching the paper's Sec. IV-A algebra:

* **Shard-merge correctness** — for *any* activity log, the DFG of the
  union of cases equals the union of per-case DFGs. This is the law
  sharded ingestion rests on, checked here over randomly generated
  logs rather than just the simulate workloads.
* **Parallel/sequential equivalence** — randomly generated trace
  directories ingest byte-identically for workers ∈ {1, 2, 4}.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.activity import ActivityLog
from repro.core.dfg import DFG
from repro.core.eventlog import EventLog
from repro.core.frame import COLUMN_ORDER
from repro.core.mapping import CallTopDirs
from repro.simulate.recording import ProcessRecorder
from repro.simulate.strace_writer import write_trace_files

ALPHABET = ("read:/a", "read:/b", "write:/a", "openat:/c", "close:/d")

activities = st.sampled_from(ALPHABET)
traces = st.lists(activities, max_size=10).map(
    lambda body: ("●", *body, "■"))
activity_logs = st.lists(traces, min_size=1, max_size=10)


class TestUnionLaws:
    @given(activity_logs)
    def test_dfg_of_union_equals_union_of_case_dfgs(self, all_traces):
        """G[L(c1 ∪ ... ∪ cn)] == G[L(c1)] ∪ ... ∪ G[L(cn)]."""
        whole = DFG(ActivityLog(all_traces))
        shards = [DFG(ActivityLog([trace])) for trace in all_traces]
        assert DFG.union_all(shards) == whole

    @given(activity_logs, st.randoms(use_true_random=False))
    def test_union_is_order_independent(self, all_traces, rng):
        shuffled = list(all_traces)
        rng.shuffle(shuffled)
        ordered = DFG.union_all(
            DFG(ActivityLog([trace])) for trace in all_traces)
        permuted = DFG.union_all(
            DFG(ActivityLog([trace])) for trace in shuffled)
        assert ordered == permuted

    @given(activity_logs, st.integers(min_value=1, max_value=4))
    def test_any_split_merges_to_whole(self, all_traces, n_shards):
        """Not just per-case shards: *every* partition of the log into
        shards folds back to the whole-log DFG."""
        whole = DFG(ActivityLog(all_traces))
        buckets: list[list[tuple[str, ...]]] = [
            [] for _ in range(n_shards)]
        for index, trace in enumerate(all_traces):
            buckets[index % n_shards].append(trace)
        shards = [DFG(ActivityLog(bucket))
                  for bucket in buckets if bucket]
        assert DFG.union_all(shards) == whole

    @given(activity_logs)
    def test_total_observations_additive(self, all_traces):
        """Σ edge counts == Σ over traces of (len(trace) - 1): the
        endpoint-wrapped invariant, preserved by sharding."""
        whole = DFG(ActivityLog(all_traces))
        assert whole.total_observations() == \
            sum(len(trace) - 1 for trace in all_traces)


# -- randomized trace directories -------------------------------------------

CALLS = ("read", "write", "openat", "close")
PATHS = ("/p/scratch/run/a", "/p/scratch/run/b", "/etc/conf",
         "/usr/lib/libx.so")

record_specs = st.tuples(
    st.sampled_from(CALLS),
    st.sampled_from(PATHS),
    st.integers(min_value=1, max_value=400),     # duration µs
    st.integers(min_value=0, max_value=4096),    # size
)
case_specs = st.lists(record_specs, max_size=12)


def _write_random_dir(directory, all_cases) -> None:
    recorders = []
    for case_index, records in enumerate(all_cases):
        recorder = ProcessRecorder(
            cid="gh"[case_index % 2], host=f"n{case_index % 3}",
            rid=1000 + case_index, pid=2000 + case_index)
        clock = 10_000 * case_index
        for call, path, dur, size in records:
            kwargs = dict(call=call, start_us=clock, dur_us=dur,
                          path=path, fd=3)
            if call in ("read", "write"):
                kwargs.update(size=size, requested=size)
            elif call == "openat":
                kwargs.update(ret_fd=3, args_hint="O_RDONLY")
            recorder.record(**kwargs)
            clock += dur + 7
        recorders.append(recorder)
    write_trace_files(recorders, directory, unfinished_probability=0.2,
                      seed=5)


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(all_cases=st.lists(case_specs, min_size=1, max_size=6),
       workers=st.sampled_from([2, 4]))
def test_random_dirs_ingest_identically_in_parallel(
        tmp_path_factory, all_cases, workers):
    directory = tmp_path_factory.mktemp("rand")
    _write_random_dir(directory, all_cases)
    sequential = EventLog.from_source(directory, workers=1)
    parallel = EventLog.from_source(directory, workers=workers)
    for column in COLUMN_ORDER:
        assert np.array_equal(sequential.frame.column(column),
                              parallel.frame.column(column))
    mapping = CallTopDirs(levels=2)
    assert DFG(sequential.with_mapping(mapping)) == \
        DFG(parallel.with_mapping(mapping))

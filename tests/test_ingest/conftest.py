"""Fixtures for the ingestion-engine suite.

One small trace directory per simulate workload (ls, ior, checkpoint),
written with a nonzero ``unfinished_probability`` where the workload
allows so the streaming merge path is genuinely exercised. All three
are used to pin parallel/sequential equivalence.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.core.frame import COLUMN_ORDER, FramePools


@pytest.fixture(scope="session")
def workload_dirs(tmp_path_factory) -> dict[str, Path]:
    """``{workload: trace_dir}`` for the three simulate workloads."""
    from repro.simulate.strace_writer import (
        EXPERIMENT_A_CALLS,
        write_trace_files,
    )
    from repro.simulate.workloads.checkpoint import (
        CheckpointConfig,
        simulate_checkpoint,
    )
    from repro.simulate.workloads.ior import IORConfig, simulate_ior
    from repro.simulate.workloads.ls import generate_fig1_traces

    base = tmp_path_factory.mktemp("ingest_workloads")
    dirs: dict[str, Path] = {}

    dirs["ls"] = base / "ls"
    generate_fig1_traces(dirs["ls"])

    dirs["ior"] = base / "ior"
    ior = simulate_ior(IORConfig(
        ranks=6, ranks_per_node=3, segments=2, cid="ior", seed=424))
    write_trace_files(ior.recorders, dirs["ior"],
                      trace_calls=EXPERIMENT_A_CALLS,
                      unfinished_probability=0.2, seed=11)

    dirs["ckpt"] = base / "ckpt"
    ckpt = simulate_checkpoint(CheckpointConfig(
        ranks=4, ranks_per_node=2, steps=2, shard_bytes=2 << 20,
        transfer_bytes=1 << 20, seed=303))
    write_trace_files(ckpt.recorders, dirs["ckpt"],
                      unfinished_probability=0.2, seed=12)
    return dirs


def pools_identical(a: FramePools, b: FramePools) -> bool:
    return all(list(a.pool_for(name)) == list(b.pool_for(name))
               for name in ("case", "cid", "host", "call", "fp",
                            "activity"))


def assert_logs_identical(one, other) -> None:
    """Byte-identical event-logs: every column array and every string
    pool must match exactly — not just DFG-level equivalence."""
    assert len(one.frame) == len(other.frame)
    for column in COLUMN_ORDER:
        assert np.array_equal(one.frame.column(column),
                              other.frame.column(column)), column
    assert pools_identical(one.frame.pools, other.frame.pools)


@pytest.fixture(scope="session")
def logs_identical():
    """The byte-identity assertion, as a fixture for test modules."""
    return assert_logs_identical

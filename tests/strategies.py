"""Shared hypothesis strategies + replay machinery for live suites.

The live, alerting and compaction property suites all drive the same
adversary: a finished trace directory revealed to a watcher in
randomized increments — which file grows when, how many bytes land per
step (cut at *arbitrary* positions, so lines and unfinished/resumed
pairs split across polls), where polls and kill/restart cycles happen.
This module holds the one schedule strategy and the byte-cutting
replay helper those suites used to copy.
"""

from __future__ import annotations

from pathlib import Path

from hypothesis import strategies as st


def growth_steps(n_files: int = 4, max_steps: int = 30):
    """A growth schedule: per step ``(file index, percent of the
    file's remaining bytes to append, poll-after-this-step?)``.
    Percentages are drawn as integers to keep shrinking effective."""
    return st.lists(
        st.tuples(st.integers(min_value=0, max_value=n_files - 1),
                  st.integers(min_value=1, max_value=100),
                  st.booleans()),
        min_size=1, max_size=max_steps)


def write_all(directory: Path | str,
              file_bytes: dict[str, bytes]) -> None:
    """Write a rendered workload's files into a directory at once."""
    directory = Path(directory)
    for filename, content in file_bytes.items():
        (directory / filename).write_bytes(content)


class DirectoryGrower:
    """Reveals ``file_bytes`` into ``live_dir`` incrementally.

    Owns the offset arithmetic every replay loop used to duplicate:
    :meth:`apply` appends one schedule step's chunk (at least one byte
    while any remain, so schedules always make progress);
    :meth:`finish` appends every file's unrevealed tail. File names
    are addressed by index modulo the file count, matching the
    ``growth_steps`` strategy.
    """

    def __init__(self, live_dir: Path | str,
                 file_bytes: dict[str, bytes]) -> None:
        self.live_dir = Path(live_dir)
        self.file_bytes = dict(file_bytes)
        self.names = sorted(file_bytes)
        self.offsets = {name: 0 for name in self.names}

    def _append(self, name: str, chunk: int) -> int:
        if chunk <= 0:
            return 0
        offset = self.offsets[name]
        with open(self.live_dir / name, "ab") as handle:
            handle.write(self.file_bytes[name][offset:offset + chunk])
        self.offsets[name] = offset + chunk
        return chunk

    def apply(self, file_index: int, percent: int) -> int:
        """One schedule step: append ``percent`` of the file's
        remaining bytes (>= 1 while any remain); returns bytes
        appended."""
        name = self.names[file_index % len(self.names)]
        remaining = len(self.file_bytes[name]) - self.offsets[name]
        chunk = max(1, remaining * percent // 100) if remaining else 0
        return self._append(name, chunk)

    def finish_file(self, name: str) -> int:
        """Append everything still unrevealed of one file."""
        return self._append(
            name, len(self.file_bytes[name]) - self.offsets[name])

    def finish(self) -> int:
        """Append every file's unrevealed tail; returns total bytes."""
        return sum(self.finish_file(name) for name in self.names)

    def each_finished(self):
        """Yield every file name after appending its tail (for suites
        that poll between per-file reveals)."""
        for name in self.names:
            self.finish_file(name)
            yield name

    @property
    def done(self) -> bool:
        return all(self.offsets[name] == len(self.file_bytes[name])
                   for name in self.names)


def replay_schedule(file_bytes: dict[str, bytes], schedule, *,
                    live_dir: Path | str, poll, on_step=None) -> None:
    """Run one growth schedule to completion.

    ``poll()`` is called after every step whose flag is set and once
    at the end (with everything revealed). ``on_step(step_index)``,
    when given, runs after each schedule step — the hook where suites
    place kill/restart cycles.
    """
    grower = DirectoryGrower(live_dir, file_bytes)
    for step_index, (file_index, percent, do_poll) in \
            enumerate(schedule):
        grower.apply(file_index, percent)
        if do_poll:
            poll()
        if on_step is not None:
            on_step(step_index)
    grower.finish()
    poll()

"""Cross-module invariants, property-based where randomness helps.

These laws tie the subsystems together: whatever path data takes
through the library (raw traces vs store, whole log vs partition,
filter-then-map vs map-then-filter), the synthesized artifacts must
agree.
"""

import numpy as np
import pytest

from repro.core.dfg import DFG
from repro.core.eventlog import EventLog
from repro.core.mapping import CallOnly, CallTopDirs
from repro.core.partition import PartitionEL
from repro.core.statistics import IOStatistics
from repro.simulate.recording import ProcessRecorder
from repro.simulate.strace_writer import write_trace_files

CALLS = ("read", "write", "openat", "lseek", "close")
PATHS = ("/p/scratch/run/a", "/p/scratch/run/b", "/etc/conf",
         "/usr/lib/libx.so", "/dev/shm/seg")


@pytest.fixture()
def logs(tmp_path):
    """Materialized random logs for the non-hypothesis laws."""
    import random

    rng = random.Random(7)
    recorders = []
    rid = 100
    for cid in ("g", "r"):
        for _ in range(3):
            recorder = ProcessRecorder(cid=cid, host="h1", rid=rid,
                                       pid=rid + 1)
            rid += 1
            clock = rng.randrange(10**6)
            for _ in range(20):
                call = rng.choice(CALLS)
                path = rng.choice(PATHS)
                dur = rng.randrange(1, 500)
                size = (rng.randrange(4096)
                        if call in ("read", "write") else None)
                kwargs = dict(call=call, start_us=clock, dur_us=dur,
                              path=path, fd=3)
                if call in ("read", "write"):
                    kwargs.update(size=size, requested=size)
                elif call == "openat":
                    kwargs.update(ret_fd=3, args_hint="O_RDONLY")
                elif call == "lseek":
                    kwargs.update(args_hint="0", retval=0)
                recorder.record(**kwargs)
                clock += dur + rng.randrange(1, 1000)
            recorders.append(recorder)
    directory = tmp_path / "gen"
    write_trace_files(recorders, directory)
    log = EventLog.from_source(directory)
    log.apply_mapping_fn(CallTopDirs(levels=2))
    return log


class TestPartitionLaws:
    def test_partition_conserves_events(self, logs):
        green, red = PartitionEL(logs)
        assert green.n_events + red.n_events == logs.n_events
        assert set(green.case_ids()) | set(red.case_ids()) == \
            set(logs.case_ids())
        assert not set(green.case_ids()) & set(red.case_ids())

    def test_partition_dfgs_union_to_whole(self, logs):
        green, red = PartitionEL(logs)
        assert DFG(green) | DFG(red) == DFG(logs)

    def test_partition_bytes_additive(self, logs):
        green, red = PartitionEL(logs)
        whole = IOStatistics(logs)
        green_stats = IOStatistics(green)
        red_stats = IOStatistics(red)
        for activity in whole.activities():
            total = whole[activity].total_bytes
            parts = ((green_stats[activity].total_bytes
                      if activity in green_stats else 0)
                     + (red_stats[activity].total_bytes
                        if activity in red_stats else 0))
            assert parts == total

    def test_partition_durations_additive(self, logs):
        green, red = PartitionEL(logs)
        whole = IOStatistics(logs)
        green_stats = IOStatistics(green)
        red_stats = IOStatistics(red)
        assert (green_stats.total_duration_us
                + red_stats.total_duration_us) == \
            whole.total_duration_us

    def test_max_concurrency_bounded_by_whole(self, logs):
        """mc over a sub-log can never exceed mc over the whole."""
        green, red = PartitionEL(logs)
        whole = IOStatistics(logs)
        for sub in (IOStatistics(green), IOStatistics(red)):
            for activity in sub.activities():
                assert sub[activity].max_concurrency <= \
                    whole[activity].max_concurrency


class TestFilterMapCommutation:
    def test_filter_then_map_equals_map_then_filter(self, logs):
        """For call/fp mappings, fp-filtering commutes with mapping."""
        substring = "/p/scratch"
        mapping = CallTopDirs(levels=2)
        filtered_first = logs.filtered_fp(substring) \
            .with_mapping(mapping)
        mapped_first = logs.with_mapping(mapping) \
            .filtered_fp(substring)
        assert DFG(filtered_first) == DFG(mapped_first)

    def test_filters_commute(self, logs):
        one = logs.filtered_fp("/p").filtered_calls(["read"])
        other = logs.filtered_calls(["read"]).filtered_fp("/p")
        assert np.array_equal(one.frame.column("start"),
                              other.frame.column("start"))


class TestStoreFidelity:
    def test_store_roundtrip_preserves_everything(self, logs, tmp_path):
        from repro.elstore.reader import read_event_log
        from repro.elstore.writer import write_event_log

        path = write_event_log(logs, tmp_path / "prop.elog")
        loaded = read_event_log(path)
        loaded.apply_mapping_fn(CallTopDirs(levels=2))
        assert DFG(loaded) == DFG(logs)
        original_stats = IOStatistics(logs)
        loaded_stats = IOStatistics(loaded)
        for activity in original_stats.activities():
            assert loaded_stats[activity].total_bytes == \
                original_stats[activity].total_bytes
            assert loaded_stats[activity].max_concurrency == \
                original_stats[activity].max_concurrency


class TestMappingGranularity:
    def test_coarser_mapping_coarser_graph(self, logs):
        """CallOnly is a coarsening of CallTopDirs: node and edge
        counts can only shrink, total observations stay fixed."""
        fine = DFG(logs.with_mapping(CallTopDirs(levels=2)))
        coarse = DFG(logs.with_mapping(CallOnly()))
        assert coarse.n_nodes <= fine.n_nodes
        assert coarse.n_edges <= fine.n_edges
        assert coarse.total_observations() == fine.total_observations()

    def test_node_frequencies_aggregate(self, logs):
        fine_log = logs.with_mapping(CallTopDirs(levels=2))
        coarse_log = logs.with_mapping(CallOnly())
        fine = DFG(fine_log)
        coarse = DFG(coarse_log)
        for call in coarse.activities():
            fine_total = sum(
                fine.node_frequency(a) for a in fine.activities()
                if a.split(":")[0] == call)
            assert coarse.node_frequency(call) == fine_total

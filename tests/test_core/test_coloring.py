"""Statistics- and partition-based coloring (Sec. IV-C)."""

import pytest

from repro.core.activity import END_ACTIVITY, START_ACTIVITY
from repro.core.coloring import (
    DEFAULT_EDGE_STYLE,
    DEFAULT_NODE_STYLE,
    PartitionColoring,
    PlainColoring,
    StatisticsColoring,
    Style,
)
from repro.core.dfg import DFG
from repro.core.eventlog import EventLog
from repro.core.mapping import CallTopDirs
from repro.core.palette import BLUES, relative_luminance
from repro.core.partition import PartitionEL
from repro.core.statistics import IOStatistics


@pytest.fixture()
def mapped_log(fig1_dir) -> EventLog:
    log = EventLog.from_source(fig1_dir)
    log.apply_mapping_fn(CallTopDirs(levels=2))
    return log


class TestStyle:
    def test_merged_over(self):
        partial = Style(fill="#ff0000")
        merged = partial.merged_over(DEFAULT_NODE_STYLE)
        assert merged.fill == "#ff0000"
        assert merged.color == DEFAULT_NODE_STYLE.color
        assert merged.fontcolor == DEFAULT_NODE_STYLE.fontcolor

    def test_plain_coloring_defaults(self):
        plain = PlainColoring()
        assert plain.node_style("x") == DEFAULT_NODE_STYLE
        assert plain.edge_style(("x", "y")) == DEFAULT_EDGE_STYLE


class TestStatisticsColoring:
    def test_heaviest_gets_darkest(self, mapped_log):
        stats = IOStatistics(mapped_log)
        coloring = StatisticsColoring(stats)
        heaviest = stats.activities()[0]
        lightest = stats.activities()[-1]
        dark = coloring.node_style(heaviest).fill
        light = coloring.node_style(lightest).fill
        assert relative_luminance(dark) < relative_luminance(light)

    def test_darkest_is_palette_end(self, mapped_log):
        stats = IOStatistics(mapped_log)
        coloring = StatisticsColoring(stats)
        heaviest = stats.activities()[0]
        assert coloring.node_style(heaviest).fill == BLUES[-1]

    def test_font_flips_on_dark_fill(self, mapped_log):
        stats = IOStatistics(mapped_log)
        coloring = StatisticsColoring(stats)
        heaviest = stats.activities()[0]
        assert coloring.node_style(heaviest).fontcolor == "#ffffff"

    def test_sentinels_unstyled(self, mapped_log):
        coloring = StatisticsColoring(IOStatistics(mapped_log))
        assert coloring.node_style(START_ACTIVITY) == DEFAULT_NODE_STYLE
        assert coloring.node_style(END_ACTIVITY) == DEFAULT_NODE_STYLE

    def test_alternative_metric(self, mapped_log):
        stats = IOStatistics(mapped_log)
        coloring = StatisticsColoring(stats, metric="total_bytes")
        # /etc/locale.alias moves the most bytes in the ls example.
        most_bytes = max(stats.activities(),
                         key=lambda a: stats[a].total_bytes)
        assert coloring.node_style(most_bytes).fill == BLUES[-1]

    def test_edges_default(self, mapped_log):
        coloring = StatisticsColoring(IOStatistics(mapped_log))
        assert coloring.edge_style(("a", "b")) == DEFAULT_EDGE_STYLE


class TestPartitionColoring:
    @pytest.fixture()
    def coloring(self, mapped_log) -> PartitionColoring:
        green_log, red_log = PartitionEL(mapped_log)  # a=green, b=red
        return PartitionColoring(DFG(green_log), DFG(red_log),
                                 IOStatistics(mapped_log))

    def test_fig3d_classification(self, coloring):
        assert coloring.classify_node("read:/etc/passwd") == "red"
        assert coloring.classify_node("read:/usr/lib") == "shared"
        # No ls-exclusive activities in Fig. 3d:
        greens = [a for a in coloring.green_dfg.activities()
                  if coloring.classify_node(a) == "green"]
        assert greens == []

    def test_fig3d_exclusive_edge(self, coloring):
        assert coloring.classify_edge(
            ("read:/etc/locale.alias", "write:/dev/pts")) == "green"
        assert coloring.classify_edge(
            ("read:/etc/passwd", "read:/etc/group")) == "red"
        assert coloring.classify_edge(
            (START_ACTIVITY, "read:/usr/lib")) == "shared"

    def test_styles(self, coloring):
        red_style = coloring.node_style("read:/etc/passwd")
        shared_style = coloring.node_style("read:/usr/lib")
        assert red_style.fill != shared_style.fill
        green_edge = coloring.edge_style(
            ("read:/etc/locale.alias", "write:/dev/pts"))
        assert green_edge.color != DEFAULT_EDGE_STYLE.color

    def test_summary_contents(self, coloring):
        summary = coloring.summary()
        assert summary["red_nodes"] == [
            "read:/etc/group", "read:/etc/nsswitch.conf",
            "read:/etc/passwd", "read:/usr/share"]
        assert summary["green_nodes"] == []
        assert summary["green_edges"] == [
            ("read:/etc/locale.alias", "write:/dev/pts")]
        assert len(summary["shared_nodes"]) == 4

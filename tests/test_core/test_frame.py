"""The columnar EventFrame (DataFrame substitute)."""

import numpy as np
import pytest

from repro._util.errors import ReproError
from repro.core.frame import MISSING, EventFrame, FramePools
from repro.strace.reader import read_trace_dir


@pytest.fixture()
def frame(fig1_dir) -> EventFrame:
    return EventFrame.from_cases(read_trace_dir(fig1_dir))


class TestConstruction:
    def test_shape(self, frame):
        assert frame.n_events == 3 * 8 + 3 * 17

    def test_empty(self):
        empty = EventFrame.empty()
        assert len(empty) == 0
        assert empty.case_slices() == []

    def test_missing_column_rejected(self):
        pools = FramePools()
        with pytest.raises(ReproError, match="missing columns"):
            EventFrame(pools, {"start": np.zeros(1, dtype=np.int64)})

    def test_ragged_columns_rejected(self, frame):
        columns = {name: frame.column(name) for name in
                   ("case", "cid", "host", "rid", "pid", "call",
                    "start", "dur", "fp", "size", "activity")}
        columns["pid"] = columns["pid"][:-1]
        with pytest.raises(ReproError, match="ragged"):
            EventFrame(frame.pools, columns)

    def test_unknown_column_rejected(self, frame):
        with pytest.raises(ReproError):
            frame.column("bogus")

    def test_string_decoding(self, frame):
        calls = frame.decoded("call")
        assert set(calls) == {"read", "write"}

    def test_pools_shared_across_cases(self, frame):
        # The same path appears in all six cases but is pooled once.
        paths = list(frame.pools.paths)
        assert paths.count("/usr/lib/x86_64-linux-gnu/libc.so.6") == 1


class TestSelection:
    def test_fp_contains(self, frame):
        mask = frame.fp_contains("/usr/lib")
        sub = frame.select(mask)
        assert len(sub) == 6 * 3  # 3 lib reads per case, 6 cases
        assert all("/usr/lib" in p for p in sub.decoded("fp"))

    def test_fp_contains_no_match(self, frame):
        assert frame.fp_contains("/scratch").sum() == 0

    def test_fp_matches_predicate(self, frame):
        mask = frame.fp_matches(lambda p: p.endswith(".conf"))
        assert set(frame.select(mask).decoded("fp")) == \
            {"/etc/nsswitch.conf"}

    def test_call_in(self, frame):
        writes = frame.select(frame.call_in(["write"]))
        assert len(writes) == 3 * 1 + 3 * 4  # ls: 1 write; ls -l: 4

    def test_call_in_unknown_name(self, frame):
        assert frame.call_in(["mmap"]).sum() == 0

    def test_cid_in(self, frame):
        assert frame.select(frame.cid_in(["a"])).n_events == 24

    def test_time_window(self, frame):
        starts = frame.column("start")
        lo, hi = int(starts.min()), int(starts.max())
        assert frame.time_window(lo, hi + 1).all()
        assert frame.time_window(hi + 1, hi + 2).sum() == 0

    def test_selection_shares_pools(self, frame):
        sub = frame.select(frame.cid_in(["a"]))
        assert sub.pools is frame.pools


class TestGrouping:
    def test_case_slices_cover_all_rows(self, frame):
        slices = frame.case_slices()
        assert len(slices) == 6
        total = sum(len(rows) for _, rows in slices)
        assert total == len(frame)

    def test_case_slices_codes_correct(self, frame):
        for code, rows in frame.case_slices():
            assert (frame.column("case")[rows] == code).all()

    def test_sorted_within_cases(self, frame):
        ordered = frame.sorted_within_cases()
        for _, rows in ordered.case_slices():
            starts = ordered.column("start")[rows]
            assert (np.diff(starts) >= 0).all()

    def test_groupby_activity_excludes_unmapped(self, frame):
        codes = np.full(len(frame), MISSING, dtype=np.int32)
        codes[:5] = 0
        tagged = frame.with_activity_codes(codes)
        groups = tagged.groupby_activity()
        assert len(groups) == 1
        assert len(groups[0][1]) == 5

    def test_groupby_activity_codes_correct(self, frame):
        rng = np.random.default_rng(3)
        codes = rng.integers(0, 4, size=len(frame)).astype(np.int32)
        tagged = frame.with_activity_codes(codes)
        for code, rows in tagged.groupby_activity():
            assert (codes[rows] == code).all()


class TestConcat:
    def test_concat_shared_pools(self, frame):
        first = frame.select(frame.cid_in(["a"]))
        second = frame.select(frame.cid_in(["b"]))
        merged = EventFrame.concat([first, second])
        assert len(merged) == len(frame)

    def test_concat_different_pools_rejected(self, fig1_dir):
        one = EventFrame.from_cases(read_trace_dir(fig1_dir))
        two = EventFrame.from_cases(read_trace_dir(fig1_dir))
        with pytest.raises(ReproError, match="pools"):
            EventFrame.concat([one, two])

    def test_concat_empty_list(self):
        assert len(EventFrame.concat([])) == 0

    def test_reencode_then_concat(self, fig1_dir):
        one = EventFrame.from_cases(read_trace_dir(fig1_dir, cids={"a"}))
        two = EventFrame.from_cases(read_trace_dir(fig1_dir, cids={"b"}))
        merged = EventFrame.concat([one, two.reencoded(one.pools)])
        assert len(merged) == 24 + 51
        assert merged.decoded("cid").count("b") == 51

    def test_reencode_preserves_strings(self, frame):
        fresh = FramePools()
        re_encoded = frame.reencoded(fresh)
        assert re_encoded.decoded("fp") == frame.decoded("fp")
        assert re_encoded.decoded("call") == frame.decoded("call")


class TestRowAccess:
    def test_event_materialization(self, frame):
        ordered = frame.sorted_within_cases()
        event = ordered.event(0)
        assert event.cid == "a"
        assert event.call == "read"
        assert event.size == 832

    def test_iter_events_count(self, frame):
        assert sum(1 for _ in frame.iter_events()) == len(frame)

    def test_with_activity_codes_length_checked(self, frame):
        with pytest.raises(ReproError):
            frame.with_activity_codes(np.zeros(3, dtype=np.int32))

"""Graph analytics over DFGs."""

import pytest

from repro.core.activity import (
    END_ACTIVITY,
    START_ACTIVITY,
    ActivityLog,
)
from repro.core.analysis import (
    bottleneck_activities,
    dominant_path,
    edge_probabilities,
    entropy_of_successors,
    find_cycles,
    reachable_activities,
    variant_coverage,
)
from repro.core.dfg import DFG
from repro.core.eventlog import EventLog
from repro.core.mapping import CallTopDirs
from repro.core.statistics import IOStatistics


def wrap(*traces):
    return ActivityLog([(START_ACTIVITY, *t, END_ACTIVITY)
                        for t in traces])


@pytest.fixture()
def ls_log(fig1_dir) -> EventLog:
    log = EventLog.from_source(fig1_dir)
    log.apply_mapping_fn(CallTopDirs(levels=2))
    return log


class TestEdgeProbabilities:
    def test_rows_sum_to_one(self, ls_log):
        dfg = DFG(ls_log)
        probs = edge_probabilities(dfg)
        outgoing: dict[str, float] = {}
        for (a1, _a2), p in probs.items():
            outgoing[a1] = outgoing.get(a1, 0.0) + p
        for node, total in outgoing.items():
            assert total == pytest.approx(1.0), node

    def test_deterministic_chain(self):
        dfg = DFG(wrap(("a", "b")))
        probs = edge_probabilities(dfg)
        assert probs[(START_ACTIVITY, "a")] == 1.0
        assert probs[("a", "b")] == 1.0

    def test_branching(self):
        dfg = DFG(wrap(("a", "b"), ("a", "b"), ("a", "c")))
        probs = edge_probabilities(dfg)
        assert probs[("a", "b")] == pytest.approx(2 / 3)
        assert probs[("a", "c")] == pytest.approx(1 / 3)


class TestDominantPath:
    def test_single_variant_recovers_trace(self):
        dfg = DFG(wrap(("a", "b", "c")))
        assert dominant_path(dfg) == [
            START_ACTIVITY, "a", "b", "c", END_ACTIVITY]

    def test_majority_branch_wins(self):
        dfg = DFG(wrap(("a", "b"), ("a", "b"), ("a", "c")))
        assert dominant_path(dfg) == [
            START_ACTIVITY, "a", "b", END_ACTIVITY]

    def test_self_loops_do_not_trap(self, ls_log):
        # read:/usr/lib has a heavy self-loop; the walk must escape.
        path = dominant_path(DFG(ls_log))
        assert path[0] == START_ACTIVITY
        assert path[-1] == END_ACTIVITY
        assert len(path) == len(set(path))  # no revisits

    def test_empty_dfg(self):
        assert dominant_path(DFG()) == []


class TestVariantCoverage:
    def test_homogeneous_log(self, fig1_dir):
        log = EventLog.from_source(fig1_dir, cids={"a"})
        log.apply_mapping_fn(CallTopDirs(levels=2))
        coverage = variant_coverage(log)
        assert coverage == [(1, 1.0)]

    def test_two_variant_log(self, ls_log):
        coverage = variant_coverage(ls_log)
        assert coverage == [(1, 0.5), (2, 1.0)]

    def test_k_truncation(self, ls_log):
        assert variant_coverage(ls_log, k=1) == [(1, 0.5)]

    def test_accepts_activity_log(self):
        coverage = variant_coverage(wrap(("a",), ("a",), ("b",)))
        assert coverage[0] == (1, pytest.approx(2 / 3))

    def test_empty(self):
        assert variant_coverage(ActivityLog([])) == []


class TestCycles:
    def test_acyclic_chain(self):
        assert find_cycles(DFG(wrap(("a", "b", "c")))) == []

    def test_self_loops_excluded(self):
        assert find_cycles(DFG(wrap(("a", "a", "b")))) == []

    def test_two_cycle_found(self):
        cycles = find_cycles(DFG(wrap(("a", "b", "a", "b"))))
        assert any(sorted(c) == ["a", "b"] for c in cycles)

    def test_ior_phase_cycle(self):
        # write...write read...read per segment → cycle via segments.
        dfg = DFG(wrap(("w", "r", "w", "r")))
        cycles = find_cycles(dfg)
        assert any(sorted(c) == ["r", "w"] for c in cycles)


class TestBottlenecks:
    def test_cumulative_truncation(self, ls_log):
        stats = IOStatistics(ls_log)
        ranked = bottleneck_activities(stats, threshold=0.5)
        assert ranked[-1][2] >= 0.5
        # Cumulative shares increase monotonically.
        shares = [c for _, _, c in ranked]
        assert shares == sorted(shares)

    def test_full_threshold_includes_everything(self, ls_log):
        stats = IOStatistics(ls_log)
        ranked = bottleneck_activities(stats, threshold=1.1)
        assert len(ranked) == len(stats)

    def test_heaviest_first(self, ls_log):
        stats = IOStatistics(ls_log)
        ranked = bottleneck_activities(stats)
        assert ranked[0][0] == stats.activities()[0]


class TestReachabilityEntropy:
    def test_reachable_from_start(self, ls_log):
        dfg = DFG(ls_log)
        reachable = reachable_activities(dfg, START_ACTIVITY)
        assert reachable == dfg.activities() | {END_ACTIVITY}

    def test_reachable_from_unknown(self, ls_log):
        assert reachable_activities(DFG(ls_log), "ghost") == set()

    def test_entropy_deterministic_node_zero(self):
        dfg = DFG(wrap(("a", "b")))
        assert entropy_of_successors(dfg, "a") == 0.0

    def test_entropy_even_branch_one_bit(self):
        dfg = DFG(wrap(("a", "b"), ("a", "c")))
        assert entropy_of_successors(dfg, "a") == pytest.approx(1.0)

    def test_entropy_of_sink_zero(self):
        dfg = DFG(wrap(("a",)))
        assert entropy_of_successors(dfg, END_ACTIVITY) == 0.0

"""Activity traces σ_f(c) and activity-logs L_f(C) (Eq. 5, B(A_f*))."""

import pytest

from repro._util.multiset import Bag
from repro.core.activity import (
    END_ACTIVITY,
    START_ACTIVITY,
    ActivityLog,
    SENTINELS,
)
from repro.core.eventlog import EventLog
from repro.core.mapping import CallTopDirs


#: The paper's σ_f̂(a9042) body (Sec. IV, Trace example).
PAPER_TRACE_A = (
    "read:/usr/lib", "read:/usr/lib", "read:/usr/lib",
    "read:/proc/filesystems", "read:/proc/filesystems",
    "read:/etc/locale.alias", "read:/etc/locale.alias",
    "write:/dev/pts",
)


@pytest.fixture()
def ca_log(fig1_dir) -> ActivityLog:
    log = EventLog.from_source(fig1_dir, cids={"a"})
    log.apply_mapping_fn(CallTopDirs(levels=2))
    return ActivityLog.from_event_log(log)


class TestConstruction:
    def test_paper_trace_with_endpoints(self, ca_log):
        expected = (START_ACTIVITY, *PAPER_TRACE_A, END_ACTIVITY)
        assert ca_log.case_traces["a9042"] == expected

    def test_multiplicity_three(self, ca_log):
        # L_f̂(Ca) = {⟨•, ..., ■⟩³}: all three ls ranks collapse.
        assert ca_log.n_traces() == 3
        assert ca_log.n_variants() == 1
        (trace, multiplicity), = ca_log.variants()
        assert multiplicity == 3

    def test_without_endpoints(self, fig1_dir):
        log = EventLog.from_source(fig1_dir, cids={"a"})
        log.apply_mapping_fn(CallTopDirs(levels=2))
        activity_log = ActivityLog.from_event_log(log,
                                                  add_endpoints=False)
        assert activity_log.case_traces["a9042"] == PAPER_TRACE_A

    def test_activities_exclude_sentinels(self, ca_log):
        assert ca_log.activities() == {
            "read:/usr/lib", "read:/proc/filesystems",
            "read:/etc/locale.alias", "write:/dev/pts"}

    def test_requires_mapping(self, fig1_dir):
        from repro._util.errors import MappingError
        log = EventLog.from_source(fig1_dir)
        with pytest.raises(MappingError):
            ActivityLog.from_event_log(log)

    def test_unmapped_case_yields_empty_trace(self, fig1_dir):
        """A case whose events all map to None still contributes ⟨●,■⟩."""
        log = EventLog.from_source(fig1_dir)
        log.apply_mapping_fn(
            CallTopDirs(levels=2).restricted_to_fp("/etc/passwd"))
        activity_log = ActivityLog.from_event_log(log)
        # ls cases never touch /etc/passwd → empty traces.
        assert activity_log.case_traces["a9042"] == \
            (START_ACTIVITY, END_ACTIVITY)


class TestDirectlyFollows:
    def test_counts_fig3b(self, ca_log):
        counts = ca_log.directly_follows_counts()
        assert counts[(START_ACTIVITY, "read:/usr/lib")] == 3
        assert counts[("read:/usr/lib", "read:/usr/lib")] == 6
        assert counts[("read:/usr/lib", "read:/proc/filesystems")] == 3
        assert counts[("read:/etc/locale.alias", "write:/dev/pts")] == 3
        assert counts[("write:/dev/pts", END_ACTIVITY)] == 3

    def test_total_observations_invariant(self, ca_log):
        # Σ counts = Σ over traces (len(trace) - 1), with multiplicity.
        counts = ca_log.directly_follows_counts()
        expected = sum((len(t) - 1) * m for t, m in ca_log.variants())
        assert sum(counts.values()) == expected

    def test_activity_frequencies(self, ca_log):
        freq = ca_log.activity_frequencies()
        assert freq["read:/usr/lib"] == 9
        assert freq[START_ACTIVITY] == 3
        assert freq[END_ACTIVITY] == 3


class TestAlgebra:
    def test_union_multiplicities(self, fig1_dir):
        log_a = EventLog.from_source(fig1_dir, cids={"a"})
        log_b = EventLog.from_source(fig1_dir, cids={"b"})
        mapping = CallTopDirs(levels=2)
        la = ActivityLog.from_event_log(log_a.with_mapping(mapping))
        lb = ActivityLog.from_event_log(log_b.with_mapping(mapping))
        lx = la + lb
        assert lx.n_traces() == 6
        assert lx.n_variants() == 2
        assert set(lx.case_traces) == {
            "a9042", "a9043", "a9045", "b9157", "b9158", "b9160"}

    def test_direct_construction_from_traces(self):
        log = ActivityLog([("x", "y"), ("x", "y"), ("z",)])
        assert log.n_traces() == 3
        assert log.n_variants() == 2
        assert log.traces == Bag([("x", "y"), ("x", "y"), ("z",)])

    def test_equality_ignores_case_names(self):
        one = ActivityLog([("a",)], case_traces={"c1": ("a",)})
        two = ActivityLog([("a",)], case_traces={"zz": ("a",)})
        assert one == two

    def test_variants_sorted_by_multiplicity(self):
        log = ActivityLog([("b",), ("a",), ("a",)])
        assert log.variants() == [(("a",), 2), (("b",), 1)]


def test_sentinel_constants():
    assert START_ACTIVITY in SENTINELS
    assert END_ACTIVITY in SENTINELS
    assert START_ACTIVITY != END_ACTIVITY

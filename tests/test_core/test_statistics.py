"""Activity statistics rd_f / b_f / dr̄_f / mc_f (Sec. IV-B)."""

import pytest

from repro._util.errors import ReproError
from repro.core.eventlog import EventLog
from repro.core.mapping import CallTopDirs
from repro.core.statistics import IOStatistics


@pytest.fixture()
def stats(fig1_dir) -> IOStatistics:
    log = EventLog.from_source(fig1_dir)
    log.apply_mapping_fn(CallTopDirs(levels=2))
    return IOStatistics(log)


@pytest.fixture()
def ca_stats(fig1_dir) -> IOStatistics:
    log = EventLog.from_source(fig1_dir, cids={"a"})
    log.apply_mapping_fn(CallTopDirs(levels=2))
    return IOStatistics(log)


class TestRelativeDuration:
    def test_sums_to_one(self, stats):
        total = sum(stats[a].relative_duration for a in stats.activities())
        assert total == pytest.approx(1.0)

    def test_eq8_exact_value(self, ca_stats):
        """rd for read:/usr/lib over Ca: the three lib reads total
        (203+79+87) µs per case; denominator is the case total."""
        per_case_total = 203 + 79 + 87 + 52 + 40 + 41 + 44 + 111
        expected = (203 + 79 + 87) / per_case_total
        assert ca_stats["read:/usr/lib"].relative_duration == \
            pytest.approx(expected)

    def test_total_duration_denominator(self, ca_stats):
        per_case_total = 203 + 79 + 87 + 52 + 40 + 41 + 44 + 111
        assert ca_stats.total_duration_us == 3 * per_case_total

    def test_ordering_by_load(self, stats):
        ordered = stats.activities()
        values = [stats[a].relative_duration for a in ordered]
        assert values == sorted(values, reverse=True)


class TestBytes:
    def test_eq9_total_bytes(self, ca_stats):
        # 3 lib reads × 832 B × 3 cases.
        assert ca_stats["read:/usr/lib"].total_bytes == 3 * 3 * 832

    def test_eof_reads_count_zero_bytes(self, ca_stats):
        # /proc/filesystems: 478 + 0 per case.
        assert ca_stats["read:/proc/filesystems"].total_bytes == 3 * 478

    def test_load_label_format(self, ca_stats):
        label = ca_stats["read:/usr/lib"].load_label
        assert label.startswith("Load:0.5")
        assert "(7.49 KB)" in label


class TestProcessDataRate:
    def test_eq13_mean_of_event_rates(self, ca_stats):
        # Mean over the 9 lib-read events of size/dur (per case the
        # same three), in bytes/second.
        rates = [832 / (203e-6), 832 / (79e-6), 832 / (87e-6)]
        expected = sum(rates) / 3
        assert ca_stats["read:/usr/lib"].process_data_rate == \
            pytest.approx(expected, rel=1e-6)

    def test_zero_duration_events_excluded_from_rate(self, fig1_dir,
                                                     tmp_path):
        (tmp_path / "z_h_1.st").write_text(
            "1  00:00:00.000001 read(3</f>, ..., 10) = 10 <0.000000>\n"
            "1  00:00:00.000100 read(3</f>, ..., 10) = 10 <0.000010>\n")
        log = EventLog.from_source(tmp_path)
        log.apply_mapping_fn(CallTopDirs(levels=2))
        stats = IOStatistics(log)
        assert stats["read:/f"].process_data_rate == \
            pytest.approx(10 / 10e-6)

    def test_zero_byte_transfer_is_a_real_zero_rate(self, tmp_path):
        """A size-0 read with positive duration measures 0.0 B/s —
        a legitimate rate, distinct from 'no transfers' (None)."""
        (tmp_path / "z_h_1.st").write_text(
            '1  00:00:00.000001 read(3</f>, "", 1024) = 0 <0.000040>\n')
        log = EventLog.from_source(tmp_path)
        log.apply_mapping_fn(CallTopDirs(levels=2))
        stats = IOStatistics(log)
        record = stats["read:/f"]
        assert record.process_data_rate == 0.0
        assert record.has_transfers
        assert record.dr_label == "DR: 1x0.00 MB/s"
        # The metric accessor must not conflate 0.0 with None either.
        assert stats.metric("read:/f", "process_data_rate") == 0.0

    def test_metric_for_no_transfers_is_zero(self, tmp_path):
        (tmp_path / "z_h_1.st").write_text(
            "1  00:00:00.000001 lseek(3</f>, 0, SEEK_SET) = 0 "
            "<0.000002>\n")
        log = EventLog.from_source(tmp_path)
        log.apply_mapping_fn(CallTopDirs(levels=2))
        stats = IOStatistics(log)
        assert stats["lseek:/f"].process_data_rate is None
        assert stats.metric("lseek:/f", "process_data_rate") == 0.0

    def test_no_transfer_activities_have_none(self, tmp_path):
        (tmp_path / "z_h_1.st").write_text(
            "1  00:00:00.000001 lseek(3</f>, 0, SEEK_SET) = 0 "
            "<0.000002>\n")
        log = EventLog.from_source(tmp_path)
        log.apply_mapping_fn(CallTopDirs(levels=2))
        stats = IOStatistics(log)
        record = stats["lseek:/f"]
        assert record.process_data_rate is None
        assert not record.has_transfers
        assert record.dr_label is None
        assert record.load_label == "Load:1.00"  # no byte parenthetical


class TestMaxConcurrency:
    def test_identical_timestamps_give_case_count(self, fig1_dir):
        """The fig1 fixture replays identical timestamps per rank, so
        every activity is 3-concurrent within each command."""
        log = EventLog.from_source(fig1_dir, cids={"a"})
        log.apply_mapping_fn(CallTopDirs(levels=2))
        stats = IOStatistics(log)
        assert stats["read:/usr/lib"].max_concurrency == 3

    def test_staggered_simulated_ls_gives_two(self, ls_sim_dir):
        """The simulator staggers ranks by 150 µs → Fig. 5's mc = 2."""
        log = EventLog.from_source(ls_sim_dir, cids={"b"})
        log.apply_mapping_fn(CallTopDirs(levels=2))
        stats = IOStatistics(log)
        assert stats["read:/usr/lib"].max_concurrency == 2


class TestTimeline:
    def test_rows_are_case_tagged(self, ca_stats):
        rows = ca_stats.timeline("read:/usr/lib")
        assert len(rows) == 9
        assert {case for case, _, _ in rows} == \
            {"a9042", "a9043", "a9045"}
        for _, start, end in rows:
            assert end >= start

    def test_unknown_activity_rejected(self, ca_stats):
        with pytest.raises(ReproError):
            ca_stats.timeline("nope")


class TestAccessors:
    def test_getitem_unknown_rejected(self, stats):
        with pytest.raises(ReproError):
            stats["ghost"]

    def test_get_returns_none(self, stats):
        assert stats.get("ghost") is None

    def test_contains_and_len(self, stats):
        assert "read:/usr/lib" in stats
        assert len(stats) == 8

    def test_metric_accessor(self, stats):
        for name in ("relative_duration", "total_bytes",
                     "max_concurrency", "event_count",
                     "process_data_rate"):
            assert stats.metric("read:/usr/lib", name) >= 0

    def test_metric_unknown_rejected(self, stats):
        with pytest.raises(ReproError):
            stats.metric("read:/usr/lib", "banana")

    def test_ranks_and_cases(self, stats):
        record = stats["read:/etc/passwd"]
        assert record.ranks == 3   # only the three ls -l rids
        assert record.cases == 3

    def test_as_rows(self, stats):
        rows = stats.as_rows()
        assert len(rows) == 8
        assert {"activity", "events", "relative_duration",
                "total_bytes"} <= set(rows[0])

    def test_compute_replaces_previous(self, fig1_dir, stats):
        log = EventLog.from_source(fig1_dir, cids={"a"})
        log.apply_mapping_fn(CallTopDirs(levels=2))
        stats.compute_statistics(log)
        assert len(stats) == 4  # only the ls activities now

    def test_one_step_constructor(self, fig1_dir):
        log = EventLog.from_source(fig1_dir)
        log.apply_mapping_fn(CallTopDirs(levels=2))
        assert len(IOStatistics(log)) == 8


class TestStatsAccumulator:
    """The accumulator layer behind both batch and live statistics."""

    def _mapped_log(self, fig1_dir) -> EventLog:
        log = EventLog.from_source(fig1_dir)
        log.apply_mapping_fn(CallTopDirs(levels=2))
        return log

    def test_event_by_event_feed_equals_frame_feed(self, fig1_dir):
        """Feeding one event at a time (the live road) produces
        field-identical statistics to the vectorized frame feed (the
        batch road) — floats included, no approx."""
        from repro.core.frame import MISSING
        from repro.core.statistics import StatsAccumulator

        log = self._mapped_log(fig1_dir)
        frame = log.frame
        pools = frame.pools
        case_order = [pools.cases.decode(c)
                      for c in range(len(pools.cases))]
        batch = IOStatistics(log)

        fed = StatsAccumulator()
        activity_col = frame.column("activity")
        for row in range(len(frame)):
            code = int(activity_col[row])
            if code == MISSING:
                continue
            dur = int(frame.column("dur")[row])
            size = int(frame.column("size")[row])
            fed.feed_event(
                pools.activities.decode(code),
                pools.cases.decode(int(frame.column("case")[row])),
                rid=int(frame.column("rid")[row]),
                start_us=int(frame.column("start")[row]),
                dur_us=None if dur == MISSING else dur,
                size=None if size == MISSING else size)
        live = fed.statistics(case_order=case_order)
        assert live.activities() == batch.activities()
        assert live.total_duration_us == batch.total_duration_us
        for activity in batch.activities():
            assert live[activity] == batch[activity], activity
            assert live.timeline(activity) == \
                batch.timeline(activity), activity

    def test_state_roundtrip(self, fig1_dir):
        from repro.core.statistics import StatsAccumulator

        log = self._mapped_log(fig1_dir)
        accumulator = StatsAccumulator().feed_frame(log.frame)
        revived = StatsAccumulator.from_state(accumulator.to_state())
        one = accumulator.statistics()
        two = revived.statistics()
        for activity in one.activities():
            assert one[activity] == two[activity]
            assert one.timeline(activity) == two.timeline(activity)

    def test_default_case_order_is_lexicographic(self, fig1_dir):
        """Without an explicit order the flat-directory layout (case
        ids sorted) matches the frame interning order."""
        from repro.core.statistics import StatsAccumulator

        log = self._mapped_log(fig1_dir)
        accumulator = StatsAccumulator().feed_frame(log.frame)
        batch = IOStatistics(log)
        implicit = accumulator.statistics()
        for activity in batch.activities():
            assert implicit.timeline(activity) == \
                batch.timeline(activity)

"""Quantitative DFG diff."""

import pytest

from repro.core.diff import ActivityDelta, DFGDiff, EdgeDelta
from repro.core.dfg import DFG
from repro.core.eventlog import EventLog
from repro.core.mapping import CallTopDirs
from repro.core.partition import PartitionEL


@pytest.fixture()
def diff(fig1_dir) -> DFGDiff:
    log = EventLog.from_source(fig1_dir)
    log.apply_mapping_fn(CallTopDirs(levels=2))
    green_log, red_log = PartitionEL(log)  # a=green, b=red
    return DFGDiff.between(green_log, red_log)


class TestEdgeDeltas:
    def test_status_classification(self, diff):
        by_edge = {d.edge: d for d in diff.edge_deltas()}
        locale_pts = by_edge[("read:/etc/locale.alias", "write:/dev/pts")]
        assert locale_pts.status == "green-only"
        assert locale_pts.delta == 3
        passwd_group = by_edge[("read:/etc/passwd", "read:/etc/group")]
        assert passwd_group.status == "red-only"
        assert passwd_group.delta == -3

    def test_shared_edge_delta(self, diff):
        by_edge = {d.edge: d for d in diff.edge_deltas()}
        shared = by_edge[("read:/usr/lib", "read:/usr/lib")]
        assert shared.status == "shared"
        assert shared.green_count == 6
        assert shared.red_count == 6
        assert shared.delta == 0

    def test_sorted_by_abs_delta(self, diff):
        deltas = [abs(d.delta) for d in diff.edge_deltas()]
        assert deltas == sorted(deltas, reverse=True)

    def test_covers_union_of_edges(self, diff):
        edges = {d.edge for d in diff.edge_deltas()}
        assert edges == (set(diff.green_dfg.edges())
                         | set(diff.red_dfg.edges()))


class TestEdgeSets:
    def test_added_and_vanished_are_the_exclusive_sets(self, diff):
        added = diff.added_edges()
        vanished = diff.vanished_edges()
        assert ("read:/etc/locale.alias", "write:/dev/pts") in added
        assert ("read:/etc/passwd", "read:/etc/group") in vanished
        assert not set(added) & set(vanished)
        by_edge = {d.edge: d for d in diff.edge_deltas()}
        assert set(added) == {e for e, d in by_edge.items()
                              if d.status == "green-only"}
        assert set(vanished) == {e for e, d in by_edge.items()
                                 if d.status == "red-only"}

    def test_sorted_and_stable(self, diff):
        assert diff.added_edges() == sorted(diff.added_edges())
        assert diff.vanished_edges() == sorted(diff.vanished_edges())


class TestActivityDeltas:
    def test_red_only_activity(self, diff):
        by_activity = {d.activity: d for d in diff.activity_deltas()}
        passwd = by_activity["read:/etc/passwd"]
        assert passwd.green_events == 0
        assert passwd.red_events == 3
        assert passwd.rd_delta < 0

    def test_shared_activity_rates(self, diff):
        by_activity = {d.activity: d for d in diff.activity_deltas()}
        usr_lib = by_activity["read:/usr/lib"]
        assert usr_lib.green_events == 9
        assert usr_lib.red_events == 9
        assert usr_lib.rate_ratio is not None
        assert usr_lib.rate_ratio > 0

    def test_requires_stats(self, diff):
        bare = DFGDiff(diff.green_dfg, diff.red_dfg)
        with pytest.raises(ValueError):
            bare.activity_deltas()


class TestScalars:
    def test_jaccard_nodes(self, diff):
        # 4 shared of 8 total activities.
        assert diff.jaccard_nodes() == pytest.approx(4 / 8)

    def test_jaccard_edges_range(self, diff):
        assert 0 < diff.jaccard_edges() < 1

    def test_total_count_delta(self, diff):
        # ls traces: 3×9 observations; ls -l: 3×18.
        assert diff.total_count_delta() == 27 - 54

    def test_identical_logs_full_similarity(self, fig1_dir):
        log = EventLog.from_source(fig1_dir, cids={"a"})
        log.apply_mapping_fn(CallTopDirs(levels=2))
        dfg = DFG(log)
        same = DFGDiff(dfg, dfg)
        assert same.jaccard_nodes() == 1.0
        assert same.jaccard_edges() == 1.0
        assert same.total_count_delta() == 0

    def test_empty_graphs(self):
        empty = DFGDiff(DFG(), DFG())
        assert empty.jaccard_nodes() == 1.0
        assert empty.jaccard_edges() == 1.0


class TestReport:
    def test_report_contents(self, diff):
        text = diff.report(top=5)
        assert "DFG DIFF" in text
        assert "Jaccard" in text
        assert "green-only" in text
        assert "red-only" in text
        assert "load deltas" in text

    def test_report_without_stats(self, diff):
        bare = DFGDiff(diff.green_dfg, diff.red_dfg)
        text = bare.report()
        assert "load deltas" not in text

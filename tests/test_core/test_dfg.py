"""DFG construction and algebra (Sec. IV-A), incl. hypothesis laws."""

import networkx as nx
import pytest
from hypothesis import given, strategies as st

from repro._util.errors import ReproError
from repro.core.activity import END_ACTIVITY, START_ACTIVITY, ActivityLog
from repro.core.dfg import DFG
from repro.core.eventlog import EventLog
from repro.core.mapping import CallTopDirs


@pytest.fixture()
def ca_dfg(fig1_dir) -> DFG:
    log = EventLog.from_source(fig1_dir, cids={"a"})
    log.apply_mapping_fn(CallTopDirs(levels=2))
    return DFG(log)


class TestConstruction:
    def test_accepts_event_log_like_fig6(self, fig1_dir):
        # dfg = DFG(event_log) — the paper's step 3.
        log = EventLog.from_source(fig1_dir, cids={"a"})
        log.apply_mapping_fn(CallTopDirs(levels=2))
        assert DFG(log).n_nodes == 6

    def test_accepts_activity_log(self):
        dfg = DFG(ActivityLog([("a", "b"), ("a", "a")]))
        assert dfg.edge_count("a", "b") == 1
        assert dfg.edge_count("a", "a") == 1

    def test_empty(self):
        dfg = DFG()
        assert dfg.n_nodes == 0
        assert dfg.n_edges == 0

    def test_from_counts(self):
        dfg = DFG.from_counts({("a", "b"): 3})
        assert dfg.edge_count("a", "b") == 3
        assert dfg.nodes() == {"a", "b"}

    def test_from_counts_rejects_nonpositive(self):
        with pytest.raises(ReproError):
            DFG.from_counts({("a", "b"): 0})

    def test_nodes_vs_activities(self, ca_dfg):
        assert ca_dfg.n_nodes == 6
        assert len(ca_dfg.activities()) == 4
        assert START_ACTIVITY in ca_dfg.nodes()
        assert END_ACTIVITY in ca_dfg.nodes()


class TestQueries:
    def test_edge_presence(self, ca_dfg):
        assert ca_dfg.has_edge("read:/usr/lib", "read:/usr/lib")
        assert not ca_dfg.has_edge("write:/dev/pts", "read:/usr/lib")
        assert ca_dfg.edge_count("nope", "nada") == 0

    def test_successors_predecessors(self, ca_dfg):
        succ = ca_dfg.successors("read:/usr/lib")
        assert succ == {"read:/usr/lib": 6, "read:/proc/filesystems": 3}
        pred = ca_dfg.predecessors("read:/usr/lib")
        assert pred == {START_ACTIVITY: 3, "read:/usr/lib": 6}

    def test_self_loops(self, ca_dfg):
        loops = ca_dfg.self_loops()
        assert loops["read:/usr/lib"] == 6
        assert loops["read:/proc/filesystems"] == 3

    def test_node_frequency(self, ca_dfg):
        assert ca_dfg.node_frequency("read:/usr/lib") == 9
        assert ca_dfg.node_frequency(START_ACTIVITY) == 3
        assert ca_dfg.node_frequency("ghost") == 0

    def test_total_observations(self, ca_dfg):
        # 3 traces × (8 activities + 1) edges each.
        assert ca_dfg.total_observations() == 3 * 9


class TestAlgebra:
    def test_union_is_dfg_of_merged_log(self, fig1_dir):
        """G[L(Ca)] ∪ G[L(Cb)] == G[L(Ca ∪ Cb)] — the Sec. IV-C basis."""
        mapping = CallTopDirs(levels=2)
        ca = EventLog.from_source(fig1_dir, cids={"a"}) \
            .with_mapping(mapping)
        cb = EventLog.from_source(fig1_dir, cids={"b"}) \
            .with_mapping(mapping)
        la = ActivityLog.from_event_log(ca)
        lb = ActivityLog.from_event_log(cb)
        assert DFG(la) | DFG(lb) == DFG(la + lb)

    def test_exclusive_sets_fig3d(self, fig1_dir):
        """Fig. 3d: red = ls -l exclusive nodes; exactly one green
        (ls-exclusive) edge: locale.alias → write:/dev/pts."""
        mapping = CallTopDirs(levels=2)
        green = DFG(EventLog.from_source(fig1_dir, cids={"a"})
                    .with_mapping(mapping))
        red = DFG(EventLog.from_source(fig1_dir, cids={"b"})
                  .with_mapping(mapping))
        assert green.exclusive_nodes(red) == set()
        assert red.exclusive_nodes(green) == {
            "read:/etc/nsswitch.conf", "read:/etc/passwd",
            "read:/etc/group", "read:/usr/share"}
        assert green.exclusive_edges(red) == {
            ("read:/etc/locale.alias", "write:/dev/pts")}

    def test_shared_sets(self, fig1_dir):
        mapping = CallTopDirs(levels=2)
        green = DFG(EventLog.from_source(fig1_dir, cids={"a"})
                    .with_mapping(mapping))
        red = DFG(EventLog.from_source(fig1_dir, cids={"b"})
                  .with_mapping(mapping))
        assert green.shared_nodes(red) == {
            "read:/usr/lib", "read:/proc/filesystems",
            "read:/etc/locale.alias", "write:/dev/pts"}
        assert (START_ACTIVITY, "read:/usr/lib") in \
            green.shared_edges(red)


class TestExport:
    def test_networkx_roundtrip(self, ca_dfg):
        graph = ca_dfg.to_networkx()
        assert isinstance(graph, nx.DiGraph)
        assert graph.number_of_nodes() == ca_dfg.n_nodes
        assert graph.number_of_edges() == ca_dfg.n_edges
        assert graph["read:/usr/lib"]["read:/usr/lib"]["count"] == 6
        assert graph.nodes["read:/usr/lib"]["frequency"] == 9

    def test_networkx_path_reachability(self, ca_dfg):
        graph = ca_dfg.to_networkx()
        assert nx.has_path(graph, START_ACTIVITY, END_ACTIVITY)


# -- property-based laws -----------------------------------------------------

traces = st.lists(
    st.lists(st.sampled_from("abcd"), max_size=6).map(tuple),
    min_size=0, max_size=8)


def wrap(trace):
    return (START_ACTIVITY, *trace, END_ACTIVITY)


@given(traces, traces)
def test_union_commutative(ts1, ts2):
    d1 = DFG(ActivityLog([wrap(t) for t in ts1]))
    d2 = DFG(ActivityLog([wrap(t) for t in ts2]))
    assert d1 | d2 == d2 | d1


@given(traces, traces)
def test_union_distributes_over_log_union(ts1, ts2):
    l1 = ActivityLog([wrap(t) for t in ts1])
    l2 = ActivityLog([wrap(t) for t in ts2])
    assert DFG(l1) | DFG(l2) == DFG(l1 + l2)


@given(traces)
def test_total_observations_is_sum_of_trace_lengths(ts):
    log = ActivityLog([wrap(t) for t in ts])
    dfg = DFG(log)
    assert dfg.total_observations() == sum(len(t) + 1 for t in ts)


@given(traces)
def test_every_trace_activity_is_a_node(ts):
    dfg = DFG(ActivityLog([wrap(t) for t in ts]))
    for t in ts:
        for activity in t:
            assert activity in dfg.nodes()


@given(traces)
def test_start_has_no_predecessors_end_no_successors(ts):
    dfg = DFG(ActivityLog([wrap(t) for t in ts]))
    assert dfg.predecessors(START_ACTIVITY) == {}
    assert dfg.successors(END_ACTIVITY) == {}


@given(traces)
def test_node_frequency_equals_occurrences(ts):
    dfg = DFG(ActivityLog([wrap(t) for t in ts]))
    for activity in dfg.activities():
        expected = sum(t.count(activity) for t in ts)
        assert dfg.node_frequency(activity) == expected


@given(traces)
def test_flow_conservation(ts):
    """For every activity node, in-degree weight == out-degree weight
    (every occurrence has exactly one predecessor and one successor
    thanks to the ● / ■ wrapping)."""
    dfg = DFG(ActivityLog([wrap(t) for t in ts]))
    for activity in dfg.activities():
        inflow = sum(dfg.predecessors(activity).values())
        outflow = sum(dfg.successors(activity).values())
        assert inflow == outflow == dfg.node_frequency(activity)
